/**
 * @file
 * Proactive thermal capping demo (extension): fit the package's thermal
 * network from the same heat/cool protocol that trains the idle model,
 * then hold a junction-temperature ceiling by predicting each VF
 * state's steady-state temperature — no reactive throttling, no
 * overshoot.
 *
 * The run is assembled through runtime::Session; the governor factory
 * shows how a policy with extra training needs (the thermal-network
 * fit) plugs into the runtime layer.
 *
 * Usage: thermal_cap_demo [--faults=SPEC] [temp_cap_k] [intervals]
 *
 * With --faults= (sim::FaultPlan::parse format) the run faces glitchy
 * diodes/sensors/counters through the hardened acquisition path — the
 * interesting case for a thermal governor, whose one defense against a
 * spiking diode is the Sampler's plausibility window.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/governor/thermal_cap.hpp"
#include "ppep/model/thermal_estimator.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    std::string fault_spec;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--faults=", 0) == 0)
            fault_spec = arg.substr(9);
        else
            args.push_back(arg);
    }
    const double cap_k = !args.empty() ? std::stod(args[0]) : 328.0;
    const std::size_t intervals =
        args.size() > 1 ? static_cast<std::size_t>(std::stoul(args[1]))
                        : 120;

    const auto cfg = sim::fx8320Config();
    std::printf("Acquiring PPEP models + fitting the thermal "
                "network...\n");

    model::ThermalEstimate thermal{};
    auto factory = [&](const runtime::ModelContext &ctx) {
        // The thermal fit reuses the idle-training heat/cool protocol,
        // so it needs a Trainer seeded like the one that produced the
        // models.
        model::Trainer trainer(ctx.cfg, ctx.training_seed);
        thermal = model::ThermalEstimator::estimate(trainer);
        return std::make_unique<governor::ThermalCapGovernor>(
            ctx.cfg, ctx.ppep, thermal, cap_k);
    };

    using Session = runtime::Session;
    std::vector<Session::JobSpec> jobs;
    for (std::size_t c = 0; c < cfg.coreCount(); ++c)
        jobs.push_back({c, "EP", true});

    auto builder = Session::builder(cfg)
                       .seed(55)
                       .trainingSeed(42)
                       .store(runtime::ModelStore())
                       .jobs(jobs)
                       .governor(factory);
    if (!fault_spec.empty()) {
        const auto plan = sim::FaultPlan::parse(fault_spec);
        std::printf("Injecting hardware faults: %s\n",
                    plan.describe().c_str());
        builder.faults(plan);
    }
    auto session = builder.build();

    std::printf("fitted: ambient %.1f K, R %.3f K/W, tau %.1f s\n",
                thermal.ambient_k, thermal.resistance_k_per_w,
                thermal.time_constant_s);
    std::printf("temperature cap %.1f K -> sustained power budget "
                "%.1f W\n\n",
                cap_k, thermal.powerBudgetFor(cap_k));

    const auto steps = session.run(intervals);

    util::Table trace("Managed full-chip load (one row per second):");
    trace.setHeader({"t (s)", "VF", "power (W)", "diode (K)"});
    for (std::size_t i = 0; i < steps.size(); i += 5) {
        trace.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      cfg.vf_table.name(steps[i].cu_vf[0]),
                      util::Table::num(steps[i].rec.sensor_power_w, 1),
                      util::Table::num(steps[i].rec.diode_temp_k, 1)});
    }
    trace.print(std::cout);

    double max_temp = 0.0;
    for (const auto &s : steps)
        max_temp = std::max(max_temp, s.rec.diode_temp_k);
    std::printf("\npeak diode temperature: %.1f K (cap %.1f K) — %s\n",
                max_temp, cap_k,
                max_temp <= cap_k + 0.5 ? "held proactively"
                                        : "CAP VIOLATED");
    if (session.hardened()) {
        const auto &h = session.sampler()->lastHealth();
        std::printf("hardened path: %zu fault events absorbed, %zu "
                    "degraded intervals\n",
                    h.total_fault_events + h.faultEvents(),
                    session.degradedGovernor()->degradedIntervals());
    }
    return 0;
}
