/**
 * @file
 * Proactive thermal capping demo (extension): fit the package's thermal
 * network from the same heat/cool protocol that trains the idle model,
 * then hold a junction-temperature ceiling by predicting each VF
 * state's steady-state temperature — no reactive throttling, no
 * overshoot.
 *
 * Usage: thermal_cap_demo [temp_cap_k] [intervals]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/governor/thermal_cap.hpp"
#include "ppep/model/thermal_estimator.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const double cap_k = argc > 1 ? std::stod(argv[1]) : 328.0;
    const std::size_t intervals =
        argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 120;

    const auto cfg = sim::fx8320Config();
    std::printf("Training PPEP models + fitting the thermal "
                "network...\n");
    model::Trainer trainer(cfg, 42);
    std::vector<const workloads::Combination *> training;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            training.push_back(&c);
    const auto models = trainer.trainAll(training);
    const auto thermal = model::ThermalEstimator::estimate(trainer);

    std::printf("fitted: ambient %.1f K, R %.3f K/W, tau %.1f s\n",
                thermal.ambient_k, thermal.resistance_k_per_w,
                thermal.time_constant_s);
    std::printf("temperature cap %.1f K -> sustained power budget "
                "%.1f W\n\n",
                cap_k, thermal.powerBudgetFor(cap_k));

    const model::Ppep ppep(cfg, models.chip, models.pg);
    governor::ThermalCapGovernor gov(cfg, ppep, thermal, cap_k);

    sim::Chip chip(cfg, 55);
    for (std::size_t c = 0; c < cfg.coreCount(); ++c)
        chip.setJob(c, workloads::Suite::byName("EP").makeLoopingJob());
    governor::GovernorLoop loop(chip, gov);
    const auto steps =
        loop.run(intervals, governor::CapSchedule::unlimited());

    util::Table trace("Managed full-chip load (one row per second):");
    trace.setHeader({"t (s)", "VF", "power (W)", "diode (K)"});
    for (std::size_t i = 0; i < steps.size(); i += 5) {
        trace.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      cfg.vf_table.name(steps[i].cu_vf[0]),
                      util::Table::num(steps[i].rec.sensor_power_w, 1),
                      util::Table::num(steps[i].rec.diode_temp_k, 1)});
    }
    trace.print(std::cout);

    double max_temp = 0.0;
    for (const auto &s : steps)
        max_temp = std::max(max_temp, s.rec.diode_temp_k);
    std::printf("\npeak diode temperature: %.1f K (cap %.1f K) — %s\n",
                max_temp, cap_k,
                max_temp <= cap_k + 0.5 ? "held proactively"
                                        : "CAP VIOLATED");
    return 0;
}
