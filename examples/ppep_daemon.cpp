/**
 * @file
 * The Fig. 5 daemon flow, end to end: a PPEP-driven EDP-optimal DVFS
 * governor supervising a live workload mix, printing each 200 ms
 * decision as it happens — counters in, PPE predictions out, VF state
 * actuated, all in a single step per interval.
 *
 * Built on the runtime layer: models come through the ModelStore cache
 * (first run trains and persists; later runs load and skip the offline
 * step entirely — with bit-identical decisions, since the model file
 * round-trips every coefficient exactly), and per-interval telemetry
 * streams through TelemetrySinks.
 *
 * Usage: ppep_daemon [--faults=SPEC] [intervals] [benchmark...]
 *        (default: 40 intervals of 433.milc + 458.sjeng + CG + EP)
 * Env:   PPEP_CACHE_DIR    model cache directory (default .ppep-cache)
 *        PPEP_DAEMON_JSONL write per-interval JSONL telemetry here
 *        PPEP_FAULTS       fault spec, same format as --faults=
 *
 * A fault spec ("msr=0.02,sensor_drop=0.01,vf_reject=0.05,...", see
 * sim::FaultPlan::parse) runs the daemon against misbehaving hardware:
 * acquisition switches to the hardened Sampler, a HealthMonitor scores
 * every interval, and the governor demotes to a safe hold/step-down
 * policy whenever the data cannot be trusted.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    std::string fault_spec;
    if (const char *env = std::getenv("PPEP_FAULTS"); env && *env)
        fault_spec = env;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--faults=", 0) == 0)
            fault_spec = arg.substr(9);
        else
            args.push_back(arg);
    }
    const std::size_t intervals =
        !args.empty() ? static_cast<std::size_t>(std::stoul(args[0]))
                      : 40;
    std::vector<std::string> programs(
        args.begin() + (args.empty() ? 0 : 1), args.end());
    if (programs.empty())
        programs = {"433.milc", "458.sjeng", "CG", "EP"};
    for (const auto &p : programs) {
        if (!workloads::Suite::exists(p)) {
            std::fprintf(stderr, "unknown benchmark '%s'\n", p.c_str());
            return 1;
        }
    }

    const auto cfg = sim::fx8320Config();
    runtime::ModelStore store;

    runtime::SummarySink summary;
    std::unique_ptr<runtime::JsonlSink> jsonl;
    if (const char *path = std::getenv("PPEP_DAEMON_JSONL");
        path && *path)
        jsonl = std::make_unique<runtime::JsonlSink>(std::string(path));

    auto builder = runtime::Session::builder(cfg)
                       .seed(123)
                       .pg(true)
                       .onePerCu(programs)
                       .trainingSeed(42)
                       .store(store)
                       .governor(runtime::edpGovernor())
                       .sink(summary);
    if (jsonl)
        builder.sink(*jsonl);
    if (!fault_spec.empty()) {
        const auto plan = sim::FaultPlan::parse(fault_spec);
        std::printf("Injecting hardware faults: %s\n",
                    plan.describe().c_str());
        builder.faults(plan);
    }
    auto session = builder.build();

    std::printf(session.modelsWereCached()
                    ? "Loaded cached PPEP models from %s (offline "
                      "training skipped).\n"
                    : "Trained PPEP models (one-time offline step; "
                      "cached in %s).\n",
                store.cacheDir().c_str());

    const auto steps = session.run(intervals);

    util::Table table("PPEP daemon trace (EDP-optimal policy, 200 ms "
                      "decisions):");
    table.setHeader({"t (s)", "VF", "power (W)", "temp (K)",
                     "MIPS total"});
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const auto &s = steps[i];
        double mips = 0.0;
        for (const auto &core : s.rec.pmc)
            mips += core[sim::eventIndex(sim::Event::RetiredInst)] /
                    s.rec.duration_s / 1e6;
        table.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      cfg.vf_table.name(s.cu_vf[0]),
                      util::Table::num(s.rec.sensor_power_w, 1),
                      util::Table::num(s.rec.diode_temp_k, 1),
                      util::Table::num(mips, 0)});
    }
    table.print(std::cout);

    std::printf("\n");
    summary.print(std::cout);

    if (session.hardened()) {
        const auto &h = session.sampler()->lastHealth();
        const auto *mon = session.healthMonitor();
        const auto *deg = session.degradedGovernor();
        std::printf("\nhardened-path health: %zu fault events absorbed "
                    "(%zu injected), %zu PMC wraps\n",
                    h.total_fault_events + h.faultEvents(),
                    h.injected.total(), h.pmc_wrap_events);
        std::printf("  degraded intervals %zu (%zu demotions, %zu "
                    "re-promotions), divergence EWMA %.2f W\n",
                    deg->degradedIntervals(), mon->demotions(),
                    mon->repromotions(), mon->divergenceEwma());
    }
    for (const auto &err : session.sinkErrors())
        std::fprintf(stderr, "warning: %s\n", err.c_str());

    std::printf("\nSettled VF state: %s (EDP-optimal for this mix, "
                "found in one prediction step)\n",
                cfg.vf_table.name(steps.back().cu_vf[0]).c_str());
    return 0;
}
