/**
 * @file
 * The Fig. 5 daemon flow, end to end: a PPEP-driven EDP-optimal DVFS
 * governor supervising a live workload mix, printing each 200 ms
 * decision as it happens — counters in, PPE predictions out, VF state
 * actuated, all in a single step per interval.
 *
 * Built on the runtime layer: models come through the ModelStore cache
 * (first run trains and persists; later runs load and skip the offline
 * step entirely — with bit-identical decisions, since the model file
 * round-trips every coefficient exactly), and per-interval telemetry
 * streams through TelemetrySinks.
 *
 * Usage: ppep_daemon [intervals] [benchmark...]
 *        (default: 40 intervals of 433.milc + 458.sjeng + CG + EP)
 * Env:   PPEP_CACHE_DIR    model cache directory (default .ppep-cache)
 *        PPEP_DAEMON_JSONL write per-interval JSONL telemetry here
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const std::size_t intervals =
        argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 40;
    std::vector<std::string> programs;
    for (int i = 2; i < argc; ++i)
        programs.push_back(argv[i]);
    if (programs.empty())
        programs = {"433.milc", "458.sjeng", "CG", "EP"};
    for (const auto &p : programs) {
        if (!workloads::Suite::exists(p)) {
            std::fprintf(stderr, "unknown benchmark '%s'\n", p.c_str());
            return 1;
        }
    }

    const auto cfg = sim::fx8320Config();
    runtime::ModelStore store;

    runtime::SummarySink summary;
    std::unique_ptr<runtime::JsonlSink> jsonl;
    if (const char *path = std::getenv("PPEP_DAEMON_JSONL");
        path && *path)
        jsonl = std::make_unique<runtime::JsonlSink>(std::string(path));

    auto builder = runtime::Session::builder(cfg)
                       .seed(123)
                       .pg(true)
                       .onePerCu(programs)
                       .trainingSeed(42)
                       .store(store)
                       .governor(runtime::edpGovernor())
                       .sink(summary);
    if (jsonl)
        builder.sink(*jsonl);
    auto session = builder.build();

    std::printf(session.modelsWereCached()
                    ? "Loaded cached PPEP models from %s (offline "
                      "training skipped).\n"
                    : "Trained PPEP models (one-time offline step; "
                      "cached in %s).\n",
                store.cacheDir().c_str());

    const auto steps = session.run(intervals);

    util::Table table("PPEP daemon trace (EDP-optimal policy, 200 ms "
                      "decisions):");
    table.setHeader({"t (s)", "VF", "power (W)", "temp (K)",
                     "MIPS total"});
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const auto &s = steps[i];
        double mips = 0.0;
        for (const auto &core : s.rec.pmc)
            mips += core[sim::eventIndex(sim::Event::RetiredInst)] /
                    s.rec.duration_s / 1e6;
        table.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      cfg.vf_table.name(s.cu_vf[0]),
                      util::Table::num(s.rec.sensor_power_w, 1),
                      util::Table::num(s.rec.diode_temp_k, 1),
                      util::Table::num(mips, 0)});
    }
    table.print(std::cout);

    std::printf("\n");
    summary.print(std::cout);

    std::printf("\nSettled VF state: %s (EDP-optimal for this mix, "
                "found in one prediction step)\n",
                cfg.vf_table.name(steps.back().cu_vf[0]).c_str());
    return 0;
}
