/**
 * @file
 * The Fig. 5 daemon flow, end to end: a PPEP-driven EDP-optimal DVFS
 * governor supervising a live workload mix, printing each 200 ms
 * decision as it happens — counters in, PPE predictions out, VF state
 * actuated, all in a single step per interval.
 *
 * Usage: ppep_daemon [intervals] [benchmark...]
 *        (default: 40 intervals of 433.milc + 458.sjeng + CG + EP)
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/governor/energy_governor.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const std::size_t intervals =
        argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 40;
    std::vector<std::string> programs;
    for (int i = 2; i < argc; ++i)
        programs.push_back(argv[i]);
    if (programs.empty())
        programs = {"433.milc", "458.sjeng", "CG", "EP"};
    for (const auto &p : programs) {
        if (!workloads::Suite::exists(p)) {
            std::fprintf(stderr, "unknown benchmark '%s'\n", p.c_str());
            return 1;
        }
    }

    const auto cfg = sim::fx8320Config();
    std::printf("Training PPEP models (one-time offline step)...\n");
    model::Trainer trainer(cfg, 42);
    std::vector<const workloads::Combination *> training;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            training.push_back(&c);
    const auto models = trainer.trainAll(training);
    const model::Ppep ppep(cfg, models.chip, models.pg);

    // One program per CU, looping, PG on.
    sim::Chip chip(cfg, 123);
    chip.setPowerGatingEnabled(true);
    for (std::size_t i = 0; i < programs.size() && i < cfg.n_cus; ++i) {
        chip.setJob(i * cfg.cores_per_cu,
                    workloads::Suite::byName(programs[i])
                        .makeLoopingJob());
    }

    governor::EnergyOptimalGovernor gov(cfg, ppep,
                                        governor::EnergyObjective::Edp);
    governor::GovernorLoop loop(chip, gov);
    const auto steps =
        loop.run(intervals, governor::CapSchedule::unlimited());

    util::Table table("PPEP daemon trace (EDP-optimal policy, 200 ms "
                      "decisions):");
    table.setHeader({"t (s)", "VF", "power (W)", "temp (K)",
                     "MIPS total"});
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const auto &s = steps[i];
        double mips = 0.0;
        for (const auto &core : s.rec.pmc)
            mips += core[sim::eventIndex(sim::Event::RetiredInst)] /
                    s.rec.duration_s / 1e6;
        table.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      cfg.vf_table.name(s.cu_vf[0]),
                      util::Table::num(s.rec.sensor_power_w, 1),
                      util::Table::num(s.rec.diode_temp_k, 1),
                      util::Table::num(mips, 0)});
    }
    table.print(std::cout);

    std::printf("\nSettled VF state: %s (EDP-optimal for this mix, "
                "found in one prediction step)\n",
                cfg.vf_table.name(steps.back().cu_vf[0]).c_str());
    return 0;
}
