/**
 * @file
 * Power-capping demo (the paper's Sec. V-B use case).
 *
 * Runs a mixed workload (memory-bound + CPU-bound programs pinned one
 * per CU) under a square-wave power cap, side by side under the PPEP
 * one-step governor and the classic reactive governor, and prints the
 * control traces and responsiveness metrics.
 *
 * Both runs go through runtime::Session: the predictive side pulls its
 * models from the ModelStore cache and builds its governor from a
 * factory; the reactive side plugs in an external model-free policy.
 * SummarySinks collect the responsiveness metrics as the runs stream.
 *
 * Usage: power_capping_demo [--faults=SPEC] [high_cap_w] [low_cap_w]
 *
 * With --faults= (sim::FaultPlan::parse format) both runs face the same
 * misbehaving hardware through the hardened acquisition path, showing
 * how capping holds up when counters, sensors, and P-state writes
 * cannot be trusted.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/governor/governor.hpp"
#include "ppep/governor/iterative_capping.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    std::string fault_spec;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--faults=", 0) == 0)
            fault_spec = arg.substr(9);
        else
            args.push_back(arg);
    }
    const double high = !args.empty() ? std::stod(args[0]) : 110.0;
    const double low = args.size() > 1 ? std::stod(args[1]) : 50.0;

    // Per-CU voltage planes, as the paper assumes for capping.
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;

    const std::vector<std::string> mix = {"429.mcf", "458.sjeng",
                                          "416.gamess", "swaptions"};
    const governor::CapSchedule swing({{0, high},
                                       {40, low},
                                       {100, high},
                                       {160, low}});
    const std::size_t intervals = 220;

    std::printf("Acquiring PPEP models (trains on first run, cached "
                "after)...\n");
    runtime::ModelStore store;

    sim::FaultPlan plan;
    if (!fault_spec.empty()) {
        plan = sim::FaultPlan::parse(fault_spec);
        std::printf("Injecting hardware faults into both runs: %s\n",
                    plan.describe().c_str());
    }

    runtime::SummarySink summary_p;
    auto builder_p = runtime::Session::builder(cfg)
                         .seed(99)
                         .pg(true)
                         .onePerCu(mix)
                         .trainingSeed(42)
                         .store(store)
                         .governor(runtime::cappingGovernor())
                         .schedule(swing)
                         .sink(summary_p);
    if (!fault_spec.empty())
        builder_p.faults(plan);
    auto session_p = builder_p.build();
    const auto steps_p = session_p.run(intervals);

    governor::IterativeCappingGovernor reactive(cfg);
    runtime::SummarySink summary_i;
    auto builder_i = runtime::Session::builder(cfg)
                         .seed(99)
                         .pg(true)
                         .onePerCu(mix)
                         .governor(reactive)
                         .schedule(swing)
                         .sink(summary_i);
    if (!fault_spec.empty())
        builder_i.faults(plan);
    auto session_i = builder_i.build();
    const auto steps_i = session_i.run(intervals);

    util::Table trace("Control trace around the cap drop at t = 8.0 s "
                      "(interval 40):");
    trace.setHeader({"t (s)", "cap (W)", "PPEP (W)", "PPEP VF/CU",
                     "reactive (W)", "reactive VF/CU"});
    auto vf_string = [&](const std::vector<std::size_t> &vf) {
        std::string s;
        for (std::size_t v : vf)
            s += cfg.vf_table.name(v).substr(2) + " ";
        return s;
    };
    for (std::size_t i = 36; i < 60; ++i) {
        trace.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      util::Table::num(steps_p[i].cap_w, 0),
                      util::Table::num(steps_p[i].rec.sensor_power_w, 1),
                      vf_string(steps_p[i].cu_vf),
                      util::Table::num(steps_i[i].rec.sensor_power_w, 1),
                      vf_string(steps_i[i].cu_vf)});
    }
    trace.print(std::cout);

    const auto sp = summary_p.summary();
    const auto si = summary_i.summary();
    util::Table summary("\nResponsiveness:");
    summary.setHeader({"policy", "mean settle (s)", "cap adherence",
                       "power MAE (W)"});
    summary.addRow({"PPEP one-step",
                    util::Table::num(sp.mean_settle_intervals * 0.2, 2),
                    util::Table::pct(sp.cap_adherence),
                    util::Table::num(sp.power_mae_w, 2)});
    summary.addRow({"simple reactive",
                    util::Table::num(si.mean_settle_intervals * 0.2, 2),
                    util::Table::pct(si.cap_adherence), "-"});
    summary.print(std::cout);

    if (session_p.hardened()) {
        std::printf("\nhardened path: PPEP run absorbed %zu fault "
                    "events, %zu degraded intervals; reactive run "
                    "absorbed %zu, %zu degraded\n",
                    sp.fault_events, sp.degraded_intervals,
                    si.fault_events, si.degraded_intervals);
    }
    return 0;
}
