/**
 * @file
 * Power-capping demo (the paper's Sec. V-B use case).
 *
 * Runs a mixed workload (memory-bound + CPU-bound programs pinned one
 * per CU) under a square-wave power cap, side by side under the PPEP
 * one-step governor and the classic reactive governor, and prints the
 * control traces and responsiveness metrics.
 *
 * Usage: power_capping_demo [high_cap_w] [low_cap_w]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/governor/governor.hpp"
#include "ppep/governor/iterative_capping.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

ppep::sim::Chip
makeLoadedChip(const ppep::sim::ChipConfig &cfg)
{
    using ppep::workloads::Suite;
    ppep::sim::Chip chip(cfg, 99);
    chip.setPowerGatingEnabled(true);
    chip.setJob(0, Suite::byName("429.mcf").makeLoopingJob());
    chip.setJob(2, Suite::byName("458.sjeng").makeLoopingJob());
    chip.setJob(4, Suite::byName("416.gamess").makeLoopingJob());
    chip.setJob(6, Suite::byName("swaptions").makeLoopingJob());
    return chip;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ppep;
    const double high = argc > 1 ? std::stod(argv[1]) : 110.0;
    const double low = argc > 2 ? std::stod(argv[2]) : 50.0;

    // Per-CU voltage planes, as the paper assumes for capping.
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;

    std::printf("Training PPEP models (one-time offline step)...\n");
    model::Trainer trainer(cfg, 42);
    std::vector<const workloads::Combination *> training;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            training.push_back(&c);
    const auto models = trainer.trainAll(training);
    const model::Ppep ppep(cfg, models.chip, models.pg);

    const governor::CapSchedule swing({{0, high},
                                       {40, low},
                                       {100, high},
                                       {160, low}});
    const std::size_t intervals = 220;

    governor::PpepCappingGovernor one_step(cfg, ppep);
    auto chip_p = makeLoadedChip(cfg);
    governor::GovernorLoop loop_p(chip_p, one_step);
    const auto steps_p = loop_p.run(intervals, swing);

    governor::IterativeCappingGovernor reactive(cfg);
    auto chip_i = makeLoadedChip(cfg);
    governor::GovernorLoop loop_i(chip_i, reactive);
    const auto steps_i = loop_i.run(intervals, swing);

    util::Table trace("Control trace around the cap drop at t = 8.0 s "
                      "(interval 40):");
    trace.setHeader({"t (s)", "cap (W)", "PPEP (W)", "PPEP VF/CU",
                     "reactive (W)", "reactive VF/CU"});
    auto vf_string = [&](const std::vector<std::size_t> &vf) {
        std::string s;
        for (std::size_t v : vf)
            s += cfg.vf_table.name(v).substr(2) + " ";
        return s;
    };
    for (std::size_t i = 36; i < 60; ++i) {
        trace.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      util::Table::num(steps_p[i].cap_w, 0),
                      util::Table::num(steps_p[i].rec.sensor_power_w, 1),
                      vf_string(steps_p[i].cu_vf),
                      util::Table::num(steps_i[i].rec.sensor_power_w, 1),
                      vf_string(steps_i[i].cu_vf)});
    }
    trace.print(std::cout);

    util::Table summary("\nResponsiveness:");
    summary.setHeader({"policy", "mean settle (s)", "cap adherence"});
    summary.addRow({"PPEP one-step",
                    util::Table::num(
                        governor::meanSettleIntervals(steps_p) * 0.2, 2),
                    util::Table::pct(governor::capAdherence(steps_p))});
    summary.addRow({"simple reactive",
                    util::Table::num(
                        governor::meanSettleIntervals(steps_i) * 0.2, 2),
                    util::Table::pct(governor::capAdherence(steps_i))});
    summary.print(std::cout);
    return 0;
}
