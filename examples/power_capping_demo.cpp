/**
 * @file
 * Power-capping demo (the paper's Sec. V-B use case).
 *
 * Runs a mixed workload (memory-bound + CPU-bound programs pinned one
 * per CU) under a square-wave power cap, side by side under the PPEP
 * one-step governor and the classic reactive governor, and prints the
 * control traces and responsiveness metrics.
 *
 * Both runs go through runtime::Session: the predictive side pulls its
 * models from the ModelStore cache and builds its governor from a
 * factory; the reactive side plugs in an external model-free policy.
 * SummarySinks collect the responsiveness metrics as the runs stream.
 *
 * Usage: power_capping_demo [high_cap_w] [low_cap_w]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/governor/governor.hpp"
#include "ppep/governor/iterative_capping.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const double high = argc > 1 ? std::stod(argv[1]) : 110.0;
    const double low = argc > 2 ? std::stod(argv[2]) : 50.0;

    // Per-CU voltage planes, as the paper assumes for capping.
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;

    const std::vector<std::string> mix = {"429.mcf", "458.sjeng",
                                          "416.gamess", "swaptions"};
    const governor::CapSchedule swing({{0, high},
                                       {40, low},
                                       {100, high},
                                       {160, low}});
    const std::size_t intervals = 220;

    std::printf("Acquiring PPEP models (trains on first run, cached "
                "after)...\n");
    runtime::ModelStore store;

    runtime::SummarySink summary_p;
    auto session_p = runtime::Session::builder(cfg)
                         .seed(99)
                         .pg(true)
                         .onePerCu(mix)
                         .trainingSeed(42)
                         .store(store)
                         .governor(runtime::cappingGovernor())
                         .schedule(swing)
                         .sink(summary_p)
                         .build();
    const auto steps_p = session_p.run(intervals);

    governor::IterativeCappingGovernor reactive(cfg);
    runtime::SummarySink summary_i;
    auto session_i = runtime::Session::builder(cfg)
                         .seed(99)
                         .pg(true)
                         .onePerCu(mix)
                         .governor(reactive)
                         .schedule(swing)
                         .sink(summary_i)
                         .build();
    const auto steps_i = session_i.run(intervals);

    util::Table trace("Control trace around the cap drop at t = 8.0 s "
                      "(interval 40):");
    trace.setHeader({"t (s)", "cap (W)", "PPEP (W)", "PPEP VF/CU",
                     "reactive (W)", "reactive VF/CU"});
    auto vf_string = [&](const std::vector<std::size_t> &vf) {
        std::string s;
        for (std::size_t v : vf)
            s += cfg.vf_table.name(v).substr(2) + " ";
        return s;
    };
    for (std::size_t i = 36; i < 60; ++i) {
        trace.addRow({util::Table::num(0.2 * static_cast<double>(i), 1),
                      util::Table::num(steps_p[i].cap_w, 0),
                      util::Table::num(steps_p[i].rec.sensor_power_w, 1),
                      vf_string(steps_p[i].cu_vf),
                      util::Table::num(steps_i[i].rec.sensor_power_w, 1),
                      vf_string(steps_i[i].cu_vf)});
    }
    trace.print(std::cout);

    const auto sp = summary_p.summary();
    const auto si = summary_i.summary();
    util::Table summary("\nResponsiveness:");
    summary.setHeader({"policy", "mean settle (s)", "cap adherence",
                       "power MAE (W)"});
    summary.addRow({"PPEP one-step",
                    util::Table::num(sp.mean_settle_intervals * 0.2, 2),
                    util::Table::pct(sp.cap_adherence),
                    util::Table::num(sp.power_mae_w, 2)});
    summary.addRow({"simple reactive",
                    util::Table::num(si.mean_settle_intervals * 0.2, 2),
                    util::Table::pct(si.cap_adherence), "-"});
    summary.print(std::cout);
    return 0;
}
