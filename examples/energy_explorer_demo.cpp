/**
 * @file
 * Energy/EDP space exploration demo (the paper's Sec. V-C1 use case).
 *
 * Measures a benchmark once at the top VF state, then uses PPEP to
 * predict per-thread energy, runtime, EDP, and the core/NB energy split
 * at every VF state — and recommends the energy- and EDP-optimal
 * operating points, all without ever running at those states.
 *
 * Usage: energy_explorer_demo [benchmark] [instances]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/governor/energy_explorer.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const std::string program = argc > 1 ? argv[1] : "433.milc";
    const std::size_t copies =
        argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 2;
    if (!workloads::Suite::exists(program)) {
        std::fprintf(stderr, "unknown benchmark '%s'; try one of:\n",
                     program.c_str());
        for (const auto &p : workloads::Suite::all())
            std::fprintf(stderr, "  %s\n", p.name.c_str());
        return 1;
    }

    const auto cfg = sim::fx8320Config();
    std::vector<const workloads::Combination *> training;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            training.push_back(&c);
    runtime::ModelStore store;
    bool cached = false;
    const auto models = store.trainOrLoad(cfg, 42, training, &cached);
    std::printf(cached
                    ? "Loaded cached PPEP models.\n"
                    : "Trained PPEP models (one-time offline step, now "
                      "cached).\n");
    const model::Ppep ppep(cfg, models.chip, models.pg);

    const governor::EnergyExplorer explorer(cfg, ppep, 7);
    std::printf("Measuring %s x%zu at VF5, then predicting the rest of "
                "the space...\n",
                program.c_str(), copies);
    const auto points = explorer.explore(program, copies);

    util::Table table("\nPredicted per-thread operating space:");
    table.setHeader({"VF", "V", "GHz", "time (s)", "energy (J)",
                     "core (J)", "NB (J)", "EDP (J*s)"});
    std::size_t best_e = 0, best_edp = 0;
    for (const auto &p : points) {
        if (p.energy_j < points[best_e].energy_j)
            best_e = p.vf_index;
        if (p.edp < points[best_edp].edp)
            best_edp = p.vf_index;
    }
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
        const auto &vf = cfg.vf_table.state(it->vf_index);
        std::string name = cfg.vf_table.name(it->vf_index);
        if (it->vf_index == best_e)
            name += " *E";
        if (it->vf_index == best_edp)
            name += " *EDP";
        table.addRow({name, util::Table::num(vf.voltage, 3),
                      util::Table::num(vf.freq_ghz, 1),
                      util::Table::num(it->time_s, 2),
                      util::Table::num(it->energy_j, 1),
                      util::Table::num(it->core_energy_j, 1),
                      util::Table::num(it->nb_energy_j, 1),
                      util::Table::num(it->edp, 1)});
    }
    table.print(std::cout);

    std::printf("\nEnergy-optimal state: %s (%.1f J/thread)\n",
                cfg.vf_table.name(best_e).c_str(),
                points[best_e].energy_j);
    std::printf("EDP-optimal state:    %s (%.1f J*s/thread)\n",
                cfg.vf_table.name(best_edp).c_str(),
                points[best_edp].edp);
    std::printf("NB share of energy at VF5: %.0f%%\n",
                100.0 * points.back().nb_energy_j /
                    points.back().energy_j);
    return 0;
}
