/**
 * @file
 * Firmware boost control with PPEP (the paper's Sec. IV-E suggestion:
 * "If implemented in firmware, PPEP can also be used to control
 * hardware boost states").
 *
 * A lone CPU-bound thread runs under three policies:
 *   - no boost: pinned at VF5 (the paper's experimental setting);
 *   - greedy boost: always request max turbo, let the hardware's
 *     busy-CU/temperature heuristic sort it out;
 *   - PPEP boost: each interval, predict the power every boost state
 *     would draw and request the fastest one whose *predicted* chip
 *     power fits a TDP budget — boost as a single-step decision rather
 *     than an oscillating reaction.
 *
 * Usage: boost_study [tdp_w] [intervals]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/model/event_predictor.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/stats.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

struct RunResult
{
    double mips = 0.0;
    double avg_power = 0.0;
    double max_power = 0.0;
    std::size_t boosted_intervals = 0;
};

/** Run one policy for @p intervals and summarise. */
template <typename DecideFn>
RunResult
run(const sim::ChipConfig &cfg, DecideFn decide, std::size_t intervals)
{
    sim::Chip chip(cfg, 321);
    chip.setPowerGatingEnabled(true);
    chip.setJob(0, workloads::Suite::byName("458.sjeng")
                       .makeLoopingJob());
    chip.setTemperatureK(cfg.thermal.ambient_k + 20.0);
    trace::Collector col(chip);

    RunResult out;
    util::RunningStats power;
    double inst = 0.0;
    for (std::size_t i = 0; i < intervals; ++i) {
        const auto rec = col.collectInterval();
        power.add(rec.sensor_power_w);
        inst += rec.pmcTotal(sim::Event::RetiredInst);
        if (chip.grantedVf(0) >= cfg.vf_table.size())
            ++out.boosted_intervals;
        chip.setAllVf(decide(chip, rec));
    }
    out.mips = inst / (static_cast<double>(intervals) * 0.2) / 1e6;
    out.avg_power = power.mean();
    out.max_power = power.maxValue();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const double tdp = argc > 1 ? std::stod(argv[1]) : 42.0;
    const std::size_t intervals =
        argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 120;

    const auto cfg = sim::fx8320ConfigWithBoost();
    std::printf("Platform: %s (boost states: 3.8, 4.0 GHz)\n",
                cfg.name.c_str());
    std::printf("TDP budget for the PPEP policy: %.0f W\n\n", tdp);

    std::printf("Training PPEP models...\n");
    model::Trainer trainer(cfg, 42);
    std::vector<const workloads::Combination *> training;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            training.push_back(&c);
    const auto models = trainer.trainAll(training);

    // Policy 1: the paper's setting — boost disabled, pinned at VF5.
    const auto no_boost = run(
        cfg,
        [&](sim::Chip &, const trace::IntervalRecord &) {
            return cfg.vf_table.top();
        },
        intervals);

    // Policy 2: greedy — always ask for max turbo.
    const auto greedy = run(
        cfg,
        [&](sim::Chip &chip, const trace::IntervalRecord &) {
            return chip.stateCount() - 1;
        },
        intervals);

    // Policy 3: PPEP firmware — predict each boost state's power from
    // this interval's counters; request the fastest state that fits.
    const auto &pg = models.pg;
    const double v_top = cfg.vf_table.maxVoltage();
    const auto ppep_boost = run(
        cfg,
        [&](sim::Chip &chip, const trace::IntervalRecord &rec) {
            const double f_now =
                chip.stateOf(chip.grantedVf(0)).freq_ghz;
            std::size_t best = cfg.vf_table.top();
            for (std::size_t s = chip.stateCount(); s-- > 0;) {
                const auto &state = chip.stateOf(s);
                double dyn = 0.0;
                for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
                    const auto pred = model::EventPredictor::predict(
                        rec.pmc[c], rec.duration_s, f_now,
                        state.freq_ghz);
                    std::array<double, sim::kNumPowerEvents> rates{};
                    for (std::size_t i = 0;
                         i < sim::kNumPowerEvents; ++i)
                        rates[i] = pred.rates_per_s[i];
                    dyn += models.dynamic.estimate(rates,
                                                   state.voltage);
                }
                // PG-aware idle: one busy CU + NB + base; the busy
                // CU's idle power scales ~V^2 into the boost range,
                // which lies just beyond the Fig. 4 training points.
                const double vscale =
                    (state.voltage / v_top) * (state.voltage / v_top);
                const double idle =
                    pg.components(cfg.vf_table.top()).p_cu * vscale *
                        state.freq_ghz / 3.5 +
                    pg.pNbAvg() + pg.pBaseAvg();
                if (idle + dyn <= tdp) {
                    best = s;
                    break; // states scanned fastest-first
                }
            }
            return best;
        },
        intervals);

    util::Table table("Results (458.sjeng x1, " +
                      std::to_string(intervals) + " intervals):");
    table.setHeader({"policy", "MIPS", "avg power (W)", "max power (W)",
                     "boosted intervals"});
    auto row = [&](const char *name, const RunResult &r) {
        table.addRow({name, util::Table::num(r.mips, 0),
                      util::Table::num(r.avg_power, 1),
                      util::Table::num(r.max_power, 1),
                      std::to_string(r.boosted_intervals)});
    };
    row("no boost (paper setting)", no_boost);
    row("greedy hardware boost", greedy);
    row("PPEP firmware boost", ppep_boost);
    table.print(std::cout);

    std::printf("\nPPEP boost gained %.1f%% throughput over no-boost "
                "while predicting its power budget in a single step.\n",
                100.0 * (ppep_boost.mips / no_boost.mips - 1.0));
    return 0;
}
