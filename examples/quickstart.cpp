/**
 * @file
 * Quickstart: train PPEP on the simulated AMD FX-8320 and predict
 * performance/power/energy across all five VF states for a running
 * workload — the end-to-end Fig. 5 flow in ~80 lines of user code.
 *
 * Usage: quickstart [benchmark-name]   (default: 433.milc)
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/model/ppep.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    const std::string program = argc > 1 ? argv[1] : "433.milc";
    if (!ppep::workloads::Suite::exists(program)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", program.c_str());
        return 1;
    }

    const ppep::sim::ChipConfig cfg = ppep::sim::fx8320Config();
    std::printf("Platform: %s\n", cfg.name.c_str());

    // 1. One-time offline training (idle model, alpha, PG sweep, Eq. 3
    //    regression on a handful of training combinations). The
    //    ModelStore caches the result on disk, so only the very first
    //    quickstart run pays for it.
    std::vector<const ppep::workloads::Combination *> training;
    for (const auto &c : ppep::workloads::allCombinations()) {
        // A small, diverse training set keeps the quickstart fast.
        if (c.instances.size() == 1 && training.size() < 12)
            training.push_back(&c);
    }
    ppep::runtime::ModelStore store;
    bool cached = false;
    const ppep::model::TrainedModels models =
        store.trainOrLoad(cfg, /*seed=*/42, training, &cached);
    std::printf(cached ? "Loaded cached PPEP models.\n"
                       : "Trained PPEP models (now cached).\n");
    std::printf("  alpha = %.2f\n", models.alpha);

    // 2. Run the chosen workload at the top VF state and grab one
    //    200 ms interval of counters.
    // PG stays disabled here: the Eq. 2 idle model describes the
    // active-idle chip (the paper's Sec. IV-A..C setup). The PG-aware
    // path is shown below via predictAssignment().
    ppep::sim::Chip chip(cfg, /*seed=*/7);
    chip.setAllVf(cfg.vf_table.top());
    const auto combo = ppep::workloads::replicate(program, 1);
    ppep::workloads::launch(chip, combo, /*looping=*/true);
    ppep::trace::Collector collector(chip);
    collector.collect(5); // warm up
    const auto rec = collector.collectInterval();

    // 3. The Fig. 5 pipeline: PPE at every VF state from that interval.
    const ppep::model::Ppep ppep(cfg, models.chip, models.pg);
    const auto predictions = ppep.explore(rec);

    ppep::util::Table table("\nPPEP predictions for " + program +
                            " (measured at VF5):");
    table.setHeader({"VF", "V", "GHz", "pred power (W)", "pred IPS",
                     "energy/inst (nJ)", "rel. EDP"});
    const double edp_ref = predictions.back().edp_per_inst;
    for (const auto &p : predictions) {
        const auto &vf = cfg.vf_table.state(p.vf_index);
        table.addRow({cfg.vf_table.name(p.vf_index),
                      ppep::util::Table::num(vf.voltage, 3),
                      ppep::util::Table::num(vf.freq_ghz, 1),
                      ppep::util::Table::num(p.chip_power_w, 1),
                      ppep::util::Table::num(p.total_ips / 1e9, 2) + "e9",
                      ppep::util::Table::num(p.energy_per_inst * 1e9, 2),
                      ppep::util::Table::num(
                          edp_ref > 0.0 ? p.edp_per_inst / edp_ref : 0.0,
                          2)});
    }
    table.print(std::cout);

    // 4. Sanity: compare the estimate at the current state against the
    //    sensor (the only power truth software can see).
    const auto est = models.chip.estimate(rec);
    std::printf("\nSensor power this interval: %.1f W\n",
                rec.sensor_power_w);
    std::printf("PPEP estimate:              %.1f W  (%.1f%% error)\n",
                est.total_w,
                100.0 * std::abs(est.total_w - rec.sensor_power_w) /
                    rec.sensor_power_w);

    // 5. The PG-aware view: what the same workload would draw if power
    //    gating were enabled and each CU had its own voltage plane.
    const std::vector<std::size_t> assign(cfg.n_cus, cfg.vf_table.top());
    const auto pg_pred = ppep.predictAssignment(rec, assign,
                                                /*pg_enabled=*/true);
    std::printf("Predicted with PG enabled:  %.1f W "
                "(idle CUs power-gated)\n",
                pg_pred.chip_power_w);
    return 0;
}
