/**
 * @file
 * NB-DVFS what-if study (the paper's Sec. V-C2 use case).
 *
 * Evaluates how much energy a hypothetical low NB operating point
 * (0.940 V, 1.1 GHz: NB idle -40%, NB dynamic -36%, leading-load cycles
 * +50%) would unlock for a benchmark, and how much faster the cores
 * could run at similar energy — the paper's argument for scalable
 * north bridges.
 *
 * Usage: nb_whatif [benchmark] [instances]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ppep/governor/energy_explorer.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const std::string program = argc > 1 ? argv[1] : "458.sjeng";
    const std::size_t copies =
        argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2])) : 1;
    if (!workloads::Suite::exists(program)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", program.c_str());
        return 1;
    }

    const auto cfg = sim::fx8320Config();
    std::printf("Training PPEP models (one-time offline step)...\n");
    model::Trainer trainer(cfg, 42);
    std::vector<const workloads::Combination *> training;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            training.push_back(&c);
    const auto models = trainer.trainAll(training);
    const model::Ppep ppep(cfg, models.chip, models.pg);

    const governor::EnergyExplorer explorer(cfg, ppep, 7);
    const auto &f = explorer.factors();
    std::printf("Assumed NB VF_lo (0.940 V, 1.1 GHz): idle x%.2f, "
                "dynamic x%.2f, leading-load cycles x%.2f\n\n",
                f.idle_scale, f.dynamic_scale, f.mcpi_scale);

    const auto points = explorer.explore(program, copies,
                                         /*include_nb_low=*/true);

    util::Table table("Predicted per-thread space, " + program + " x" +
                      std::to_string(copies) + ":");
    table.setHeader({"core VF", "NB state", "time (s)", "energy (J)",
                     "EDP (J*s)"});
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
        table.addRow({cfg.vf_table.name(it->vf_index),
                      it->nb_low ? "VF_lo" : "VF_hi",
                      util::Table::num(it->time_s, 2),
                      util::Table::num(it->energy_j, 1),
                      util::Table::num(it->edp, 1)});
    }
    table.print(std::cout);

    const auto summary = governor::EnergyExplorer::summarize(points);
    std::printf("\nExtra energy saving from NB scaling: %.1f%%\n",
                summary.energy_saving * 100.0);
    std::printf("Speedup at similar energy (vs core-VF1 + NB-hi): "
                "%.2fx\n",
                summary.speedup);
    return 0;
}
