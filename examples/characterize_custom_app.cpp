/**
 * @file
 * Characterising a custom application: author a workload with the
 * ProfileBuilder, attribute per-core power with Eq. 7 while it runs
 * next to background threads, and persist the trained models for
 * redeployment — the downstream-user workflow end to end.
 *
 * Usage: characterize_custom_app [models-file]
 *        (reuses the models file if it exists; trains and writes it
 *        otherwise)
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "ppep/model/per_core_power.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/serialization.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/builder.hpp"
#include "ppep/workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace ppep;
    const std::string models_path =
        argc > 1 ? argv[1] : "ppep_fx8320_models.txt";
    const auto cfg = sim::fx8320Config();

    // 1. Models: load if previously trained, else train and persist.
    model::TrainedModels models;
    if (std::ifstream(models_path).good()) {
        std::printf("loading models from %s\n", models_path.c_str());
        models = model::loadModels(models_path, cfg);
    } else {
        std::printf("training models (one-time)...\n");
        model::Trainer trainer(cfg, 42);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1)
                training.push_back(&c);
        models = trainer.trainAll(training);
        model::saveModels(models, models_path);
        std::printf("models written to %s\n", models_path.c_str());
    }

    // 2. Author "my-service": a request-processing loop alternating a
    //    parse-heavy phase with a memory-walking lookup phase.
    workloads::ProfileBuilder builder("my-service");
    builder.branchRate(0.22)
        .mispredictRate(0.06)
        .memoryIntensity(0.15)
        .resourceStallCpi(0.35)
        .addPhase(8e8) // parse
        .memoryIntensity(0.75)
        .dramShare(0.7)
        .branchRate(0.12)
        .addPhase(5e8); // lookup

    // 3. Run it beside two background threads (a co-located batch job).
    sim::Chip chip(cfg, 7);
    chip.setPowerGatingEnabled(true);
    chip.setJob(0, builder.makeLoopingJob());
    chip.setJob(2, workloads::Suite::byName("x264").makeLoopingJob());
    chip.setJob(4,
                workloads::Suite::byName("456.hmmer").makeLoopingJob());

    trace::Collector collector(chip);
    collector.collect(3);
    const auto rec = collector.collectInterval();

    // 4. Per-core attribution (Eq. 7) of the measured interval.
    const model::PerCorePower attribution(cfg, models.dynamic,
                                          models.pg);
    const auto shares = attribution.attribute(rec, true);

    util::Table table("Per-core power attribution (one 200 ms "
                      "interval, PG enabled):");
    table.setHeader({"core", "job", "dynamic (W)", "idle share (W)",
                     "total (W)"});
    const char *jobs[] = {"my-service", "-", "x264", "-",
                          "456.hmmer", "-", "-", "-"};
    for (std::size_t c = 0; c < shares.size(); ++c) {
        if (!shares[c].busy)
            continue;
        table.addRow({"core " + std::to_string(c), jobs[c],
                      util::Table::num(shares[c].dynamic_w, 2),
                      util::Table::num(shares[c].idle_share_w, 2),
                      util::Table::num(shares[c].total_w, 2)});
    }
    table.print(std::cout);
    std::printf("attributed total: %.1f W   sensor: %.1f W\n",
                model::PerCorePower::total(shares),
                rec.sensor_power_w);

    // 5. What would my-service cost per request batch at each VF state?
    const model::Ppep ppep(cfg, models.chip, models.pg);
    const auto preds = ppep.explore(rec);
    std::printf("\nchip-wide energy/instruction by VF state:");
    for (const auto &p : preds)
        std::printf(" %s=%.1fnJ", cfg.vf_table.name(p.vf_index).c_str(),
                    p.energy_per_inst * 1e9);
    std::printf("\n");
    return 0;
}
