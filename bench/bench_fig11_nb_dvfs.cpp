/**
 * @file
 * Fig. 11: the NB-DVFS what-if. A hypothetical low NB state (0.940 V,
 * 1.1 GHz — 20% voltage and 50% frequency drop) is assumed to cut NB
 * idle power 40% and NB dynamic power 36% while stretching leading-load
 * cycles 50%; PPEP re-evaluates the energy/performance space for
 * 433.milc and 458.sjeng at x1..x4.
 *
 * Paper: extra energy savings of 26/23/21/20% (milc x1..x4) and
 * 25/19/16/14% (sjeng), average 20.4%; speedups at similar energy of
 * 1.54/1.30/1.27/1.25x (milc) and 1.99/1.19/1.19/1.20x (sjeng),
 * average 1.37x.
 */

#include "bench_common.hpp"
#include "ppep/governor/energy_explorer.hpp"
#include "ppep/util/stats.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 11: energy savings and speedup from a scalable NB",
        "paper Fig. 11 (savings avg 20.4%, speedup avg 1.37x)");

    const auto cfg = sim::fx8320Config();
    const auto models = bench::trainModels(cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);
    const governor::EnergyExplorer explorer(cfg, ppep, bench::kSeed);

    const auto &f = explorer.factors();
    std::printf("\nassumed NB VF_lo factors (Sec. V-C2): idle x%.2f, "
                "dynamic x%.2f, leading-load cycles x%.2f\n",
                f.idle_scale, f.dynamic_scale, f.mcpi_scale);

    const char *paper_saving[2][4] = {{"26%", "23%", "21%", "20%"},
                                      {"25%", "19%", "16%", "14%"}};
    const char *paper_speedup[2][4] = {
        {"1.54x", "1.30x", "1.27x", "1.25x"},
        {"1.99x", "1.19x", "1.19x", "1.20x"}};

    util::Table fig("\nPer-mode what-if results:");
    fig.setHeader({"mode", "energy saving", "paper", "speedup",
                   "paper"});
    util::RunningStats savings, speedups;
    const char *progs[] = {"433.milc", "458.sjeng"};
    for (int pi = 0; pi < 2; ++pi) {
        for (std::size_t copies = 1; copies <= 4; ++copies) {
            const auto pts =
                explorer.explore(progs[pi], copies, true);
            const auto s = governor::EnergyExplorer::summarize(pts);
            savings.add(s.energy_saving);
            speedups.add(s.speedup);
            fig.addRow({std::string(progs[pi]).substr(0, 3) + " x" +
                            std::to_string(copies),
                        util::Table::pct(s.energy_saving),
                        paper_saving[pi][copies - 1],
                        util::Table::num(s.speedup, 2) + "x",
                        paper_speedup[pi][copies - 1]});
        }
    }
    fig.print(std::cout);

    std::printf("\nAverage extra energy saving: %.1f%% (paper: "
                "20.4%%)\n",
                savings.mean() * 100.0);
    std::printf("Average speedup at similar energy: %.2fx (paper: "
                "1.37x)\n",
                speedups.mean());
    std::printf("NB scaling helps every mode: %s\n",
                savings.minValue() > 0.0 && speedups.minValue() >= 1.0
                    ? "reproduced"
                    : "NOT reproduced");
    return 0;
}
