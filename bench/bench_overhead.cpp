/**
 * @file
 * Sec. IV-E: PPEP runtime overhead. The paper reports "negligible
 * overhead at our 200 ms sampling rate" for the user-level daemon; this
 * google-benchmark binary measures what one full decision actually
 * costs: reading an interval's counters into predictions at every VF
 * state, plus the cost of each model component in isolation.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ppep/governor/energy_governor.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/runtime/sampler.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/collector.hpp"

namespace {

using namespace ppep;

/** Trained models + a representative interval, built once. */
struct Context
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;
    model::Ppep ppep;
    trace::IntervalRecord rec;

    Context()
        : models([this] {
              model::Trainer trainer(cfg, bench::kSeed);
              // A compact training set keeps benchmark startup quick.
              auto combos = bench::singleProgramCombos();
              combos.resize(12);
              return trainer.trainAll(combos);
          }()),
          ppep(cfg, models.chip, models.pg)
    {
        sim::Chip chip(cfg, bench::kSeed);
        workloads::launch(chip, workloads::replicate("433.milc", 4),
                          true);
        trace::Collector col(chip);
        col.collect(3);
        rec = col.collectInterval();
    }

    static const Context &
    get()
    {
        static const Context ctx;
        return ctx;
    }
};

void
BM_FullExploration(benchmark::State &state)
{
    const auto &ctx = Context::get();
    for (auto _ : state) {
        auto preds = ctx.ppep.explore(ctx.rec);
        benchmark::DoNotOptimize(preds);
    }
}
BENCHMARK(BM_FullExploration);

void
BM_FullExplorationReused(benchmark::State &state)
{
    // The governor's steady-state path: exploreInto() with a reused
    // buffer performs no heap allocation after the first interval.
    const auto &ctx = Context::get();
    std::vector<model::VfPrediction> preds;
    for (auto _ : state) {
        ctx.ppep.exploreInto(ctx.rec, preds);
        benchmark::DoNotOptimize(preds);
    }
}
BENCHMARK(BM_FullExplorationReused);

void
BM_FullExplorationScratch(benchmark::State &state)
{
    // The zero-allocation overload the governors use: the observation
    // buffer lives in the caller's scratch, so steady state touches no
    // heap at all.
    const auto &ctx = Context::get();
    std::vector<model::VfPrediction> preds;
    model::ExploreScratch scratch;
    for (auto _ : state) {
        ctx.ppep.exploreInto(ctx.rec, preds, scratch);
        benchmark::DoNotOptimize(preds);
    }
}
BENCHMARK(BM_FullExplorationScratch);

void
BM_SingleVfPrediction(benchmark::State &state)
{
    const auto &ctx = Context::get();
    for (auto _ : state) {
        auto pred = ctx.ppep.predictVf(ctx.rec, 0);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_SingleVfPrediction);

void
BM_EventPrediction(benchmark::State &state)
{
    const auto &ctx = Context::get();
    for (auto _ : state) {
        auto pred = model::EventPredictor::predict(
            ctx.rec.pmc[0], ctx.rec.duration_s, 3.5, 1.4);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_EventPrediction);

void
BM_IdleModelEvaluation(benchmark::State &state)
{
    const auto &ctx = Context::get();
    for (auto _ : state) {
        double p = ctx.models.idle.predict(1.128, 325.0);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_IdleModelEvaluation);

void
BM_DynamicModelEvaluation(benchmark::State &state)
{
    const auto &ctx = Context::get();
    const auto rates =
        model::powerEventRates(ctx.rec.pmc, ctx.rec.duration_s);
    for (auto _ : state) {
        double p = ctx.models.dynamic.estimate(rates, 1.128);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_DynamicModelEvaluation);

// --- acquisition-path overhead ------------------------------------------
//
// The fault-injection layer is strictly opt-in; the three benchmarks
// below quantify what "opt-in" costs. CollectorInterval is the seed
// baseline; SamplerIntervalClean runs the hardened path on a faultless
// chip (the price of the guards themselves); SamplerIntervalFaulty adds
// an active fault plan. The first two should be within noise of each
// other — the hardened path's per-interval work is a handful of
// comparisons per tick on top of the simulation.

void
BM_CollectorInterval(benchmark::State &state)
{
    const auto &ctx = Context::get();
    sim::Chip chip(ctx.cfg, bench::kSeed);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    trace::Collector col(chip);
    for (auto _ : state) {
        auto rec = col.collectInterval();
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_CollectorInterval);

void
BM_SamplerIntervalClean(benchmark::State &state)
{
    const auto &ctx = Context::get();
    sim::Chip chip(ctx.cfg, bench::kSeed);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    runtime::Sampler sampler(chip);
    for (auto _ : state) {
        auto rec = sampler.collectInterval();
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_SamplerIntervalClean);

void
BM_SamplerIntervalFaulty(benchmark::State &state)
{
    const auto &ctx = Context::get();
    sim::Chip chip(ctx.cfg, bench::kSeed);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    chip.setFaultPlan(sim::FaultPlan::parse(
                          "msr=0.05,wrap=30,saturate=0.001,mux=0.02,"
                          "diode_spike=0.01,sensor_drop=0.01,"
                          "vf_reject=0.05,jitter=0.2"),
                      bench::kSeed);
    runtime::Sampler sampler(chip);
    for (auto _ : state) {
        auto rec = sampler.collectInterval();
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_SamplerIntervalFaulty);

void
BM_CappingDecision(benchmark::State &state)
{
    const auto &ctx = Context::get();
    auto cfg = ctx.cfg;
    cfg.per_cu_voltage = true;
    governor::PpepCappingGovernor gov(cfg, ctx.ppep);
    for (auto _ : state) {
        auto vf = gov.decide(ctx.rec, 60.0);
        benchmark::DoNotOptimize(vf);
    }
}
BENCHMARK(BM_CappingDecision);

void
BM_CappingDecisionScratch(benchmark::State &state)
{
    // decideInto() with a reused output vector — the GovernorLoop
    // steady-state path.
    const auto &ctx = Context::get();
    auto cfg = ctx.cfg;
    cfg.per_cu_voltage = true;
    governor::PpepCappingGovernor gov(cfg, ctx.ppep);
    std::vector<std::size_t> vf;
    for (auto _ : state) {
        gov.decideInto(ctx.rec, 60.0, vf);
        benchmark::DoNotOptimize(vf);
    }
}
BENCHMARK(BM_CappingDecisionScratch);

void
BM_GovernorLoopInterval(benchmark::State &state)
{
    // One full governed interval on the allocation-free drive() path:
    // simulate + collect + explore + decide + apply, reusing every
    // buffer after warm-up.
    const auto &ctx = Context::get();
    sim::Chip chip(ctx.cfg, bench::kSeed);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    governor::EnergyOptimalGovernor gov(ctx.cfg, ctx.ppep,
                                        governor::EnergyObjective::Edp);
    governor::GovernorLoop loop(chip, gov);
    const auto schedule = governor::CapSchedule::unlimited();
    loop.drive(3, schedule); // warm the scratch buffers
    for (auto _ : state)
        benchmark::DoNotOptimize(loop.drive(1, schedule));
}
BENCHMARK(BM_GovernorLoopInterval);

/**
 * Console output as usual, plus every result mirrored into
 * BENCH_overhead.json through the shared BenchJson schema.
 */
class JsonMirrorReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonMirrorReporter(bench::BenchJson &json) : json_(json) {}

    void ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &r : runs)
            json_.add(r.benchmark_name(), "real_time",
                      r.GetAdjustedRealTime(),
                      benchmark::GetTimeUnitString(r.time_unit));
    }

  private:
    bench::BenchJson &json_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ppep::bench::BenchJson json("overhead", "BENCH_overhead.json");
    JsonMirrorReporter reporter(json);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    json.write();
    benchmark::Shutdown();
    return 0;
}
