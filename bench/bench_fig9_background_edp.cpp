/**
 * @file
 * Fig. 9: per-thread EDP of 433.milc (a) and 458.sjeng (b) at every VF
 * state with 1..4 concurrent instances.
 *
 * Paper observations: memory-bound programs have their best EDP running
 * alone (no NB contention); CPU-bound programs improve with more
 * instances (shared statics); and the EDP-optimal VF state shifts from
 * VF5 toward VF4 as background threads are added.
 */

#include "bench_common.hpp"
#include "ppep/governor/energy_explorer.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 9: per-thread EDP vs VF state with 1..4 background "
        "instances",
        "paper Fig. 9 (433.milc memory-bound, 458.sjeng CPU-bound)");

    const auto cfg = sim::fx8320Config();
    const auto models = bench::trainModels(cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);
    const governor::EnergyExplorer explorer(cfg, ppep, bench::kSeed);

    double milc_x1_best = 0.0, milc_x4_best = 0.0;
    double sjeng_x1_best = 0.0, sjeng_x4_best = 0.0;
    std::size_t best_vf_x1 = 0, best_vf_x4 = 0;

    for (const char *prog : {"433.milc", "458.sjeng"}) {
        util::Table fig("\nPer-thread EDP, " + std::string(prog) +
                        " (normalised to x1 @ VF5):");
        fig.setHeader({"instances", "VF5", "VF4", "VF3", "VF2", "VF1",
                       "best"});
        double norm = 0.0;
        for (std::size_t copies = 1; copies <= 4; ++copies) {
            const auto pts = explorer.explore(prog, copies);
            if (copies == 1)
                norm = pts[cfg.vf_table.top()].edp;
            std::vector<std::string> row{
                std::string(prog).substr(0, 3) + " x" +
                std::to_string(copies)};
            std::size_t best = 0;
            for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
                row.push_back(util::Table::num(pts[vf].edp / norm, 3));
                if (pts[vf].edp < pts[best].edp)
                    best = vf;
            }
            row.push_back(cfg.vf_table.name(best));
            fig.addRow(row);

            const double best_edp = pts[best].edp;
            if (std::string(prog) == "433.milc") {
                if (copies == 1)
                    milc_x1_best = best_edp;
                if (copies == 4)
                    milc_x4_best = best_edp;
            } else {
                if (copies == 1) {
                    sjeng_x1_best = best_edp;
                    best_vf_x1 = best;
                }
                if (copies == 4) {
                    sjeng_x4_best = best_edp;
                    best_vf_x4 = best;
                }
            }
        }
        fig.print(std::cout);
    }

    std::printf("\nMemory-bound best EDP alone (x1 %.2f vs x4 %.2f "
                "J*s): %s\n",
                milc_x1_best, milc_x4_best,
                milc_x1_best < milc_x4_best ? "reproduced"
                                            : "NOT reproduced");
    std::printf("CPU-bound best EDP with more instances (x4 %.2f vs x1 "
                "%.2f J*s): %s\n",
                sjeng_x4_best, sjeng_x1_best,
                sjeng_x4_best < sjeng_x1_best ? "reproduced"
                                              : "NOT reproduced");
    if (best_vf_x4 < best_vf_x1) {
        std::printf("Best-EDP VF state shifts down with more threads "
                    "(x1 best %s, x4 best %s): reproduced\n",
                    cfg.vf_table.name(best_vf_x1).c_str(),
                    cfg.vf_table.name(best_vf_x4).c_str());
    } else if (best_vf_x4 == best_vf_x1) {
        std::printf("Best-EDP VF state shift (paper: VF5 -> VF4 with "
                    "more threads): not observed here (both %s; our "
                    "CPU-bound EDP curve is flatter near the top "
                    "state) — partially reproduced\n",
                    cfg.vf_table.name(best_vf_x1).c_str());
    } else {
        std::printf("Best-EDP VF state shift: NOT reproduced (moved "
                    "up)\n");
    }
    return 0;
}
