/**
 * @file
 * Secondary platform validation: the AMD Phenom II X6 1090T (6 cores,
 * 4 VF states, no power gating), using PARSEC and NPB as the paper
 * does.
 *
 * Paper (Sec. IV): full-chip model AAE of 3.6/3.1/2.6% at VF4/VF3/VF2
 * (dynamic 8.2/7.3/7.1%); cross-VF prediction between VF4..VF2 averages
 * 3.1% for the chip model (5.6% dynamic).
 */

#include "bench_common.hpp"
#include "ppep/model/validation.hpp"
#include "ppep/util/stats.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Secondary platform: AMD Phenom II X6 1090T (PARSEC + NPB)",
        "Sec. IV text: chip AAE 2.6-3.6% per VF; cross-VF chip avg "
        "3.1%, dynamic avg 5.6%");

    const auto cfg = sim::phenomIIConfig();

    // PARSEC + NPB combinations that fit the 6-core part.
    std::vector<const workloads::Combination *> combos;
    for (const auto &c : workloads::allCombinations()) {
        if (c.suite == workloads::SuiteId::Spec)
            continue;
        if (c.instances.size() <= cfg.coreCount())
            combos.push_back(&c);
    }
    std::printf("validating on %zu PARSEC/NPB combinations\n",
                combos.size());

    model::Validator validator(cfg, combos, bench::kSeed, 4);
    validator.prepare();

    // Per-VF estimation accuracy (paper reports VF4..VF2).
    const auto est = validator.validateEstimation();
    util::Table table("\nEstimation AAE per VF state:");
    table.setHeader({"VF", "dynamic AAE", "chip AAE",
                     "paper (dyn / chip)"});
    const char *paper[] = {"- / -", "7.1% / 2.6%", "7.3% / 3.1%",
                           "8.2% / 3.6%"};
    for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
        std::vector<model::ComboError> at_vf;
        for (const auto &e : est)
            if (e.vf_index == vf)
                at_vf.push_back(e);
        const auto dyn = model::aggregate(
            at_vf, [](const model::ComboError &e) {
                return e.aae_dynamic;
            });
        const auto chip = model::aggregate(
            at_vf,
            [](const model::ComboError &e) { return e.aae_chip; });
        table.addRow({cfg.vf_table.name(vf),
                      util::Table::pct(dyn.mean),
                      util::Table::pct(chip.mean), paper[vf]});
    }
    table.print(std::cout);

    // Cross-VF prediction between the middle states (paper: VF4..VF2).
    const auto cross = validator.validateCrossVf();
    util::RunningStats dyn_err, chip_err;
    for (const auto &e : cross) {
        if (e.vf_from == 0 || e.vf_to == 0)
            continue; // the paper excludes VF1 on this platform
        dyn_err.add(e.err_dynamic);
        chip_err.add(e.err_chip);
    }
    std::printf("\nCross-VF prediction (VF4..VF2 pairs): dynamic "
                "%.1f%% (paper 5.6%%), chip %.1f%% (paper 3.1%%)\n",
                dyn_err.mean() * 100.0, chip_err.mean() * 100.0);

    // Generality claim: errors comparable to (or better than) FX-8320.
    std::printf("chip-model error within the paper's few-percent "
                "band: %s\n",
                chip_err.mean() < 0.08 ? "reproduced" : "NOT reproduced");
    return 0;
}
