/**
 * @file
 * Fig. 1: chip power and temperature during the heat-then-cool protocol
 * at VF5, plus the Sec. IV-A idle-model accuracy numbers.
 *
 * Paper: exponential heat-up/cool-down; idle model AAE per VF state of
 * 2%/3%/4%/3%/3% (VF5 down to VF1) on the FX-8320 and 2-3% on the
 * Phenom II.
 */

#include "bench_common.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/csv.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

/** Per-VF idle model AAE against fresh cooling traces. */
std::vector<double>
idleAae(const sim::ChipConfig &cfg, const model::IdlePowerModel &m,
        std::uint64_t seed)
{
    model::Trainer validate(cfg, seed);
    std::vector<double> out;
    for (std::size_t vf = 0; vf < cfg.vf_table.size(); ++vf) {
        const auto trace = validate.collectCoolingTrace(vf, 250, 400);
        util::RunningStats err;
        for (const auto &s : trace.idle_samples)
            err.add(util::absRelErr(m.predict(s.voltage, s.temp_k),
                                    s.power_w));
        out.push_back(err.mean());
    }
    return out;
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 1: idle power & temperature during heat/cool at VF5 + "
        "idle model accuracy",
        "paper Fig. 1 and Sec. IV-A (FX-8320 AAE 2-4% per VF; "
        "Phenom II 2-3%)");

    const auto cfg = sim::fx8320Config();
    model::Trainer trainer(cfg, bench::kSeed);

    // The Fig. 1 trace itself (heat 500 intervals, cool 700).
    const auto trace = trainer.collectCoolingTrace(cfg.vf_table.top());
    util::CsvWriter csv("fig1_idle_cooling.csv");
    csv.writeRow(std::vector<std::string>{"step", "power_w", "temp_k",
                                          "phase"});
    double peak_power = 0.0;
    for (std::size_t i = 0; i < trace.power_curve_w.size(); ++i) {
        peak_power = std::max(peak_power, trace.power_curve_w[i]);
        csv.writeRow(std::vector<double>{
            static_cast<double>(i), trace.power_curve_w[i],
            trace.temp_curve_k[i],
            i < trace.cool_start ? 1.0 : 0.0});
    }

    util::Table curve(
        "\nSampled points of the heat/cool trace (full series in "
        "fig1_idle_cooling.csv; power normalised to the heated peak):");
    curve.setHeader({"step (200ms)", "phase", "norm. power", "temp (K)"});
    for (std::size_t i = 0; i < trace.power_curve_w.size();
         i += trace.power_curve_w.size() / 24) {
        curve.addRow({std::to_string(i),
                      i < trace.cool_start ? "heating" : "cooling",
                      util::Table::num(trace.power_curve_w[i] /
                                       peak_power, 3),
                      util::Table::num(trace.temp_curve_k[i], 1)});
    }
    curve.print(std::cout);

    // Idle model accuracy per VF on both platforms.
    const auto idle_fx = trainer.trainIdle();
    const auto aae_fx = idleAae(cfg, idle_fx, bench::kSeed + 1);

    const auto cfg_ph = sim::phenomIIConfig();
    model::Trainer trainer_ph(cfg_ph, bench::kSeed);
    const auto idle_ph = trainer_ph.trainIdle();
    const auto aae_ph = idleAae(cfg_ph, idle_ph, bench::kSeed + 1);

    util::Table acc("\nIdle power model AAE per VF state:");
    acc.setHeader({"platform", "VF state", "AAE", "paper"});
    const char *paper_fx[] = {"3%", "3%", "4%", "3%", "2%"}; // VF1..VF5
    for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
        acc.addRow({"FX-8320", cfg.vf_table.name(vf),
                    util::Table::pct(aae_fx[vf]), paper_fx[vf]});
    }
    const char *paper_ph[] = {"2%", "2%", "2%", "3%"}; // VF1..VF4
    for (std::size_t vf = cfg_ph.vf_table.size(); vf-- > 0;) {
        acc.addRow({"Phenom II X6", cfg_ph.vf_table.name(vf),
                    util::Table::pct(aae_ph[vf]), paper_ph[vf]});
    }
    acc.print(std::cout);
    return 0;
}
