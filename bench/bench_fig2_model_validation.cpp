/**
 * @file
 * Fig. 2: 4-fold cross-validation error of the dynamic power model (a)
 * and the full-chip power model (b), per suite and per VF state, over
 * all 152 benchmark combinations.
 *
 * Paper: dynamic model overall AAE 10.6% (per-VF 8.9/8.4/9.5/12.0/14.4%
 * from VF5 down to VF1, avg sd 5.8%, outliers in dedup/IS/DC up to
 * 49%); chip model overall 4.6% with avg sd 2.8%.
 */

#include <algorithm>

#include "bench_common.hpp"
#include "ppep/model/validation.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

void
printFig(const std::vector<model::ComboError> &errors,
         bool dynamic_model, const sim::ChipConfig &cfg)
{
    const auto metric = [dynamic_model](const model::ComboError &e) {
        return dynamic_model ? e.aae_dynamic : e.aae_chip;
    };

    util::Table table;
    table.setHeader({"VF state", "suite", "avg AAE", "std dev", "N"});
    const workloads::SuiteId suites[] = {workloads::SuiteId::Spec,
                                         workloads::SuiteId::Parsec,
                                         workloads::SuiteId::Npb};
    util::RunningStats overall;
    for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
        std::vector<model::ComboError> at_vf;
        for (const auto &e : errors)
            if (e.vf_index == vf)
                at_vf.push_back(e);
        for (const auto suite : suites) {
            const auto agg = model::aggregate(at_vf, metric, &suite);
            table.addRow({cfg.vf_table.name(vf),
                          workloads::suiteLabel(suite),
                          util::Table::pct(agg.mean),
                          util::Table::pct(agg.stddev),
                          std::to_string(agg.count)});
        }
        const auto all = model::aggregate(at_vf, metric);
        table.addRow({cfg.vf_table.name(vf), "ALL",
                      util::Table::pct(all.mean),
                      util::Table::pct(all.stddev),
                      std::to_string(all.count)});
        for (const auto &e : at_vf)
            overall.add(metric(e));
    }
    table.print(std::cout);
    std::printf("Overall average AAE: %.1f%%   (paper: %s)\n",
                overall.mean() * 100.0,
                dynamic_model ? "10.6%" : "4.6% with avg sd 2.8%");
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 2: validation error of the dynamic (a) and chip (b) power "
        "models, 152 combinations, 4-fold CV",
        "paper Fig. 2 (dynamic avg 10.6%; chip avg 4.6%, sd 2.8%)");

    const auto cfg = sim::fx8320Config();
    model::Validator validator(cfg, bench::allCombos(), bench::kSeed, 4);
    std::printf("collecting 152 combinations x 5 VF states and "
                "training fold models...\n");
    validator.prepare();
    const auto errors = validator.validateEstimation();

    std::printf("\n--- Fig. 2(a): dynamic power model ---\n");
    printFig(errors, true, cfg);
    std::printf("\n--- Fig. 2(b): chip power model ---\n");
    printFig(errors, false, cfg);

    // The paper calls out dedup / IS / DC as multiplexing outliers.
    std::printf("\nLargest per-combination dynamic-model AAEs "
                "(paper: outliers up to 49%% in DC, IS, dedup):\n");
    auto sorted = errors;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.aae_dynamic > b.aae_dynamic;
              });
    util::Table outliers;
    outliers.setHeader({"combination", "VF", "dynamic AAE"});
    for (std::size_t i = 0; i < 8 && i < sorted.size(); ++i) {
        outliers.addRow({sorted[i].combo->name,
                         cfg.vf_table.name(sorted[i].vf_index),
                         util::Table::pct(sorted[i].aae_dynamic)});
    }
    outliers.print(std::cout);

    // In-text claim: errors grow toward VF1 because the weights were
    // trained at VF5 and low states have small absolute power.
    const auto at = [&](std::size_t vf) {
        std::vector<model::ComboError> v;
        for (const auto &e : errors)
            if (e.vf_index == vf)
                v.push_back(e);
        return model::aggregate(v, [](const model::ComboError &e) {
            return e.aae_dynamic;
        }).mean;
    };
    std::printf("\nVF5 dynamic AAE %.1f%% vs VF1 %.1f%% "
                "(paper: 8.9%% vs 14.4%% — grows toward VF1: %s)\n",
                at(4) * 100.0, at(0) * 100.0,
                at(0) > at(4) ? "reproduced" : "NOT reproduced");
    return 0;
}
