/**
 * @file
 * Sec. III in-text result: LL-MAB CPI predictor accuracy.
 *
 * All 52 single-threaded benchmarks run at VF5 and VF2; traces are
 * aligned by retired instructions and split into equal-instruction
 * segments; Eq. 1 predicts each segment's cycle count from the other
 * trace's counters.
 *
 * Paper: 3.4% average error predicting VF5 -> VF2 (sd 4.6%) and 3.0%
 * predicting VF2 -> VF5 (sd 3.2%).
 */

#include "bench_common.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/trace/segmenter.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

std::vector<trace::IntervalRecord>
runSingle(const workloads::BenchmarkProfile &prof, std::size_t vf)
{
    sim::Chip chip(sim::fx8320Config(),
                   bench::kSeed ^ std::hash<std::string>{}(prof.name));
    chip.setAllVf(vf);
    chip.setJob(0, prof.makeJob());
    trace::Collector col(chip);
    auto recs = col.collectUntilFinished(400);
    while (!recs.empty() && recs.back().busy_cores == 0)
        recs.pop_back();
    return recs;
}

/** Average absolute segment error predicting from vf_a to vf_b. */
double
segmentError(const workloads::BenchmarkProfile &prof, std::size_t vf_a,
             std::size_t vf_b)
{
    const auto cfg = sim::fx8320Config();
    const trace::InstructionTimeline tl_a(runSingle(prof, vf_a), 0,
                                          /*use_pmc=*/true);
    const trace::InstructionTimeline tl_b(runSingle(prof, vf_b), 0,
                                          /*use_pmc=*/true);
    const double total = std::min(tl_a.totalInstructions(),
                                  tl_b.totalInstructions());
    const double fa = cfg.vf_table.state(vf_a).freq_ghz;
    const double fb = cfg.vf_table.state(vf_b).freq_ghz;
    const int n_segments = 12;
    const double width = total / n_segments;

    util::RunningStats err;
    for (int i = 0; i < n_segments; ++i) {
        const double s = width * i, e = width * (i + 1);
        const double cyc_a = tl_a.cyclesAt(e) - tl_a.cyclesAt(s);
        const double mab_a = tl_a.mabCyclesAt(e) - tl_a.mabCyclesAt(s);
        const double cyc_b = tl_b.cyclesAt(e) - tl_b.cyclesAt(s);
        if (cyc_b <= 0.0)
            continue;
        const double pred = (cyc_a - mab_a) + mab_a * fb / fa; // Eq. 1
        err.add(std::abs(pred - cyc_b) / cyc_b);
    }
    return err.mean();
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "CPI predictor accuracy (52 single-threaded benchmarks, "
        "instruction-aligned segments)",
        "Sec. III text: VF5->VF2 err 3.4% (sd 4.6%), VF2->VF5 err 3.0% "
        "(sd 3.2%)");

    std::vector<double> down_errs, up_errs;
    util::Table per_bench("\nPer-benchmark segment error:");
    per_bench.setHeader({"benchmark", "VF5->VF2", "VF2->VF5"});
    for (const auto &prof : workloads::Suite::all()) {
        // VF5 is index 4, VF2 is index 1.
        const double down = segmentError(prof, 4, 1);
        const double up = segmentError(prof, 1, 4);
        down_errs.push_back(down);
        up_errs.push_back(up);
        per_bench.addRow({prof.name, util::Table::pct(down),
                          util::Table::pct(up)});
    }
    per_bench.print(std::cout);

    util::Table summary("\nSummary (paper in parentheses):");
    summary.setHeader({"direction", "avg error", "std dev", "paper"});
    summary.addRow({"VF5 -> VF2", util::Table::pct(util::mean(down_errs)),
                    util::Table::pct(util::stddevPop(down_errs)),
                    "3.4% (sd 4.6%)"});
    summary.addRow({"VF2 -> VF5", util::Table::pct(util::mean(up_errs)),
                    util::Table::pct(util::stddevPop(up_errs)),
                    "3.0% (sd 3.2%)"});
    summary.print(std::cout);
    return 0;
}
