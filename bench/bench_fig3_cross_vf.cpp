/**
 * @file
 * Fig. 3: power prediction *across* VF states — from counters gathered
 * at VFi, predict average power at VFj for all 25 (i, j) pairs, all 152
 * combinations, 4-fold CV.
 *
 * Paper: dynamic power prediction 5.5-13.7% per pair (overall 8.3%,
 * avg sd 6.9%); chip power prediction 2.7-6.3% per pair (overall 4.2%,
 * avg sd 3.6%). Errors grow with VF distance and toward VF1 targets.
 */

#include "bench_common.hpp"
#include "ppep/model/validation.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

void
printFig(const std::vector<model::CrossVfError> &errors,
         bool dynamic_model, const sim::ChipConfig &cfg)
{
    const auto metric = [dynamic_model](const model::CrossVfError &e) {
        return dynamic_model ? e.err_dynamic : e.err_chip;
    };
    util::Table table;
    table.setHeader({"pair", "avg error", "std dev", "N"});
    util::RunningStats overall;
    for (std::size_t from = cfg.vf_table.size(); from-- > 0;) {
        for (std::size_t to = cfg.vf_table.size(); to-- > 0;) {
            std::vector<model::CrossVfError> pair;
            for (const auto &e : errors)
                if (e.vf_from == from && e.vf_to == to)
                    pair.push_back(e);
            const auto agg = model::aggregate(pair, metric);
            table.addRow({cfg.vf_table.name(from) + "->" +
                              cfg.vf_table.name(to),
                          util::Table::pct(agg.mean),
                          util::Table::pct(agg.stddev),
                          std::to_string(agg.count)});
            overall.add(agg.mean);
        }
    }
    table.print(std::cout);
    std::printf("Overall average: %.1f%%   (paper: %s)\n",
                overall.mean() * 100.0,
                dynamic_model ? "8.3% (range 5.5-13.7%)"
                              : "4.2% (range 2.7-6.3%)");
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 3: dynamic (a) and chip (b) power prediction across VF "
        "states, 25 pairs x 152 combinations",
        "paper Fig. 3 (dynamic overall 8.3%; chip overall 4.2%)");

    const auto cfg = sim::fx8320Config();
    model::Validator validator(cfg, bench::allCombos(), bench::kSeed, 4);
    std::printf("collecting 152 combinations x 5 VF states and "
                "training fold models...\n");
    validator.prepare();
    const auto errors = validator.validateCrossVf();

    std::printf("\n--- Fig. 3(a): dynamic power across VF states ---\n");
    printFig(errors, true, cfg);
    std::printf("\n--- Fig. 3(b): chip power across VF states ---\n");
    printFig(errors, false, cfg);

    // Shape check: error grows with VF distance (paper's observation).
    util::RunningStats near_pairs, far_pairs;
    for (const auto &e : errors) {
        const std::size_t dist = e.vf_from > e.vf_to
                                     ? e.vf_from - e.vf_to
                                     : e.vf_to - e.vf_from;
        if (dist <= 1)
            near_pairs.add(e.err_chip);
        if (dist == 4)
            far_pairs.add(e.err_chip);
    }
    std::printf("\nchip error, adjacent pairs %.1f%% vs extreme pairs "
                "%.1f%% (paper: grows with distance: %s)\n",
                near_pairs.mean() * 100.0, far_pairs.mean() * 100.0,
                far_pairs.mean() > near_pairs.mean() ? "reproduced"
                                                     : "NOT reproduced");
    return 0;
}
