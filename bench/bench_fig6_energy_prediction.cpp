/**
 * @file
 * Fig. 6: next-interval chip energy prediction at VF5 for the 61 SPEC
 * combinations — PPEP vs the Green Governors baseline — plus the
 * Sec. V-A per-VF averages.
 *
 * Paper: PPEP 3.6% average AAE at VF5 vs ~7% for Green Governors;
 * VF4..VF1 averages of 3.3/3.7/4.0/4.9%.
 */

#include "bench_common.hpp"
#include "ppep/model/validation.hpp"
#include "ppep/util/stats.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 6: next-interval energy prediction, PPEP vs Green "
        "Governors",
        "paper Fig. 6 (PPEP 3.6% vs GG ~7% at VF5) and Sec. V-A "
        "(VF4..VF1: 3.3/3.7/4.0/4.9%)");

    const auto cfg = sim::fx8320Config();
    model::Validator validator(cfg, bench::allCombos(), bench::kSeed, 4);
    std::printf("collecting 152 combinations x 5 VF states and "
                "training fold models...\n");
    validator.prepare();
    const auto errors = validator.validateEnergy();

    // Fig. 6 proper: per-SPEC-combination AAE at VF5.
    util::Table fig("\nEnergy prediction AAE at VF5, SPEC "
                    "combinations:");
    fig.setHeader({"combination", "PPEP", "Green Governors"});
    util::RunningStats ppep_vf5, gg_vf5;
    for (const auto &e : errors) {
        if (e.vf_index != cfg.vf_table.top() ||
            e.combo->suite != workloads::SuiteId::Spec)
            continue;
        fig.addRow({e.combo->name, util::Table::pct(e.aae_ppep),
                    util::Table::pct(e.aae_gg)});
        ppep_vf5.add(e.aae_ppep);
        gg_vf5.add(e.aae_gg);
    }
    fig.addRow({"AVG", util::Table::pct(ppep_vf5.mean()),
                util::Table::pct(gg_vf5.mean())});
    fig.print(std::cout);
    std::printf("\nVF5 SPEC average: PPEP %.1f%% vs GG %.1f%%  "
                "(paper: 3.6%% vs ~7%%) — PPEP wins: %s\n",
                ppep_vf5.mean() * 100.0, gg_vf5.mean() * 100.0,
                ppep_vf5.mean() < gg_vf5.mean() ? "reproduced"
                                                : "NOT reproduced");

    // Sec. V-A: all-suite per-VF averages.
    util::Table per_vf("\nEnergy prediction AAE per VF state "
                       "(all 152 combinations):");
    per_vf.setHeader({"VF", "PPEP", "GG", "paper (PPEP)"});
    const char *paper[] = {"4.9%", "4.0%", "3.7%", "3.3%", "3.6%"};
    for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
        util::RunningStats p, g;
        for (const auto &e : errors) {
            if (e.vf_index != vf)
                continue;
            p.add(e.aae_ppep);
            g.add(e.aae_gg);
        }
        per_vf.addRow({cfg.vf_table.name(vf), util::Table::pct(p.mean()),
                       util::Table::pct(g.mean()), paper[vf]});
    }
    per_vf.print(std::cout);
    return 0;
}
