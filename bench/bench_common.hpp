/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Each binary regenerates one table/figure from the paper's evaluation
 * and prints the simulated result next to the paper's reference number
 * where one exists. The default seed makes every bench reproducible.
 */

#ifndef PPEP_BENCH_COMMON_HPP
#define PPEP_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/model/trainer.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::bench {

/** Seed shared by every bench binary. */
inline constexpr std::uint64_t kSeed = 2014; // MICRO 2014

/** Print a bench header. */
inline void
header(const std::string &what, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** All 152 combination pointers. */
inline std::vector<const workloads::Combination *>
allCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        out.push_back(&c);
    return out;
}

/** A diverse training set: every single-program combination (49). */
inline std::vector<const workloads::Combination *>
singleProgramCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            out.push_back(&c);
    return out;
}

/** Train the full model stack once for a Sec. V style bench. */
inline model::TrainedModels
trainModels(const sim::ChipConfig &cfg)
{
    model::Trainer trainer(cfg, kSeed);
    return trainer.trainAll(singleProgramCombos());
}

} // namespace ppep::bench

#endif // PPEP_BENCH_COMMON_HPP
