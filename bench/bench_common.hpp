/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Each binary regenerates one table/figure from the paper's evaluation
 * and prints the simulated result next to the paper's reference number
 * where one exists. The default seed makes every bench reproducible.
 */

#ifndef PPEP_BENCH_COMMON_HPP
#define PPEP_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "ppep/model/trainer.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/util/fmt.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::bench {

/** Seed shared by every bench binary. */
inline constexpr std::uint64_t kSeed = 2014; // MICRO 2014

/**
 * BenchJson schema version. Bump when the committed BENCH_*.json
 * layout changes shape (not when rows are merely added): --check modes
 * refuse to compare against a baseline written by a different schema,
 * with a clear "regenerate" message, instead of silently reading NaNs.
 * Version 1 is the original, unversioned layout.
 */
inline constexpr int kBenchSchemaVersion = 2;

/** Print a bench header. */
inline void
header(const std::string &what, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** All 152 combination pointers. */
inline std::vector<const workloads::Combination *>
allCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        out.push_back(&c);
    return out;
}

/** A diverse training set: every single-program combination (49). */
inline std::vector<const workloads::Combination *>
singleProgramCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            out.push_back(&c);
    return out;
}

/**
 * The full model stack for a Sec. V style bench: trained once, then
 * served from the ModelStore cache on every later bench run (loading
 * reproduces the trained coefficients bit for bit).
 */
inline model::TrainedModels
trainModels(const sim::ChipConfig &cfg)
{
    runtime::ModelStore store;
    bool cached = false;
    auto models =
        store.trainOrLoad(cfg, kSeed, singleProgramCombos(), &cached);
    if (cached)
        std::printf("(PPEP models loaded from %s)\n",
                    store.cacheDir().c_str());
    return models;
}

/**
 * Tiny machine-readable bench emitter with a stable schema, shared by
 * the bench binaries that persist results (bench_fleet,
 * bench_overhead):
 *
 *     {"bench": "<bench>", "schema": <kBenchSchemaVersion>,
 *      "results": [
 *        {"name": "...", "metric": "...", "value": <num>,
 *         "unit": "...", "threads": <int>},
 *        ...]}
 *
 * `threads` is 0 for measurements that have no thread dimension.
 */
class BenchJson
{
  public:
    BenchJson(std::string bench, std::string path)
        : bench_(std::move(bench)), path_(std::move(path))
    {
    }

    void add(const std::string &name, const std::string &metric,
             double value, const std::string &unit,
             std::size_t threads = 0)
    {
        rows_.push_back({name, metric, value, unit, threads});
    }

    /** Write the file; returns false (and warns) on I/O failure. */
    bool write() const
    {
        std::ofstream out(path_);
        if (!out.is_open()) {
            std::fprintf(stderr, "cannot open %s\n", path_.c_str());
            return false;
        }
        out << "{\"bench\": \"" << bench_
            << "\", \"schema\": " << kBenchSchemaVersion
            << ",\n \"results\": [";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row &r = rows_[i];
            char value[util::fmt::kMaxDoubleChars + 1];
            *util::fmt::writeDouble(value,
                                    value + util::fmt::kMaxDoubleChars,
                                    r.value) = '\0';
            out << (i ? ",\n  " : "\n  ") << "{\"name\": \"" << r.name
                << "\", \"metric\": \"" << r.metric
                << "\", \"value\": " << value << ", \"unit\": \""
                << r.unit << "\", \"threads\": " << r.threads << "}";
        }
        out << "\n]}\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write to %s failed\n", path_.c_str());
            return false;
        }
        std::printf("(bench results written to %s)\n", path_.c_str());
        return true;
    }

  private:
    struct Row
    {
        std::string name;
        std::string metric;
        double value = 0.0;
        std::string unit;
        std::size_t threads = 0;
    };

    std::string bench_;
    std::string path_;
    std::vector<Row> rows_;
};

/**
 * Minimal extractor for the BenchJson schema: the value of the first
 * row whose "metric" matches. NaN when absent. Used by the --check
 * modes that compare a fresh run against a committed baseline file.
 */
inline double
baselineValue(const std::string &json, const std::string &metric)
{
    const std::string tag = "\"metric\": \"" + metric + "\"";
    auto pos = json.find(tag);
    if (pos == std::string::npos)
        return std::numeric_limits<double>::quiet_NaN();
    const std::string vtag = "\"value\": ";
    pos = json.find(vtag, pos);
    if (pos == std::string::npos)
        return std::numeric_limits<double>::quiet_NaN();
    return std::strtod(json.c_str() + pos + vtag.size(), nullptr);
}

/**
 * Schema version of a committed baseline file. Files written before
 * versioning carry no "schema" field and report 1.
 */
inline int
baselineSchema(const std::string &json)
{
    const std::string tag = "\"schema\": ";
    const auto pos = json.find(tag);
    if (pos == std::string::npos)
        return 1;
    return static_cast<int>(
        std::strtol(json.c_str() + pos + tag.size(), nullptr, 10));
}

} // namespace ppep::bench

#endif // PPEP_BENCH_COMMON_HPP
