/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Each binary regenerates one table/figure from the paper's evaluation
 * and prints the simulated result next to the paper's reference number
 * where one exists. The default seed makes every bench reproducible.
 */

#ifndef PPEP_BENCH_COMMON_HPP
#define PPEP_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ppep/model/trainer.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::bench {

/** Seed shared by every bench binary. */
inline constexpr std::uint64_t kSeed = 2014; // MICRO 2014

/** Print a bench header. */
inline void
header(const std::string &what, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** All 152 combination pointers. */
inline std::vector<const workloads::Combination *>
allCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        out.push_back(&c);
    return out;
}

/** A diverse training set: every single-program combination (49). */
inline std::vector<const workloads::Combination *>
singleProgramCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            out.push_back(&c);
    return out;
}

/**
 * The full model stack for a Sec. V style bench: trained once, then
 * served from the ModelStore cache on every later bench run (loading
 * reproduces the trained coefficients bit for bit).
 */
inline model::TrainedModels
trainModels(const sim::ChipConfig &cfg)
{
    runtime::ModelStore store;
    bool cached = false;
    auto models =
        store.trainOrLoad(cfg, kSeed, singleProgramCombos(), &cached);
    if (cached)
        std::printf("(PPEP models loaded from %s)\n",
                    store.cacheDir().c_str());
    return models;
}

} // namespace ppep::bench

#endif // PPEP_BENCH_COMMON_HPP
