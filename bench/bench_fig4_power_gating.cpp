/**
 * @file
 * Fig. 4: chip power with power gating disabled vs enabled while the
 * number of busy CUs (running bench_A) sweeps 0..4 at every VF state,
 * plus the Sec. IV-D extraction of Pidle(CU), Pidle(NB), Pidle(Base).
 *
 * Paper: at 4 busy CUs the two bars match; each idle CU opens a
 * Pidle(CU) gap; the fully idle chip additionally gates the NB.
 */

#include "bench_common.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/sim/hw_power_model.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 4: chip power vs busy CUs, PG disabled/enabled + "
        "Eq. 7/8 component extraction",
        "paper Fig. 4 and Sec. IV-D");

    const auto cfg = sim::fx8320Config();
    model::Trainer trainer(cfg, bench::kSeed);
    const auto sweeps = trainer.collectPgSweeps();

    // Normalise to the largest measurement, as the paper's figure does.
    double peak = 0.0;
    for (const auto &s : sweeps)
        for (double p : s.power_pg_off)
            peak = std::max(peak, p);

    util::Table fig("\nNormalised chip power (bench_A on 0..4 CUs):");
    fig.setHeader({"VF", "busy CUs", "PG disabled", "PG enabled",
                   "gap (W)"});
    for (auto it = sweeps.rbegin(); it != sweeps.rend(); ++it) {
        const auto &s = *it;
        for (std::size_t k = 0; k <= cfg.n_cus; ++k) {
            fig.addRow({cfg.vf_table.name(s.vf_index),
                        k == 0 ? "idle" : std::to_string(k),
                        util::Table::num(s.power_pg_off[k] / peak, 3),
                        util::Table::num(s.power_pg_on[k] / peak, 3),
                        util::Table::num(s.power_pg_off[k] -
                                             s.power_pg_on[k],
                                         1)});
        }
    }
    fig.print(std::cout);

    // Component extraction vs the hidden ground truth.
    const auto model = model::PgIdleModel::fromSweeps(sweeps, cfg.n_cus);
    const sim::HwPowerModel hw(cfg);
    const double temp = cfg.thermal.ambient_k + 16.0;

    util::Table comp("\nExtracted idle components (ground truth in "
                     "parentheses; Pidle(NB) absorbs the OS "
                     "housekeeping power, which also stops when fully "
                     "gated):");
    comp.setHeader({"VF", "Pidle(CU) W", "truth", "Pidle(NB) W", "truth",
                    "Pidle(Base) W", "truth"});
    for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
        const auto &c = model.components(vf);
        const auto &state = cfg.vf_table.state(vf);
        const double true_cu =
            hw.cuIdlePower(state.voltage, state.freq_ghz, temp);
        const double true_nb = hw.nbStaticPower(cfg.nb.vf_hi, temp) +
                               cfg.power.housekeeping_w;
        comp.addRow({cfg.vf_table.name(vf), util::Table::num(c.p_cu, 2),
                     util::Table::num(true_cu, 2),
                     util::Table::num(c.p_nb, 2),
                     util::Table::num(true_nb, 2),
                     util::Table::num(c.p_base, 2),
                     util::Table::num(cfg.power.base_power_w, 2)});
    }
    comp.print(std::cout);

    // Shape checks from the paper.
    bool bars_match_at_4 = true, gaps_grow = true;
    for (const auto &s : sweeps) {
        const double rel =
            std::abs(s.power_pg_off[4] - s.power_pg_on[4]) /
            s.power_pg_off[4];
        bars_match_at_4 = bars_match_at_4 && rel < 0.03;
        const double gap1 = s.power_pg_off[1] - s.power_pg_on[1];
        const double gap0 = s.power_pg_off[0] - s.power_pg_on[0];
        gaps_grow = gaps_grow && gap0 > gap1;
    }
    std::printf("\n4-CU bars match (paper: no difference): %s\n",
                bars_match_at_4 ? "reproduced" : "NOT reproduced");
    std::printf("idle gap exceeds 1-CU gap (NB also gates): %s\n",
                gaps_grow ? "reproduced" : "NOT reproduced");
    return bars_match_at_4 && gaps_grow ? 0 : 1;
}
