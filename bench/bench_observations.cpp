/**
 * @file
 * Sec. IV-C in-text validation of the two observations that power the
 * hardware event predictor, over the 52 single-threaded benchmarks.
 *
 * Paper (FX-8320, VF5 vs VF2): per-instruction deltas for E1..E7 of
 * 0.6/0.9/0.7/5.0/0.7/1.3/4.0 percent (Observation 1), and a 1.7%
 * delta in CPI - DispatchStalls/inst (Observation 2).
 */

#include "bench_common.hpp"
#include "ppep/model/event_predictor.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

struct Measured
{
    std::array<double, 8> per_inst{};
    double obs2_gap = 0.0;
};

Measured
measure(const workloads::BenchmarkProfile &prof, std::size_t vf)
{
    sim::Chip chip(sim::fx8320Config(),
                   bench::kSeed ^ std::hash<std::string>{}(prof.name));
    chip.setAllVf(vf);
    chip.setJob(0, prof.makeLoopingJob());
    trace::Collector col(chip);
    col.collect(3);
    const auto recs = col.collect(15);

    Measured out;
    double inst = 0.0, gap = 0.0;
    for (const auto &r : recs) {
        inst += r.oracle[0][sim::eventIndex(sim::Event::RetiredInst)];
        for (std::size_t i = 0; i < 8; ++i)
            out.per_inst[i] += r.oracle[0][i];
        gap += model::EventPredictor::obs2Gap(r.oracle[0]);
    }
    for (auto &v : out.per_inst)
        v /= inst;
    out.obs2_gap = gap / static_cast<double>(recs.size());
    return out;
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Observations 1 & 2 (52 benchmarks, VF5 vs VF2)",
        "Sec. IV-C text: E1..E7 deltas 0.6/0.9/0.7/5.0/0.7/1.3/4.0%, "
        "Obs. 2 gap delta 1.7%");

    std::array<util::RunningStats, 8> deltas;
    util::RunningStats gap_delta;
    for (const auto &prof : workloads::Suite::all()) {
        const auto hi = measure(prof, 4); // VF5
        const auto lo = measure(prof, 1); // VF2
        for (std::size_t i = 0; i < 8; ++i) {
            if (hi.per_inst[i] > 1e-9) {
                deltas[i].add(std::abs(hi.per_inst[i] - lo.per_inst[i]) /
                              hi.per_inst[i]);
            }
        }
        if (hi.obs2_gap > 0.0)
            gap_delta.add(std::abs(hi.obs2_gap - lo.obs2_gap) /
                          hi.obs2_gap);
    }

    const char *paper[] = {"0.6%", "0.9%", "0.7%", "5.0%",
                           "0.7%", "1.3%", "4.0%", "(n/a)"};
    util::Table table("\nObservation 1: per-instruction count deltas "
                      "VF5 vs VF2 (averaged over 52 benchmarks):");
    table.setHeader({"event", "name", "avg delta", "paper"});
    for (std::size_t i = 0; i < 8; ++i) {
        const auto e = static_cast<sim::Event>(i);
        table.addRow({std::string(sim::eventLabel(e)),
                      std::string(sim::eventName(e)),
                      util::Table::pct(deltas[i].mean()), paper[i]});
    }
    table.print(std::cout);

    std::printf("\nObservation 2: avg |delta| of CPI - DS/inst = %.1f%% "
                "(paper: 1.7%%)\n",
                gap_delta.mean() * 100.0);
    return 0;
}
