/**
 * @file
 * Closed-loop validation of the NB-DVFS promise (extension).
 *
 * Fig. 11 is a what-if computed from predictions; the simulated chip
 * actually implements NB DVFS, so this bench runs the loop for real:
 * the CoScale-lite governor (coordinated core + NB DVFS under a 10%
 * slowdown budget, PPEP-predicted) against a static top-state baseline,
 * with energy and throughput measured from the sensor — including
 * whatever the Sec. V-C2 factor assumptions got wrong.
 */

#include <algorithm>

#include "bench_common.hpp"
#include "ppep/governor/coscale_lite.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

struct Outcome
{
    double epi_nj = 0.0;   ///< measured energy per instruction
    double gips = 0.0;     ///< measured throughput
    double nb_low_share = 0.0; ///< fraction of intervals on NB-low
    std::size_t median_core_vf = 0;
};

Outcome
summarise(const std::vector<governor::GovernorStep> &steps)
{
    Outcome out;
    double joules = 0.0, inst = 0.0;
    std::size_t nb_low = 0;
    std::vector<std::size_t> vfs;
    for (std::size_t i = 2; i < steps.size(); ++i) { // skip settling
        const auto &s = steps[i];
        joules += s.rec.sensor_power_w * s.rec.duration_s;
        inst += s.rec.pmcTotal(sim::Event::RetiredInst);
        nb_low += s.rec.nb_vf.freq_ghz < 2.0;
        vfs.push_back(s.cu_vf[0]);
    }
    const double n = static_cast<double>(steps.size() - 2);
    out.epi_nj = joules / inst * 1e9;
    out.gips = inst / (n * 0.2) / 1e9;
    out.nb_low_share = static_cast<double>(nb_low) / n;
    std::sort(vfs.begin(), vfs.end());
    out.median_core_vf = vfs[vfs.size() / 2];
    return out;
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Closed-loop coordinated core+NB DVFS (CoScale-lite on real "
        "simulated NB DVFS)",
        "extension of Fig. 11 / the CoScale remark in Sec. I — no "
        "direct paper figure");

    const auto cfg = sim::fx8320Config();
    const auto models = bench::trainModels(cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);

    util::Table table("\nMeasured outcomes over 40 intervals (values "
                      "from the sensor, not from predictions):");
    table.setHeader({"workload", "policy", "energy/inst (nJ)", "GIPS",
                     "median core VF", "NB-low share",
                     "energy saving", "slowdown"});

    for (const char *prog :
         {"458.sjeng", "433.milc", "EP", "canneal"}) {
        Outcome base, managed;
        for (const bool coordinated : {false, true}) {
            sim::Chip chip(cfg, bench::kSeed + 11);
            chip.setPowerGatingEnabled(true);
            chip.setJob(0, workloads::Suite::byName(prog)
                               .makeLoopingJob());
            governor::CoScaleLiteGovernor gov(
                cfg, ppep, coordinated ? 0.10 : 0.0);
            governor::GovernorLoop loop(chip, gov);
            const auto steps =
                loop.run(40, governor::CapSchedule::unlimited());
            (coordinated ? managed : base) = summarise(steps);
        }
        auto row = [&](const char *policy, const Outcome &o,
                       bool show_delta) {
            table.addRow(
                {prog, policy, util::Table::num(o.epi_nj, 2),
                 util::Table::num(o.gips, 2),
                 cfg.vf_table.name(o.median_core_vf),
                 util::Table::pct(o.nb_low_share),
                 show_delta
                     ? util::Table::pct(1.0 - o.epi_nj / base.epi_nj)
                     : std::string("-"),
                 show_delta
                     ? util::Table::pct(1.0 - o.gips / base.gips)
                     : std::string("-")});
        };
        row("static top-state", base, false);
        row("coscale-lite 10%", managed, true);
    }
    table.print(std::cout);

    std::printf(
        "\nShape checks:\n"
        "  - CPU-bound programs should run on the low NB point (cheap\n"
        "    energy) while memory-bound ones keep it fast;\n"
        "  - every managed row should save energy per instruction with\n"
        "    a measured slowdown near the 10%% budget.\n");
    return 0;
}
