/**
 * @file
 * Ablation studies on PPEP's design choices.
 *
 * The paper motivates several mechanisms without isolating their
 * contribution; this bench quantifies each one on a 24-combination
 * subset (8 per suite, 4-fold CV):
 *
 *  A1. PMC multiplexing: 6 physical counters (realistic) vs. a
 *      hypothetical 12-counter part (no multiplexing) — the paper blames
 *      multiplexing for the dedup/IS/DC outliers.
 *  A2. Voltage exponent: the fitted alpha vs. fixed 1.0 / 2.0 / 3.0 —
 *      how sensitive Eq. 3's cross-VF scaling is to getting alpha right.
 *  A3. NNLS vs. plain OLS weights: negative "energies" fit VF5 equally
 *      well but corrupt the voltage extrapolation.
 *  A4. The Obs.1/2 event predictor vs. naive frequency-linear scaling
 *      (all event rates ~ f, the assumption of the simple models the
 *      paper criticises [14, 29]).
 *  A5. The temperature term of Eq. 2: full Pidle(V, T) vs. a
 *      temperature-blind Pidle(V) evaluated at the training-mean T.
 *  A6. Sampling interval: 40 ms / 200 ms / 1 s decision cadence — the
 *      Sec. IV-E claim that PPEP could sample faster than 200 ms
 *      without significant overhead.
 *  A7. Per-CU voltage planes vs. a shared rail: the paper's Sec. V-B
 *      capping study *assumes* separate planes (like [20, 21]); real
 *      FX parts share one rail (voltage = max over CUs), which eats
 *      most of the benefit of per-CU frequency assignments.
 */

#include <algorithm>

#include "bench_common.hpp"
#include "ppep/model/validation.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep;

/** A diverse 24-combo subset: 8 from each suite. */
std::vector<const workloads::Combination *>
subset()
{
    std::vector<const workloads::Combination *> out;
    std::size_t spe = 0, par = 0, npb = 0;
    for (const auto &c : workloads::allCombinations()) {
        auto &count =
            c.suite == workloads::SuiteId::Spec
                ? spe
                : (c.suite == workloads::SuiteId::Parsec ? par : npb);
        if (count < 8) {
            out.push_back(&c);
            ++count;
        }
    }
    return out;
}

/** Mean dynamic/chip estimation AAE over a prepared validator. */
std::pair<double, double>
estimationErrors(const model::Validator &v)
{
    const auto errors = v.validateEstimation();
    const auto dyn = model::aggregate(
        errors, [](const model::ComboError &e) { return e.aae_dynamic; });
    const auto chip = model::aggregate(
        errors, [](const model::ComboError &e) { return e.aae_chip; });
    return {dyn.mean, chip.mean};
}

/** Mean cross-VF chip prediction error over a prepared validator. */
double
crossVfError(const model::Validator &v)
{
    const auto errors = v.validateCrossVf();
    return model::aggregate(errors, [](const model::CrossVfError &e) {
               return e.err_chip;
           }).mean;
}

/** Build + prepare a validator for a config variant. */
model::Validator
prepared(const sim::ChipConfig &cfg)
{
    model::Validator v(cfg, subset(), bench::kSeed, 4);
    v.prepare(60);
    return v;
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header("Ablation studies on PPEP's design choices",
                  "design-choice isolation (no direct paper analogue)");

    // ---------------------------------------------------------------- A1
    std::printf("\nA1. PMC multiplexing (6 counters, extrapolated) vs a "
                "12-counter part:\n");
    {
        // Make sure the rapid-phase programs the paper calls out are in
        // the validation set alongside the generic subset.
        auto combos = subset();
        for (const auto &c : workloads::allCombinations()) {
            const auto &n = c.name;
            if (n == "dedup.x1" || n == "dedup.x4" || n == "IS.x1" ||
                n == "IS.x4" || n == "DC.x1" || n == "DC.x4") {
                if (std::find(combos.begin(), combos.end(), &c) ==
                    combos.end())
                    combos.push_back(&c);
            }
        }
        auto prepare_with = [&](std::size_t counters) {
            auto cfg = sim::fx8320Config();
            cfg.pmc_counters = counters;
            model::Validator v(cfg, combos, bench::kSeed, 4);
            v.prepare(60);
            return v;
        };
        const auto base = prepare_with(6);
        const auto wide = prepare_with(12);

        const auto [dyn6, chip6] = estimationErrors(base);
        const auto [dyn12, chip12] = estimationErrors(wide);

        // Rapid-phase combos suffer most from multiplexing.
        auto rapid_err = [](const model::Validator &v) {
            util::RunningStats err;
            for (const auto &e : v.validateEstimation()) {
                const auto &n = e.combo->name;
                if (n.rfind("dedup", 0) == 0 || n.rfind("IS", 0) == 0 ||
                    n.rfind("DC", 0) == 0)
                    err.add(e.aae_dynamic);
            }
            return err.mean();
        };
        util::Table t;
        t.setHeader({"configuration", "dyn AAE", "chip AAE",
                     "rapid-phase dyn AAE"});
        t.addRow({"6 counters (real)", util::Table::pct(dyn6),
                  util::Table::pct(chip6),
                  util::Table::pct(rapid_err(base))});
        t.addRow({"12 counters (no mux)", util::Table::pct(dyn12),
                  util::Table::pct(chip12),
                  util::Table::pct(rapid_err(wide))});
        t.print(std::cout);
    }

    // --------------------------------------------------------- A2 + A3
    std::printf("\nA2/A3. Voltage exponent and weight constraints "
                "(cross-VF chip error):\n");
    {
        const auto cfg = sim::fx8320Config();
        model::Trainer trainer(cfg, bench::kSeed);
        const auto combos = subset();
        std::vector<std::size_t> vfs{0, 1, 2, 3, 4};
        const auto dataset = trainer.collectDataset(combos, vfs, 60);
        const auto idle = trainer.trainIdle();
        const double alpha_fit = trainer.estimateAlpha(idle);

        // Shared training rows (top VF) for the variants.
        std::vector<const model::ComboTrace *> traces;
        for (const auto &t : dataset)
            traces.push_back(&t);

        const std::size_t top = cfg.vf_table.top();
        const double v_top = cfg.vf_table.state(top).voltage;
        std::vector<model::DynTrainingRow> rows;
        for (const auto &t : dataset) {
            if (t.vf_index != top)
                continue;
            for (const auto &rec : t.recs) {
                if (rec.busy_cores == 0)
                    continue;
                model::DynTrainingRow row;
                row.rates_per_s =
                    model::powerEventRates(rec.pmc, rec.duration_s);
                row.dynamic_power_w =
                    rec.sensor_power_w -
                    idle.predict(v_top, rec.diode_temp_k);
                rows.push_back(row);
            }
        }

        // Cross-VF chip error of a given dynamic model over the dataset.
        auto cross_err = [&](const model::DynamicPowerModel &dyn) {
            const model::ChipPowerModel chip(idle, dyn, cfg.vf_table);
            util::RunningStats err;
            for (const auto *combo : combos) {
                std::vector<const model::ComboTrace *> combo_traces(
                    vfs.size(), nullptr);
                for (const auto &t : dataset)
                    if (t.combo == combo)
                        combo_traces[t.vf_index] = &t;
                for (std::size_t from = 0; from < vfs.size(); ++from) {
                    for (std::size_t to = 0; to < vfs.size(); ++to) {
                        util::RunningStats pred, meas;
                        for (const auto &rec :
                             combo_traces[from]->recs) {
                            if (rec.busy_cores == 0)
                                continue;
                            pred.add(chip.predictAt(rec, to).total_w);
                        }
                        for (const auto &rec : combo_traces[to]->recs) {
                            if (rec.busy_cores == 0)
                                continue;
                            meas.add(rec.sensor_power_w);
                        }
                        err.add(util::absRelErr(pred.mean(),
                                                meas.mean()));
                    }
                }
            }
            return err.mean();
        };

        util::Table t;
        t.setHeader({"variant", "cross-VF chip error"});
        for (const double alpha :
             {alpha_fit, 1.0, 2.0, 3.0}) {
            const auto dyn =
                model::DynamicPowerModel::train(rows, v_top, alpha);
            char label[64];
            std::snprintf(label, sizeof(label), "alpha = %.2f%s", alpha,
                          alpha == alpha_fit ? " (fitted)" : "");
            t.addRow({label, util::Table::pct(cross_err(dyn))});
        }
        const auto ols = model::DynamicPowerModel::train(
            rows, v_top, alpha_fit, /*non_negative=*/false);
        std::size_t negatives = 0;
        for (double w : ols.weights())
            negatives += w < 0.0;
        t.addRow({"OLS weights (" + std::to_string(negatives) +
                      " negative)",
                  util::Table::pct(cross_err(ols))});
        t.print(std::cout);
    }

    // ---------------------------------------------------------------- A4
    std::printf("\nA4. Obs.1/2 event predictor vs naive "
                "frequency-linear event scaling:\n");
    {
        const auto cfg = sim::fx8320Config();
        const auto v = prepared(cfg);
        // PPEP's predictor:
        const double ppep_err = crossVfError(v);

        // Naive variant: every event rate scales ~ f'/f; idle re-priced.
        util::RunningStats naive_err;
        const auto &models = v.foldModels(0);
        for (std::size_t i = 0; i < v.combos().size(); ++i) {
            std::vector<const model::ComboTrace *> traces(5, nullptr);
            for (const auto &t : v.dataset())
                if (t.combo == v.combos()[i])
                    traces[t.vf_index] = &t;
            const auto &m = v.foldModels(v.foldOf(i));
            for (std::size_t from = 0; from < 5; ++from) {
                for (std::size_t to = 0; to < 5; ++to) {
                    const double f_from =
                        cfg.vf_table.state(from).freq_ghz;
                    const auto &state_to = cfg.vf_table.state(to);
                    util::RunningStats pred, meas;
                    for (const auto &rec : traces[from]->recs) {
                        if (rec.busy_cores == 0)
                            continue;
                        auto rates = model::powerEventRates(
                            rec.pmc, rec.duration_s);
                        const double scale =
                            state_to.freq_ghz / f_from;
                        for (auto &r : rates)
                            r *= scale;
                        pred.add(m.idle.predict(state_to.voltage,
                                                rec.diode_temp_k) +
                                 m.dynamic.estimate(rates,
                                                    state_to.voltage));
                    }
                    for (const auto &rec : traces[to]->recs) {
                        if (rec.busy_cores == 0)
                            continue;
                        meas.add(rec.sensor_power_w);
                    }
                    naive_err.add(util::absRelErr(pred.mean(),
                                                  meas.mean()));
                }
            }
        }
        (void)models;
        util::Table t;
        t.setHeader({"event prediction", "cross-VF chip error"});
        t.addRow({"Obs.1/2 + Eq.1 (PPEP)", util::Table::pct(ppep_err)});
        t.addRow({"all rates ~ f (naive)",
                  util::Table::pct(naive_err.mean())});
        t.print(std::cout);
    }

    // ---------------------------------------------------------------- A5
    std::printf("\nA5. Idle model temperature term:\n");
    {
        const auto cfg = sim::fx8320Config();
        model::Trainer trainer(cfg, bench::kSeed);
        const auto idle = trainer.trainIdle();

        // Temperature-blind variant: evaluate at a fixed mid-range T.
        const double t_fixed = 322.0;
        model::Trainer validate(cfg, bench::kSeed + 9);
        util::RunningStats err_full, err_blind;
        for (std::size_t vf = 0; vf < cfg.vf_table.size(); ++vf) {
            const auto trace = validate.collectCoolingTrace(vf, 200,
                                                            350);
            for (const auto &s : trace.idle_samples) {
                err_full.add(util::absRelErr(
                    idle.predict(s.voltage, s.temp_k), s.power_w));
                err_blind.add(util::absRelErr(
                    idle.predict(s.voltage, t_fixed), s.power_w));
            }
        }
        util::Table t;
        t.setHeader({"idle model", "AAE over cooling traces"});
        t.addRow({"Pidle(V, T) (Eq. 2)",
                  util::Table::pct(err_full.mean())});
        t.addRow({"Pidle(V) at fixed T",
                  util::Table::pct(err_blind.mean())});
        t.print(std::cout);
    }

    // ---------------------------------------------------------------- A6
    std::printf("\nA6. Sampling interval (Sec. IV-E: 'PPEP can also "
                "sample faster'):\n");
    {
        // One model stack trained at the default 200 ms cadence; event
        // rates are per-second, so the models transfer across interval
        // lengths. Shorter intervals react faster but see noisier
        // multiplexed counts and more phase-boundary pairs.
        const auto base_cfg = sim::fx8320Config();
        model::Trainer trainer(base_cfg, bench::kSeed);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1 && training.size() < 20)
                training.push_back(&c);
        const auto models = trainer.trainAll(training);

        util::Table t;
        t.setHeader({"interval", "next-interval energy AAE",
                     "exploration overhead share"});
        for (const std::size_t ticks : {2u, 10u, 50u}) {
            auto cfg = base_cfg;
            cfg.ticks_per_interval = ticks;
            util::RunningStats err;
            for (const char *prog :
                 {"433.milc", "458.sjeng", "403.gcc", "CG",
                  "blackscholes", "x264"}) {
                sim::Chip chip(cfg, bench::kSeed + ticks);
                workloads::launch(chip, workloads::replicate(prog, 2),
                                  true);
                trace::Collector col(chip);
                col.collect(3);
                auto prev = col.collectInterval();
                for (int i = 0; i < 40; ++i) {
                    const auto next = col.collectInterval();
                    const double est =
                        models.chip.estimate(prev).total_w *
                        prev.duration_s;
                    const double meas =
                        next.sensor_power_w * next.duration_s;
                    err.add(util::absRelErr(est, meas));
                    prev = next;
                }
            }
            // ~4 us for a full 5-state exploration (bench_overhead).
            const double overhead =
                4.1e-6 / (cfg.tick_s * static_cast<double>(ticks));
            char label[32];
            std::snprintf(label, sizeof(label), "%.0f ms",
                          cfg.tick_s * static_cast<double>(ticks) *
                              1e3);
            char oh[32];
            std::snprintf(oh, sizeof(oh), "%.4f%%", overhead * 100.0);
            t.addRow({label, util::Table::pct(err.mean()), oh});
        }
        t.print(std::cout);
    }

    // ---------------------------------------------------------------- A7
    std::printf("\nA7. Per-CU voltage planes vs a shared rail "
                "(PPEP one-step capping):\n");
    {
        auto run_capping = [&](bool per_cu_voltage) {
            auto cfg = sim::fx8320Config();
            cfg.per_cu_voltage = per_cu_voltage;
            model::Trainer trainer(cfg, bench::kSeed);
            std::vector<const workloads::Combination *> training;
            for (const auto &c : workloads::allCombinations())
                if (c.instances.size() == 1 && training.size() < 20)
                    training.push_back(&c);
            const auto models = trainer.trainAll(training);
            const model::Ppep ppep(cfg, models.chip, models.pg);

            sim::Chip chip(cfg, bench::kSeed + 3);
            chip.setPowerGatingEnabled(true);
            chip.setJob(0, workloads::Suite::byName("429.mcf")
                               .makeLoopingJob());
            chip.setJob(2, workloads::Suite::byName("458.sjeng")
                               .makeLoopingJob());
            chip.setJob(4, workloads::Suite::byName("416.gamess")
                               .makeLoopingJob());
            chip.setJob(6, workloads::Suite::byName("swaptions")
                               .makeLoopingJob());

            governor::PpepCappingGovernor gov(cfg, ppep);
            governor::GovernorLoop loop(chip, gov);
            const auto steps =
                loop.run(80, governor::CapSchedule(55.0));
            double inst = 0.0;
            for (const auto &s : steps)
                inst += s.rec.pmcTotal(sim::Event::RetiredInst);
            return std::pair{inst / (80.0 * 0.2) / 1e9,
                             governor::capAdherence(steps)};
        };
        const auto [gips_planes, adh_planes] = run_capping(true);
        const auto [gips_shared, adh_shared] = run_capping(false);
        util::Table t;
        t.setHeader({"hardware", "throughput (GIPS)",
                     "cap adherence"});
        t.addRow({"per-CU voltage planes (paper assumption)",
                  util::Table::num(gips_planes, 2),
                  util::Table::pct(adh_planes)});
        t.addRow({"shared voltage rail (real FX-8320)",
                  util::Table::num(gips_shared, 2),
                  util::Table::pct(adh_shared)});
        t.print(std::cout);
        std::printf("(the rail-aware governor prices every CU at the "
                    "highest requested voltage on shared-rail parts, "
                    "trading throughput for cap safety)\n");
    }

    return 0;
}
