/**
 * @file
 * Fig. 7: power-capping responsiveness — the PPEP one-step policy vs
 * the simple iterative baseline on the paper's workload mix
 * (429.mcf + 458.sjeng + 416.gamess + swaptions, one per CU) under a
 * square-wave power cap.
 *
 * Paper: PPEP adjusts within a single 0.2 s interval and adheres to the
 * budget 94% of the time; the iterative policy takes 2.8 s (14x slower)
 * and adheres 81% of the time with occasional violations.
 */

#include "bench_common.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/governor/iterative_capping.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/util/csv.hpp"

namespace {

using namespace ppep;

sim::Chip
makeLoadedChip(const sim::ChipConfig &cfg)
{
    sim::Chip chip(cfg, bench::kSeed + 7);
    chip.setPowerGatingEnabled(true);
    chip.setJob(0, workloads::Suite::byName("429.mcf").makeLoopingJob());
    chip.setJob(2,
                workloads::Suite::byName("458.sjeng").makeLoopingJob());
    chip.setJob(4,
                workloads::Suite::byName("416.gamess").makeLoopingJob());
    chip.setJob(6,
                workloads::Suite::byName("swaptions").makeLoopingJob());
    return chip;
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 7: power capping responsiveness (mcf+sjeng+gamess+"
        "swaptions on 4 CUs)",
        "paper Fig. 7 / Sec. V-B: PPEP settles in 1 interval with 94% "
        "adherence; iterative takes 2.8s (14 intervals) with 81%");

    // Per-CU voltage planes, as the paper assumes for this study.
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;

    model::Trainer trainer(cfg, bench::kSeed);
    const auto models = trainer.trainAll(bench::singleProgramCombos());
    const model::Ppep ppep(cfg, models.chip, models.pg);

    // A large square-wave cap swing, as in the paper's demonstration.
    const governor::CapSchedule swing({{0, 110.0},
                                       {60, 45.0},
                                       {150, 110.0},
                                       {240, 45.0}});
    const std::size_t n_intervals = 330;

    governor::IterativeCappingGovernor iterative(cfg);
    auto chip_i = makeLoadedChip(cfg);
    governor::GovernorLoop loop_i(chip_i, iterative);
    const auto steps_i = loop_i.run(n_intervals, swing);

    governor::PpepCappingGovernor predictive(cfg, ppep);
    auto chip_p = makeLoadedChip(cfg);
    governor::GovernorLoop loop_p(chip_p, predictive);
    const auto steps_p = loop_p.run(n_intervals, swing);

    // Dump both traces for plotting.
    util::CsvWriter csv("fig7_power_capping.csv");
    csv.writeRow(std::vector<std::string>{
        "step", "cap_w", "iterative_w", "ppep_w"});
    for (std::size_t i = 0; i < n_intervals; ++i) {
        csv.writeRow(std::vector<double>{
            static_cast<double>(i), steps_p[i].cap_w,
            steps_i[i].rec.sensor_power_w,
            steps_p[i].rec.sensor_power_w});
    }

    util::Table trace("\nTrace excerpt around the first cap drop "
                      "(interval 60; full trace in "
                      "fig7_power_capping.csv):");
    trace.setHeader({"step", "cap (W)", "iterative (W)", "PPEP (W)"});
    for (std::size_t i = 55; i < 80; ++i) {
        trace.addRow({std::to_string(i),
                      util::Table::num(steps_p[i].cap_w, 0),
                      util::Table::num(steps_i[i].rec.sensor_power_w, 1),
                      util::Table::num(steps_p[i].rec.sensor_power_w,
                                       1)});
    }
    trace.print(std::cout);

    const double settle_i = governor::meanSettleIntervals(steps_i);
    const double settle_p = governor::meanSettleIntervals(steps_p);
    const double adh_i = governor::capAdherence(steps_i);
    const double adh_p = governor::capAdherence(steps_p);

    util::Table summary("\nSummary:");
    summary.setHeader({"policy", "settle (intervals)", "settle (s)",
                       "adherence", "paper"});
    summary.addRow({"PPEP one-step", util::Table::num(settle_p, 1),
                    util::Table::num(settle_p * 0.2, 1),
                    util::Table::pct(adh_p), "0.2s, 94%"});
    summary.addRow({"simple iterative", util::Table::num(settle_i, 1),
                    util::Table::num(settle_i * 0.2, 1),
                    util::Table::pct(adh_i), "2.8s, 81%"});
    summary.print(std::cout);

    std::printf("\nSpeed ratio (iterative/PPEP settle): %.1fx "
                "(paper: 14x)\n",
                settle_p > 0.0 ? settle_i / settle_p : 0.0);
    std::printf("PPEP faster and more adherent: %s\n",
                (settle_p < settle_i && adh_p > adh_i)
                    ? "reproduced"
                    : "NOT reproduced");
    return 0;
}
