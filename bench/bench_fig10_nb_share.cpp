/**
 * @file
 * Fig. 10: per-thread energy split into core and NB parts, and the NB's
 * share, for 433.milc and 458.sjeng across VF states and 1..4
 * instances.
 *
 * Paper: the NB consumes ~60% of a memory-bound program's energy on
 * average (minimum 45%) and ~25% of a CPU-bound one's (minimum 10%);
 * the share grows with fewer busy CUs and at lower core VF states.
 */

#include "bench_common.hpp"
#include "ppep/governor/energy_explorer.hpp"
#include "ppep/util/stats.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 10: NB share of per-thread energy",
        "paper Fig. 10 (memory-bound avg ~60%, min 45%; CPU-bound avg "
        "~25%, min 10%; share grows at low VF and few instances)");

    const auto cfg = sim::fx8320Config();
    const auto models = bench::trainModels(cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);
    const governor::EnergyExplorer explorer(cfg, ppep, bench::kSeed);

    util::RunningStats milc_share, sjeng_share;
    double share_x1_vf1 = 0.0, share_x1_vf5 = 0.0;
    double share_x4_vf5 = 0.0;

    for (const char *prog : {"433.milc", "458.sjeng"}) {
        const bool is_milc = std::string(prog) == "433.milc";
        util::Table fig("\n" + std::string(prog) +
                        ": per-thread energy split (J) and NB ratio:");
        fig.setHeader({"mode", "VF", "core (J)", "NB (J)", "NB ratio"});
        for (std::size_t copies = 1; copies <= 4; ++copies) {
            const auto pts = explorer.explore(prog, copies);
            for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;) {
                const auto &p = pts[vf];
                const double ratio = p.nb_energy_j / p.energy_j;
                fig.addRow({std::string(prog).substr(0, 3) + " x" +
                                std::to_string(copies),
                            cfg.vf_table.name(vf),
                            util::Table::num(p.core_energy_j, 1),
                            util::Table::num(p.nb_energy_j, 1),
                            util::Table::pct(ratio)});
                (is_milc ? milc_share : sjeng_share).add(ratio);
                if (is_milc && copies == 1 && vf == 0)
                    share_x1_vf1 = ratio;
                if (is_milc && copies == 1 && vf == 4)
                    share_x1_vf5 = ratio;
                if (is_milc && copies == 4 && vf == 4)
                    share_x4_vf5 = ratio;
            }
        }
        fig.print(std::cout);
    }

    util::Table summary("\nSummary:");
    summary.setHeader({"program", "avg NB share", "min", "max",
                       "paper"});
    summary.addRow({"433.milc (memory-bound)",
                    util::Table::pct(milc_share.mean()),
                    util::Table::pct(milc_share.minValue()),
                    util::Table::pct(milc_share.maxValue()),
                    "avg ~60%, min 45%"});
    summary.addRow({"458.sjeng (CPU-bound)",
                    util::Table::pct(sjeng_share.mean()),
                    util::Table::pct(sjeng_share.minValue()),
                    util::Table::pct(sjeng_share.maxValue()),
                    "avg ~25%, min 10%"});
    summary.print(std::cout);

    std::printf("\nmemory-bound share exceeds CPU-bound share: %s\n",
                milc_share.mean() > sjeng_share.mean()
                    ? "reproduced"
                    : "NOT reproduced");
    std::printf("share grows at lower core VF (milc x1: VF1 %.0f%% vs "
                "VF5 %.0f%%): %s\n",
                share_x1_vf1 * 100.0, share_x1_vf5 * 100.0,
                share_x1_vf1 > share_x1_vf5 ? "reproduced"
                                            : "NOT reproduced");
    std::printf("share grows with fewer busy CUs (milc VF5: x1 %.0f%% "
                "vs x4 %.0f%%): %s\n",
                share_x1_vf5 * 100.0, share_x4_vf5 * 100.0,
                share_x1_vf5 > share_x4_vf5 ? "reproduced"
                                            : "NOT reproduced");
    return 0;
}
