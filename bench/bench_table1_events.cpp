/**
 * @file
 * Table I: the twelve selected hardware events on the (simulated) AMD
 * FX-8320 — E1-E9 feed the dynamic power model, E10-E12 the performance
 * model — plus a plumbing check that every event is actually produced by
 * the simulator and countable through the multiplexed PMC banks.
 */

#include "bench_common.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

int
main()
{
    using namespace ppep;
    bench::header("Table I: selected hardware events",
                  "paper Table I (event list and model roles)");

    util::Table table;
    table.setHeader({"NO.", "Event Code", "Event Name", "Role",
                     "Counts"});
    for (const auto e : sim::allEvents()) {
        const std::size_t i = sim::eventIndex(e);
        const std::string role =
            i < sim::kNumCorePowerEvents
                ? "dynamic power (core, V-scaled)"
                : (i < sim::kNumPowerEvents
                       ? "dynamic power (NB proxy)"
                       : "performance model");
        table.addRow({std::string(sim::eventLabel(e)),
                      std::string(sim::eventCode(e)),
                      std::string(sim::eventName(e)), role,
                      sim::eventCountsCycles(e) ? "cycles"
                                                : "occurrences"});
    }
    table.print(std::cout);

    // Plumbing check: run one interval of a real workload and verify
    // every event is observable through the multiplexed counters.
    sim::Chip chip(sim::fx8320Config(), bench::kSeed);
    workloads::launch(chip,
                      workloads::replicate("433.milc", 2), true);
    trace::Collector col(chip);
    col.collect(2);
    const auto rec = col.collectInterval();

    util::Table counts("\nPer-second chip-wide rates while running "
                       "433.milc x2 at VF5 (multiplexed PMC read):");
    counts.setHeader({"Event", "rate (M/s)"});
    bool all_nonzero = true;
    for (const auto e : sim::allEvents()) {
        const double rate = rec.pmcTotal(e) / rec.duration_s;
        all_nonzero = all_nonzero && rate > 0.0;
        counts.addRow({std::string(sim::eventLabel(e)),
                       util::Table::num(rate / 1e6, 1)});
    }
    counts.print(std::cout);
    std::printf("\nAll 12 events countable: %s\n",
                all_nonzero ? "yes" : "NO");
    return all_nonzero ? 0 : 1;
}
