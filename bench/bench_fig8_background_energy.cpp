/**
 * @file
 * Fig. 8: per-thread energy of memory-bound 433.milc (a) and CPU-bound
 * 458.sjeng (b) at every VF state with 1..4 concurrent instances (power
 * gating enabled).
 *
 * Paper observations: (1) the lowest VF state always minimises energy;
 * (2) at high VF, a single memory-bound instance costs less per thread
 * than a multi-programmed run (NB contention); (3) CPU-bound instances
 * get cheaper per thread as more of them share the chip's static power.
 */

#include "bench_common.hpp"
#include "ppep/governor/energy_explorer.hpp"

int
main()
{
    using namespace ppep;
    bench::header(
        "Fig. 8: per-thread energy vs VF state with 1..4 background "
        "instances",
        "paper Fig. 8 (433.milc memory-bound, 458.sjeng CPU-bound)");

    const auto cfg = sim::fx8320Config();
    const auto models = bench::trainModels(cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);
    const governor::EnergyExplorer explorer(cfg, ppep, bench::kSeed);

    bool obs1 = true;
    double e_milc_x1_vf5 = 0.0, e_milc_x4_vf5 = 0.0;
    double e_sjeng_x1_vf5 = 0.0, e_sjeng_x4_vf5 = 0.0;

    for (const char *prog : {"433.milc", "458.sjeng"}) {
        util::Table fig("\nPer-thread energy, " + std::string(prog) +
                        " (normalised to x1 @ VF5):");
        fig.setHeader({"instances", "VF5", "VF4", "VF3", "VF2", "VF1"});
        double norm = 0.0;
        for (std::size_t copies = 1; copies <= 4; ++copies) {
            const auto pts = explorer.explore(prog, copies);
            if (copies == 1)
                norm = pts[cfg.vf_table.top()].energy_j;
            std::vector<std::string> row{
                std::string(prog).substr(0, 3) + " x" +
                std::to_string(copies)};
            for (std::size_t vf = cfg.vf_table.size(); vf-- > 0;)
                row.push_back(
                    util::Table::num(pts[vf].energy_j / norm, 3));
            fig.addRow(row);

            for (std::size_t vf = 1; vf < pts.size(); ++vf)
                obs1 = obs1 && pts[0].energy_j < pts[vf].energy_j;
            if (std::string(prog) == "433.milc") {
                if (copies == 1)
                    e_milc_x1_vf5 = pts[4].energy_j;
                if (copies == 4)
                    e_milc_x4_vf5 = pts[4].energy_j;
            } else {
                if (copies == 1)
                    e_sjeng_x1_vf5 = pts[4].energy_j;
                if (copies == 4)
                    e_sjeng_x4_vf5 = pts[4].energy_j;
            }
        }
        fig.print(std::cout);
    }

    std::printf("\nObservation 1 — lowest VF = lowest energy "
                "everywhere: %s\n",
                obs1 ? "reproduced" : "NOT reproduced");
    std::printf("Observation 2 — memory-bound x1 cheaper than x4 per "
                "thread at VF5 (%.1f vs %.1f J): %s\n",
                e_milc_x1_vf5, e_milc_x4_vf5,
                e_milc_x1_vf5 < e_milc_x4_vf5 ? "reproduced"
                                              : "NOT reproduced");
    std::printf("Observation 3 — CPU-bound x4 cheaper than x1 per "
                "thread at VF5 (%.1f vs %.1f J): %s\n",
                e_sjeng_x4_vf5, e_sjeng_x1_vf5,
                e_sjeng_x4_vf5 < e_sjeng_x1_vf5 ? "reproduced"
                                                : "NOT reproduced");
    return 0;
}
