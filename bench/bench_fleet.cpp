/**
 * @file
 * Fleet throughput bench: N independent governed sessions over one
 * shared immutable Ppep, scaled across a worker pool.
 *
 * Measures sessions/sec and intervals/sec at 1/2/4/8 threads and
 * cross-checks the determinism contract: every session's telemetry
 * digest must be bit-identical to the serial run at every thread
 * count. Results land in BENCH_fleet.json (schema: bench_common.hpp).
 */

#include <chrono>
#include <cstdlib>
#include <ostream>
#include <streambuf>
#include <thread>

#include "bench_common.hpp"
#include "ppep/runtime/fleet.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"

namespace {

using namespace ppep;

/** Distinct 2-CU mixes rotated across the fleet's sessions. */
const std::vector<std::vector<std::string>> kMixes = {
    {"429.mcf", "458.sjeng"},
    {"416.gamess", "swaptions"},
    {"EP", "CG"},
    {"458.sjeng", "416.gamess"},
};

runtime::FleetSpec
makeSpec(std::size_t n_sessions)
{
    runtime::FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = bench::kSeed;
    spec.training_combos = bench::singleProgramCombos();
    spec.store.emplace(); // cache shared with the other benches
    spec.warmup = 2;
    spec.intervals = 30;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        runtime::FleetSessionSpec ss;
        ss.name = "fleet-s" + std::to_string(i);
        ss.seed = 100 + i;
        ss.pg = (i % 2) == 0;
        ss.one_per_cu = kMixes[i % kMixes.size()];
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

/** Discards everything; isolates encode cost from the filesystem. */
class NullStreambuf : public std::streambuf
{
  protected:
    int
    overflow(int c) override
    {
        return c == traits_type::eof() ? 0 : c;
    }
    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

/**
 * ns per telemetry row through a real sink into a null stream — the
 * encode cost a fleet's writer threads pay per governed interval.
 */
template <typename Sink>
double
encodeNsPerRow(const sim::ChipConfig &cfg)
{
    sim::Chip chip(cfg, 7);
    chip.setAllVf(2);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    trace::Collector col(chip);
    col.collect(3);
    const trace::IntervalRecord rec = col.collectInterval();
    const std::vector<std::size_t> cu_vf(cfg.n_cus, 2);

    runtime::IntervalTelemetry t;
    t.index = 1;
    t.time_s = 0.2;
    t.rec = &rec;
    t.cu_vf = &cu_vf;
    t.cap_w = 80.0;
    t.predicted_power_w = 41.25;
    t.decision_latency_s = 3e-6;

    NullStreambuf null;
    std::ostream out(&null);
    Sink sink(out);
    sink.onInterval(t); // warm the row buffer
    const std::size_t iters = 200000;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        sink.onInterval(t);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
}

} // namespace

int
main()
{
    using namespace ppep;
    bench::header(
        "Fleet scaling: thread-pooled multi-session governing",
        "runtime extension (not a paper figure): shared immutable Ppep, "
        "per-session state, bit-identical at any thread count");

    const std::size_t n_sessions = 8;
    runtime::Fleet fleet(makeSpec(n_sessions));
    fleet.prepare(); // keep training out of the timed region

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("sessions: %zu, intervals/session: %zu, "
                "hardware_concurrency: %u\n\n",
                n_sessions, fleet.spec().intervals, hw);

    bench::BenchJson json("fleet", "BENCH_fleet.json");
    json.add("env", "hardware_concurrency", static_cast<double>(hw),
             "threads");
    json.add("env", "sessions", static_cast<double>(n_sessions),
             "count");

    util::Table table("Fleet scaling (8 sessions, shared Ppep)");
    table.setHeader({"threads", "wall_s", "sessions_per_s",
                     "intervals_per_s", "speedup", "digests"});

    std::vector<std::uint64_t> serial_digests;
    double serial_wall = 0.0;
    bool all_match = true;

    for (const std::size_t threads : {1, 2, 4, 8}) {
        const auto res = fleet.run(threads);
        if (res.failed != 0) {
            std::fprintf(stderr, "FLEET BENCH FAILED: %zu session(s) "
                         "errored at %zu threads\n",
                         res.failed, threads);
            return EXIT_FAILURE;
        }

        bool match = true;
        if (threads == 1) {
            serial_wall = res.wall_s;
            for (const auto &s : res.sessions)
                serial_digests.push_back(s.telemetry_digest);
        } else {
            for (std::size_t i = 0; i < res.sessions.size(); ++i)
                match &= res.sessions[i].telemetry_digest ==
                         serial_digests[i];
        }
        all_match &= match;

        const double speedup =
            res.wall_s > 0.0 ? serial_wall / res.wall_s : 0.0;
        table.addRow({std::to_string(threads),
                      util::Table::num(res.wall_s, 3),
                      util::Table::num(res.sessions_per_s, 2),
                      util::Table::num(res.intervals_per_s, 1),
                      util::Table::num(speedup, 2) + "x",
                      match ? "bit-identical" : "MISMATCH"});

        json.add("fleet", "wall_s", res.wall_s, "s", threads);
        json.add("fleet", "sessions_per_s", res.sessions_per_s,
                 "1/s", threads);
        json.add("fleet", "intervals_per_s", res.intervals_per_s,
                 "1/s", threads);
        json.add("fleet", "speedup_vs_serial", speedup, "x", threads);
        json.add("fleet", "digest_match", match ? 1.0 : 0.0, "bool",
                 threads);
    }

    table.print(std::cout);

    const double csv_ns =
        encodeNsPerRow<runtime::CsvSink>(fleet.spec().cfg);
    const double jsonl_ns =
        encodeNsPerRow<runtime::JsonlSink>(fleet.spec().cfg);
    std::printf("\ntelemetry encode (null stream): csv %.1f ns/row, "
                "jsonl %.1f ns/row\n",
                csv_ns, jsonl_ns);
    json.add("encode_csv", "ns_per_row", csv_ns, "ns");
    json.add("encode_jsonl", "ns_per_row", jsonl_ns, "ns");

    std::printf("\nDeterminism: per-session telemetry digests %s the "
                "serial run at every thread count.\n",
                all_match ? "match" : "DO NOT match");
    if (hw < 8)
        std::printf("(note: only %u hardware thread(s) available — "
                    "speedup is bounded by the host, not the pool)\n",
                    hw);

    json.write();
    return all_match ? EXIT_SUCCESS : EXIT_FAILURE;
}
