/**
 * @file
 * Fleet throughput bench: N independent governed sessions over an
 * immutable model registry, scaled across a worker pool.
 *
 * Four scenarios:
 *   - homogeneous: 8 FX-8320 sessions over one shared Ppep (the
 *     original fleet bench);
 *   - heterogeneous: 8 sessions across three distinct platforms
 *     (FX-8320, Phenom II, FX-8320 NB-DVFS) with two tenants sharing
 *     the first FX chip — one model-registry entry per platform,
 *     per-tenant attribution columns in the telemetry stream;
 *   - batched: the same homogeneous fleet driven through one SoA
 *     sim::ChipBatch SIMD pass — digests must replay the scalar
 *     serial run bit for bit;
 *   - replay: the homogeneous fleet recorded once at simulation speed,
 *     then re-driven from the memory-mapped trace with zero simulation
 *     — the governing-pipeline throughput with the simulator factored
 *     out;
 *   - budget: the same fleet under a global watt contract with a
 *     mid-run budget drop, solved by the single-pass predictive
 *     BudgetArbiter and by the retained iterative baseline — the
 *     paper's Fig. 7 comparison (predictive one-step capping vs
 *     reactive search) at fleet scale, plus a 64-session x 8-VF
 *     synthetic decide() latency microbench.
 *
 * The first two scale across 1/2/4/8 threads and cross-check the
 * determinism contract: every session's telemetry digest must be
 * bit-identical to the serial run at every thread count.
 *
 * The simulated scenarios are simulation-bound: their intervals/s
 * measures mostly Chip::step, not governing. The replay scenario
 * isolates the governed pipeline; its ratio over the simulated rate is
 * the committed (host-normalized) witness that trace ingest is an
 * order of magnitude faster than simulation.
 *
 * Modes:
 *   bench_fleet                full run, writes BENCH_fleet.json
 *   bench_fleet --quick        shorter timed sections (CI smoke)
 *   bench_fleet --check FILE   compare against a committed baseline
 *                              instead of writing one: fails on any
 *                              digest mismatch (including batched and
 *                              replay), when the mixed fleet's
 *                              intervals/s falls below 30% of the
 *                              homogeneous fleet's or regresses more
 *                              than 25% against the committed ratio,
 *                              when replay ingest clears neither 1M
 *                              intervals/s nor 10x the simulated
 *                              rate, or — on hosts with more
 *                              than one hardware thread — when the
 *                              8-thread pool fails to beat the serial
 *                              run. Every ratio is host-normalized by
 *                              construction: both sides run here.
 *                              Arbitration gates: the baseline file's
 *                              schema version must match this binary's
 *                              (mismatch = regenerate, checked before
 *                              anything else), the single-pass arbiter
 *                              must re-settle a budget drop within 2
 *                              intervals while the iterative baseline
 *                              needs at least 3, the arbiter's cap-sum
 *                              self-check must be clean, and — on
 *                              simulation-bound hosts, the same escape
 *                              hatch the throughput ratios use — the
 *                              64-session decide() must stay under the
 *                              latency ceiling.
 */

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <streambuf>
#include <thread>

#include "bench_common.hpp"
#include "ppep/runtime/fleet.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"

namespace {

using namespace ppep;

constexpr double kMixedRatioFloor = 0.3;  // acceptance criterion
constexpr double kRegressionBand = 1.25;  // vs committed baseline
constexpr double kReplayOverSimFloor = 10.0; // replay vs simulated
constexpr double kReplayIpsFloor = 1e6;      // absolute replay rate
constexpr double kSpeedupFloor = 1.05; // 8-thread pool vs serial
constexpr double kSinglePassSettleCeil = 2.0; // intervals after a drop
constexpr double kIterativeSettleFloor = 3.0; // baseline must be slower
constexpr double kDecideUsCeil = 200.0; // 64-session decide() latency

/** Distinct 2-CU mixes rotated across the fleet's sessions. */
const std::vector<std::vector<std::string>> kMixes = {
    {"429.mcf", "458.sjeng"},
    {"416.gamess", "swaptions"},
    {"EP", "CG"},
    {"458.sjeng", "416.gamess"},
};

std::vector<const workloads::Combination *>
trainingSet(bool quick)
{
    if (!quick)
        return bench::singleProgramCombos();
    // CI smoke: a small fixed set keeps training ~1 s per platform.
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < 12)
            out.push_back(&c);
    return out;
}

runtime::FleetSpec
baseSpec(bool quick)
{
    runtime::FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = bench::kSeed;
    spec.training_combos = trainingSet(quick);
    spec.store.emplace(); // cache shared with the other benches
    spec.warmup = 2;
    spec.intervals = quick ? 10 : 30;
    return spec;
}

runtime::FleetSpec
makeHomoSpec(std::size_t n_sessions, bool quick)
{
    runtime::FleetSpec spec = baseSpec(quick);
    for (std::size_t i = 0; i < n_sessions; ++i) {
        runtime::FleetSessionSpec ss;
        ss.name = "fleet-s" + std::to_string(i);
        ss.seed = 100 + i;
        ss.pg = (i % 2) == 0;
        ss.one_per_cu = kMixes[i % kMixes.size()];
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

/** 8 sessions over 3 platforms, 2 tenants on the first FX chip. */
runtime::FleetSpec
makeHeteroSpec(bool quick)
{
    runtime::FleetSpec spec = baseSpec(quick);
    const struct
    {
        const char *alias;
        sim::ChipConfig cfg;
        std::size_t count;
    } entries[] = {
        {"fx", sim::fx8320Config(), 3},
        {"phenom", sim::phenomIIConfig(), 2},
        {"nbdvfs", sim::fx8320NbDvfsConfig(), 3},
    };
    std::size_t i = 0;
    for (const auto &entry : entries) {
        for (std::size_t k = 0; k < entry.count; ++k, ++i) {
            runtime::FleetSessionSpec ss;
            ss.name = std::string(entry.alias) + "-" +
                      std::to_string(k);
            ss.seed = 200 + i;
            ss.pg = entry.cfg.pg_supported && (i % 2) == 0;
            ss.one_per_cu = kMixes[i % kMixes.size()];
            ss.cfg = entry.cfg;
            spec.sessions.push_back(std::move(ss));
        }
    }
    // Two tenants split the first FX chip's four CUs; their jobs
    // replace the one_per_cu placement on that session.
    auto &first = spec.sessions.front();
    first.one_per_cu.clear();
    const sim::ChipConfig &cfg = *first.cfg;
    for (std::size_t t = 0; t < 2; ++t) {
        runtime::TenantSpec ts;
        ts.name = t == 0 ? "alpha" : "beta";
        for (std::size_t cu = t; cu < cfg.n_cus; cu += 2)
            for (std::size_t c = 0; c < cfg.cores_per_cu; ++c)
                ts.cores.push_back(cu * cfg.cores_per_cu + c);
        ts.jobs.push_back(
            {ts.cores.front(), kMixes[t].front(), true});
        first.tenants.push_back(std::move(ts));
    }
    return spec;
}

/** Discards everything; isolates encode cost from the filesystem. */
class NullStreambuf : public std::streambuf
{
  protected:
    int
    overflow(int c) override
    {
        return c == traits_type::eof() ? 0 : c;
    }
    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

/**
 * ns per telemetry row through a real sink into a null stream — the
 * encode cost a fleet's writer threads pay per governed interval.
 */
template <typename Sink>
double
encodeNsPerRow(const sim::ChipConfig &cfg, bool quick)
{
    sim::Chip chip(cfg, 7);
    chip.setAllVf(2);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    trace::Collector col(chip);
    col.collect(3);
    const trace::IntervalRecord rec = col.collectInterval();
    const std::vector<std::size_t> cu_vf(cfg.n_cus, 2);

    runtime::IntervalTelemetry t;
    t.index = 1;
    t.time_s = 0.2;
    t.rec = &rec;
    t.cu_vf = &cu_vf;
    t.cap_w = 80.0;
    t.predicted_power_w = 41.25;
    t.decision_latency_s = 3e-6;

    NullStreambuf null;
    std::ostream out(&null);
    Sink sink(out);
    sink.onInterval(t); // warm the row buffer
    const std::size_t iters = quick ? 20000 : 200000;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        sink.onInterval(t);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(iters);
}

/** Outcome of one scenario's 1/2/4/8-thread sweep. */
struct ScenarioResult
{
    bool all_match = true;
    /** intervals/s at the widest pool (8 threads). */
    double best_intervals_per_s = 0.0;
    /** Best wall-clock speedup over the serial run. */
    double best_speedup = 0.0;
    /** Per-session digests of the serial run — the reference the
     *  batched drive must reproduce. */
    std::vector<std::uint64_t> serial_digests;
};

ScenarioResult
runScenario(runtime::Fleet &fleet, const char *label,
            bench::BenchJson &json)
{
    util::Table table(std::string("Fleet scaling: ") + label);
    table.setHeader({"threads", "wall_s", "sessions_per_s",
                     "intervals_per_s", "speedup", "digests"});

    ScenarioResult out;
    double serial_wall = 0.0;

    for (const std::size_t threads : {1, 2, 4, 8}) {
        const auto res = fleet.run(threads);
        if (res.failed != 0) {
            std::fprintf(stderr,
                         "FLEET BENCH FAILED: %zu session(s) errored "
                         "at %zu threads (%s)\n",
                         res.failed, threads, label);
            std::exit(EXIT_FAILURE);
        }

        bool match = true;
        if (threads == 1) {
            serial_wall = res.wall_s;
            for (const auto &s : res.sessions)
                out.serial_digests.push_back(s.telemetry_digest);
        } else {
            for (std::size_t i = 0; i < res.sessions.size(); ++i)
                match &= res.sessions[i].telemetry_digest ==
                         out.serial_digests[i];
        }
        out.all_match &= match;

        const double speedup =
            res.wall_s > 0.0 ? serial_wall / res.wall_s : 0.0;
        if (speedup > out.best_speedup)
            out.best_speedup = speedup;
        table.addRow({std::to_string(threads),
                      util::Table::num(res.wall_s, 3),
                      util::Table::num(res.sessions_per_s, 2),
                      util::Table::num(res.intervals_per_s, 1),
                      util::Table::num(speedup, 2) + "x",
                      match ? "bit-identical" : "MISMATCH"});

        json.add(label, "wall_s", res.wall_s, "s", threads);
        json.add(label, "sessions_per_s", res.sessions_per_s, "1/s",
                 threads);
        json.add(label, "intervals_per_s", res.intervals_per_s, "1/s",
                 threads);
        json.add(label, "speedup_vs_serial", speedup, "x", threads);
        json.add(label, "digest_match", match ? 1.0 : 0.0, "bool",
                 threads);
        if (threads == 8)
            out.best_intervals_per_s = res.intervals_per_s;
    }
    table.print(std::cout);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ppep;
    bool quick = false;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--check FILE]\n",
                         argv[0]);
            return EXIT_FAILURE;
        }
    }

    bench::header(
        "Fleet scaling: thread-pooled multi-session governing",
        "runtime extension (not a paper figure): immutable model "
        "registry, per-session state, bit-identical at any thread "
        "count");

    const std::size_t n_sessions = 8;
    runtime::Fleet homo(makeHomoSpec(n_sessions, quick));
    runtime::Fleet hetero(makeHeteroSpec(quick));
    homo.prepare(); // keep training out of the timed region
    hetero.prepare();

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("sessions: %zu, intervals/session: %zu, "
                "hardware_concurrency: %u\n",
                n_sessions, homo.spec().intervals, hw);
    std::printf("heterogeneous registry: %zu model entries for %zu "
                "sessions\n\n",
                hetero.modelEntryCount(),
                hetero.spec().sessions.size());

    bench::BenchJson json("fleet", "BENCH_fleet.json");
    json.add("env", "hardware_concurrency", static_cast<double>(hw),
             "threads");
    json.add("env", "sessions", static_cast<double>(n_sessions),
             "count");
    json.add("env", "hetero_model_entries",
             static_cast<double>(hetero.modelEntryCount()), "count");

    const ScenarioResult homo_res = runScenario(homo, "fleet", json);
    const ScenarioResult hetero_res =
        runScenario(hetero, "fleet_hetero", json);
    bool all_match = homo_res.all_match && hetero_res.all_match;

    // Batched SoA drive: the same homogeneous fleet stepped through
    // one sim::ChipBatch SIMD pass on the calling thread. Digests must
    // reproduce the scalar serial run bit for bit.
    {
        runtime::FleetSpec bspec = makeHomoSpec(n_sessions, quick);
        bspec.batched = true;
        runtime::Fleet batched(std::move(bspec));
        batched.prepare();
        const auto res = batched.run(1);
        if (res.failed != 0) {
            std::fprintf(stderr,
                         "FLEET BENCH FAILED: %zu session(s) errored "
                         "in the batched drive\n",
                         res.failed);
            return EXIT_FAILURE;
        }
        bool match = true;
        for (std::size_t i = 0; i < res.sessions.size(); ++i)
            match &= res.sessions[i].telemetry_digest ==
                     homo_res.serial_digests[i];
        all_match &= match;
        std::printf("\nbatched SoA drive: %.1f intervals/s, digests "
                    "%s\n",
                    res.intervals_per_s,
                    match ? "bit-identical" : "MISMATCH");
        json.add("fleet_batched", "intervals_per_s",
                 res.intervals_per_s, "1/s", 1);
        json.add("fleet_batched", "digest_match", match ? 1.0 : 0.0,
                 "bool", 1);
    }

    // Replay ingest: record the homogeneous fleet once at simulation
    // speed, then re-drive governing from the memory-mapped trace.
    // Longer streams than the scaling sweep keep the replay's wall
    // clock out of timer-resolution noise.
    double replay_over_sim = 0.0;
    double replay_ips = 0.0;
    {
        const std::string trace_path =
            (std::filesystem::temp_directory_path() /
             "ppep_bench_fleet_replay.trc")
                .string();
        const std::size_t replay_intervals = quick ? 200 : 2000;

        runtime::FleetSpec rec_spec = makeHomoSpec(n_sessions, quick);
        rec_spec.intervals = replay_intervals;
        rec_spec.record_path = trace_path;
        runtime::Fleet rec_fleet(std::move(rec_spec));
        rec_fleet.prepare();
        const auto rec_res = rec_fleet.run(8);

        runtime::FleetSpec rep_spec = makeHomoSpec(n_sessions, quick);
        rep_spec.intervals = replay_intervals;
        rep_spec.replay_path = trace_path;
        runtime::Fleet rep_fleet(std::move(rep_spec));
        rep_fleet.prepare();
        // Two passes: the first faults the mapping in and warms every
        // per-session scratch buffer; the second measures the steady
        // ingest rate a long-lived replay consumer actually sees.
        auto rep_res = rep_fleet.run(8);
        {
            const auto warm = rep_fleet.run(8);
            if (warm.failed == 0 &&
                warm.intervals_per_s > rep_res.intervals_per_s)
                rep_res = warm;
        }
        if (rec_res.failed != 0 || rep_res.failed != 0) {
            std::fprintf(stderr,
                         "FLEET BENCH FAILED: record/replay session(s) "
                         "errored (%zu/%zu)\n",
                         rec_res.failed, rep_res.failed);
            return EXIT_FAILURE;
        }
        bool match = true;
        for (std::size_t i = 0; i < rep_res.sessions.size(); ++i)
            match &= rep_res.sessions[i].telemetry_digest ==
                     rec_res.sessions[i].telemetry_digest;
        all_match &= match;
        replay_ips = rep_res.intervals_per_s;
        replay_over_sim = rec_res.intervals_per_s > 0.0
                              ? rep_res.intervals_per_s /
                                    rec_res.intervals_per_s
                              : 0.0;
        std::printf("replay ingest: %.1f intervals/s vs %.1f simulated "
                    "(%.1fx), digests %s\n",
                    rep_res.intervals_per_s, rec_res.intervals_per_s,
                    replay_over_sim,
                    match ? "bit-identical" : "MISMATCH");
        json.add("fleet_replay", "intervals_per_s",
                 rep_res.intervals_per_s, "1/s", 8);
        json.add("fleet_replay", "recorded_intervals_per_s",
                 rec_res.intervals_per_s, "1/s", 8);
        json.add("fleet_replay", "replay_over_simulated",
                 replay_over_sim, "x");
        json.add("fleet_replay", "digest_match", match ? 1.0 : 0.0,
                 "bool", 8);
        std::filesystem::remove(trace_path);
    }

    // The simulated fleets are simulation-bound when the same governed
    // pipeline runs far faster without the simulator underneath it.
    const bool sim_bound = replay_over_sim >= 2.0;
    json.add("env", "simulation_bound", sim_bound ? 1.0 : 0.0, "bool");

    // Fleet budget arbitration: the Fig. 7 systems claim at fleet
    // scale. A mid-run budget drop is handed to the single-pass
    // predictive BudgetArbiter and to the retained iterative baseline;
    // the predictive sweep re-settles measured fleet power under the
    // lowered contract in about one interval because every session's
    // per-VF power is already predicted, while the reactive baseline
    // walks caps down step by step. The watt contract is calibrated
    // off this fleet's own uncapped draw, so the drop binds on every
    // host and training set.
    double sp_settle = 0.0;
    double iter_settle = 0.0;
    double settle_ratio = 0.0;
    std::size_t cap_sum_violations = 0;
    {
        const std::size_t budget_intervals = quick ? 16 : 30;
        const std::size_t drop_at = quick ? 4 : 8;

        runtime::FleetSpec cal = makeHomoSpec(n_sessions, quick);
        cal.intervals = budget_intervals;
        cal.arbiter.emplace(); // arbitrated but uncapped: calibration
        runtime::Fleet cal_fleet(std::move(cal));
        cal_fleet.prepare();
        const auto cal_res = cal_fleet.run(1);
        if (cal_res.failed != 0) {
            std::fprintf(stderr,
                         "FLEET BENCH FAILED: %zu session(s) errored "
                         "in the budget calibration run\n",
                         cal_res.failed);
            return EXIT_FAILURE;
        }
        const double total_w =
            cal_res.mean_power_w * static_cast<double>(n_sessions);
        const double b_high = 1.2 * total_w;
        const double b_low = 0.8 * total_w;

        const auto makeBudgetSpec = [&](bool iterative) {
            runtime::FleetSpec s = makeHomoSpec(n_sessions, quick);
            s.intervals = budget_intervals;
            runtime::ArbiterSpec a;
            a.budget = ppep::governor::CapSchedule(
                {{0, b_high}, {drop_at, b_low}});
            a.iterative = iterative;
            s.arbiter = std::move(a);
            return s;
        };

        // The single-pass arbiter across 1/2/8 threads: the
        // determinism contract must survive arbitration (caps are
        // decided in the barrier completion step, serially).
        std::vector<std::uint64_t> serial_digests;
        bool match = true;
        runtime::ArbiterReport sp_report;
        for (const std::size_t threads : {1, 2, 8}) {
            runtime::Fleet f(makeBudgetSpec(false));
            f.prepare();
            const auto res = f.run(threads);
            if (res.failed != 0) {
                std::fprintf(stderr,
                             "FLEET BENCH FAILED: %zu session(s) "
                             "errored in the arbitrated fleet at %zu "
                             "threads\n",
                             res.failed, threads);
                return EXIT_FAILURE;
            }
            if (threads == 1) {
                for (const auto &s : res.sessions)
                    serial_digests.push_back(s.telemetry_digest);
                sp_report = res.arbiter;
            } else {
                for (std::size_t i = 0; i < res.sessions.size(); ++i)
                    match &= res.sessions[i].telemetry_digest ==
                             serial_digests[i];
            }
        }
        all_match &= match;

        runtime::Fleet iter_fleet(makeBudgetSpec(true));
        iter_fleet.prepare();
        const auto iter_res = iter_fleet.run(1);
        if (iter_res.failed != 0) {
            std::fprintf(stderr,
                         "FLEET BENCH FAILED: %zu session(s) errored "
                         "in the iterative-arbiter fleet\n",
                         iter_res.failed);
            return EXIT_FAILURE;
        }
        const runtime::ArbiterReport &ir = iter_res.arbiter;

        // A drop that never re-settled inside the run counts as the
        // whole post-drop window — "still searching at the end".
        const auto settled = [&](const runtime::ArbiterReport &r) {
            if (r.budget_drops > 0 && r.mean_settle_intervals == 0.0)
                return static_cast<double>(budget_intervals - drop_at);
            return r.mean_settle_intervals;
        };
        sp_settle = settled(sp_report);
        iter_settle = settled(ir);
        settle_ratio = sp_settle > 0.0 ? iter_settle / sp_settle : 0.0;
        // Gate the invariant on the single-pass arbiter only: the
        // reactive baseline's caps structurally overhang a dropped
        // budget while it walks down — that overhang IS the contrast
        // being measured, not a regression.
        cap_sum_violations = sp_report.cap_sum_violations;

        std::printf("\nbudget arbitration (%.0f W -> %.0f W at "
                    "interval %zu):\n",
                    b_high, b_low, drop_at);
        std::printf("  single-pass: settled in %.1f interval(s), %zu "
                    "violation interval(s), mean decide %.1f us, "
                    "digests %s\n",
                    sp_settle, sp_report.violation_intervals,
                    sp_report.mean_decide_s * 1e6,
                    match ? "bit-identical" : "MISMATCH");
        std::printf("  iterative:   settled in %.1f interval(s), %zu "
                    "violation interval(s) (%.1fx slower to "
                    "converge)\n",
                    iter_settle, ir.violation_intervals, settle_ratio);

        json.add("fleet_budget", "single_pass_settle_intervals",
                 sp_settle, "intervals");
        json.add("fleet_budget", "iterative_settle_intervals",
                 iter_settle, "intervals");
        json.add("fleet_budget", "iterative_over_single_pass_settle",
                 settle_ratio, "x");
        json.add("fleet_budget", "single_pass_violation_intervals",
                 static_cast<double>(sp_report.violation_intervals),
                 "count");
        json.add("fleet_budget", "iterative_violation_intervals",
                 static_cast<double>(ir.violation_intervals), "count");
        json.add("fleet_budget", "cap_sum_violations",
                 static_cast<double>(cap_sum_violations), "count");
        json.add("fleet_budget", "mean_headroom_w",
                 sp_report.mean_headroom_w, "W");
        json.add("fleet_budget", "mean_decide_us",
                 sp_report.mean_decide_s * 1e6, "us");
        json.add("fleet_budget", "digest_match", match ? 1.0 : 0.0,
                 "bool");
    }

    // Synthetic 64-session x 8-VF decide() microbench: the serial
    // barrier-completion cost a wide fleet pays per interval — gather
    // into the SoA lanes plus the full hull/sort/sweep solve.
    double decide_us = 0.0;
    {
        constexpr std::size_t kLanes = 64;
        constexpr std::size_t kVf = 8;
        std::vector<runtime::FleetArbiter::SessionSetup> setups(kLanes);
        for (std::size_t s = 0; s < kLanes; ++s) {
            setups[s].n_vf = kVf;
            setups[s].priority =
                1.0 + static_cast<double>(s % 4) * 0.25;
            setups[s].slo_floor_w = 5.0;
        }
        runtime::ArbiterSpec aspec;
        aspec.budget = ppep::governor::CapSchedule(900.0);
        aspec.tiers = {{"rack0", 500.0}, {"rack1", 500.0}};
        const auto arb = runtime::makeArbiter(aspec, setups);

        std::vector<model::VfPrediction> rows(kLanes * kVf);
        for (std::size_t s = 0; s < kLanes; ++s)
            for (std::size_t k = 0; k < kVf; ++k) {
                auto &r = rows[s * kVf + k];
                r.chip_power_w = 8.0 + 3.0 * static_cast<double>(k) +
                                 0.05 * static_cast<double>(s);
                r.total_ips = (1.0 + 0.01 * static_cast<double>(s)) *
                              1e9 *
                              std::sqrt(static_cast<double>(k + 1));
            }
        const auto oneInterval = [&](std::size_t i) {
            for (std::size_t s = 0; s < kLanes; ++s)
                arb->gather(s, rows.data() + s * kVf, kVf,
                            10.0 + 0.1 * static_cast<double>(s));
            // Single-threaded microbench: this loop IS the serial
            // section decide() requires.
            util::RoleGuard serial(runtime::kArbiterSerialRole);
            arb->decide(i);
        };
        for (std::size_t i = 0; i < 16; ++i) // warm
            oneInterval(i);
        const std::size_t iters = quick ? 2000 : 20000;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            oneInterval(16 + i);
        const auto t1 = std::chrono::steady_clock::now();
        decide_us =
            std::chrono::duration<double, std::micro>(t1 - t0).count() /
            static_cast<double>(iters);
        std::printf("  arbiter decide (64 sessions x 8 VF, synthetic): "
                    "%.1f us/interval\n",
                    decide_us);
        json.add("arbiter", "decide_us_64x8", decide_us, "us");
    }

    // Host-normalized throughput ratio: the mixed fleet pays for
    // per-config model resolution, tenant attribution, and the wider
    // Phenom telemetry rows; both sides of the ratio run on this host.
    const double mixed_ratio =
        homo_res.best_intervals_per_s > 0.0
            ? hetero_res.best_intervals_per_s /
                  homo_res.best_intervals_per_s
            : 0.0;
    std::printf("\nmixed/homogeneous intervals-per-s ratio at 8 "
                "threads: %.2f\n",
                mixed_ratio);
    json.add("fleet_hetero", "mixed_over_homo_intervals_per_s",
             mixed_ratio, "x");

    const double csv_ns =
        encodeNsPerRow<runtime::CsvSink>(homo.spec().cfg, quick);
    const double jsonl_ns =
        encodeNsPerRow<runtime::JsonlSink>(homo.spec().cfg, quick);
    std::printf("\ntelemetry encode (null stream): csv %.1f ns/row, "
                "jsonl %.1f ns/row\n",
                csv_ns, jsonl_ns);
    json.add("encode_csv", "ns_per_row", csv_ns, "ns");
    json.add("encode_jsonl", "ns_per_row", jsonl_ns, "ns");

    std::printf("\nDeterminism: per-session telemetry digests %s the "
                "serial run at every thread count.\n",
                all_match ? "match" : "DO NOT match");
    if (hw < 8)
        std::printf("(note: only %u hardware thread(s) available — "
                    "speedup is bounded by the host, not the pool)\n",
                    hw);

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in.is_open()) {
            std::fprintf(stderr, "cannot open baseline %s\n",
                         check_path.c_str());
            return EXIT_FAILURE;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        // Schema gate first: comparing against a baseline written by a
        // different schema would silently read NaNs, so refuse with a
        // regeneration hint before any metric is touched.
        const int base_schema = bench::baselineSchema(buf.str());
        if (base_schema != bench::kBenchSchemaVersion) {
            std::fprintf(stderr,
                         "FAIL: baseline %s has schema version %d but "
                         "this binary writes version %d — regenerate "
                         "BENCH_fleet.json with a full bench_fleet "
                         "run\n",
                         check_path.c_str(), base_schema,
                         bench::kBenchSchemaVersion);
            return EXIT_FAILURE;
        }
        const double base_ratio = bench::baselineValue(
            buf.str(), "mixed_over_homo_intervals_per_s");
        if (!(base_ratio > 0.0)) {
            std::fprintf(stderr,
                         "baseline %s has no usable "
                         "mixed_over_homo_intervals_per_s row\n",
                         check_path.c_str());
            return EXIT_FAILURE;
        }
        bool ok = all_match;
        if (!all_match)
            std::fprintf(stderr, "FAIL: telemetry digests diverged "
                                 "across thread counts\n");
        if (mixed_ratio < kMixedRatioFloor) {
            std::fprintf(stderr,
                         "FAIL: mixed-fleet throughput ratio %.2f is "
                         "under the %.2f acceptance floor\n",
                         mixed_ratio, kMixedRatioFloor);
            ok = false;
        }
        if (mixed_ratio * kRegressionBand < base_ratio) {
            std::fprintf(stderr,
                         "FAIL: mixed-fleet throughput ratio %.2f "
                         "regressed >25%% vs committed baseline %.2f\n",
                         mixed_ratio, base_ratio);
            ok = false;
        }
        // Acceptance is an OR: an absolute 1M intervals/s clears the
        // gate on wide hosts; the host-normalized 10x ratio clears it
        // where raw throughput is bounded by the machine.
        if (replay_ips < kReplayIpsFloor &&
            replay_over_sim < kReplayOverSimFloor) {
            std::fprintf(stderr,
                         "FAIL: replay ingest %.1f intervals/s is "
                         "under %.0f and only %.1fx the simulated "
                         "rate (floor %.0fx)\n",
                         replay_ips, kReplayIpsFloor, replay_over_sim,
                         kReplayOverSimFloor);
            ok = false;
        }
        // The Fig. 7 claim at fleet scale: predictive single-pass
        // capping settles a budget drop in ~1 interval; the reactive
        // baseline must demonstrably need its iterative search.
        if (sp_settle > kSinglePassSettleCeil) {
            std::fprintf(stderr,
                         "FAIL: single-pass arbiter settled in %.1f "
                         "intervals (ceiling %.1f)\n",
                         sp_settle, kSinglePassSettleCeil);
            ok = false;
        }
        if (iter_settle < kIterativeSettleFloor) {
            std::fprintf(stderr,
                         "FAIL: iterative baseline settled in %.1f "
                         "intervals (< %.1f) — the comparison no "
                         "longer demonstrates the predictive win\n",
                         iter_settle, kIterativeSettleFloor);
            ok = false;
        }
        if (cap_sum_violations != 0) {
            std::fprintf(stderr,
                         "FAIL: arbiter cap-sum self-check tripped %zu "
                         "time(s) — installed caps exceeded the "
                         "budget\n",
                         cap_sum_violations);
            ok = false;
        }
        if (!sim_bound) {
            std::printf("arbiter latency gate skipped: host is not "
                        "simulation-bound, timing is unreliable\n");
        } else if (decide_us > kDecideUsCeil) {
            std::fprintf(stderr,
                         "FAIL: 64-session arbiter decide %.1f us is "
                         "over the %.0f us ceiling\n",
                         decide_us, kDecideUsCeil);
            ok = false;
        }
        if (hw <= 1) {
            std::printf("speedup gate skipped: single hardware "
                        "thread\n");
        } else if (homo_res.best_speedup < kSpeedupFloor) {
            std::fprintf(stderr,
                         "FAIL: best pool speedup %.2fx is under the "
                         "%.2fx floor on a %u-thread host\n",
                         homo_res.best_speedup, kSpeedupFloor, hw);
            ok = false;
        }
        std::printf("baseline check vs %s: ratio %.2f vs committed "
                    "%.2f -> %s\n",
                    check_path.c_str(), mixed_ratio, base_ratio,
                    ok ? "OK" : "REGRESSED");
        return ok ? EXIT_SUCCESS : EXIT_FAILURE;
    }

    json.write();
    return all_match ? EXIT_SUCCESS : EXIT_FAILURE;
}
