/**
 * @file
 * Exploration-kernel microbench: ns per full VF-table exploration and
 * per VF-state, scalar reference vs batched kernel, plus the telemetry
 * encode cost per row (CSV and JSONL into a null stream).
 *
 * Modes:
 *   bench_explore                 full run, writes BENCH_explore.json
 *   bench_explore --quick         shorter timed sections (CI smoke)
 *   bench_explore --check FILE    compare against a committed baseline
 *                                 instead of writing one: fails if the
 *                                 batched/scalar speedup regressed more
 *                                 than 25% or dropped below the 2x
 *                                 acceptance floor. The ratio is
 *                                 host-normalized by construction —
 *                                 both sides of it run on this machine.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <streambuf>

#include "bench_common.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"

namespace {

using namespace ppep;
using Clock = std::chrono::steady_clock;

constexpr double kSpeedupFloor = 2.0;     // acceptance criterion
constexpr double kRegressionBand = 1.25;  // vs committed baseline

struct TrainedStack
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;
    TrainedStack()
    {
        // Small fixed training set: bench startup stays ~1 s so the CI
        // smoke job can afford a Release build + run per push.
        model::Trainer trainer(cfg, bench::kSeed);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1 && training.size() < 12)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }
};

trace::IntervalRecord
measure(const sim::ChipConfig &cfg, const std::string &program,
        std::size_t copies, std::size_t vf)
{
    sim::Chip chip(cfg, 77);
    chip.setAllVf(vf);
    workloads::launch(chip, workloads::replicate(program, copies), true);
    trace::Collector col(chip);
    col.collect(3);
    return col.collectInterval();
}

/**
 * Best-of-5 wall time for @p iters calls of @p body, in ns per call.
 * Taking the minimum over repetitions rejects scheduler interference,
 * which otherwise dominates on small shared runners.
 */
template <typename F>
double
nsPerCall(std::size_t iters, F &&body)
{
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            body();
        const auto t1 = Clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            static_cast<double>(iters);
        best = std::min(best, ns);
    }
    return best;
}

/** Discards everything; isolates encode cost from the filesystem. */
class NullStreambuf : public std::streambuf
{
  protected:
    int
    overflow(int c) override
    {
        return c == traits_type::eof() ? 0 : c;
    }
    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--check FILE]\n",
                         argv[0]);
            return EXIT_FAILURE;
        }
    }

    bench::header("Exploration kernel: scalar reference vs batched "
                  "VF x core sweep",
                  "perf harness (not a paper figure): the Fig. 5 "
                  "per-interval hot path");

    TrainedStack stack;
    model::Ppep ppep(stack.cfg, stack.models.chip, stack.models.pg);
    const std::size_t n_vf = ppep.vfTable().size();

    // A fully busy chip: the worst-case (and typical governed) sweep.
    const trace::IntervalRecord rec =
        measure(stack.cfg, "433.milc", 8, 2);

    model::ExploreScratch scratch;
    std::vector<model::VfPrediction> preds;
    ppep.exploreInto(rec, preds, scratch); // warm all buffers
    ppep.exploreScalarInto(rec, preds, scratch);

    const std::size_t iters = quick ? 20000 : 200000;
    const double scalar_ns = nsPerCall(
        iters, [&] { ppep.exploreScalarInto(rec, preds, scratch); });
    const double batched_ns =
        nsPerCall(iters, [&] { ppep.exploreInto(rec, preds, scratch); });
    const double speedup =
        batched_ns > 0.0 ? scalar_ns / batched_ns : 0.0;

    std::printf("full exploration (%zu cores x %zu VF states):\n",
                rec.pmc.size(), n_vf);
    std::printf("  scalar   %9.1f ns/explore  %8.1f ns/VF-state\n",
                scalar_ns, scalar_ns / static_cast<double>(n_vf));
    std::printf("  batched  %9.1f ns/explore  %8.1f ns/VF-state\n",
                batched_ns, batched_ns / static_cast<double>(n_vf));
    std::printf("  speedup  %.2fx\n\n", speedup);

    // Telemetry encode cost per row, measured through real sinks.
    const std::vector<std::size_t> cu_vf(stack.cfg.n_cus, 2);
    runtime::IntervalTelemetry t;
    t.index = 1;
    t.time_s = 0.2;
    t.rec = &rec;
    t.cu_vf = &cu_vf;
    t.cap_w = 80.0;
    t.predicted_power_w = 41.25;
    t.exploration = &preds;
    t.decision_latency_s = 3e-6;

    NullStreambuf null;
    std::ostream null_os(&null);
    runtime::CsvSink csv(null_os);
    runtime::JsonlSink jsonl(null_os);
    csv.onInterval(t);   // warm
    jsonl.onInterval(t); // warm
    const std::size_t encode_iters = quick ? 50000 : 500000;
    const double csv_ns =
        nsPerCall(encode_iters, [&] { csv.onInterval(t); });
    const double jsonl_ns =
        nsPerCall(encode_iters, [&] { jsonl.onInterval(t); });
    std::printf("telemetry encode (null stream):\n");
    std::printf("  csv      %9.1f ns/row\n", csv_ns);
    std::printf("  jsonl    %9.1f ns/row\n\n", jsonl_ns);

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in.is_open()) {
            std::fprintf(stderr, "cannot open baseline %s\n",
                         check_path.c_str());
            return EXIT_FAILURE;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const double base_speedup =
            bench::baselineValue(buf.str(),
                                 "speedup_batched_vs_scalar");
        if (!(base_speedup > 0.0)) {
            std::fprintf(stderr,
                         "baseline %s has no usable "
                         "speedup_batched_vs_scalar row\n",
                         check_path.c_str());
            return EXIT_FAILURE;
        }
        bool ok = true;
        if (speedup < kSpeedupFloor) {
            std::fprintf(stderr,
                         "FAIL: batched speedup %.2fx is under the "
                         "%.1fx acceptance floor\n",
                         speedup, kSpeedupFloor);
            ok = false;
        }
        if (speedup * kRegressionBand < base_speedup) {
            std::fprintf(stderr,
                         "FAIL: batched speedup %.2fx regressed >25%% "
                         "vs committed baseline %.2fx\n",
                         speedup, base_speedup);
            ok = false;
        }
        std::printf("baseline check vs %s: speedup %.2fx vs committed "
                    "%.2fx -> %s\n",
                    check_path.c_str(), speedup, base_speedup,
                    ok ? "OK" : "REGRESSED");
        return ok ? EXIT_SUCCESS : EXIT_FAILURE;
    }

    bench::BenchJson json("explore", "BENCH_explore.json");
    json.add("explore_scalar", "ns_per_explore", scalar_ns, "ns");
    json.add("explore_scalar", "ns_per_vf_state",
             scalar_ns / static_cast<double>(n_vf), "ns");
    json.add("explore_batched", "ns_per_explore", batched_ns, "ns");
    json.add("explore_batched", "ns_per_vf_state",
             batched_ns / static_cast<double>(n_vf), "ns");
    json.add("explore", "speedup_batched_vs_scalar", speedup, "x");
    json.add("encode_csv", "ns_per_row", csv_ns, "ns");
    json.add("encode_jsonl", "ns_per_row", jsonl_ns, "ns");
    json.write();
    return EXIT_SUCCESS;
}
