// lint-as: runtime/sampler_timing.cpp
// Fixture: steady_clock durations are measurement, not state — legal
// even under the `seed` rule, which bans wall clocks and entropy seeds.

#include <chrono>

namespace ppep::runtime {

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}

} // namespace ppep::runtime
