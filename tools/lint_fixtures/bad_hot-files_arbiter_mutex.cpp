// lint-as: runtime/arbiter.cpp
// A mutex in the arbiter's decide path: the fleet barrier already
// serialises decide(), so a lock here is both redundant and a blocking
// call on the warm-interval hot path. The hot-files rule must reject it.
#include <mutex>

namespace ppep::runtime {

struct BadArbiter
{
    std::mutex caps_lock;

    void decide()
    {
        const std::lock_guard<std::mutex> hold(caps_lock);
    }
};

} // namespace ppep::runtime
