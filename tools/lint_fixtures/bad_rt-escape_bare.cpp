// lint-as: model/bare_escape.cpp
// Fixture: an escape region without an `rt-escape:` justification
// comment must trip the rule named after that marker.
#include <vector>

namespace ppep {
void warm(std::vector<double> &v, int n)
{
    PPEP_RT_WARMUP_BEGIN
    v.assign(n, 0.0);
    PPEP_RT_WARMUP_END
}
} // namespace ppep
