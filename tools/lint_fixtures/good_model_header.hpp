// lint-as: model/documented.hpp
// Fixture: a canonically guarded, anchor-citing, fully documented model
// header must produce zero findings.
#ifndef PPEP_MODEL_DOCUMENTED_HPP
#define PPEP_MODEL_DOCUMENTED_HPP

namespace ppep::model {

/** Per-core CPI estimator (Eq. 3 of the paper). */
class Documented {
  public:
    /** Predicted cycles-per-instruction at the target VF state
     *  (Eq. 3): a linear combination of PMC-derived event rates. */
    double predict(double ipc, double freq_mhz) const;

    /** Number of fitted coefficients. */
    int coefficients() const { return n_; }

  private:
    int n_ = 0;
};

} // namespace ppep::model

#endif // PPEP_MODEL_DOCUMENTED_HPP
