// lint-as: runtime/leaky.cpp
// Fixture: a naked `new` must trip `allocation`.
namespace ppep {
struct Widget {
    int x = 0;
};
Widget *make() { return new Widget(); }
} // namespace ppep
