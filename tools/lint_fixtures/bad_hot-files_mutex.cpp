// lint-as: governor/energy_governor.cpp
// Fixture: a mutex acquisition in a HOT_FILES entry must trip
// `hot-files`.
#include <mutex>

namespace ppep {
std::mutex m;
void decide() { std::lock_guard<std::mutex> g(m); }
} // namespace ppep
