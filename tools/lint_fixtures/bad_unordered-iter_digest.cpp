// lint-as: runtime/telemetry.cpp
// Fixture: a hash container in a determinism-digest file must trip
// `unordered-iter` — iteration order varies across libstdc++ builds.

#include <string>
#include <unordered_map>

namespace ppep::runtime {

double
totalPower(const std::unordered_map<std::string, double> &per_tenant)
{
    double sum = 0.0;
    for (const auto &kv : per_tenant)
        sum += kv.second;
    return sum;
}

} // namespace ppep::runtime
