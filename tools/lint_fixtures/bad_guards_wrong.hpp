// lint-as: util/wrong_guard.hpp
// Fixture: a header whose guard does not match the canonical
// PPEP_<PATH>_HPP token must trip `guards`.
#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

namespace ppep {
inline int three() { return 3; }
} // namespace ppep

#endif
