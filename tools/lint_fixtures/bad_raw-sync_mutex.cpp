// lint-as: runtime/journal.cpp
// Fixture: raw standard-library locking outside util/sync.hpp must trip
// `raw-sync` — the primitive is invisible to Thread Safety Analysis.

#include <mutex>

namespace ppep::runtime {

class Journal
{
  public:
    void append(int v)
    {
        std::lock_guard<std::mutex> lock(mu_);
        last_ = v;
    }

  private:
    std::mutex mu_;
    int last_ = 0;
};

} // namespace ppep::runtime
