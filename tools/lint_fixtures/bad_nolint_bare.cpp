// lint-as: sim/suppressed.cpp
// Fixture: a NOLINT without a named check and reason must trip
// `nolint`.
namespace ppep {
int shift(int x) { return x << 3; } // NOLINT
} // namespace ppep
