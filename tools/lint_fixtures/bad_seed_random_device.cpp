// lint-as: workloads/builder.cpp
// Fixture: seeding from hardware entropy makes replays unreproducible —
// std::random_device must trip `seed` anywhere in src/ppep.

#include <cstdint>
#include <random>

namespace ppep::workloads {

std::uint64_t
freshSeed()
{
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

} // namespace ppep::workloads
