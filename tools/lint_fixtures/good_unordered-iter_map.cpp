// lint-as: runtime/telemetry.cpp
// Fixture: std::map iterates in key order, so digests built from it are
// reproducible — must be clean in a determinism-digest file.

#include <map>
#include <string>

namespace ppep::runtime {

double
totalPower(const std::map<std::string, double> &per_tenant)
{
    double sum = 0.0;
    for (const auto &kv : per_tenant)
        sum += kv.second;
    return sum;
}

} // namespace ppep::runtime
