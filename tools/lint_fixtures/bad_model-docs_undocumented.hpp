// lint-as: model/undocumented.hpp
// Fixture: a public model prototype without a doc comment must trip
// `model-docs` (the file-level anchor is present so only the missing
// method doc fires; see Eq. 1).
#ifndef PPEP_MODEL_UNDOCUMENTED_HPP
#define PPEP_MODEL_UNDOCUMENTED_HPP

namespace ppep::model {

class Undocumented {
  public:
    double predict(double ipc, double freq_mhz) const;
};

} // namespace ppep::model

#endif // PPEP_MODEL_UNDOCUMENTED_HPP
