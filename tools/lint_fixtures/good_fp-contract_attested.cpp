// lint-as: model/sweep_kernel.cpp
// Fixture: the same vectorised loop, but the TU attests that its build
// pins -ffp-contract=off — must be clean.

#include <cstddef>

namespace ppep::model {

double
dot(const double *a, const double *b, std::size_t n)
{
    double acc = 0.0;
    // Compiled with -ffp-contract=off so this reduction matches the
    // scalar reference bit-for-bit.
#pragma omp simd reduction(+ : acc)
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace ppep::model
