// lint-as: model/sweep_kernel.cpp
// Fixture: a `#pragma omp simd` TU with no attestation comment about
// pinning FP contraction must trip `fp-contract`.

#include <cstddef>

namespace ppep::model {

double
dot(const double *a, const double *b, std::size_t n)
{
    double acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace ppep::model
