// lint-as: governor/hot.cpp
// Fixture: std::to_string outside util/fmt.hpp must trip `formatting`.
#include <string>

namespace ppep {
std::string label(int cu) { return "cu" + std::to_string(cu); }
} // namespace ppep
