// lint-as: runtime/journal.cpp
// Fixture: the capability-annotated wrappers are the sanctioned way to
// lock — a file using util::Mutex / util::MutexLock must be clean.

#include "ppep/util/sync.hpp"

namespace ppep::runtime {

class Journal
{
  public:
    void append(int v) PPEP_EXCLUDES(mu_)
    {
        util::MutexLock lock(mu_);
        last_ = v;
    }

  private:
    util::Mutex mu_;
    int last_ PPEP_GUARDED_BY(mu_) = 0;
};

} // namespace ppep::runtime
