// lint-as: governor/energy_governor.cpp
// Fixture: a clean hot-path file — justified escape, reasoned
// suppression, no banned calls — must produce zero findings.
#include <vector>

namespace ppep {

void warm(std::vector<double> &v, unsigned n)
{
    // rt-escape: assign() at the fixed CU count reuses capacity sized
    // at construction; allocation only on the first (warm-up) call.
    PPEP_RT_WARMUP_BEGIN
    v.assign(n, 0.0);
    PPEP_RT_WARMUP_END
}

int fold(int x)
{
    // NOLINT(bugprone-fold-init-type): fixture exercises the reasoned
    // suppression form.
    return x;
}

} // namespace ppep
