/**
 * @file
 * The `ppep` command-line tool: train models for a simulated platform,
 * persist them, and use them for prediction, exploration, and
 * validation — the full deployment loop in one binary.
 *
 *   ppep list                                  available benchmarks
 *   ppep train    --out FILE [options]         one-time offline training
 *   ppep predict  --models FILE -b NAME [...]  power/perf at every VF
 *   ppep explore  --models FILE -b NAME [...]  per-thread energy/EDP
 *   ppep validate [options]                    estimation-error summary
 *   ppep fleet    --fleet N --threads K        N governed sessions on a
 *                                              K-worker pool
 *   ppep fleet    --mix fx:6,phenom:2          heterogeneous fleet: one
 *                                              session per mix entry,
 *                                              each on its own platform
 *   ppep fleet    --budget W [--tiers rack:2]  arbitrate a global watt
 *                                              contract into per-session
 *                                              caps every interval
 *
 * Common options:
 *   --platform fx8320|fx8320-boost|fx8320-nbdvfs|phenom2
 *                                              (default fx8320)
 *   --seed N                                   (default 2014)
 *   -b/--benchmark NAME, -n/--copies N, --nb-whatif, --quick
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "ppep/governor/energy_explorer.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/serialization.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/model/validation.hpp"
#include "ppep/runtime/fleet.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/stats.hpp"
#include "ppep/util/table.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

struct Options
{
    std::string command;
    std::string platform = "fx8320";
    std::string models_path;
    std::string out_path;
    std::string benchmark = "433.milc";
    std::size_t copies = 1;
    std::uint64_t seed = 2014;
    bool quick = false;
    bool nb_whatif = false;
    std::size_t fleet_sessions = 4;
    std::size_t threads = 1;
    std::size_t intervals = 40;
    std::string mix;
    std::size_t tenants = 0;
    std::string faults;
    bool recalibrate = false;
    bool batched = false;
    std::string record_path;
    std::string replay_path;
    double budget_w = 0.0; // 0 = no arbitration
    std::string budget_drop;
    std::string tiers;
    std::string priority_csv;
    double slo_floor_w = 0.0;
    std::string arbiter_policy;
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: ppep <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                       list available benchmarks\n"
        "  train --out FILE           train models and persist them\n"
        "  predict --models FILE -b NAME [-n COPIES]\n"
        "                             predict power/perf at every VF\n"
        "  explore --models FILE -b NAME [-n COPIES] [--nb-whatif]\n"
        "                             per-thread energy/EDP space\n"
        "  validate [--quick]         estimation-error summary\n"
        "  fleet [--fleet N] [--threads K] [--intervals I]\n"
        "                             run N governed sessions on a\n"
        "                             K-worker pool over shared models\n"
        "        [--mix LIST|@FILE]   heterogeneous fleet: LIST is\n"
        "                             NAME:COUNT[,NAME:COUNT...] with\n"
        "                             NAME in fx, boost, nbdvfs, phenom\n"
        "                             (e.g. --mix fx:6,phenom:2);\n"
        "                             @FILE reads the same entries from\n"
        "                             a file, one per line, # comments\n"
        "        [--tenants K]        split the first session's chip\n"
        "                             between K tenants and report\n"
        "                             per-tenant power attribution\n"
        "        [--faults SPEC]      run every session hardened under\n"
        "                             this fault plan (key=value CSV,\n"
        "                             e.g. power_drift_bias=2e-4,\n"
        "                             drift_clamp=0.3)\n"
        "        [--recalibrate]      refit the dynamic-power weights\n"
        "                             online when divergence climbs and\n"
        "                             hot-swap the accepted model in\n"
        "        [--batched]          step all sessions' chips through\n"
        "                             one SIMD batch (bit-identical\n"
        "                             telemetry, one thread)\n"
        "        [--record FILE]      record every session's interval\n"
        "                             stream into a replay file\n"
        "        [--replay FILE]      govern from a recorded file with\n"
        "                             zero simulation; digests match\n"
        "                             the recording run bit for bit\n"
        "        [--budget W]         arbitrate a global W-watt power\n"
        "                             contract across the fleet: per-\n"
        "                             session caps are re-solved from\n"
        "                             the sessions' own per-VF power\n"
        "                             predictions every interval\n"
        "        [--budget-drop W@I]  lower the budget to W watts from\n"
        "                             interval I on (Fig. 7-style step)\n"
        "        [--tiers NAME:K]     split the budget evenly across K\n"
        "                             named tiers (e.g. rack:2);\n"
        "                             sessions are assigned round-robin\n"
        "        [--priority CSV]     per-session arbitration weights,\n"
        "                             cycled over the fleet (e.g. 2,1)\n"
        "        [--slo-floor W]      never cap a session below W watts\n"
        "        [--arbiter POLICY]   single-pass (default) or the\n"
        "                             iterative reactive baseline\n"
        "\n"
        "options:\n"
        "  --platform fx8320|fx8320-boost|fx8320-nbdvfs|phenom2\n"
        "                             (default fx8320)\n"
        "  --seed N                                  (default 2014)\n"
        "  --quick                    small training/validation sets\n");
    std::exit(code);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage(1);
    Options opt;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage(1);
            }
            return argv[++i];
        };
        if (arg == "--platform")
            opt.platform = next();
        else if (arg == "--models")
            opt.models_path = next();
        else if (arg == "--out")
            opt.out_path = next();
        else if (arg == "-b" || arg == "--benchmark")
            opt.benchmark = next();
        else if (arg == "-n" || arg == "--copies")
            opt.copies = std::stoul(next());
        else if (arg == "--seed")
            opt.seed = std::stoull(next());
        else if (arg == "--quick")
            opt.quick = true;
        else if (arg == "--nb-whatif")
            opt.nb_whatif = true;
        else if (arg == "--fleet")
            opt.fleet_sessions = std::stoul(next());
        else if (arg == "--threads")
            opt.threads = std::stoul(next());
        else if (arg == "--intervals")
            opt.intervals = std::stoul(next());
        else if (arg == "--mix")
            opt.mix = next();
        else if (arg == "--tenants")
            opt.tenants = std::stoul(next());
        else if (arg == "--faults")
            opt.faults = next();
        else if (arg == "--recalibrate")
            opt.recalibrate = true;
        else if (arg == "--batched")
            opt.batched = true;
        else if (arg == "--record")
            opt.record_path = next();
        else if (arg == "--replay")
            opt.replay_path = next();
        else if (arg == "--budget") {
            opt.budget_w = std::stod(next());
            if (!(opt.budget_w > 0.0)) {
                std::fprintf(stderr, "--budget wants a positive "
                                     "watt value\n");
                std::exit(1);
            }
        }
        else if (arg == "--budget-drop")
            opt.budget_drop = next();
        else if (arg == "--tiers")
            opt.tiers = next();
        else if (arg == "--priority")
            opt.priority_csv = next();
        else if (arg == "--slo-floor")
            opt.slo_floor_w = std::stod(next());
        else if (arg == "--arbiter")
            opt.arbiter_policy = next();
        else if (arg == "-h" || arg == "--help")
            usage(0);
        else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(1);
        }
    }
    return opt;
}

sim::ChipConfig
platformOf(const std::string &name)
{
    if (name == "fx8320")
        return sim::fx8320Config();
    if (name == "fx8320-boost")
        return sim::fx8320ConfigWithBoost();
    if (name == "fx8320-nbdvfs")
        return sim::fx8320NbDvfsConfig();
    if (name == "phenom2")
        return sim::phenomIIConfig();
    std::fprintf(stderr, "unknown platform '%s'\n", name.c_str());
    usage(1);
}

/** One `NAME:COUNT` entry of a `--mix` argument. */
struct MixEntry
{
    std::string alias;
    sim::ChipConfig cfg;
    std::size_t count = 0;
};

/** Short platform aliases accepted inside --mix. */
const sim::ChipConfig *
mixPlatform(const std::string &alias)
{
    static const sim::ChipConfig fx = sim::fx8320Config();
    static const sim::ChipConfig boost = sim::fx8320ConfigWithBoost();
    static const sim::ChipConfig nbdvfs = sim::fx8320NbDvfsConfig();
    static const sim::ChipConfig phenom = sim::phenomIIConfig();
    if (alias == "fx" || alias == "fx8320")
        return &fx;
    if (alias == "boost" || alias == "fx8320-boost")
        return &boost;
    if (alias == "nbdvfs" || alias == "fx8320-nbdvfs")
        return &nbdvfs;
    if (alias == "phenom" || alias == "phenom2")
        return &phenom;
    return nullptr;
}

/**
 * Parse `--mix fx:6,phenom:2` (or `--mix @file`, same entries one per
 * line with `#` comments) into per-platform session counts. Exits with
 * a diagnostic on any malformed entry.
 */
std::vector<MixEntry>
parseMix(const std::string &arg)
{
    std::string text = arg;
    if (!text.empty() && text[0] == '@') {
        const std::string path = text.substr(1);
        std::ifstream in(path);
        if (!in.is_open()) {
            std::fprintf(stderr, "fleet: cannot open mix file '%s'\n",
                         path.c_str());
            std::exit(1);
        }
        text.clear();
        for (std::string line; std::getline(in, line);) {
            const auto hash = line.find('#');
            if (hash != std::string::npos)
                line.erase(hash);
            std::string token;
            for (char c : line)
                if (!std::isspace(static_cast<unsigned char>(c)))
                    token += c;
            if (token.empty())
                continue;
            if (!text.empty())
                text += ',';
            text += token;
        }
    }

    std::vector<MixEntry> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const auto comma = text.find(',', pos);
        const std::string token =
            text.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (token.empty()) {
            std::fprintf(stderr,
                         "fleet: empty entry in --mix '%s' (want "
                         "NAME:COUNT, e.g. fx:6,phenom:2)\n",
                         arg.c_str());
            std::exit(1);
        }
        const auto colon = token.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= token.size()) {
            std::fprintf(stderr,
                         "fleet: bad --mix entry '%s' (want NAME:COUNT, "
                         "e.g. fx:6)\n",
                         token.c_str());
            std::exit(1);
        }
        MixEntry entry;
        entry.alias = token.substr(0, colon);
        const sim::ChipConfig *cfg = mixPlatform(entry.alias);
        if (cfg == nullptr) {
            std::fprintf(stderr,
                         "fleet: unknown platform '%s' in --mix (one of "
                         "fx, boost, nbdvfs, phenom)\n",
                         entry.alias.c_str());
            std::exit(1);
        }
        entry.cfg = *cfg;
        const std::string count = token.substr(colon + 1);
        for (char c : count) {
            if (c < '0' || c > '9') {
                std::fprintf(stderr,
                             "fleet: bad count '%s' in --mix entry "
                             "'%s'\n",
                             count.c_str(), token.c_str());
                std::exit(1);
            }
        }
        entry.count = std::stoul(count);
        if (entry.count == 0) {
            std::fprintf(stderr,
                         "fleet: count must be positive in --mix entry "
                         "'%s'\n",
                         token.c_str());
            std::exit(1);
        }
        out.push_back(std::move(entry));
    }
    return out;
}

std::vector<const workloads::Combination *>
trainingSet(bool quick)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations()) {
        if (c.instances.size() == 1 && out.size() < (quick ? 10u : 49u))
            out.push_back(&c);
    }
    if (!quick) {
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() >= 3 && out.size() < 70)
                out.push_back(&c);
    }
    return out;
}

int
cmdList()
{
    util::Table t("Available benchmarks (SPEC CPU2006 / PARSEC / NPB, "
                  "synthetic):");
    t.setHeader({"name", "suite", "instructions (G)"});
    for (const auto &p : workloads::Suite::all()) {
        t.addRow({p.name, workloads::suiteLabel(p.suite),
                  util::Table::num(p.totalInstructions() / 1e9, 1)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdTrain(const Options &opt)
{
    if (opt.out_path.empty()) {
        std::fprintf(stderr, "train: --out FILE is required\n");
        return 1;
    }
    const auto cfg = platformOf(opt.platform);
    std::printf("training on %s (seed %llu)...\n", cfg.name.c_str(),
                static_cast<unsigned long long>(opt.seed));
    model::Trainer trainer(cfg, opt.seed);
    const auto models = trainer.trainAll(trainingSet(opt.quick));
    model::saveModels(models, opt.out_path);
    std::printf("alpha = %.3f\n", models.alpha);
    std::printf("models written to %s\n", opt.out_path.c_str());
    return 0;
}

/** Measure one interval of the requested workload at the top VF. */
trace::IntervalRecord
measure(const sim::ChipConfig &cfg, const Options &opt)
{
    if (!workloads::Suite::exists(opt.benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s' (try `ppep list`)\n",
                     opt.benchmark.c_str());
        std::exit(1);
    }
    // PG stays off: Ppep::explore prices the active-idle chip (Eq. 2),
    // so the measurement context must match.
    sim::Chip chip(cfg, opt.seed + 1);
    workloads::launch(chip,
                      workloads::replicate(opt.benchmark, opt.copies),
                      true);
    trace::Collector col(chip);
    col.collect(3);
    return col.collectInterval();
}

int
cmdPredict(const Options &opt)
{
    if (opt.models_path.empty()) {
        std::fprintf(stderr, "predict: --models FILE is required\n");
        return 1;
    }
    const auto cfg = platformOf(opt.platform);
    const auto models = model::loadModels(opt.models_path, cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);

    const auto rec = measure(cfg, opt);
    std::printf("measured %s x%zu at %s: %.1f W (sensor), %.1f K\n",
                opt.benchmark.c_str(), opt.copies,
                cfg.vf_table.name(cfg.vf_table.top()).c_str(),
                rec.sensor_power_w, rec.diode_temp_k);

    util::Table t("\nPPEP predictions:");
    t.setHeader({"VF", "V", "GHz", "power (W)", "GIPS",
                 "energy/inst (nJ)"});
    for (const auto &p : ppep.explore(rec)) {
        const auto &vf = cfg.vf_table.state(p.vf_index);
        t.addRow({cfg.vf_table.name(p.vf_index),
                  util::Table::num(vf.voltage, 3),
                  util::Table::num(vf.freq_ghz, 1),
                  util::Table::num(p.chip_power_w, 1),
                  util::Table::num(p.total_ips / 1e9, 2),
                  util::Table::num(p.energy_per_inst * 1e9, 2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdExplore(const Options &opt)
{
    if (opt.models_path.empty()) {
        std::fprintf(stderr, "explore: --models FILE is required\n");
        return 1;
    }
    const auto cfg = platformOf(opt.platform);
    if (!cfg.pg_supported) {
        std::fprintf(stderr,
                     "explore needs a power-gating platform (fx8320)\n");
        return 1;
    }
    const auto models = model::loadModels(opt.models_path, cfg);
    const model::Ppep ppep(cfg, models.chip, models.pg);
    const governor::EnergyExplorer explorer(cfg, ppep, opt.seed + 2);

    const auto points =
        explorer.explore(opt.benchmark, opt.copies, opt.nb_whatif);
    util::Table t("Per-thread operating space, " + opt.benchmark + " x" +
                  std::to_string(opt.copies) + ":");
    t.setHeader({"core VF", "NB", "time (s)", "energy (J)",
                 "core (J)", "NB (J)", "EDP (J*s)"});
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
        t.addRow({cfg.vf_table.name(it->vf_index),
                  it->nb_low ? "lo" : "hi",
                  util::Table::num(it->time_s, 2),
                  util::Table::num(it->energy_j, 1),
                  util::Table::num(it->core_energy_j, 1),
                  util::Table::num(it->nb_energy_j, 1),
                  util::Table::num(it->edp, 1)});
    }
    t.print(std::cout);
    if (opt.nb_whatif) {
        const auto s = governor::EnergyExplorer::summarize(points);
        std::printf("\nNB-DVFS what-if: %.1f%% extra energy saving, "
                    "%.2fx speedup at similar energy\n",
                    s.energy_saving * 100.0, s.speedup);
    }
    return 0;
}

int
cmdValidate(const Options &opt)
{
    const auto cfg = platformOf(opt.platform);
    std::vector<const workloads::Combination *> combos;
    for (const auto &c : workloads::allCombinations()) {
        if (cfg.coreCount() < c.instances.size())
            continue;
        if (opt.quick && combos.size() >= 24)
            break;
        combos.push_back(&c);
    }
    std::printf("validating %zu combinations on %s...\n", combos.size(),
                cfg.name.c_str());
    model::Validator validator(cfg, combos, opt.seed, 4);
    validator.prepare(opt.quick ? 60 : 120);
    const auto errors = validator.validateEstimation();
    const auto dyn = model::aggregate(
        errors, [](const model::ComboError &e) { return e.aae_dynamic; });
    const auto chip = model::aggregate(
        errors, [](const model::ComboError &e) { return e.aae_chip; });
    std::printf("dynamic power model AAE: %.1f%% (sd %.1f%%)\n",
                dyn.mean * 100.0, dyn.stddev * 100.0);
    std::printf("chip power model AAE:    %.1f%% (sd %.1f%%)\n",
                chip.mean * 100.0, chip.stddev * 100.0);
    return 0;
}

int
cmdFleet(const Options &opt)
{
    if (opt.fleet_sessions == 0 || opt.intervals == 0) {
        std::fprintf(stderr, "fleet: --fleet and --intervals must be "
                             "positive\n");
        return 1;
    }
    static const std::vector<std::vector<std::string>> mixes = {
        {"429.mcf", "458.sjeng"},
        {"416.gamess", "swaptions"},
        {"EP", "CG"},
        {"458.sjeng", "416.gamess"},
    };

    runtime::FleetSpec spec;
    spec.cfg = platformOf(opt.platform);
    spec.training_seed = opt.seed;
    spec.training_combos = trainingSet(opt.quick);
    spec.store.emplace();
    spec.warmup = 2;
    spec.intervals = opt.intervals;
    if (opt.mix.empty()) {
        for (std::size_t i = 0; i < opt.fleet_sessions; ++i) {
            runtime::FleetSessionSpec ss;
            ss.seed = opt.seed + 100 + i;
            ss.pg = (i % 2) == 0;
            ss.one_per_cu = mixes[i % mixes.size()];
            spec.sessions.push_back(std::move(ss));
        }
    } else {
        // Heterogeneous fleet: one session per mix unit, each carrying
        // its own ChipConfig; the default platform is ignored and the
        // first mix entry becomes the fleet default.
        const auto entries = parseMix(opt.mix);
        spec.cfg = entries.front().cfg;
        std::size_t i = 0;
        for (const auto &entry : entries) {
            for (std::size_t k = 0; k < entry.count; ++k, ++i) {
                runtime::FleetSessionSpec ss;
                ss.name = entry.alias + "-" + std::to_string(k);
                ss.seed = opt.seed + 100 + i;
                ss.pg = entry.cfg.pg_supported && (i % 2) == 0;
                ss.one_per_cu = mixes[i % mixes.size()];
                ss.cfg = entry.cfg;
                spec.sessions.push_back(std::move(ss));
            }
        }
    }

    if (opt.tenants > 0) {
        // Split the first session's chip between K tenants, one slice
        // of CUs each, with one looping program per tenant. Eqs. 7-8
        // attribution then lands in the session summary.
        auto &first = spec.sessions.front();
        const sim::ChipConfig &cfg = first.cfg ? *first.cfg : spec.cfg;
        if (!cfg.pg_supported) {
            std::fprintf(stderr,
                         "fleet: --tenants needs a power-gating "
                         "platform for the first session ('%s' has "
                         "none); put an fx entry first\n",
                         cfg.name.c_str());
            return 1;
        }
        if (opt.tenants > cfg.n_cus) {
            std::fprintf(stderr,
                         "fleet: --tenants %zu exceeds the %zu CUs of "
                         "'%s'\n",
                         opt.tenants, cfg.n_cus, cfg.name.c_str());
            return 1;
        }
        first.one_per_cu.clear();
        for (std::size_t t = 0; t < opt.tenants; ++t) {
            runtime::TenantSpec ts;
            ts.name = "tenant" + std::to_string(t);
            for (std::size_t cu = t; cu < cfg.n_cus; cu += opt.tenants)
                for (std::size_t c = 0; c < cfg.cores_per_cu; ++c)
                    ts.cores.push_back(cu * cfg.cores_per_cu + c);
            ts.jobs.push_back({ts.cores.front(),
                               mixes[t % mixes.size()].front(), true});
            first.tenants.push_back(std::move(ts));
        }
    }

    if (!opt.faults.empty()) {
        const sim::FaultPlan plan = sim::FaultPlan::parse(opt.faults);
        std::printf("fault plan: %s\n", plan.describe().c_str());
        for (auto &ss : spec.sessions)
            ss.faults = plan;
    }
    if (opt.recalibrate)
        spec.default_recalibration.emplace();
    spec.batched = opt.batched;
    spec.record_path = opt.record_path;
    spec.replay_path = opt.replay_path;

    if (opt.budget_w <= 0.0 &&
        (!opt.budget_drop.empty() || !opt.tiers.empty() ||
         !opt.priority_csv.empty() || opt.slo_floor_w > 0.0 ||
         !opt.arbiter_policy.empty())) {
        std::fprintf(stderr, "fleet: --budget-drop/--tiers/--priority/"
                             "--slo-floor/--arbiter require "
                             "--budget W\n");
        return 1;
    }
    if (opt.budget_w > 0.0) {
        if (opt.batched) {
            std::fprintf(stderr, "fleet: --budget is incompatible with "
                                 "--batched (the arbitrated drive is "
                                 "its own lockstep)\n");
            return 1;
        }
        runtime::ArbiterSpec aspec;
        std::vector<std::pair<std::size_t, double>> points = {
            {0, opt.budget_w}};
        if (!opt.budget_drop.empty()) {
            const auto at = opt.budget_drop.find('@');
            double drop_w = 0.0;
            std::size_t drop_i = 0;
            if (at != std::string::npos && at > 0 &&
                at + 1 < opt.budget_drop.size()) {
                drop_w = std::stod(opt.budget_drop.substr(0, at));
                drop_i = std::stoul(opt.budget_drop.substr(at + 1));
            }
            if (drop_w <= 0.0 || drop_i == 0 ||
                drop_i >= opt.intervals) {
                std::fprintf(stderr,
                             "fleet: bad --budget-drop '%s' (want "
                             "W@I with W > 0 and 0 < I < "
                             "--intervals)\n",
                             opt.budget_drop.c_str());
                return 1;
            }
            points.push_back({drop_i, drop_w});
        }
        aspec.budget =
            ppep::governor::CapSchedule(std::move(points));
        if (!opt.tiers.empty()) {
            const auto colon = opt.tiers.find(':');
            std::size_t n_tiers = 0;
            if (colon != std::string::npos && colon > 0 &&
                colon + 1 < opt.tiers.size())
                n_tiers = std::stoul(opt.tiers.substr(colon + 1));
            if (n_tiers == 0 || n_tiers > spec.sessions.size()) {
                std::fprintf(stderr,
                             "fleet: bad --tiers '%s' (want NAME:K "
                             "with 0 < K <= sessions)\n",
                             opt.tiers.c_str());
                return 1;
            }
            const std::string name = opt.tiers.substr(0, colon);
            for (std::size_t t = 0; t < n_tiers; ++t)
                aspec.tiers.push_back(
                    {name + std::to_string(t),
                     opt.budget_w / static_cast<double>(n_tiers)});
        }
        if (!opt.arbiter_policy.empty() &&
            opt.arbiter_policy != "single-pass" &&
            opt.arbiter_policy != "iterative") {
            std::fprintf(stderr,
                         "fleet: unknown --arbiter '%s' (single-pass "
                         "or iterative)\n",
                         opt.arbiter_policy.c_str());
            return 1;
        }
        aspec.iterative = opt.arbiter_policy == "iterative";
        spec.arbiter = std::move(aspec);
        if (!opt.priority_csv.empty()) {
            std::vector<double> prio;
            std::size_t pos = 0;
            while (pos <= opt.priority_csv.size()) {
                const auto comma = opt.priority_csv.find(',', pos);
                const std::string tok = opt.priority_csv.substr(
                    pos, comma == std::string::npos
                             ? std::string::npos
                             : comma - pos);
                pos = comma == std::string::npos
                          ? opt.priority_csv.size() + 1
                          : comma + 1;
                if (tok.empty()) {
                    std::fprintf(stderr,
                                 "fleet: empty entry in --priority "
                                 "'%s'\n",
                                 opt.priority_csv.c_str());
                    return 1;
                }
                const double p = std::stod(tok);
                if (p < 0.0) {
                    std::fprintf(stderr,
                                 "fleet: --priority weights must be "
                                 ">= 0 (got %s)\n",
                                 tok.c_str());
                    return 1;
                }
                prio.push_back(p);
            }
            for (std::size_t i = 0; i < spec.sessions.size(); ++i)
                spec.sessions[i].priority = prio[i % prio.size()];
        }
        if (opt.slo_floor_w > 0.0)
            for (auto &ss : spec.sessions)
                ss.slo_floor_w = opt.slo_floor_w;
    }

    const std::size_t n_sessions = spec.sessions.size();
    runtime::Fleet fleet(std::move(spec));
    std::printf("training/loading models (seed %llu)...\n",
                static_cast<unsigned long long>(opt.seed));
    fleet.prepare();
    std::printf("%zu model entr%s for %zu sessions\n",
                fleet.modelEntryCount(),
                fleet.modelEntryCount() == 1 ? "y" : "ies", n_sessions);
    if (!opt.replay_path.empty())
        std::printf("replaying %zu sessions x %zu intervals from "
                    "'%s' (zero simulation)...\n",
                    n_sessions, opt.intervals,
                    opt.replay_path.c_str());
    else
        std::printf("running %zu sessions x %zu intervals on %zu "
                    "thread(s)%s...\n",
                    n_sessions, opt.intervals, opt.threads,
                    opt.batched ? " (batched SIMD drive)" : "");
    const auto res = fleet.run(opt.threads);

    util::Table t("\nFleet sessions:");
    t.setHeader({"session", "seed", "intervals", "mean W", "energy J",
                 "digest"});
    for (const auto &s : res.sessions) {
        char digest[32];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(
                          s.telemetry_digest));
        t.addRow({s.name, std::to_string(s.seed),
                  s.completed ? std::to_string(s.intervals)
                              : ("FAILED: " + s.error),
                  util::Table::num(s.summary.mean_power_w, 1),
                  util::Table::num(s.summary.energy_j, 1), digest});
    }
    t.print(std::cout);
    for (const auto &s : res.sessions) {
        if (!s.completed || s.summary.tenant_names.empty())
            continue;
        std::printf("\nsession %s tenants:\n", s.name.c_str());
        for (std::size_t i = 0; i < s.summary.tenant_names.size();
             ++i) {
            std::printf("  %-10s %8.1f J  mean %6.2f W",
                        s.summary.tenant_names[i].c_str(),
                        s.summary.tenant_energy_j[i],
                        s.summary.tenant_mean_power_w[i]);
            if (i < s.tenant_throttled_w.size())
                std::printf("  throttled %5.2f W",
                            s.tenant_throttled_w[i]);
            std::printf("\n");
        }
        std::printf("  %-10s %8.1f J\n", "unowned",
                    s.summary.unattributed_energy_j);
    }
    if (res.arbiter.active) {
        const auto &ar = res.arbiter;
        std::printf("\narbitration (%s): final budget %.1f W, mean "
                    "headroom %.1f W, mean decide %.1f us\n",
                    ar.policy.c_str(), ar.final_budget_w,
                    ar.mean_headroom_w, ar.mean_decide_s * 1e6);
        std::printf("  violations %zu/%zu interval(s), infeasible "
                    "%zu, cap-sum self-check failures %zu\n",
                    ar.violation_intervals, ar.intervals,
                    ar.infeasible_intervals, ar.cap_sum_violations);
        if (ar.budget_drops > 0)
            std::printf("  %zu budget drop(s), re-settled in %.1f "
                        "interval(s) mean (max %zu)\n",
                        ar.budget_drops, ar.mean_settle_intervals,
                        ar.max_settle_intervals);
        util::Table at("\nPer-session allocation:");
        at.setHeader(
            {"session", "priority", "mean cap W", "final cap W",
             "throttled W"});
        const auto &sessions = fleet.spec().sessions;
        for (std::size_t i = 0; i < res.sessions.size(); ++i) {
            const auto &s = res.sessions[i];
            const bool capped =
                s.final_cap_w < 0.5 * std::numeric_limits<double>::max();
            at.addRow({s.name,
                       util::Table::num(sessions[i].priority, 2),
                       capped ? util::Table::num(s.mean_cap_w, 1)
                              : "uncapped",
                       capped ? util::Table::num(s.final_cap_w, 1)
                              : "uncapped",
                       util::Table::num(s.mean_throttled_w, 2)});
        }
        at.print(std::cout);
    }
    if (opt.recalibrate) {
        std::printf("\nrecalibration:\n");
        for (const auto &s : res.sessions) {
            if (!s.completed)
                continue;
            std::printf("  %-10s generation %llu, %llu refits "
                        "(%llu adopted, %llu rejected), divergence "
                        "EWMA %.2f W\n",
                        s.name.c_str(),
                        static_cast<unsigned long long>(
                            s.summary.model_generation),
                        static_cast<unsigned long long>(
                            s.summary.recal_triggers),
                        static_cast<unsigned long long>(
                            s.summary.recal_accepted),
                        static_cast<unsigned long long>(
                            s.summary.recal_rejected),
                        s.summary.final_divergence_ewma_w);
        }
    }
    std::printf("\n%zu/%zu sessions completed in %.3f s "
                "(%.2f sessions/s, %.1f intervals/s)\n",
                res.completed, res.sessions.size(), res.wall_s,
                res.sessions_per_s, res.intervals_per_s);
    std::printf("fleet mean power %.1f W, total energy %.1f J\n",
                res.mean_power_w, res.energy_j);
    if (!opt.record_path.empty())
        std::printf("recorded %zu stream(s) to '%s'; replay with "
                    "the same fleet options plus --replay\n",
                    res.completed, opt.record_path.c_str());
    if (!opt.replay_path.empty())
        std::printf("replay digests above are bit-comparable to the "
                    "recording run's (same table, same values when "
                    "the replay is faithful)\n");
    return res.failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    if (opt.command == "list")
        return cmdList();
    if (opt.command == "train")
        return cmdTrain(opt);
    if (opt.command == "predict")
        return cmdPredict(opt);
    if (opt.command == "explore")
        return cmdExplore(opt);
    if (opt.command == "validate")
        return cmdValidate(opt);
    if (opt.command == "fleet")
        return cmdFleet(opt);
    std::fprintf(stderr, "unknown command '%s'\n", opt.command.c_str());
    usage(1);
}
