#!/usr/bin/env python3
"""PPEP-specific lint pass (layer 3 of the static safety wall).

clang's function-effect analysis proves the annotated warm-interval call
graph cannot allocate or block, and clang-tidy catches generic C++
defect patterns. This pass enforces the *project* rules neither of them
knows about:

  formatting   snprintf / ostringstream / std::to_string are banned in
               src/ppep outside the files listed in FORMATTING_ALLOWED:
               all hot-path number formatting goes through util/fmt.hpp
               (std::to_chars), which is allocation- and locale-free.
               The allowlist is a ratchet — shrink it, never grow it.

  allocation   naked `new` / `malloc` / `free` are banned everywhere in
               src/ppep; ownership is std::make_unique / containers.

  hot-files    the files on the warm-interval hot path (HOT_FILES) must
               not acquire std::mutex, spawn threads, or perform stream
               I/O — blocking belongs behind the AsyncTelemetrySink
               boundary, never inside the governing loop.

  rt-escape    every PPEP_RT_WARMUP_BEGIN / PPEP_RT_OPAQUE_BEGIN must
               carry a `rt-escape:` justification comment within the
               four lines above it. A bare escape is a lie waiting to
               happen.

  nolint       every NOLINT must name the silenced check and carry a
               reason: `// NOLINT(check-name): why`. Bare NOLINTs
               silence future, unrelated findings too.

  guards       every header under src/ppep carries a canonical
               PPEP_<PATH>_HPP include guard.

  model-docs   every public prototype in src/ppep/model/*.hpp has a doc
               comment, and every model header anchors itself to the
               paper (Eq. / Sec. / Fig. / Obs. / Table reference), so
               the model code stays navigable against the source text.

  raw-sync     std::mutex / std::condition_variable (and friends) are
               banned in src/ppep outside util/sync.hpp: all locking
               goes through the capability-annotated util::Mutex /
               util::CondVar wrappers so the PPEP_THREAD_SAFETY build
               can prove lock discipline. A raw primitive is invisible
               to Thread Safety Analysis.

  unordered-iter
               std::unordered_{map,set} are banned in the files whose
               output feeds the fleet determinism digest (telemetry,
               arbiter, tenant attribution, trace export/replay): hash
               iteration order varies across libstdc++ versions and
               seeds, which breaks the bit-identical-at-any-thread-count
               contract. Use std::map or a sorted vector.

  fp-contract  every TU using `#pragma omp simd` must attest (in a
               comment matching `ffp-contract=off` / `ffp-contract: off`)
               that its build pins -ffp-contract=off, and the sibling
               CMakeLists.txt must actually pin it: FMA contraction
               makes vectorised and scalar sweeps disagree bitwise.

  seed         std::random_device, srand(), time(nullptr)-style wall
               clocks, and system_clock are banned in src/ppep: every
               seed comes from the session/fleet spec so replays are
               exact. steady_clock (latency telemetry) stays legal —
               wall-clock durations are measured, never folded into
               decisions or digests.

Exit status 0 = clean, 1 = findings, 2 = usage error.
Run `ppep_lint.py --self-test` to check the rules against the fixtures
in tools/lint_fixtures/ (registered in ctest as test_ppep_lint).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- configuration ---------------------------------------------------------

# Cold-path files allowed to keep printf-family / string formatting.
# Each entry must say why. This is a ratchet: entries may be removed
# when migrated to util/fmt.hpp, never added for new hot-path code.
FORMATTING_ALLOWED = {
    "util/fmt.hpp",            # defines the replacement; mentions the banned
                               # calls in its documentation
    "util/logging.hpp",        # fatal/abort path: ostringstream right before
                               # the process dies
    "util/table.cpp",          # human-facing report tables, never per-interval
    "util/csv.cpp",            # doc comment contrasts with ostringstream
    "model/serialization.cpp", # model save/load, train-time only
    "runtime/model_store.cpp", # cache-key hashing at session build time
    "runtime/fleet.cpp",       # session naming at fleet construction
    "workloads/suite.cpp",     # workload naming at suite construction
    "sim/fault.cpp",           # FaultPlan::describe(), a debug summary
    "sim/vf_state.cpp",        # VfState::name(), setup/report time
}

# The warm-interval hot path: one interval of steady-state governing
# touches only these files (plus headers they include). Stream I/O,
# mutexes, and thread spawns are banned here outright.
HOT_FILES = {
    "model/cpi_model.cpp", "model/cpi_model.hpp",
    "model/event_predictor.cpp", "model/event_predictor.hpp",
    "model/dynamic_power_model.cpp", "model/dynamic_power_model.hpp",
    "model/pg_idle_model.cpp", "model/pg_idle_model.hpp",
    "model/explore_kernel.cpp", "model/explore_kernel.hpp",
    "model/ppep.cpp", "model/ppep.hpp",
    "governor/governor.cpp",
    "governor/energy_governor.cpp", "governor/energy_governor.hpp",
    "governor/ppep_capping.cpp", "governor/ppep_capping.hpp",
    "governor/degraded_mode.cpp", "governor/degraded_mode.hpp",
    "governor/coscale_lite.cpp", "governor/coscale_lite.hpp",
    "trace/collector.cpp", "trace/collector.hpp",
    "trace/replay.cpp", "trace/replay.hpp",
    "runtime/arbiter.cpp", "runtime/arbiter.hpp",
    "runtime/sampler.cpp", "runtime/sampler.hpp",
    "runtime/health.cpp", "runtime/health.hpp",
    "sim/chip.cpp", "sim/chip.hpp",
    "sim/chip_batch.cpp", "sim/chip_batch.hpp",
    "sim/core_model.cpp", "sim/core_model.hpp",
    "sim/northbridge.cpp", "sim/northbridge.hpp",
    "sim/hw_power_model.cpp", "sim/hw_power_model.hpp",
    "sim/thermal_model.cpp", "sim/thermal_model.hpp",
    "sim/power_sensor.cpp", "sim/power_sensor.hpp",
    "sim/pmc.cpp", "sim/pmc.hpp",
    "sim/phase.cpp", "sim/phase.hpp",
    "sim/vf_state.hpp",
    "sim/fault.hpp",
    "util/fmt.hpp",
    "util/rng.cpp", "util/rng.hpp",
    "util/annotations.hpp",
}

FORMATTING_RE = re.compile(
    r"\b(snprintf|sprintf|ostringstream|std::to_string|stringstream)\b")
ALLOC_RE = re.compile(r"(^|[^_\w.])(new\s+[A-Za-z_:]|malloc\s*\(|free\s*\()")
HOT_BANNED_RE = re.compile(
    r"\b(std::mutex|std::shared_mutex|lock_guard|unique_lock|scoped_lock"
    r"|condition_variable|std::thread|std::cout|std::cerr|fprintf|printf"
    r"|fopen|fstream|ofstream"
    # The annotated wrappers block exactly like the primitives they wrap;
    # a hot file must not acquire them either.
    r"|util::Mutex|util::CondVar|MutexLock|UniqueLock)\b")
HOT_BANNED_INCLUDE_RE = re.compile(
    r"#include\s+(?:<(iostream|fstream|sstream|mutex|thread"
    r"|condition_variable|shared_mutex)>"
    r"|\"(ppep/util/sync\.hpp)\")")
# The only file allowed to touch the raw standard-library primitives:
# it defines the capability-annotated wrappers everything else uses.
RAW_SYNC_ALLOWED = {"util/sync.hpp"}
RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
RAW_SYNC_INCLUDE_RE = re.compile(
    r"#include\s+<(mutex|condition_variable|shared_mutex)>")

# Files whose iteration order feeds the fleet determinism digest (or the
# exported artifacts hashed by it). Hash containers are banned here.
DETERMINISM_FILES = {
    "runtime/telemetry.cpp", "runtime/telemetry.hpp",
    "runtime/async_telemetry.cpp", "runtime/async_telemetry.hpp",
    "runtime/arbiter.cpp", "runtime/arbiter.hpp",
    "runtime/tenant.cpp", "runtime/tenant.hpp",
    "trace/export.cpp", "trace/export.hpp",
    "trace/replay.cpp", "trace/replay.hpp",
}
UNORDERED_RE = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\b"
    r"|#include\s+<unordered_(map|set)>")

OMP_SIMD_RE = re.compile(r"#pragma\s+omp\s+simd")
# Matches the attestation comment ("compiled with -ffp-contract=off")
# and the actual CMake flag, so one regex serves both sides of the check.
FP_CONTRACT_OFF_RE = re.compile(r"ffp-contract[=:]?\s*off")

SEED_RE = re.compile(
    r"\b(std::random_device|srand\s*\(|system_clock"
    r"|time\s*\(\s*(?:nullptr|NULL|0)\s*\))")

ESCAPE_RE = re.compile(r"PPEP_RT_(WARMUP|OPAQUE)_BEGIN")
ESCAPE_JUSTIFY_RE = re.compile(r"rt-escape:")
NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?(\(([^)]*)\))?(.*)")
PAPER_ANCHOR_RE = re.compile(
    r"\b(Eq\.|Sec\.|Fig\.|Obs\.|Table)\s*[0-9IVX]")
PROTO_RE = re.compile(r"^\s+[A-Za-z_~].*\(.*[;)]\s*$")
DOC_RE = re.compile(r"^\s*(/\*\*|\*|\*/|///|//)")


def strip_line_comment(line: str) -> str:
    """Drop // comments (good enough: no URL-bearing code lines here)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


class Finding:
    def __init__(self, path: Path, line: int, rule: str, msg: str):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def rel(path: Path, src_root: Path) -> str:
    try:
        return path.relative_to(src_root).as_posix()
    except ValueError:
        return path.as_posix()


# --- rules -----------------------------------------------------------------

def check_formatting(path: Path, rp: str, lines: list[str], out: list):
    if rp in FORMATTING_ALLOWED:
        return
    for i, raw in enumerate(lines, 1):
        line = strip_line_comment(raw)
        m = FORMATTING_RE.search(line)
        if m:
            out.append(Finding(path, i, "formatting",
                               f"'{m.group(1)}' is banned outside "
                               "util/fmt.hpp; use the to_chars helpers "
                               "(or justify a FORMATTING_ALLOWED entry)"))


def check_alloc(path: Path, rp: str, lines: list[str], out: list):
    for i, raw in enumerate(lines, 1):
        line = strip_line_comment(raw)
        m = ALLOC_RE.search(line)
        if m:
            out.append(Finding(path, i, "allocation",
                               "naked new/malloc/free; use "
                               "std::make_unique or a container"))


def check_hot_files(path: Path, rp: str, lines: list[str], out: list):
    if rp not in HOT_FILES:
        return
    for i, raw in enumerate(lines, 1):
        line = strip_line_comment(raw)
        m = HOT_BANNED_INCLUDE_RE.search(line) or HOT_BANNED_RE.search(line)
        if m:
            token = next((g for g in m.groups() if g), m.group(0))
            out.append(Finding(path, i, "hot-files",
                               f"'{token}' on the warm-interval hot "
                               "path; blocking belongs behind the async "
                               "telemetry boundary"))


def check_rt_escape(path: Path, rp: str, lines: list[str], out: list):
    if rp == "util/annotations.hpp":
        return  # defines the escapes; documents the rule itself
    for i, raw in enumerate(lines, 1):
        if not ESCAPE_RE.search(raw):
            continue
        window = lines[max(0, i - 5):i - 1] + [raw]
        if not any(ESCAPE_JUSTIFY_RE.search(w) for w in window):
            out.append(Finding(path, i, "rt-escape",
                               "escape region without an `rt-escape:` "
                               "justification comment above it"))


def check_nolint(path: Path, rp: str, lines: list[str], out: list):
    for i, raw in enumerate(lines, 1):
        idx = raw.find("NOLINT")
        if idx < 0:
            continue
        m = NOLINT_RE.match(raw[idx:])
        checks = m.group(3) if m else None
        reason = (m.group(4) or "").strip(" .") if m else ""
        if not checks or checks.strip() in ("", "*"):
            out.append(Finding(path, i, "nolint",
                               "NOLINT must name the silenced check: "
                               "`NOLINT(check-name): reason`"))
        elif not reason.lstrip(":").strip():
            out.append(Finding(path, i, "nolint",
                               "NOLINT must carry a reason: "
                               "`NOLINT(check-name): reason`"))


def check_guards(path: Path, rp: str, lines: list[str], out: list):
    if path.suffix != ".hpp":
        return
    expected = "PPEP_" + re.sub(r"[/.]", "_", rp.upper().replace(".HPP",
                                                                 "_HPP"))
    ifndef = next((l for l in lines if l.startswith("#ifndef")), None)
    define = next((l for l in lines if l.startswith("#define")), None)
    if (ifndef is None or define is None
            or ifndef.split()[1:2] != [expected]
            or define.split()[1:2] != [expected]):
        out.append(Finding(path, 1, "guards",
                           f"header must use include guard '{expected}'"))


def check_model_docs(path: Path, rp: str, lines: list[str], out: list):
    if not (rp.startswith("model/") and path.suffix == ".hpp"):
        return
    if not any(PAPER_ANCHOR_RE.search(l) for l in lines):
        out.append(Finding(path, 1, "model-docs",
                           "model header cites no paper anchor "
                           "(Eq./Sec./Fig./Obs./Table N)"))
    # Public prototypes (declarations ending in `;`) need a doc comment
    # above the declaration's first line. Inline accessors (body on the
    # declaration line) are self-documenting and skipped, as are
    # statement lines inside inline method bodies (tracked via brace
    # depth: members live exactly at their class's depth).
    depth = 0
    class_stack: list[tuple[int, str]] = []  # (member depth, visibility)
    pending: str | None = None
    for i, raw in enumerate(lines, 1):
        stripped = strip_line_comment(raw).strip()
        line_depth = depth
        depth += stripped.count("{") - stripped.count("}")
        while class_stack and depth < class_stack[-1][0]:
            class_stack.pop()
        if re.match(r"(class|struct)\s+\w+", stripped) and \
                ";" not in stripped:
            pending = "public" if stripped.startswith("struct") \
                else "private"
        if pending is not None and "{" in stripped:
            class_stack.append((depth, pending))
            pending = None
            continue
        if not class_stack:
            continue
        if stripped.startswith("public:"):
            class_stack[-1] = (class_stack[-1][0], "public")
        elif stripped.startswith(("private:", "protected:")):
            class_stack[-1] = (class_stack[-1][0], "private")
        if class_stack[-1][1] != "public":
            continue
        if line_depth != class_stack[-1][0]:
            continue  # inside an inline method body or nested scope
        if not PROTO_RE.match(raw.rstrip()) or not raw.rstrip().endswith(";"):
            continue
        if "{" in raw or "}" in raw or "=" in raw:
            continue  # inline body / defaulted / initialised member
        # Walk up over continuation lines to the declaration's first
        # line, then require a doc comment directly above it.
        first = i
        while first > 1:
            prev = lines[first - 2].rstrip()
            # A return type on its own line (`std::vector<T>`) is part
            # of the declaration, so `>` does not end the walk.
            if (not prev.strip() or DOC_RE.match(prev)
                    or prev.endswith((";", "{", "}", ":"))):
                break
            first -= 1
        if first == 1 or not DOC_RE.match(lines[first - 2]):
            out.append(Finding(path, i, "model-docs",
                               "public model API without a doc comment "
                               "(state what it computes and the paper "
                               "equation it implements)"))


def check_raw_sync(path: Path, rp: str, lines: list[str], out: list):
    if rp in RAW_SYNC_ALLOWED:
        return
    for i, raw in enumerate(lines, 1):
        line = strip_line_comment(raw)
        m = RAW_SYNC_INCLUDE_RE.search(line) or RAW_SYNC_RE.search(line)
        if m:
            token = next((g for g in m.groups() if g), m.group(0))
            out.append(Finding(path, i, "raw-sync",
                               f"raw '{token}' outside util/sync.hpp; "
                               "use the capability-annotated util::Mutex"
                               " / util::CondVar wrappers so "
                               "PPEP_THREAD_SAFETY can see the lock"))


def check_unordered_iter(path: Path, rp: str, lines: list[str], out: list):
    if rp not in DETERMINISM_FILES:
        return
    for i, raw in enumerate(lines, 1):
        line = strip_line_comment(raw)
        m = UNORDERED_RE.search(line)
        if m:
            out.append(Finding(path, i, "unordered-iter",
                               "hash container on a determinism-digest "
                               "path; iteration order is unspecified — "
                               "use std::map or a sorted vector"))


def check_fp_contract(path: Path, rp: str, lines: list[str], out: list):
    simd_line = next((i for i, raw in enumerate(lines, 1)
                      if OMP_SIMD_RE.search(raw)), None)
    if simd_line is None:
        return
    # Attestation comment searched raw (it lives *in* comments), so no
    # strip_line_comment here.
    if not any(FP_CONTRACT_OFF_RE.search(raw) for raw in lines):
        out.append(Finding(path, simd_line, "fp-contract",
                           "TU uses `#pragma omp simd` but carries no "
                           "`-ffp-contract=off` attestation comment; "
                           "FMA contraction breaks bitwise determinism"))
    # The comment can lie: the TU's own CMakeLists.txt must pin the flag.
    # Fixtures (and any future out-of-tree lint targets) have no sibling
    # CMakeLists.txt, so the build-side check only runs when one exists.
    cmake = path.parent / "CMakeLists.txt"
    if cmake.is_file() and not FP_CONTRACT_OFF_RE.search(
            cmake.read_text(encoding="utf-8")):
        out.append(Finding(path, simd_line, "fp-contract",
                           f"`#pragma omp simd` here but {cmake.name} in "
                           f"{rel(cmake.parent, path.parent.parent)} does "
                           "not pin -ffp-contract=off"))


def check_seed(path: Path, rp: str, lines: list[str], out: list):
    for i, raw in enumerate(lines, 1):
        line = strip_line_comment(raw)
        m = SEED_RE.search(line)
        if m:
            out.append(Finding(path, i, "seed",
                               f"'{m.group(1)}' is nondeterministic; "
                               "seeds come from the session/fleet spec "
                               "and time from steady_clock (durations "
                               "only, never digested)"))


RULES = [check_formatting, check_alloc, check_hot_files, check_rt_escape,
         check_nolint, check_guards, check_model_docs, check_raw_sync,
         check_unordered_iter, check_fp_contract, check_seed]


# --- driver ----------------------------------------------------------------

def lint_tree(src_root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        rp = rel(path, src_root)
        for rule in RULES:
            rule(path, rp, lines, findings)
    return findings


def self_test(fixtures: Path) -> int:
    """Every fixtures/bad_* file must trip exactly its named rule; every
    fixtures/good_* file must be clean. Fixture filenames encode the
    expectation: bad_<rule>_<anything>.<ext>."""
    failures = 0
    for path in sorted(fixtures.iterdir()):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        # Fixtures simulate a tree position via their first line:
        #   // lint-as: model/foo.hpp
        m = re.match(r"//\s*lint-as:\s*(\S+)", lines[0]) if lines else None
        rp = m.group(1) if m else path.name
        findings: list[Finding] = []
        for rule in RULES:
            rule(path, rp, lines, findings)
        rules_hit = {f.rule for f in findings}
        if path.name.startswith("bad_"):
            want = path.name.split("_")[1]
            if want not in rules_hit:
                print(f"SELF-TEST FAIL: {path.name}: expected a "
                      f"'{want}' finding, got {sorted(rules_hit) or 'none'}")
                failures += 1
        elif path.name.startswith("good_"):
            if findings:
                print(f"SELF-TEST FAIL: {path.name}: expected clean, got:")
                for f in findings:
                    print(f"  {f}")
                failures += 1
    print("self-test:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--src", type=Path, default=None,
                    help="source root to lint (default: <repo>/src/ppep)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules against tools/lint_fixtures/")
    args = ap.parse_args()

    here = Path(__file__).resolve().parent
    if args.self_test:
        return self_test(here / "lint_fixtures")

    src_root = args.src or here.parent / "src" / "ppep"
    if not src_root.is_dir():
        print(f"ppep_lint: no such source root: {src_root}",
              file=sys.stderr)
        return 2

    findings = lint_tree(src_root)
    for f in findings:
        print(f)
    print(f"ppep_lint: {len(findings)} finding(s) over "
          f"{sum(1 for _ in src_root.rglob('*.hpp'))} headers and "
          f"{sum(1 for _ in src_root.rglob('*.cpp'))} sources")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
