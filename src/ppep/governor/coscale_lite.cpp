#include "ppep/governor/coscale_lite.hpp"

#include <limits>

#include "ppep/model/event_predictor.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::governor {

CoScaleLiteGovernor::CoScaleLiteGovernor(const sim::ChipConfig &cfg,
                                         const model::Ppep &ppep,
                                         double max_slowdown)
    : cfg_(cfg), ppep_(ppep), max_slowdown_(max_slowdown),
      last_core_vf_(cfg.vf_table.top())
{
    PPEP_ASSERT(max_slowdown_ >= 0.0 && max_slowdown_ < 1.0,
                "slowdown budget out of [0,1)");
    PPEP_ASSERT(ppep_.pgModel().trained(),
                "CoScale-lite needs the PG idle decomposition");
}

std::vector<std::size_t>
CoScaleLiteGovernor::decide(const trace::IntervalRecord &rec,
                            double cap_w)
{
    const std::size_t n_vf = cfg_.vf_table.size();
    const auto &dyn_model = ppep_.powerModel().dynamicModel();
    const auto &pg = ppep_.pgModel();

    // Whether the *measurement* interval already ran on the low NB
    // point: its leading-load cycles then carry the 1.5x factor, which
    // must not be double counted when predicting.
    const bool measured_lo =
        rec.nb_vf.freq_ghz < cfg_.nb.vf_hi.freq_ghz * 0.99;
    const double measured_factor =
        measured_lo ? factors_.mcpi_scale : 1.0;

    // Busy topology for the idle split.
    std::vector<std::size_t> busy_per_cu(cfg_.n_cus, 0);
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        if (rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)] > 0.0)
            ++busy_per_cu[c / cfg_.cores_per_cu];
    }
    bool any_busy = false;
    for (std::size_t b : busy_per_cu)
        any_busy = any_busy || b > 0;
    if (!any_busy) {
        nb_low_ = false;
        last_core_vf_ = 0;
        return std::vector<std::size_t>(cfg_.n_cus, 0);
    }

    struct Config
    {
        std::size_t vf;
        bool nb_low;
        double power_w;
        double ips;
    };
    std::vector<Config> configs;
    for (const bool nb_low : {false, true}) {
        const double target_factor =
            nb_low ? factors_.mcpi_scale : 1.0;
        const double mcpi_scale = target_factor / measured_factor;
        const double nb_dyn_scale =
            nb_low ? factors_.dynamic_scale : 1.0;
        const double nb_idle_scale =
            nb_low ? factors_.idle_scale : 1.0;
        for (std::size_t vf = 0; vf < n_vf; ++vf) {
            const sim::VfState &state = cfg_.vf_table.state(vf);
            double dyn = 0.0, ips = 0.0;
            for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
                const std::size_t cu = c / cfg_.cores_per_cu;
                const double f_now =
                    cfg_.vf_table.state(rec.cu_vf[cu]).freq_ghz;
                const auto pred = model::EventPredictor::predict(
                    rec.pmc[c], rec.duration_s, f_now, state.freq_ghz,
                    mcpi_scale);
                if (pred.ips <= 0.0)
                    continue;
                std::array<double, sim::kNumPowerEvents> rates{};
                for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
                    rates[i] = pred.rates_per_s[i];
                double core_w = 0.0, nb_w = 0.0;
                dyn_model.split(rates, state.voltage, core_w, nb_w);
                dyn += core_w + nb_w * nb_dyn_scale;
                ips += pred.rates_per_s[sim::eventIndex(
                    sim::Event::RetiredInst)];
            }
            const auto &comp = pg.components(vf);
            double idle = comp.p_base;
            for (std::size_t cu = 0; cu < cfg_.n_cus; ++cu)
                if (busy_per_cu[cu] > 0)
                    idle += comp.p_cu;
            idle += comp.p_nb * nb_idle_scale;
            configs.push_back({vf, nb_low, idle + dyn, ips});
        }
    }

    // CoScale's contract: minimise energy subject to staying within a
    // slowdown budget of the fastest configuration (and under any cap).
    double ips_ref = 0.0;
    for (const auto &c : configs)
        ips_ref = std::max(ips_ref, c.ips);
    const double ips_floor = ips_ref * (1.0 - max_slowdown_);

    const Config *best = nullptr;
    double best_epi = std::numeric_limits<double>::max();
    for (const auto &c : configs) {
        if (c.ips < ips_floor || c.ips <= 0.0 || c.power_w > cap_w)
            continue;
        const double epi = c.power_w / c.ips;
        if (epi < best_epi) {
            best_epi = epi;
            best = &c;
        }
    }
    if (!best) {
        // Nothing satisfies both constraints: run flat out (the
        // performance contract outranks energy).
        for (const auto &c : configs)
            if (!best || c.ips > best->ips)
                best = &c;
    }

    nb_low_ = best->nb_low;
    last_core_vf_ = best->vf;
    return std::vector<std::size_t>(cfg_.n_cus, best->vf);
}

std::optional<sim::VfState>
CoScaleLiteGovernor::decideNb() PPEP_NONBLOCKING
{
    return nb_low_ ? cfg_.nb.vf_lo : cfg_.nb.vf_hi;
}

} // namespace ppep::governor
