#include "ppep/governor/energy_governor.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::governor {

EnergyOptimalGovernor::EnergyOptimalGovernor(const sim::ChipConfig &cfg,
                                             const model::Ppep &ppep,
                                             EnergyObjective objective)
    : cfg_(cfg), ppep_(ppep), objective_(objective),
      last_choice_(cfg.vf_table.top())
{
}

std::string
EnergyOptimalGovernor::name() const
{
    return objective_ == EnergyObjective::Energy ? "ppep-energy-optimal"
                                                 : "ppep-edp-optimal";
}

std::vector<std::size_t>
EnergyOptimalGovernor::decide(const trace::IntervalRecord &rec,
                              double cap_w)
{
    std::vector<std::size_t> out;
    decideInto(rec, cap_w, out);
    return out;
}

void
EnergyOptimalGovernor::decideInto(const trace::IntervalRecord &rec,
                                  double cap_w,
                                  std::vector<std::size_t> &out)
    PPEP_NONBLOCKING
{
    ppep_.exploreInto(rec, preds_, scratch_);
    const auto &predictions = preds_;

    std::size_t best = last_choice_;
    double best_score = std::numeric_limits<double>::max();
    bool any_busy = false;
    bool any_feasible = false;
    std::size_t min_power_vf = 0;
    double min_power = std::numeric_limits<double>::max();
    for (const auto &p : predictions) {
        if (p.total_ips <= 0.0)
            continue;
        any_busy = true;
        if (p.chip_power_w < min_power) {
            min_power = p.chip_power_w;
            min_power_vf = p.vf_index;
        }
        if (p.chip_power_w > cap_w)
            continue;
        any_feasible = true;
        const double score = objective_ == EnergyObjective::Energy
                                 ? p.energy_per_inst
                                 : p.edp_per_inst;
        if (score < best_score) {
            best_score = score;
            best = p.vf_index;
        }
    }
    if (!any_busy) {
        // Idle chip: park at the lowest state.
        best = 0;
    } else if (!any_feasible) {
        // No state fits the cap: get as close as possible rather than
        // sticking with whatever ran last interval.
        best = min_power_vf;
    }
    last_choice_ = best;
    last_predicted_power_w_ = predictions[best].chip_power_w;
    // rt-escape: warm-up growth of the caller-owned decision vector.
    PPEP_RT_WARMUP_BEGIN
    out.assign(cfg_.n_cus, best);
    PPEP_RT_WARMUP_END
}

} // namespace ppep::governor
