/**
 * @file
 * CoScale-lite: coordinated core + north-bridge DVFS driven by PPEP
 * predictions.
 *
 * The paper positions PPEP as a better CPU estimator for system-level
 * coordinated-DVFS frameworks ("PPEP could also be included in
 * system-level models, such as CoScale [6]"), and its Sec. V-C2 what-if
 * argues a scalable NB is worth building. This governor closes that
 * loop: every interval it evaluates all (core VF, NB VF) combinations —
 * pricing the low NB point with the Sec. V-C2 factors (idle x0.60,
 * dynamic x0.64, leading-load cycles x1.50) — and picks the
 * minimum-energy pair whose predicted throughput stays within a
 * performance-loss budget of the fastest configuration, CoScale's
 * contract.
 *
 * Because the simulated chip really implements NB DVFS, this runs
 * closed-loop: mispredictions of the assumed factors show up in the
 * measured trace, not just on paper.
 */

#ifndef PPEP_GOVERNOR_COSCALE_LITE_HPP
#define PPEP_GOVERNOR_COSCALE_LITE_HPP

#include "ppep/governor/energy_explorer.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"

namespace ppep::governor {

/** Coordinated core+NB energy-minimising DVFS under a slowdown budget. */
class CoScaleLiteGovernor : public Governor
{
  public:
    /**
     * @param cfg         platform (must support PG — the idle split
     *                    prices gated CUs).
     * @param ppep        trained predictor with a PG idle model.
     * @param max_slowdown allowed throughput loss vs. the fastest
     *                    configuration (CoScale's performance
     *                    constraint), e.g. 0.10 for 10%.
     */
    CoScaleLiteGovernor(const sim::ChipConfig &cfg,
                        const model::Ppep &ppep, double max_slowdown);

    std::vector<std::size_t> decide(const trace::IntervalRecord &rec,
                                    double cap_w) override;

    std::optional<sim::VfState> decideNb() PPEP_NONBLOCKING override;

    std::string name() const override { return "coscale-lite"; }

    /** Whether the last decision chose the low NB point. */
    bool lastNbLow() const { return nb_low_; }

    /** The last chosen core VF index. */
    std::size_t lastCoreVf() const { return last_core_vf_; }

  private:
    const sim::ChipConfig &cfg_;
    const model::Ppep &ppep_;
    double max_slowdown_;
    NbWhatIfFactors factors_{};
    bool nb_low_ = false;
    std::size_t last_core_vf_;
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_COSCALE_LITE_HPP
