/**
 * @file
 * Proactive thermal capping (extension).
 *
 * Same single-step philosophy as the paper's power capping, one level
 * up: combine PPEP's power predictions with the fitted thermal network
 * (model::ThermalEstimate) to pick, each interval, the fastest VF state
 * whose *steady-state temperature* stays under a junction cap — before
 * the die ever gets there. A reactive thermal throttle waits for the
 * diode to cross the limit and then backs off.
 */

#ifndef PPEP_GOVERNOR_THERMAL_CAP_HPP
#define PPEP_GOVERNOR_THERMAL_CAP_HPP

#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/thermal_estimator.hpp"

namespace ppep::governor {

/** One-step thermal capping built on PPEP + the thermal fit. */
class ThermalCapGovernor : public Governor
{
  public:
    /**
     * @param cfg      platform description.
     * @param ppep     trained predictor.
     * @param thermal  fitted thermal network.
     * @param temp_cap_k junction temperature ceiling, kelvin.
     * @param margin_k derate the cap by this much to absorb model and
     *                 fit error.
     */
    ThermalCapGovernor(const sim::ChipConfig &cfg,
                       const model::Ppep &ppep,
                       const model::ThermalEstimate &thermal,
                       double temp_cap_k, double margin_k = 1.0);

    std::vector<std::size_t> decide(const trace::IntervalRecord &rec,
                                    double cap_w) override;

    std::string name() const override { return "ppep-thermal-cap"; }

    /** The power budget the temperature cap implies, watts. */
    double powerBudgetW() const;

  private:
    const sim::ChipConfig &cfg_;
    const model::Ppep &ppep_;
    model::ThermalEstimate thermal_;
    double temp_cap_k_;
    double margin_k_;
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_THERMAL_CAP_HPP
