#include "ppep/governor/thermal_cap.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::governor {

ThermalCapGovernor::ThermalCapGovernor(
    const sim::ChipConfig &cfg, const model::Ppep &ppep,
    const model::ThermalEstimate &thermal, double temp_cap_k,
    double margin_k)
    : cfg_(cfg), ppep_(ppep), thermal_(thermal),
      temp_cap_k_(temp_cap_k), margin_k_(margin_k)
{
    PPEP_ASSERT(temp_cap_k_ > thermal_.ambient_k,
                "temperature cap below ambient is unreachable");
    PPEP_ASSERT(margin_k_ >= 0.0, "negative margin");
}

double
ThermalCapGovernor::powerBudgetW() const
{
    return thermal_.powerBudgetFor(temp_cap_k_ - margin_k_);
}

std::vector<std::size_t>
ThermalCapGovernor::decide(const trace::IntervalRecord &rec,
                           double cap_w)
{
    // The thermal ceiling translates to a sustained-power budget; the
    // effective budget is the tighter of it and any explicit power cap.
    const double budget = std::min(cap_w, powerBudgetW());

    const auto predictions = ppep_.explore(rec);
    std::size_t best = 0;
    double best_ips = -1.0;
    bool any_busy = false;
    for (const auto &p : predictions) {
        if (p.total_ips > 0.0)
            any_busy = true;
        if (p.chip_power_w > budget)
            continue;
        if (p.total_ips > best_ips) {
            best_ips = p.total_ips;
            best = p.vf_index;
        }
    }
    if (!any_busy)
        best = 0;
    return std::vector<std::size_t>(cfg_.n_cus, best);
}

} // namespace ppep::governor
