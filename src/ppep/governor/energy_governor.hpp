/**
 * @file
 * Energy- and EDP-optimal predictive DVFS (paper contribution #2: "a
 * predictive DVFS controller can use PPEP to explore the energy-delay
 * space and pick energy- and EDP-optimal points with high accuracy").
 *
 * Every interval the governor evaluates PPEP's predictions at all VF
 * states and jumps straight to the one minimising fixed-work energy
 * (J/instruction) or fixed-work EDP — one step, no search trajectory.
 */

#ifndef PPEP_GOVERNOR_ENERGY_GOVERNOR_HPP
#define PPEP_GOVERNOR_ENERGY_GOVERNOR_HPP

#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"

namespace ppep::governor {

/** What the governor optimises. */
enum class EnergyObjective
{
    Energy, ///< minimise predicted energy per instruction
    Edp,    ///< minimise predicted energy-delay per instruction
};

/** One-step energy/EDP-optimal global DVFS. */
class EnergyOptimalGovernor : public Governor
{
  public:
    EnergyOptimalGovernor(const sim::ChipConfig &cfg,
                          const model::Ppep &ppep,
                          EnergyObjective objective);

    std::vector<std::size_t> decide(const trace::IntervalRecord &rec,
                                    double cap_w) override;

    /** Allocation-free decide() (identical choice). */
    void decideInto(const trace::IntervalRecord &rec, double cap_w,
                    std::vector<std::size_t> &out) PPEP_NONBLOCKING
        override;

    std::string name() const override;

    /** The VF the policy chose most recently. */
    std::size_t lastChoice() const { return last_choice_; }

    const std::vector<model::VfPrediction> *
    lastExploration() const PPEP_NONBLOCKING override
    {
        return preds_.empty() ? nullptr : &preds_;
    }

    double lastPredictedPower() const PPEP_NONBLOCKING override
    {
        return last_predicted_power_w_;
    }

  private:
    const sim::ChipConfig &cfg_;
    const model::Ppep &ppep_;
    EnergyObjective objective_;
    std::size_t last_choice_;
    /** Exploration buffers reused every interval (no per-decision heap). */
    std::vector<model::VfPrediction> preds_;
    model::ExploreScratch scratch_;
    double last_predicted_power_w_ =
        std::numeric_limits<double>::quiet_NaN();
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_ENERGY_GOVERNOR_HPP
