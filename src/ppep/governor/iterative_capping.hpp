/**
 * @file
 * The reactive baseline power-capping policy (paper Sec. V-B, Fig. 7).
 *
 * "A control loop will change the VF state and spend some time
 * determining the current power usage. If the power usage is not yet
 * under the cap, this VF state is lowered and the process repeats" — one
 * step per 200 ms interval, so a large cap swing takes many intervals to
 * track (the paper measures 2.8 s vs. PPEP's 0.2 s).
 */

#ifndef PPEP_GOVERNOR_ITERATIVE_CAPPING_HPP
#define PPEP_GOVERNOR_ITERATIVE_CAPPING_HPP

#include "ppep/governor/governor.hpp"

namespace ppep::governor {

/** One-VF-step-per-interval reactive capping. */
class IterativeCappingGovernor : public Governor
{
  public:
    /**
     * @param cfg       chip description (CU count + VF table).
     * @param raise_margin_w raise a VF state only when measured power is
     *                  at least this far under the cap — the classic
     *                  hysteresis band that also causes the baseline's
     *                  residual cap violations when it guesses wrong.
     */
    explicit IterativeCappingGovernor(const sim::ChipConfig &cfg,
                                      double raise_margin_w = 8.0);

    std::vector<std::size_t> decide(const trace::IntervalRecord &rec,
                                    double cap_w) override;

    std::string name() const override { return "simple-iterative"; }

  private:
    const sim::ChipConfig &cfg_;
    double raise_margin_w_;
    std::vector<std::size_t> cu_vf_;
    std::size_t rr_ = 0; ///< round-robin CU cursor
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_ITERATIVE_CAPPING_HPP
