/**
 * @file
 * Energy/EDP space exploration (paper Sec. V-C, Figs. 8-11).
 *
 * Runs a background-workload sweep (one program, 1..n_cus concurrent
 * instances) at the top VF state with power gating enabled, then uses
 * PPEP's predictions to evaluate per-thread energy, EDP, and the core/NB
 * energy split at *every* core VF state — and, for the Sec. V-C2 what-if,
 * at a hypothetical low NB VF state using the paper's assumed factors:
 * NB idle power -40%, NB dynamic power -36%, leading-load cycles +50%.
 */

#ifndef PPEP_GOVERNOR_ENERGY_EXPLORER_HPP
#define PPEP_GOVERNOR_ENERGY_EXPLORER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ppep/model/ppep.hpp"
#include "ppep/sim/chip_config.hpp"

namespace ppep::governor {

/** Paper-stated NB what-if factors (Sec. V-C2). */
struct NbWhatIfFactors
{
    double idle_scale = 0.60;    ///< NB idle power drops 40%
    double dynamic_scale = 0.64; ///< NB dynamic power drops 36%
    double mcpi_scale = 1.50;    ///< leading-load cycles grow 50%
};

/** One explored operating point. */
struct ExplorePoint
{
    std::size_t vf_index = 0;
    bool nb_low = false;
    /** Predicted per-thread energy for the benchmark's fixed work, J. */
    double energy_j = 0.0;
    /** Core-attributed part (core dynamic + CU idle share), J. */
    double core_energy_j = 0.0;
    /** NB-attributed part (NB dynamic + NB/base idle share), J. */
    double nb_energy_j = 0.0;
    /** Predicted per-thread completion time, s. */
    double time_s = 0.0;
    /** Per-thread energy-delay product, J*s. */
    double edp = 0.0;
};

/** Fig. 11 summary for one run mode. */
struct NbWhatIfSummary
{
    /** Extra energy saving from NB scaling at the energy-optimal point. */
    double energy_saving = 0.0;
    /** Speedup at similar energy vs. core-VF1 + NB-hi. */
    double speedup = 0.0;
};

/** The Sec. V-C exploration driver. */
class EnergyExplorer
{
  public:
    /**
     * @param cfg  platform (PG must be supported: the paper enables PG
     *             for all Sec. V-C experiments).
     * @param ppep trained predictor with a PG idle model.
     * @param seed drives the measurement chip.
     */
    EnergyExplorer(sim::ChipConfig cfg, const model::Ppep &ppep,
                   std::uint64_t seed);

    /**
     * Sweep all core VF states (and optionally the low NB state) for
     * @p copies concurrent instances of @p program. Results are ordered
     * VF-ascending, NB-hi first.
     */
    std::vector<ExplorePoint> explore(const std::string &program,
                                      std::size_t copies,
                                      bool include_nb_low = false) const;

    /** Fig. 11 metrics from an explore() result that included NB-low. */
    static NbWhatIfSummary summarize(
        const std::vector<ExplorePoint> &points,
        double energy_tolerance = 1.10);

    /** The what-if factors in use. */
    const NbWhatIfFactors &factors() const { return factors_; }

  private:
    sim::ChipConfig cfg_;
    const model::Ppep &ppep_;
    std::uint64_t seed_;
    NbWhatIfFactors factors_{};
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_ENERGY_EXPLORER_HPP
