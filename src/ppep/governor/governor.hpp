/**
 * @file
 * DVFS policy interface and the interval-granularity control loop.
 *
 * A Governor observes each completed 200 ms interval (counters, sensor
 * power, temperature) plus the active power cap and decides the per-CU VF
 * states for the next interval — the same cadence the paper's daemon
 * runs at. The GovernorLoop owns the measurement/actuation cycle and
 * records the full control trace for Fig. 7-style analysis.
 */

#ifndef PPEP_GOVERNOR_GOVERNOR_HPP
#define PPEP_GOVERNOR_GOVERNOR_HPP

#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "ppep/model/ppep.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::governor {

/** A time-varying power cap (square waves, steps, constants). */
class CapSchedule
{
  public:
    /** Constant cap. */
    explicit CapSchedule(double cap_w);

    /**
     * Piecewise-constant schedule: `points[i]` = {start interval, cap}.
     * @pre starts strictly increasing, first start == 0.
     */
    explicit CapSchedule(
        std::vector<std::pair<std::size_t, double>> points);

    /** Cap active during interval @p index. */
    double capAt(std::size_t index) const PPEP_NONBLOCKING;

    /** A schedule with no cap (infinity). */
    static CapSchedule unlimited();

  private:
    std::vector<std::pair<std::size_t, double>> points_;
};

/** Abstract per-interval DVFS policy. */
class Governor
{
  public:
    virtual ~Governor() = default;

    /**
     * Decide the per-CU VF indices to apply for the *next* interval.
     *
     * @param rec   the interval that just completed.
     * @param cap_w the power cap that will be active next interval.
     */
    virtual std::vector<std::size_t>
    decide(const trace::IntervalRecord &rec, double cap_w) = 0;

    /**
     * decide() into a caller-owned vector, reusing its storage — the
     * allocation-free steady-state path. The default forwards to
     * decide(); policies with a hot path override it. Outputs are
     * identical to decide().
     */
    virtual void decideInto(const trace::IntervalRecord &rec, double cap_w,
                            std::vector<std::size_t> &out) PPEP_NONBLOCKING
    {
        // rt-escape: legacy fallback — decide() allocates its result by
        // contract. Policies that run in the fleet steady state override
        // decideInto(); anything still on this default is not RT-safe
        // and is exempted from the runtime check too.
        PPEP_RT_WARMUP_BEGIN
        out = decide(rec, cap_w);
        PPEP_RT_WARMUP_END
    }

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Optional NB operating point for the next interval (coordinated
     * core+NB policies); nullopt leaves the NB untouched. Queried right
     * after decide().
     */
    virtual std::optional<sim::VfState>
    decideNb() PPEP_NONBLOCKING
    {
        return std::nullopt;
    }

    // --- telemetry hooks (ppep::runtime) ---------------------------------

    /**
     * The per-VF exploration computed during the most recent decide(),
     * if this is a PPEP-based global-DVFS policy; nullptr otherwise.
     * Valid until the next decide(). Consumed by telemetry sinks.
     */
    virtual const std::vector<model::VfPrediction> *
    lastExploration() const PPEP_NONBLOCKING
    {
        return nullptr;
    }

    /**
     * Chip power this policy predicts for the interval its most recent
     * decision will govern; NaN when the policy does not predict power.
     */
    virtual double
    lastPredictedPower() const PPEP_NONBLOCKING
    {
        return std::numeric_limits<double>::quiet_NaN();
    }
};

/** One step of a governed run. */
struct GovernorStep
{
    trace::IntervalRecord rec;
    double cap_w = 0.0;                ///< cap active during the interval
    std::vector<std::size_t> cu_vf;    ///< VF applied during the interval
};

/** Measurement/decision/actuation loop. */
class GovernorLoop
{
  public:
    /**
     * Per-step observer: invoked once per completed interval with the
     * finished step and the wall-clock cost of the decide()/decideNb()
     * call that followed it. ppep::runtime::Session uses this to drive
     * its telemetry sinks without duplicating the cycle.
     */
    using StepObserver =
        std::function<void(const GovernorStep &step,
                           double decision_latency_s)>;

    GovernorLoop(sim::Chip &chip, Governor &policy);

    /**
     * Drive the cycle from @p source instead of a plain Collector — the
     * hardened-acquisition hookup (runtime::Sampler). @p source must be
     * bound to the same chip.
     */
    GovernorLoop(sim::Chip &chip, Governor &policy,
                 trace::IntervalSource &source);

    /** Run @p intervals intervals under @p schedule. */
    std::vector<GovernorStep> run(std::size_t intervals,
                                  const CapSchedule &schedule,
                                  const StepObserver &observer = nullptr);

    /**
     * Run @p intervals intervals without retaining the step trace — the
     * steady-state path. One internal step is reused across intervals,
     * so after the first few intervals warm the scratch buffers the loop
     * performs zero heap allocations per interval (given a policy and
     * source with allocation-free Into paths). The observer sees each
     * step exactly as run() would produce it. Returns the number of
     * intervals run.
     */
    std::size_t drive(std::size_t intervals, const CapSchedule &schedule,
                      const StepObserver &observer = nullptr);

    // Split cycle for external drivers (the batched fleet, replay):
    // cycleBegin + "run the interval into step.rec however you like" +
    // cycleDecide is exactly cycle() — the private fused path is these
    // two calls with source.collectIntervalInto(step.rec) between them.

    /** Stamp the step's cap and the VF context active this interval. */
    void cycleBegin(std::size_t index, const CapSchedule &schedule,
                    GovernorStep &step) PPEP_NONBLOCKING;

    /** Decide with the next interval's cap, actuate, time the policy. */
    void cycleDecide(std::size_t index, const CapSchedule &schedule,
                     GovernorStep &step,
                     std::vector<std::size_t> &next_vf,
                     double &latency_s) PPEP_NONBLOCKING;

    /**
     * Externally imposed watt limit layered under the schedule: the
     * effective cap at any interval is min(schedule, limit). The fleet
     * arbiter installs its per-session allocation here each barrier
     * interval; the default (+inf) leaves the schedule alone.
     */
    void setCapLimit(double cap_w) PPEP_NONBLOCKING { cap_limit_ = cap_w; }
    double capLimit() const PPEP_NONBLOCKING { return cap_limit_; }

  private:
    /** One measurement/decision/actuation cycle shared by run/drive.
     *  This is the annotated real-time region: everything reached from
     *  here must be PPEP_NONBLOCKING or an explicit rt-escape. The
     *  observer hand-off lives in run()/drive(), outside the region,
     *  because AsyncTelemetrySink blocks by design (backpressure). */
    void cycle(std::size_t index, const CapSchedule &schedule,
               trace::IntervalSource &source, GovernorStep &step,
               std::vector<std::size_t> &next_vf,
               double &latency_s) PPEP_NONBLOCKING;

    /** The injected source, or a lazily-built Collector that persists
     *  across run()/drive() calls so its scratch stays warm. */
    trace::IntervalSource &source();

    sim::Chip &chip_;
    Governor &policy_;
    /** Arbiter-imposed limit; min()'d with the schedule everywhere. */
    double cap_limit_ = std::numeric_limits<double>::max();
    trace::IntervalSource *source_ = nullptr;
    std::optional<trace::Collector> own_collector_;
    /** Scratch reused by drive(). */
    GovernorStep scratch_step_;
    std::vector<std::size_t> scratch_vf_;
};

/** Fraction of intervals whose measured power stayed at or under cap. */
double capAdherence(const std::vector<GovernorStep> &steps);

/**
 * Mean number of intervals taken to get back under a newly-lowered cap
 * (the paper's responsiveness metric; PPEP should achieve ~1).
 */
double meanSettleIntervals(const std::vector<GovernorStep> &steps);

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_GOVERNOR_HPP
