#include "ppep/governor/degraded_mode.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::governor {

DegradedModeGovernor::DegradedModeGovernor(const sim::Chip &chip,
                                           Governor &inner,
                                           HealthProbe probe,
                                           SafePolicy policy)
    : chip_(chip), inner_(&inner), probe_(std::move(probe)),
      policy_(policy),
      last_predicted_w_(std::numeric_limits<double>::quiet_NaN())
{
    PPEP_ASSERT(policy_.cap_guard >= 0.0 && policy_.cap_guard < 1.0,
                "cap_guard in [0, 1)");
}

std::vector<std::size_t>
DegradedModeGovernor::decide(const trace::IntervalRecord &rec,
                             double cap_w)
{
    std::vector<std::size_t> out;
    decideInto(rec, cap_w, out);
    return out;
}

void
DegradedModeGovernor::decideInto(const trace::IntervalRecord &rec,
                                 double cap_w,
                                 std::vector<std::size_t> &out)
    PPEP_NONBLOCKING
{
    // The probe runs before anything else: at this point
    // lastPredictedPower() still reports the forecast made for the
    // interval in rec, which is what divergence tracking needs.
    // rt-escape: std::function trampoline the effect analysis cannot
    // see through; Session binds it to HealthMonitor::observe, which
    // is pure arithmetic. RTSan still verifies the call at runtime.
    PPEP_RT_OPAQUE_BEGIN
    degraded_now_ = probe_ ? probe_(rec) : false;
    PPEP_RT_OPAQUE_END

    if (!degraded_now_) {
        inner_->decideInto(rec, cap_w, out);
        last_predicted_w_ = inner_->lastPredictedPower();
        return;
    }

    ++degraded_intervals_;
    last_predicted_w_ = std::numeric_limits<double>::quiet_NaN();

    // Safe policy: hold, clamped out of boost; step everything down
    // one state when measured power nears the cap. Never steps up, so
    // a degraded run can only lower power relative to its entry point.
    const std::size_t top = chip_.config().vf_table.size() - 1;
    // rt-escape: warm-up growth of the caller-owned decision vector.
    PPEP_RT_WARMUP_BEGIN
    out.assign(rec.cu_vf.begin(), rec.cu_vf.end());
    PPEP_RT_WARMUP_END
    PPEP_ASSERT(out.size() == chip_.config().n_cus,
                "record CU count mismatch");
    for (auto &s : out)
        s = std::min(s, top);
    const bool near_cap =
        std::isfinite(cap_w) &&
        rec.sensor_power_w > cap_w * (1.0 - policy_.cap_guard);
    if (near_cap) {
        for (auto &s : out)
            s = s > 0 ? s - 1 : 0;
    }
}

std::optional<sim::VfState>
DegradedModeGovernor::decideNb() PPEP_NONBLOCKING
{
    if (degraded_now_)
        return std::nullopt;
    return inner_->decideNb();
}

std::string
DegradedModeGovernor::name() const
{
    return "degraded-mode(" + inner_->name() + ")";
}

const std::vector<model::VfPrediction> *
DegradedModeGovernor::lastExploration() const PPEP_NONBLOCKING
{
    return degraded_now_ ? nullptr : inner_->lastExploration();
}

double
DegradedModeGovernor::lastPredictedPower() const PPEP_NONBLOCKING
{
    return last_predicted_w_;
}

} // namespace ppep::governor
