#include "ppep/governor/governor.hpp"

#include <algorithm>
#include <chrono>

#include "ppep/util/logging.hpp"

namespace ppep::governor {

CapSchedule::CapSchedule(double cap_w) : points_{{0, cap_w}}
{
    PPEP_ASSERT(cap_w > 0.0, "cap must be positive");
}

CapSchedule::CapSchedule(
    std::vector<std::pair<std::size_t, double>> points)
    : points_(std::move(points))
{
    PPEP_ASSERT(!points_.empty() && points_.front().first == 0,
                "schedule must start at interval 0");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        PPEP_ASSERT(points_[i].first > points_[i - 1].first,
                    "schedule points must be strictly increasing");
    }
}

double
CapSchedule::capAt(std::size_t index) const PPEP_NONBLOCKING
{
    double cap = points_.front().second;
    for (const auto &[start, value] : points_) {
        if (start > index)
            break;
        cap = value;
    }
    return cap;
}

CapSchedule
CapSchedule::unlimited()
{
    return CapSchedule(std::numeric_limits<double>::max());
}

GovernorLoop::GovernorLoop(sim::Chip &chip, Governor &policy)
    : chip_(chip), policy_(policy)
{
}

GovernorLoop::GovernorLoop(sim::Chip &chip, Governor &policy,
                           trace::IntervalSource &source)
    : chip_(chip), policy_(policy), source_(&source)
{
}

void
GovernorLoop::cycleBegin(std::size_t index, const CapSchedule &schedule,
                         GovernorStep &step) PPEP_NONBLOCKING
{
    step.cap_w = std::min(schedule.capAt(index), cap_limit_);
    // rt-escape: warm-up growth of the reused step's VF scratch; no-op
    // once sized to n_cus (test_zero_alloc).
    PPEP_RT_WARMUP_BEGIN
    step.cu_vf.resize(chip_.config().n_cus);
    PPEP_RT_WARMUP_END
    for (std::size_t cu = 0; cu < step.cu_vf.size(); ++cu)
        step.cu_vf[cu] = chip_.cuVf(cu);
}

void
GovernorLoop::cycleDecide(std::size_t index, const CapSchedule &schedule,
                          GovernorStep &step,
                          std::vector<std::size_t> &next_vf,
                          double &latency_s) PPEP_NONBLOCKING
{
    using clock = std::chrono::steady_clock;
    // Decide with the *next* interval's cap: the policy reacts to a
    // cap change in the very next decision, just like the paper's
    // Fig. 7 experiment.
    const double next_cap = std::min(schedule.capAt(index + 1), cap_limit_);
    // rt-escape: steady_clock::now() is an opaque library call but a
    // non-blocking vDSO clock read; RTSan keeps checking it.
    PPEP_RT_OPAQUE_BEGIN
    const auto t0 = clock::now();
    PPEP_RT_OPAQUE_END
    policy_.decideInto(step.rec, next_cap, next_vf);
    PPEP_ASSERT(next_vf.size() == chip_.config().n_cus,
                "policy returned wrong CU count");
    for (std::size_t cu = 0; cu < next_vf.size(); ++cu)
        chip_.setCuVf(cu, next_vf[cu]);
    if (const auto nb = policy_.decideNb())
        chip_.setNbVf(*nb);
    // rt-escape: second opaque clock read, same contract as above.
    PPEP_RT_OPAQUE_BEGIN
    latency_s =
        std::chrono::duration<double>(clock::now() - t0).count();
    PPEP_RT_OPAQUE_END
}

void
GovernorLoop::cycle(std::size_t index, const CapSchedule &schedule,
                    trace::IntervalSource &source, GovernorStep &step,
                    std::vector<std::size_t> &next_vf,
                    double &latency_s) PPEP_NONBLOCKING
{
    cycleBegin(index, schedule, step);
    source.collectIntervalInto(step.rec);
    cycleDecide(index, schedule, step, next_vf, latency_s);
}

trace::IntervalSource &
GovernorLoop::source()
{
    if (source_)
        return *source_;
    if (!own_collector_)
        own_collector_.emplace(chip_);
    return *own_collector_;
}

std::vector<GovernorStep>
GovernorLoop::run(std::size_t intervals, const CapSchedule &schedule,
                  const StepObserver &observer)
{
    trace::IntervalSource &src = source();
    std::vector<GovernorStep> out;
    out.reserve(intervals);
    std::vector<std::size_t> next_vf;
    for (std::size_t i = 0; i < intervals; ++i) {
        GovernorStep step;
        double latency_s = 0.0;
        cycle(i, schedule, src, step, next_vf, latency_s);
        out.push_back(std::move(step));
        if (observer)
            observer(out.back(), latency_s);
    }
    return out;
}

std::size_t
GovernorLoop::drive(std::size_t intervals, const CapSchedule &schedule,
                    const StepObserver &observer)
{
    trace::IntervalSource &src = source();
    for (std::size_t i = 0; i < intervals; ++i) {
        double latency_s = 0.0;
        cycle(i, schedule, src, scratch_step_, scratch_vf_, latency_s);
        if (observer)
            observer(scratch_step_, latency_s);
    }
    return intervals;
}

double
capAdherence(const std::vector<GovernorStep> &steps)
{
    if (steps.empty())
        return 0.0;
    std::size_t ok = 0;
    for (const auto &s : steps) {
        // 2% grace band: sensor noise alone can cross an exact cap.
        if (s.rec.sensor_power_w <= s.cap_w * 1.02)
            ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(steps.size());
}

double
meanSettleIntervals(const std::vector<GovernorStep> &steps)
{
    double total = 0.0;
    std::size_t events = 0;
    for (std::size_t i = 1; i < steps.size(); ++i) {
        const bool cap_dropped = steps[i].cap_w < steps[i - 1].cap_w;
        if (!cap_dropped)
            continue;
        // Count intervals until measured power first falls under cap.
        std::size_t taken = 0;
        for (std::size_t j = i; j < steps.size(); ++j) {
            ++taken;
            if (steps[j].rec.sensor_power_w <= steps[j].cap_w * 1.02)
                break;
        }
        total += static_cast<double>(taken);
        ++events;
    }
    return events ? total / static_cast<double>(events) : 0.0;
}

} // namespace ppep::governor
