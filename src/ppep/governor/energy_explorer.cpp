#include "ppep/governor/energy_explorer.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "ppep/model/event_predictor.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::governor {

EnergyExplorer::EnergyExplorer(sim::ChipConfig cfg,
                               const model::Ppep &ppep,
                               std::uint64_t seed)
    : cfg_(std::move(cfg)), ppep_(ppep), seed_(seed)
{
    PPEP_ASSERT(cfg_.pg_supported,
                "Sec. V-C experiments run with power gating enabled");
    PPEP_ASSERT(ppep_.pgModel().trained(),
                "energy exploration needs the PG idle model");
}

std::vector<ExplorePoint>
EnergyExplorer::explore(const std::string &program, std::size_t copies,
                        bool include_nb_low) const
{
    // Measure once at the top VF state with PG enabled.
    sim::Chip chip(cfg_, seed_ ^ std::hash<std::string>{}(program) ^
                             (copies * 0x9E37ULL));
    chip.setAllVf(cfg_.vf_table.top());
    chip.setPowerGatingEnabled(true);
    chip.setTemperatureK(cfg_.thermal.ambient_k + 12.0);
    const auto combo = workloads::replicate(program, copies);
    workloads::launch(chip, combo, /*looping=*/false);

    trace::Collector col(chip);
    auto recs = col.collectUntilFinished(400);
    while (!recs.empty() && recs.back().busy_cores == 0)
        recs.pop_back();
    PPEP_ASSERT(!recs.empty(), "exploration run produced no intervals");

    const double f_top =
        cfg_.vf_table.state(cfg_.vf_table.top()).freq_ghz;
    const auto &dyn_model = ppep_.powerModel().dynamicModel();
    const auto &pg = ppep_.pgModel();

    std::vector<ExplorePoint> out;
    for (const bool nb_low : {false, true}) {
        if (nb_low && !include_nb_low)
            break;
        for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
            const sim::VfState &target = cfg_.vf_table.state(vf);
            const double mcpi_scale =
                nb_low ? factors_.mcpi_scale : 1.0;
            const double nb_dyn_scale =
                nb_low ? factors_.dynamic_scale : 1.0;
            const double nb_idle_scale =
                nb_low ? factors_.idle_scale : 1.0;

            // Accumulate predicted per-thread energy/time over the run.
            double total_core_j = 0.0, total_nb_j = 0.0;
            double total_time_s = 0.0;
            for (const auto &rec : recs) {
                if (rec.busy_cores == 0)
                    continue;
                // Busy-core topology of this interval (for Eq. 7).
                std::vector<std::size_t> busy_per_cu(cfg_.n_cus, 0);
                std::size_t busy_total = 0;
                for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
                    if (rec.pmc[c][sim::eventIndex(
                            sim::Event::RetiredInst)] > 0.0) {
                        ++busy_per_cu[c / cfg_.cores_per_cu];
                        ++busy_total;
                    }
                }
                if (busy_total == 0)
                    continue;

                for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
                    const double inst = rec.pmc[c][sim::eventIndex(
                        sim::Event::RetiredInst)];
                    if (inst <= 0.0)
                        continue;
                    const auto pred = model::EventPredictor::predict(
                        rec.pmc[c], rec.duration_s, f_top,
                        target.freq_ghz, mcpi_scale);
                    if (pred.ips <= 0.0)
                        continue;
                    // This interval's work takes this long at the target.
                    const double t = inst / pred.ips;

                    std::array<double, sim::kNumPowerEvents> rates{};
                    for (std::size_t i = 0; i < sim::kNumPowerEvents;
                         ++i)
                        rates[i] = pred.rates_per_s[i];
                    double core_w = 0.0, nb_w = 0.0;
                    dyn_model.split(rates, target.voltage, core_w,
                                    nb_w);
                    nb_w *= nb_dyn_scale;

                    // Eq. 7 idle attribution (PG enabled).
                    const std::size_t cu = c / cfg_.cores_per_cu;
                    const double m =
                        static_cast<double>(busy_per_cu[cu]);
                    const double n = static_cast<double>(busy_total);
                    const auto &comp = pg.components(vf);
                    const double cu_share = comp.p_cu / m;
                    const double nb_share =
                        (comp.p_nb * nb_idle_scale + comp.p_base) / n;

                    total_core_j += (core_w + cu_share) * t;
                    total_nb_j += (nb_w + nb_share) * t;
                    total_time_s += t;
                }
            }

            ExplorePoint p;
            p.vf_index = vf;
            p.nb_low = nb_low;
            const double threads = static_cast<double>(copies);
            p.core_energy_j = total_core_j / threads;
            p.nb_energy_j = total_nb_j / threads;
            p.energy_j = p.core_energy_j + p.nb_energy_j;
            p.time_s = total_time_s / threads;
            p.edp = p.energy_j * p.time_s;
            out.push_back(p);
        }
    }
    return out;
}

NbWhatIfSummary
EnergyExplorer::summarize(const std::vector<ExplorePoint> &points,
                          double energy_tolerance)
{
    NbWhatIfSummary s;
    double best_hi = std::numeric_limits<double>::max();
    double best_lo = std::numeric_limits<double>::max();
    const ExplorePoint *baseline = nullptr; // core VF1 + NB hi
    for (const auto &p : points) {
        if (p.nb_low)
            best_lo = std::min(best_lo, p.energy_j);
        else
            best_hi = std::min(best_hi, p.energy_j);
        if (!p.nb_low && p.vf_index == 0)
            baseline = &p;
    }
    PPEP_ASSERT(baseline != nullptr &&
                best_lo != std::numeric_limits<double>::max(),
                "summarize needs NB-low points and the VF1/NB-hi point");

    // Fig. 11a: extra saving the NB-low state unlocks at the
    // energy-optimal operating point.
    s.energy_saving = 1.0 - best_lo / best_hi;

    // Fig. 11b: fastest NB-low point whose energy stays "similar" to
    // the core-VF1/NB-hi baseline.
    const double budget = baseline->energy_j * energy_tolerance;
    double best_time = baseline->time_s;
    for (const auto &p : points) {
        if (!p.nb_low)
            continue;
        if (p.energy_j <= budget && p.time_s < best_time)
            best_time = p.time_s;
    }
    s.speedup = baseline->time_s / best_time;
    return s;
}

} // namespace ppep::governor
