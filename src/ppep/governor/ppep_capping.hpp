/**
 * @file
 * The PPEP one-step power-capping policy (paper Sec. V-B, Fig. 7).
 *
 * Each interval, PPEP predicts chip power and performance for every
 * per-CU VF assignment (assuming per-CU voltage planes, as prior work
 * [20, 21] does) and jumps directly to the assignment that maximises
 * predicted performance subject to the cap — no iterative search. The
 * paper measures 14x faster cap tracking and 94% adherence versus the
 * reactive baseline's 81%.
 */

#ifndef PPEP_GOVERNOR_PPEP_CAPPING_HPP
#define PPEP_GOVERNOR_PPEP_CAPPING_HPP

#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"

namespace ppep::governor {

/** Predictive single-step capping built on the PPEP framework. */
class PpepCappingGovernor : public Governor
{
  public:
    /**
     * @param cfg  chip description.
     * @param ppep trained PPEP predictor (must include a PG idle model).
     * @param guard_band derate the cap by this fraction to absorb model
     *             error (the paper's residual 6% violations motivate a
     *             small band).
     */
    PpepCappingGovernor(const sim::ChipConfig &cfg,
                        const model::Ppep &ppep,
                        double guard_band = 0.02);

    std::vector<std::size_t> decide(const trace::IntervalRecord &rec,
                                    double cap_w) override;

    /** Allocation-free decide() (identical assignment). */
    void decideInto(const trace::IntervalRecord &rec, double cap_w,
                    std::vector<std::size_t> &out) PPEP_NONBLOCKING
        override;

    std::string name() const override { return "ppep-one-step"; }

    double lastPredictedPower() const PPEP_NONBLOCKING override
    {
        return last_predicted_power_w_;
    }

  private:
    const sim::ChipConfig &cfg_;
    const model::Ppep &ppep_;
    double guard_band_;
    double last_predicted_power_w_ =
        std::numeric_limits<double>::quiet_NaN();
    /** Per-VF rail voltage scales — VF-table-only, hoisted at build. */
    std::vector<double> vscale_by_vf_;
    /**
     * Per-decision scratch reused across intervals (no per-decision
     * heap): flattened per-core-per-VF tables indexed [c * n_vf + vf],
     * plus the odometer state.
     */
    std::vector<double> ips_;
    std::vector<double> core_base_;
    std::vector<double> nb_part_;
    std::vector<std::size_t> busy_per_cu_;
    std::vector<std::size_t> assign_;
    std::vector<std::size_t> priced_;
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_PPEP_CAPPING_HPP
