#include "ppep/governor/ppep_capping.hpp"

#include <cmath>

#include "ppep/model/event_predictor.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::governor {

PpepCappingGovernor::PpepCappingGovernor(const sim::ChipConfig &cfg,
                                         const model::Ppep &ppep,
                                         double guard_band)
    : cfg_(cfg), ppep_(ppep), guard_band_(guard_band)
{
    PPEP_ASSERT(ppep_.pgModel().trained(),
                "PPEP capping needs the PG idle decomposition");
    // Rail voltage scale factors depend only on the VF table, not on the
    // interval — compute each (v/v_train)^alpha once at construction, not
    // once per assignment per core (the odometer loop visits n_vf^n_cus
    // assignments every decision).
    const auto &dyn_model = ppep_.powerModel().dynamicModel();
    const std::size_t n_vf = cfg_.vf_table.size();
    vscale_by_vf_.resize(n_vf);
    for (std::size_t vf = 0; vf < n_vf; ++vf)
        vscale_by_vf_[vf] =
            dyn_model.voltageScale(cfg_.vf_table.state(vf).voltage);
}

std::vector<std::size_t>
PpepCappingGovernor::decide(const trace::IntervalRecord &rec,
                            double cap_w)
{
    std::vector<std::size_t> out;
    decideInto(rec, cap_w, out);
    return out;
}

void
PpepCappingGovernor::decideInto(const trace::IntervalRecord &rec,
                                double cap_w,
                                std::vector<std::size_t> &out)
    PPEP_NONBLOCKING
{
    const std::size_t n_vf = cfg_.vf_table.size();
    const std::size_t n_cores = cfg_.coreCount();
    const auto &dyn_model = ppep_.powerModel().dynamicModel();
    const double v_train = dyn_model.trainingVoltage();

    // Precompute, per core and per VF: predicted ips, the core-event
    // dynamic power at the *training* voltage (so any rail voltage is a
    // cheap (v/v_train)^alpha rescale), and the NB-proxy part (never
    // voltage scaled). The frequency-independent observation (Eq. 1
    // inputs, Obs. 2 gap, busy fraction) is extracted once per core and
    // shared across the VF sweep. Tables are flat [c * n_vf + vf] in
    // member scratch so steady-state decisions never touch the heap.
    // rt-escape: warm-up growth of the member scratch tables; fixed
    // sizes after the first decision.
    PPEP_RT_WARMUP_BEGIN
    ips_.assign(n_cores * n_vf, 0.0);
    core_base_.assign(n_cores * n_vf, 0.0);
    nb_part_.assign(n_cores * n_vf, 0.0);
    busy_per_cu_.assign(cfg_.n_cus, 0);
    PPEP_RT_WARMUP_END
    for (std::size_t c = 0; c < n_cores; ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const double f_now =
            cfg_.vf_table.state(rec.cu_vf[cu]).freq_ghz;
        const auto obs = model::EventPredictor::observe(
            rec.pmc[c], rec.duration_s, f_now);
        bool busy = false;
        for (std::size_t vf = 0; vf < n_vf; ++vf) {
            const sim::VfState &target = cfg_.vf_table.state(vf);
            const auto pred =
                model::EventPredictor::predictAt(obs, target.freq_ghz);
            ips_[c * n_vf + vf] = pred.rates_per_s[sim::eventIndex(
                sim::Event::RetiredInst)];
            std::array<double, sim::kNumPowerEvents> rates{};
            for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
                rates[i] = pred.rates_per_s[i];
            dyn_model.split(rates, v_train, core_base_[c * n_vf + vf],
                            nb_part_[c * n_vf + vf]);
            busy = busy || pred.ips > 0.0;
        }
        if (busy)
            ++busy_per_cu_[cu];
    }

    const double budget = cap_w * (1.0 - guard_band_);
    const auto &pg = ppep_.pgModel();

    // Enumerate all per-CU assignments (n_vf^n_cus; 625 on the FX-8320)
    // and keep the feasible one with the highest predicted throughput.
    // Fall back to all-lowest if nothing fits.
    //
    // On shared-rail hardware every CU runs at the highest requested
    // voltage, so the governor must price assignments that way or it
    // will blow straight through the cap (ablation A7 quantifies the
    // damage of ignoring this).
    // rt-escape: warm-up growth of the caller-owned decision vector
    // and the odometer scratch.
    PPEP_RT_WARMUP_BEGIN
    out.assign(cfg_.n_cus, 0);
    PPEP_RT_WARMUP_END
    double best_ips = -1.0;
    double best_power = std::numeric_limits<double>::quiet_NaN();
    double all_lowest_power = std::numeric_limits<double>::quiet_NaN();
    // rt-escape: warm-up growth of the odometer scratch.
    PPEP_RT_WARMUP_BEGIN
    assign_.assign(cfg_.n_cus, 0);
    PPEP_RT_WARMUP_END
    bool first_assignment = true;
    while (true) {
        // Rail resolution: per-CU planes use each CU's own voltage;
        // a shared rail pins everyone to the highest requested state.
        std::size_t max_idx = 0;
        if (!cfg_.per_cu_voltage) {
            for (std::size_t cu = 0; cu < cfg_.n_cus; ++cu)
                if (busy_per_cu_[cu] > 0)
                    max_idx = std::max(max_idx, assign_[cu]);
        }

        double total_dyn = 0.0;
        double total_ips = 0.0;
        for (std::size_t c = 0; c < n_cores; ++c) {
            const std::size_t cu = c / cfg_.cores_per_cu;
            const std::size_t vf = assign_[cu];
            const double vscale =
                vscale_by_vf_[cfg_.per_cu_voltage ? vf : max_idx];
            total_dyn += core_base_[c * n_vf + vf] * vscale +
                         nb_part_[c * n_vf + vf];
            total_ips += ips_[c * n_vf + vf];
        }

        // Idle pricing: on a shared rail, a slow CU still leaks at the
        // rail voltage — approximate with the voltage-dominant state's
        // component (conservative: also carries its clock power).
        double idle = 0.0;
        if (cfg_.per_cu_voltage) {
            idle = pg.chipIdleMixed(assign_, busy_per_cu_, true);
        } else {
            // rt-escape: warm-up growth of the rail-pricing scratch.
            PPEP_RT_WARMUP_BEGIN
            priced_.assign(assign_.begin(), assign_.end());
            PPEP_RT_WARMUP_END
            for (auto &vf : priced_)
                vf = std::max(vf, max_idx);
            idle = pg.chipIdleMixed(priced_, busy_per_cu_, true);
        }

        const double power = idle + total_dyn;
        if (first_assignment) {
            // Odometer starts at the all-lowest assignment — remember its
            // power as the prediction behind the infeasible-cap fallback.
            all_lowest_power = power;
            first_assignment = false;
        }
        if (power <= budget && total_ips > best_ips) {
            best_ips = total_ips;
            // rt-escape: same-size assign into the already-sized
            // decision vector; reuses capacity.
            PPEP_RT_WARMUP_BEGIN
            out.assign(assign_.begin(), assign_.end());
            PPEP_RT_WARMUP_END
            best_power = power;
        }

        // Next assignment (odometer increment).
        std::size_t pos = 0;
        while (pos < cfg_.n_cus) {
            if (++assign_[pos] < n_vf)
                break;
            assign_[pos] = 0;
            ++pos;
        }
        if (pos == cfg_.n_cus)
            break;
    }
    last_predicted_power_w_ =
        best_ips >= 0.0 ? best_power : all_lowest_power;
}

} // namespace ppep::governor
