#include "ppep/governor/iterative_capping.hpp"

namespace ppep::governor {

IterativeCappingGovernor::IterativeCappingGovernor(
    const sim::ChipConfig &cfg, double raise_margin_w)
    : cfg_(cfg), raise_margin_w_(raise_margin_w),
      cu_vf_(cfg.n_cus, cfg.vf_table.top())
{
}

std::vector<std::size_t>
IterativeCappingGovernor::decide(const trace::IntervalRecord &rec,
                                 double cap_w)
{
    const double power = rec.sensor_power_w;
    if (power > cap_w) {
        // Over budget: lower one CU by one state, round-robin so the
        // pain is spread evenly. One step per interval — the iterative
        // search the paper contrasts against.
        for (std::size_t tries = 0; tries < cfg_.n_cus; ++tries) {
            const std::size_t cu = rr_;
            rr_ = (rr_ + 1) % cfg_.n_cus;
            if (cu_vf_[cu] > 0) {
                --cu_vf_[cu];
                break;
            }
        }
    } else if (power < cap_w - raise_margin_w_) {
        // Comfortably under: claw back performance, one step.
        for (std::size_t tries = 0; tries < cfg_.n_cus; ++tries) {
            const std::size_t cu = rr_;
            rr_ = (rr_ + 1) % cfg_.n_cus;
            if (cu_vf_[cu] < cfg_.vf_table.top()) {
                ++cu_vf_[cu];
                break;
            }
        }
    }
    return cu_vf_;
}

} // namespace ppep::governor
