/**
 * @file
 * Degraded-mode wrapper: a safety shell around any Governor.
 *
 * When the acquisition path reports that its inputs cannot be trusted
 * (fault storm, model divergence), acting on a sophisticated policy's
 * decisions is worse than acting on none: the PPEP exploration that
 * makes the inner governor smart is exactly what corrupted counters
 * poison. The wrapper consults a health probe at the top of every
 * decision and, while degraded, replaces the inner policy with a
 * conservative hold/step-down rule:
 *
 *  - never select a boost state (requests clamp to the software
 *    P-state table);
 *  - hold the current operating point while measured power sits
 *    comfortably under the cap;
 *  - step every CU down one state whenever measured power crosses the
 *    guard band below the cap — measured power is the one input the
 *    hardened sampler still vouches for;
 *  - leave the NB untouched.
 *
 * Control returns to the inner governor the first decision after the
 * probe reports healthy (the runtime::HealthMonitor behind the probe
 * requires N consecutive clean intervals, so re-promotion is already
 * hysteretic).
 */

#ifndef PPEP_GOVERNOR_DEGRADED_MODE_HPP
#define PPEP_GOVERNOR_DEGRADED_MODE_HPP

#include <functional>

#include "ppep/governor/governor.hpp"

namespace ppep::governor {

/** Tuning for the degraded-mode safe policy. */
struct SafePolicy
{
    /** Step down when measured power exceeds cap * (1 - cap_guard);
     *  the margin absorbs sensor noise and the one-interval lag
     *  between deciding and measuring. */
    double cap_guard = 0.1;
};

/**
 * Wraps an inner Governor and demotes to the safe policy whenever the
 * health probe says the interval's data cannot be trusted.
 */
class DegradedModeGovernor : public Governor
{
  public:
    /**
     * Health probe, evaluated once at the top of every decide() with
     * the interval that just completed; true = govern in degraded
     * mode this decision. runtime::Session binds this to a
     * HealthMonitor fed by the hardened Sampler.
     */
    using HealthProbe =
        std::function<bool(const trace::IntervalRecord &rec)>;

    /**
     * @param chip   consulted for the software P-state table only;
     *               must outlive the governor.
     * @param inner  the policy to run while healthy; must outlive
     *               the governor.
     * @param probe  health probe (empty = always healthy).
     */
    DegradedModeGovernor(const sim::Chip &chip, Governor &inner,
                         HealthProbe probe, SafePolicy policy = {});

    std::vector<std::size_t>
    decide(const trace::IntervalRecord &rec, double cap_w) override;

    /** Allocation-free decide() (identical decisions either mode). */
    void decideInto(const trace::IntervalRecord &rec, double cap_w,
                    std::vector<std::size_t> &out) PPEP_NONBLOCKING
        override;

    std::optional<sim::VfState> decideNb() PPEP_NONBLOCKING override;

    std::string name() const override;

    /** Inner exploration while healthy; nullptr while degraded. */
    const std::vector<model::VfPrediction> *
    lastExploration() const PPEP_NONBLOCKING override;

    /** Inner prediction while healthy; NaN while degraded. */
    double lastPredictedPower() const PPEP_NONBLOCKING override;

    /** True when the most recent decision ran the safe policy. */
    bool degradedNow() const { return degraded_now_; }

    /** Decisions taken in degraded mode so far. */
    std::size_t degradedIntervals() const { return degraded_intervals_; }

    /** The safe-policy tuning in force. */
    const SafePolicy &safePolicy() const { return policy_; }

    /**
     * Re-point the wrapper at a fresh inner policy — the recalibration
     * hot-swap. Called between decisions (from the step observer, off
     * the annotated decide path); @p g must outlive the governor.
     */
    void setInner(Governor &g) { inner_ = &g; }

    /** The inner policy currently wrapped. */
    const Governor &inner() const { return *inner_; }

  private:
    const sim::Chip &chip_;
    Governor *inner_;
    HealthProbe probe_;
    SafePolicy policy_;
    bool degraded_now_ = false;
    std::size_t degraded_intervals_ = 0;
    double last_predicted_w_;
};

} // namespace ppep::governor

#endif // PPEP_GOVERNOR_DEGRADED_MODE_HPP
