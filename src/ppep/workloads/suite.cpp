#include "ppep/workloads/suite.hpp"

#include "ppep/workloads/builder.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "ppep/util/logging.hpp"
#include "ppep/util/rng.hpp"

namespace ppep::workloads {

namespace {

/** Compact per-program characterisation, expanded into phases below. */
struct Traits
{
    const char *name;
    SuiteId suite;
    double mem;     ///< memory intensity in [0,1]
    double dram;    ///< DRAM share of L3 accesses in [0,1]
    double fpu;     ///< FPU ops per instruction
    double branch;  ///< branches per instruction
    double mispred; ///< mispredict rate (fraction of branches)
    double stall;   ///< resource-stall CPI
    PhaseStyle style;
    double length_gi; ///< total length, billions of instructions
};

// Characteristics approximate published characterisations of each
// program; the anchors are 433.milc (memory-bound) and 458.sjeng
// (CPU-bound), per the paper's Sec. V case studies.
const Traits kTraits[] = {
    // --- SPEC CPU2006 (29) ---
    {"400.perlbench", SuiteId::Spec, 0.18, 0.30, 0.02, 0.21, 0.050,
     0.32, PhaseStyle::RandomWalk, 12.0},
    {"401.bzip2", SuiteId::Spec, 0.32, 0.35, 0.01, 0.16, 0.070,
     0.38, PhaseStyle::Alternating, 10.5},
    {"403.gcc", SuiteId::Spec, 0.38, 0.45, 0.01, 0.20, 0.045,
     0.35, PhaseStyle::RandomWalk, 9.0},
    {"410.bwaves", SuiteId::Spec, 0.70, 0.65, 0.52, 0.05, 0.010,
     0.50, PhaseStyle::Steady, 15.0},
    {"416.gamess", SuiteId::Spec, 0.08, 0.20, 0.46, 0.09, 0.015,
     0.30, PhaseStyle::Steady, 15.0},
    {"429.mcf", SuiteId::Spec, 0.95, 0.85, 0.01, 0.19, 0.060,
     0.42, PhaseStyle::Steady, 7.5},
    {"433.milc", SuiteId::Spec, 0.85, 0.80, 0.35, 0.10, 0.018,
     0.45, PhaseStyle::Steady, 10.5},
    {"434.zeusmp", SuiteId::Spec, 0.50, 0.55, 0.50, 0.06, 0.012,
     0.45, PhaseStyle::Steady, 13.5},
    {"435.gromacs", SuiteId::Spec, 0.12, 0.25, 0.55, 0.07, 0.014,
     0.28, PhaseStyle::Steady, 15.0},
    {"436.cactusADM", SuiteId::Spec, 0.60, 0.60, 0.60, 0.03, 0.008,
     0.52, PhaseStyle::Steady, 13.5},
    {"437.leslie3d", SuiteId::Spec, 0.65, 0.60, 0.50, 0.05, 0.010,
     0.48, PhaseStyle::Steady, 13.5},
    {"444.namd", SuiteId::Spec, 0.10, 0.20, 0.60, 0.05, 0.010,
     0.26, PhaseStyle::Steady, 16.5},
    {"445.gobmk", SuiteId::Spec, 0.15, 0.25, 0.02, 0.22, 0.090,
     0.34, PhaseStyle::RandomWalk, 10.5},
    {"447.dealII", SuiteId::Spec, 0.30, 0.40, 0.42, 0.13, 0.025,
     0.33, PhaseStyle::Steady, 12.0},
    {"450.soplex", SuiteId::Spec, 0.60, 0.60, 0.35, 0.14, 0.030,
     0.40, PhaseStyle::Alternating, 9.0},
    {"453.povray", SuiteId::Spec, 0.06, 0.15, 0.40, 0.16, 0.030,
     0.28, PhaseStyle::Steady, 13.5},
    {"454.calculix", SuiteId::Spec, 0.20, 0.30, 0.50, 0.07, 0.012,
     0.32, PhaseStyle::Steady, 15.0},
    {"456.hmmer", SuiteId::Spec, 0.05, 0.15, 0.02, 0.10, 0.020,
     0.24, PhaseStyle::Steady, 15.0},
    {"458.sjeng", SuiteId::Spec, 0.05, 0.20, 0.01, 0.17, 0.080,
     0.30, PhaseStyle::Steady, 12.0},
    {"459.GemsFDTD", SuiteId::Spec, 0.75, 0.70, 0.50, 0.04, 0.008,
     0.50, PhaseStyle::Steady, 12.0},
    {"462.libquantum", SuiteId::Spec, 0.80, 0.90, 0.05, 0.14, 0.010,
     0.40, PhaseStyle::Steady, 10.5},
    {"464.h264ref", SuiteId::Spec, 0.15, 0.25, 0.10, 0.12, 0.030,
     0.30, PhaseStyle::Alternating, 13.5},
    {"465.tonto", SuiteId::Spec, 0.25, 0.35, 0.50, 0.09, 0.016,
     0.34, PhaseStyle::Steady, 13.5},
    {"470.lbm", SuiteId::Spec, 0.90, 0.90, 0.45, 0.02, 0.005,
     0.55, PhaseStyle::Steady, 10.5},
    {"471.omnetpp", SuiteId::Spec, 0.60, 0.55, 0.01, 0.20, 0.045,
     0.36, PhaseStyle::RandomWalk, 9.0},
    {"473.astar", SuiteId::Spec, 0.50, 0.50, 0.02, 0.18, 0.065,
     0.36, PhaseStyle::RandomWalk, 10.5},
    {"481.wrf", SuiteId::Spec, 0.50, 0.50, 0.50, 0.08, 0.014,
     0.42, PhaseStyle::Alternating, 13.5},
    {"482.sphinx3", SuiteId::Spec, 0.55, 0.50, 0.40, 0.10, 0.020,
     0.38, PhaseStyle::Steady, 12.0},
    {"483.xalancbmk", SuiteId::Spec, 0.45, 0.45, 0.01, 0.23, 0.040,
     0.34, PhaseStyle::RandomWalk, 9.0},
    // --- PARSEC (13) ---
    {"blackscholes", SuiteId::Parsec, 0.08, 0.20, 0.50, 0.06, 0.010,
     0.26, PhaseStyle::Steady, 10.5},
    {"bodytrack", SuiteId::Parsec, 0.30, 0.35, 0.30, 0.12, 0.025,
     0.32, PhaseStyle::Alternating, 9.0},
    {"canneal", SuiteId::Parsec, 0.80, 0.70, 0.05, 0.15, 0.045,
     0.40, PhaseStyle::Steady, 7.5},
    {"dedup", SuiteId::Parsec, 0.50, 0.50, 0.02, 0.16, 0.040,
     0.36, PhaseStyle::Rapid, 2.7},
    {"facesim", SuiteId::Parsec, 0.50, 0.50, 0.50, 0.07, 0.012,
     0.42, PhaseStyle::Steady, 12.0},
    {"ferret", SuiteId::Parsec, 0.45, 0.45, 0.25, 0.13, 0.028,
     0.36, PhaseStyle::Alternating, 10.5},
    {"fluidanimate", SuiteId::Parsec, 0.50, 0.50, 0.45, 0.08, 0.014,
     0.40, PhaseStyle::Steady, 10.5},
    {"freqmine", SuiteId::Parsec, 0.40, 0.45, 0.03, 0.17, 0.035,
     0.34, PhaseStyle::RandomWalk, 10.5},
    {"raytrace", SuiteId::Parsec, 0.35, 0.35, 0.40, 0.12, 0.022,
     0.32, PhaseStyle::Steady, 10.5},
    {"streamcluster", SuiteId::Parsec, 0.85, 0.80, 0.30, 0.06, 0.010,
     0.48, PhaseStyle::Steady, 9.0},
    {"swaptions", SuiteId::Parsec, 0.05, 0.15, 0.45, 0.08, 0.014,
     0.26, PhaseStyle::Steady, 12.0},
    {"vips", SuiteId::Parsec, 0.35, 0.40, 0.30, 0.11, 0.020,
     0.34, PhaseStyle::Alternating, 10.5},
    {"x264", SuiteId::Parsec, 0.25, 0.30, 0.20, 0.13, 0.030,
     0.32, PhaseStyle::Alternating, 10.5},
    // --- NPB (10) ---
    {"BT", SuiteId::Npb, 0.50, 0.55, 0.55, 0.04, 0.008,
     0.45, PhaseStyle::Steady, 13.5},
    {"CG", SuiteId::Npb, 0.85, 0.75, 0.40, 0.06, 0.010,
     0.50, PhaseStyle::Steady, 9.0},
    {"DC", SuiteId::Npb, 0.70, 0.65, 0.05, 0.15, 0.035,
     0.40, PhaseStyle::Rapid, 4.2},
    {"EP", SuiteId::Npb, 0.03, 0.10, 0.55, 0.07, 0.012,
     0.24, PhaseStyle::Steady, 13.5},
    {"FT", SuiteId::Npb, 0.65, 0.60, 0.50, 0.04, 0.008,
     0.48, PhaseStyle::Alternating, 12.0},
    {"IS", SuiteId::Npb, 0.75, 0.70, 0.02, 0.10, 0.020,
     0.42, PhaseStyle::Rapid, 2.4},
    {"LU", SuiteId::Npb, 0.55, 0.55, 0.52, 0.05, 0.009,
     0.44, PhaseStyle::Steady, 13.5},
    {"MG", SuiteId::Npb, 0.70, 0.65, 0.48, 0.04, 0.008,
     0.48, PhaseStyle::Steady, 12.0},
    {"SP", SuiteId::Npb, 0.60, 0.60, 0.52, 0.04, 0.008,
     0.46, PhaseStyle::Steady, 13.5},
    {"UA", SuiteId::Npb, 0.50, 0.50, 0.45, 0.08, 0.014,
     0.42, PhaseStyle::RandomWalk, 12.0},
};

/** Local alias: the shared mapping lives in builder.hpp. */
sim::Phase
makePhase(double mem, double dram, double fpu, double branch,
          double mispred, double stall, double inst_count)
{
    return derivePhase(mem, dram, fpu, branch, mispred, stall,
                       inst_count);
}

/** Expand a trait row into its deterministic phase sequence. */
std::vector<sim::Phase>
buildPhases(const Traits &t)
{
    util::Rng rng(std::hash<std::string>{}(t.name) ^ 0xA5A5A5A5ULL);
    const double total = t.length_gi * 1e9;
    std::vector<sim::Phase> phases;

    auto jitter = [&rng](double v, double sd) {
        return v * std::max(0.2, 1.0 + rng.gaussian(0.0, sd));
    };

    switch (t.style) {
      case PhaseStyle::Steady: {
        const std::size_t n = 4 + rng.uniformInt(3);
        for (std::size_t i = 0; i < n; ++i) {
            phases.push_back(makePhase(
                jitter(t.mem, 0.08), jitter(t.dram, 0.05),
                jitter(t.fpu, 0.06), jitter(t.branch, 0.05),
                jitter(t.mispred, 0.08), jitter(t.stall, 0.06),
                jitter(total / static_cast<double>(n), 0.15)));
        }
        break;
      }
      case PhaseStyle::Alternating: {
        const std::size_t n = 6 + rng.uniformInt(5);
        for (std::size_t i = 0; i < n; ++i) {
            const bool hot = (i % 2) == 0;
            const double mem = t.mem * (hot ? 1.25 : 0.70);
            const double stall = t.stall * (hot ? 1.15 : 0.88);
            phases.push_back(makePhase(
                jitter(mem, 0.07), jitter(t.dram, 0.05),
                jitter(t.fpu * (hot ? 0.85 : 1.10), 0.06),
                jitter(t.branch, 0.05), jitter(t.mispred, 0.08),
                jitter(stall, 0.06),
                jitter(total / static_cast<double>(n), 0.20)));
        }
        break;
      }
      case PhaseStyle::RandomWalk: {
        const std::size_t n = 7 + rng.uniformInt(5);
        double mem = t.mem;
        double stall = t.stall;
        for (std::size_t i = 0; i < n; ++i) {
            mem = std::clamp(mem * (1.0 + rng.gaussian(0.0, 0.10)),
                             0.02, 1.0);
            stall = std::clamp(stall * (1.0 + rng.gaussian(0.0, 0.06)),
                               0.05, 1.2);
            phases.push_back(makePhase(
                mem, jitter(t.dram, 0.06), jitter(t.fpu, 0.08),
                jitter(t.branch, 0.06), jitter(t.mispred, 0.10), stall,
                jitter(total / static_cast<double>(n), 0.25)));
        }
        break;
      }
      case PhaseStyle::Rapid: {
        // Phases at the 20 ms multiplexing timescale (a few e7 inst).
        std::size_t n = 0;
        double budget = total;
        while (budget > 0.0 && n < 200) {
            const double len =
                std::min(budget, rng.uniform(1.5e7, 6e7));
            const bool hot = (n % 2) == 0;
            phases.push_back(makePhase(
                jitter(t.mem * (hot ? 1.5 : 0.35), 0.10),
                jitter(t.dram, 0.06),
                jitter(t.fpu * (hot ? 0.7 : 1.3), 0.10),
                jitter(t.branch, 0.08), jitter(t.mispred, 0.12),
                jitter(t.stall * (hot ? 1.3 : 0.7), 0.10), len));
            budget -= len;
            ++n;
        }
        break;
      }
    }
    PPEP_ASSERT(!phases.empty(), "profile '", t.name, "' has no phases");
    return phases;
}

std::vector<BenchmarkProfile>
buildSuite()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &t : kTraits) {
        BenchmarkProfile p;
        p.name = t.name;
        p.suite = t.suite;
        p.phases = buildPhases(t);
        out.push_back(std::move(p));
    }
    return out;
}

/** SPEC numeric id prefix: "400.perlbench" -> "400". */
std::string
specId(const std::string &name)
{
    const auto dot = name.find('.');
    PPEP_ASSERT(dot != std::string::npos, "not a SPEC name: ", name);
    return name.substr(0, dot);
}

/** Find the full SPEC program name from its numeric id. */
std::string
specByNumber(const std::string &id)
{
    for (const auto &t : kTraits) {
        if (t.suite == SuiteId::Spec && specId(t.name) == id)
            return t.name;
    }
    PPEP_PANIC("unknown SPEC id ", id);
}

std::vector<Combination>
buildCombinations()
{
    std::vector<Combination> combos;

    // SPEC singles: all 29 programs.
    for (const auto &t : kTraits) {
        if (t.suite != SuiteId::Spec)
            continue;
        combos.push_back({specId(t.name), SuiteId::Spec, {t.name}});
    }

    // SPEC multi-programmed groups, exactly the Fig. 6 x-axis.
    const std::vector<std::vector<const char *>> groups = {
        // 15 doubles
        {"400", "401"}, {"403", "429"}, {"445", "456"}, {"458", "462"},
        {"464", "471"}, {"473", "483"}, {"410", "416"}, {"433", "434"},
        {"435", "436"}, {"437", "444"}, {"447", "450"}, {"453", "454"},
        {"459", "465"}, {"470", "481"}, {"482", "429"},
        // 10 triples
        {"400", "401", "403"}, {"429", "445", "456"},
        {"458", "462", "464"}, {"471", "473", "483"},
        {"410", "416", "433"}, {"434", "435", "436"},
        {"437", "444", "447"}, {"450", "453", "454"},
        {"459", "465", "470"}, {"481", "482", "429"},
        // 7 quads
        {"400", "401", "403", "429"}, {"445", "456", "458", "462"},
        {"464", "471", "473", "483"}, {"410", "416", "433", "434"},
        {"435", "436", "437", "444"}, {"447", "450", "453", "454"},
        {"459", "465", "470", "481"},
    };
    for (const auto &g : groups) {
        Combination c;
        c.suite = SuiteId::Spec;
        for (const char *id : g) {
            if (!c.name.empty())
                c.name += "+";
            c.name += id;
            c.instances.push_back(specByNumber(id));
        }
        combos.push_back(std::move(c));
    }

    // PARSEC: 13 programs x {1,2,4,8} threads = 52, minus freqmine.x8
    // (the paper's odd 51st count — freqmine is the OpenMP exception).
    for (const auto &t : kTraits) {
        if (t.suite != SuiteId::Parsec)
            continue;
        for (std::size_t threads : {1, 2, 4, 8}) {
            if (std::string(t.name) == "freqmine" && threads == 8)
                continue;
            Combination c;
            c.suite = SuiteId::Parsec;
            c.name = std::string(t.name) + ".x" + std::to_string(threads);
            c.instances.assign(threads, t.name);
            combos.push_back(std::move(c));
        }
    }

    // NPB: 10 programs x {1,2,4,8} threads = 40.
    for (const auto &t : kTraits) {
        if (t.suite != SuiteId::Npb)
            continue;
        for (std::size_t threads : {1, 2, 4, 8}) {
            Combination c;
            c.suite = SuiteId::Npb;
            c.name = std::string(t.name) + ".x" + std::to_string(threads);
            c.instances.assign(threads, t.name);
            combos.push_back(std::move(c));
        }
    }

    PPEP_ASSERT(combos.size() == 152, "expected 152 combinations, got ",
                combos.size());
    return combos;
}

} // namespace

std::string
suiteLabel(SuiteId id)
{
    switch (id) {
      case SuiteId::Spec:
        return "SPE";
      case SuiteId::Parsec:
        return "PAR";
      case SuiteId::Npb:
        return "NPB";
    }
    PPEP_PANIC("bad suite id");
}

double
BenchmarkProfile::totalInstructions() const
{
    double total = 0.0;
    for (const auto &p : phases)
        total += p.inst_count;
    return total;
}

std::unique_ptr<sim::Job>
BenchmarkProfile::makeJob() const
{
    return std::make_unique<sim::Job>(name, phases, /*looping=*/false);
}

std::unique_ptr<sim::Job>
BenchmarkProfile::makeLoopingJob() const
{
    return std::make_unique<sim::Job>(name, phases, /*looping=*/true);
}

const std::vector<BenchmarkProfile> &
Suite::all()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

std::vector<const BenchmarkProfile *>
Suite::bySuite(SuiteId id)
{
    std::vector<const BenchmarkProfile *> out;
    for (const auto &p : all()) {
        if (p.suite == id)
            out.push_back(&p);
    }
    return out;
}

const BenchmarkProfile &
Suite::byName(const std::string &name)
{
    for (const auto &p : all()) {
        if (p.name == name)
            return p;
    }
    PPEP_FATAL("unknown benchmark: ", name);
}

bool
Suite::exists(const std::string &name)
{
    for (const auto &p : all()) {
        if (p.name == name)
            return true;
    }
    return false;
}

const std::vector<Combination> &
allCombinations()
{
    static const std::vector<Combination> combos = buildCombinations();
    return combos;
}

std::vector<const Combination *>
combinationsBySuite(SuiteId id)
{
    std::vector<const Combination *> out;
    for (const auto &c : allCombinations()) {
        if (c.suite == id)
            out.push_back(&c);
    }
    return out;
}

std::vector<std::size_t>
launch(sim::Chip &chip, const Combination &combo, bool looping)
{
    const auto &cfg = chip.config();
    PPEP_ASSERT(combo.instances.size() <= cfg.coreCount(),
                "combination '", combo.name, "' needs ",
                combo.instances.size(), " cores; chip has ",
                cfg.coreCount());

    for (std::size_t c = 0; c < cfg.coreCount(); ++c)
        chip.clearJob(c);

    std::vector<std::size_t> cores;
    for (std::size_t i = 0; i < combo.instances.size(); ++i) {
        // Spread across CUs first (instance i -> CU i%n, core i/n within
        // the CU); multi-programmed SPEC instances thus land one per CU,
        // matching the paper's pinning.
        const std::size_t cu = i % cfg.n_cus;
        const std::size_t slot = i / cfg.n_cus;
        PPEP_ASSERT(slot < cfg.cores_per_cu, "placement overflow");
        const std::size_t core = cu * cfg.cores_per_cu + slot;
        const auto &prof = Suite::byName(combo.instances[i]);
        chip.setJob(core,
                    looping ? prof.makeLoopingJob() : prof.makeJob());
        cores.push_back(core);
    }
    return cores;
}

sim::Phase
derivePhase(double mem, double dram, double fpu, double branch,
            double mispred, double stall, double inst_count)
{
    mem = std::clamp(mem, 0.0, 1.0);
    dram = std::clamp(dram, 0.0, 1.0);

    sim::Phase p;
    p.fpu_per_inst = std::max(0.0, fpu);
    p.uops_per_inst = 1.15 + 0.40 * p.fpu_per_inst + 0.10 * mem;
    p.branch_per_inst = std::clamp(branch, 0.0, 0.5);
    p.ifetch_per_inst = 0.22 + 0.30 * p.branch_per_inst;
    p.dcache_per_inst = 0.30 + 0.25 * mem + 0.10 * p.fpu_per_inst;
    p.l2req_per_inst = 0.008 + 0.055 * mem;
    p.mispred_per_inst =
        p.branch_per_inst * std::clamp(mispred, 0.0, 0.5);
    p.l2miss_per_inst = p.l2req_per_inst * (0.10 + 0.40 * mem);
    p.leading_per_inst = p.l2miss_per_inst * (0.07 + 0.10 * dram);
    p.l3_miss_rate = 0.15 + 0.75 * dram;
    p.resource_stall_cpi = std::max(0.05, stall);
    p.inst_count = inst_count;
    p.validate();
    return p;
}

Combination
replicate(const std::string &program, std::size_t copies)
{
    PPEP_ASSERT(copies >= 1, "need at least one copy");
    const auto &prof = Suite::byName(program);
    Combination c;
    c.suite = prof.suite;
    c.name = program + " x" + std::to_string(copies);
    c.instances.assign(copies, program);
    return c;
}

} // namespace ppep::workloads
