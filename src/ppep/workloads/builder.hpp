/**
 * @file
 * Fluent builder for custom workload profiles.
 *
 * The built-in suite covers the paper's 52 programs; downstream users
 * characterising their own applications need a way to author profiles
 * without hand-filling every sim::Phase field. The builder exposes the
 * same high-level knobs the suite's trait table uses (memory intensity,
 * DRAM share, FPU density, branchiness, ...) and derives consistent
 * low-level per-instruction rates from them.
 */

#ifndef PPEP_WORKLOADS_BUILDER_HPP
#define PPEP_WORKLOADS_BUILDER_HPP

#include <memory>
#include <string>
#include <vector>

#include "ppep/sim/phase.hpp"

namespace ppep::workloads {

/**
 * Derive a consistent sim::Phase from high-level characteristics — the
 * single mapping both the built-in suite and the ProfileBuilder use.
 * Inputs are clamped to their valid ranges.
 */
sim::Phase derivePhase(double mem, double dram, double fpu,
                       double branch, double mispred, double stall,
                       double inst_count);

/** Fluent custom-workload author. */
class ProfileBuilder
{
  public:
    /** Start a profile named @p name. */
    explicit ProfileBuilder(std::string name);

    /** Memory intensity in [0, 1] (drives cache/memory rates). */
    ProfileBuilder &memoryIntensity(double mem);

    /** DRAM share of L3 accesses in [0, 1]. */
    ProfileBuilder &dramShare(double dram);

    /** FPU operations per instruction (>= 0). */
    ProfileBuilder &fpuPerInst(double fpu);

    /** Branches per instruction in [0, 0.5]. */
    ProfileBuilder &branchRate(double branch);

    /** Misprediction rate as a fraction of branches in [0, 0.5]. */
    ProfileBuilder &mispredictRate(double rate);

    /** Frequency-invariant resource-stall CPI (>= 0.05). */
    ProfileBuilder &resourceStallCpi(double cpi);

    /**
     * Append one phase of @p instructions using the current knob
     * values; knobs persist, so consecutive addPhase() calls with
     * interleaved knob changes build phase sequences naturally.
     */
    ProfileBuilder &addPhase(double instructions);

    /** Number of phases added so far. */
    std::size_t phaseCount() const { return phases_.size(); }

    /** Build a run-once job. @pre at least one phase added. */
    std::unique_ptr<sim::Job> makeJob() const;

    /** Build an infinitely looping job. @pre at least one phase added. */
    std::unique_ptr<sim::Job> makeLoopingJob() const;

    /** The raw phases (inspection/tests). */
    const std::vector<sim::Phase> &phases() const { return phases_; }

  private:
    std::string name_;
    double mem_ = 0.2;
    double dram_ = 0.4;
    double fpu_ = 0.1;
    double branch_ = 0.15;
    double mispred_ = 0.03;
    double stall_ = 0.3;
    std::vector<sim::Phase> phases_;
};

} // namespace ppep::workloads

#endif // PPEP_WORKLOADS_BUILDER_HPP
