/**
 * @file
 * Synthetic benchmark suite standing in for SPEC CPU2006 v1.2, PARSEC
 * v2.1, and NPB v3.3.1 (Sec. II).
 *
 * Each of the 52 programs the paper uses is represented by a profile: a
 * deterministic sequence of phases whose per-instruction characteristics
 * span the CPU-bound <-> memory-bound spectrum. The paper's two anchor
 * programs are modelled explicitly: 433.milc (memory-bound) and 458.sjeng
 * (CPU-bound). dedup, IS, and DC get rapid 20 ms-scale phase changes plus
 * short runtimes — the paper's outlier mechanism.
 *
 * The paper's 152 benchmark combinations are reproduced exactly in
 * structure: 61 SPEC multi-programmed (29 singles + 15 doubles +
 * 10 triples + 7 quads, the Fig. 6 x-axis), 51 PARSEC multi-threaded and
 * 40 NPB multi-threaded runs.
 */

#ifndef PPEP_WORKLOADS_SUITE_HPP
#define PPEP_WORKLOADS_SUITE_HPP

#include <memory>
#include <string>
#include <vector>

#include "ppep/sim/chip.hpp"
#include "ppep/sim/phase.hpp"

namespace ppep::workloads {

/** Benchmark suite tags. */
enum class SuiteId
{
    Spec,
    Parsec,
    Npb,
};

/** Short label ("SPE", "PAR", "NPB") as used in the paper's figures. */
std::string suiteLabel(SuiteId id);

/** How a program's phases evolve over its run. */
enum class PhaseStyle
{
    Steady,      ///< one dominant regime, mild drift
    Alternating, ///< two regimes (compute <-> memory) alternating
    RandomWalk,  ///< characteristics wander between phases
    Rapid,       ///< 20 ms-scale flips: stresses PMC multiplexing
};

/** One benchmark program: name, suite, and its phase sequence. */
struct BenchmarkProfile
{
    std::string name;
    SuiteId suite = SuiteId::Spec;
    std::vector<sim::Phase> phases;

    /** Total instructions over the whole run. */
    double totalInstructions() const;

    /** Instantiate a fresh Job executing this profile once. */
    std::unique_ptr<sim::Job> makeJob() const;

    /** Instantiate a Job that loops this profile forever. */
    std::unique_ptr<sim::Job> makeLoopingJob() const;
};

/** Access to the 52-program suite (built once, deterministic). */
class Suite
{
  public:
    /** All 52 programs: 29 SPEC, 13 PARSEC, 10 NPB. */
    static const std::vector<BenchmarkProfile> &all();

    /** Programs of one suite. */
    static std::vector<const BenchmarkProfile *> bySuite(SuiteId id);

    /** Lookup by exact name; fatal() if absent. */
    static const BenchmarkProfile &byName(const std::string &name);

    /** True if the program exists. */
    static bool exists(const std::string &name);
};

/**
 * One of the paper's 152 benchmark combinations: a named set of program
 * instances run concurrently. For SPEC these are distinct programs
 * (multi-programmed); for PARSEC/NPB they are N threads of one program.
 */
struct Combination
{
    /** e.g. "400+401+403+429" or "dedup.x4". */
    std::string name;
    SuiteId suite = SuiteId::Spec;
    /** One entry per concurrently running instance/thread. */
    std::vector<std::string> instances;
};

/** The full 152-combination list (61 SPEC + 51 PARSEC + 40 NPB). */
const std::vector<Combination> &allCombinations();

/** Combinations of one suite. */
std::vector<const Combination *> combinationsBySuite(SuiteId id);

/**
 * Place a combination's instances onto a chip's cores.
 *
 * SPEC instances go one per CU (the paper pins multi-programmed runs to
 * distinct CUs); threaded instances spread across CUs first, then fill
 * second cores. Existing jobs are cleared. Returns the core ids used, in
 * instance order.
 *
 * @param looping run instances as infinite loops (steady-state studies)
 *                rather than single passes.
 */
std::vector<std::size_t> launch(sim::Chip &chip, const Combination &combo,
                                bool looping = false);

/**
 * Convenience: a combination of @p copies instances of one program
 * (the Sec. V background-workload sweeps, e.g. "433.milc x3").
 */
Combination replicate(const std::string &program, std::size_t copies);

} // namespace ppep::workloads

#endif // PPEP_WORKLOADS_SUITE_HPP
