#include "ppep/workloads/builder.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::workloads {

ProfileBuilder::ProfileBuilder(std::string name) : name_(std::move(name))
{
    PPEP_ASSERT(!name_.empty(), "profile needs a name");
}

ProfileBuilder &
ProfileBuilder::memoryIntensity(double mem)
{
    PPEP_ASSERT(mem >= 0.0 && mem <= 1.0,
                "memory intensity out of [0,1]");
    mem_ = mem;
    return *this;
}

ProfileBuilder &
ProfileBuilder::dramShare(double dram)
{
    PPEP_ASSERT(dram >= 0.0 && dram <= 1.0, "DRAM share out of [0,1]");
    dram_ = dram;
    return *this;
}

ProfileBuilder &
ProfileBuilder::fpuPerInst(double fpu)
{
    PPEP_ASSERT(fpu >= 0.0, "negative FPU rate");
    fpu_ = fpu;
    return *this;
}

ProfileBuilder &
ProfileBuilder::branchRate(double branch)
{
    PPEP_ASSERT(branch >= 0.0 && branch <= 0.5,
                "branch rate out of [0,0.5]");
    branch_ = branch;
    return *this;
}

ProfileBuilder &
ProfileBuilder::mispredictRate(double rate)
{
    PPEP_ASSERT(rate >= 0.0 && rate <= 0.5,
                "mispredict rate out of [0,0.5]");
    mispred_ = rate;
    return *this;
}

ProfileBuilder &
ProfileBuilder::resourceStallCpi(double cpi)
{
    PPEP_ASSERT(cpi >= 0.05, "stall CPI below the model floor (0.05)");
    stall_ = cpi;
    return *this;
}

ProfileBuilder &
ProfileBuilder::addPhase(double instructions)
{
    PPEP_ASSERT(instructions > 0.0, "phase must contain instructions");
    phases_.push_back(derivePhase(mem_, dram_, fpu_, branch_, mispred_,
                                  stall_, instructions));
    return *this;
}

std::unique_ptr<sim::Job>
ProfileBuilder::makeJob() const
{
    PPEP_ASSERT(!phases_.empty(), "profile '", name_, "' has no phases");
    return std::make_unique<sim::Job>(name_, phases_, /*looping=*/false);
}

std::unique_ptr<sim::Job>
ProfileBuilder::makeLoopingJob() const
{
    PPEP_ASSERT(!phases_.empty(), "profile '", name_, "' has no phases");
    return std::make_unique<sim::Job>(name_, phases_, /*looping=*/true);
}

} // namespace ppep::workloads
