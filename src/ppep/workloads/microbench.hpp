/**
 * @file
 * Microbenchmarks used by the paper's power-gating study (Sec. IV-D) and
 * by the idle-power training protocol (Sec. IV-A / Fig. 1).
 *
 * bench_A is the paper's own construction: "an L1-resident data set,
 * requires no dynamic NB accesses, and has a steady program phase. The
 * performance and dynamic power of each instance is the same if multiple
 * instances are running concurrently on different CUs." The heater is the
 * heavy workload used to warm the die before a cooling trace.
 */

#ifndef PPEP_WORKLOADS_MICROBENCH_HPP
#define PPEP_WORKLOADS_MICROBENCH_HPP

#include <memory>

#include "ppep/sim/phase.hpp"

namespace ppep::workloads {

/** The Sec. IV-D bench_A: steady, L1-resident, NB-silent, looping. */
std::unique_ptr<sim::Job> makeBenchA();

/** A high-activity looping workload for heating the die (Fig. 1). */
std::unique_ptr<sim::Job> makeHeater();

} // namespace ppep::workloads

#endif // PPEP_WORKLOADS_MICROBENCH_HPP
