#include "ppep/workloads/microbench.hpp"

#include <vector>

namespace ppep::workloads {

std::unique_ptr<sim::Job>
makeBenchA()
{
    sim::Phase p;
    p.uops_per_inst = 1.2;
    p.fpu_per_inst = 0.05;
    p.ifetch_per_inst = 0.22;
    p.dcache_per_inst = 0.45; // L1-resident: lots of hits, no misses
    p.l2req_per_inst = 0.0;   // never leaves L1
    p.branch_per_inst = 0.10;
    p.mispred_per_inst = 0.0005;
    p.l2miss_per_inst = 0.0;  // no dynamic NB accesses
    p.leading_per_inst = 0.0;
    p.l3_miss_rate = 0.0;
    p.resource_stall_cpi = 0.70;
    p.inst_count = 1e9;
    p.validate();
    return std::make_unique<sim::Job>("bench_A",
                                      std::vector<sim::Phase>{p},
                                      /*looping=*/true);
}

std::unique_ptr<sim::Job>
makeHeater()
{
    // A realistic power virus: FPU-heavy but with normal pipeline
    // pressure, landing a ~125-150 W-class chip at its thermal design
    // envelope (not an unphysical IPC-3 fantasy that would heat the
    // simulated die past any real operating point and skew the idle
    // model's temperature training range).
    sim::Phase p;
    p.uops_per_inst = 1.5;
    p.fpu_per_inst = 0.45;
    p.ifetch_per_inst = 0.28;
    p.dcache_per_inst = 0.50;
    p.l2req_per_inst = 0.02;
    p.branch_per_inst = 0.08;
    p.mispred_per_inst = 0.0008;
    p.l2miss_per_inst = 0.002;
    p.leading_per_inst = 0.0004;
    p.l3_miss_rate = 0.3;
    p.resource_stall_cpi = 0.62;
    p.inst_count = 1e9;
    p.validate();
    return std::make_unique<sim::Job>("heater",
                                      std::vector<sim::Phase>{p},
                                      /*looping=*/true);
}

} // namespace ppep::workloads
