/**
 * @file
 * Fleet-scale parallel runtime: N independent governed sessions over a
 * small immutable registry of trained models, executed on a fixed-size
 * thread pool.
 *
 * Fleets may be heterogeneous: each session can bring its own
 * ChipConfig (an FX-8320 next to a Phenom II next to an NB-DVFS
 * variant). The expensive, shareable state — TrainedModels and the
 * assembled Ppep (with its precomputed per-VF plan) — is acquired
 * exactly once per *distinct* configuration on the calling thread:
 * prepare() resolves every session's config to a registry entry keyed
 * by the ModelStore platform fingerprint, training each entry once and
 * sharing it between all sessions whose configs hash identically.
 * Every session then holds const references to its entry
 * (Session::Builder::sharedModels). Everything mutable (Chip, Sampler,
 * Governor, RNG streams, telemetry sinks) is per-session, so sessions
 * never synchronise with each other while governing.
 *
 * Determinism contract: a session's telemetry stream is a pure
 * function of its spec (config, seed, jobs, governor, schedule, fault
 * plan, tenants). The thread pool only changes *when* a session runs,
 * never what it computes, so per-session results are bit-identical at
 * any thread count — including serial. test_runtime_fleet asserts this
 * with DigestSink digests, for homogeneous and mixed fleets alike.
 */

#ifndef PPEP_RUNTIME_FLEET_HPP
#define PPEP_RUNTIME_FLEET_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ppep/governor/governor.hpp"
#include "ppep/runtime/arbiter.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/recorder.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/sim/chip_batch.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/replay.hpp"

namespace ppep::runtime {

/** One session's overrides within a fleet. */
struct FleetSessionSpec
{
    /** Label in results; defaults to "s<index>" when empty. */
    std::string name;
    /** Chip RNG seed — the per-session deterministic stream root. */
    std::uint64_t seed = 1;
    /** Power gating on this session's chip. */
    bool pg = false;
    /** Explicit pinned jobs. */
    std::vector<Session::JobSpec> jobs;
    /** Convenience placement: program i on the first core of CU i. */
    std::vector<std::string> one_per_cu;
    /** Policy; empty falls back to the fleet default (EDP). */
    GovernorFactory governor;
    /** Cap schedule; nullopt falls back to the fleet default. */
    std::optional<ppep::governor::CapSchedule> schedule;
    /** Per-session fault plan (hardened path); nullopt = plain. */
    std::optional<sim::FaultPlan> faults;
    /** Fault stream seed; nullopt derives from the chip seed. */
    std::optional<std::uint64_t> fault_seed;
    /** Per-session online recalibration; nullopt falls back to the
     *  fleet default (which may itself be off). */
    std::optional<RecalibrationPolicy> recalibration;
    /**
     * This session's chip; nullopt inherits the fleet default. Sessions
     * whose configs fingerprint identically share one trained-model
     * registry entry; a distinct config gets its own models, so an
     * FX-8320 model is never served to a Phenom II session.
     */
    std::optional<sim::ChipConfig> cfg;
    /** Tenants sharing this session's chip; empty = no attribution.
     *  Validated against the session's own config at build(). */
    std::vector<TenantSpec> tenants;
    /** Arbitration weight (FleetSpec::arbiter); 0 removes the session
     *  from the budget sweep entirely. */
    double priority = 1.0;
    /** Arbitration SLO floor: never cap this session below this many
     *  watts unless the floors alone are infeasible. */
    double slo_floor_w = 0.0;
    /** Arbitration tier; nullopt = round-robin over the spec's tiers. */
    std::optional<std::size_t> tier;
};

/** Shared fleet configuration plus the per-session specs. */
struct FleetSpec
{
    /** Default chip description for sessions without their own cfg. */
    sim::ChipConfig cfg;
    /** Trainer seed for the shared models (all registry entries). */
    std::uint64_t training_seed = 42;
    /** Acquire models through this cache; nullopt trains fresh. */
    std::optional<ModelStore> store;
    /** Training set; nullopt = all single-program combinations. */
    std::optional<std::vector<const workloads::Combination *>>
        training_combos;
    /** Fleet-default policy; empty = EDP-optimal. */
    GovernorFactory default_governor;
    /** Fleet-default cap schedule; nullopt = unlimited. */
    std::optional<ppep::governor::CapSchedule> default_schedule;
    /** Fleet-default recalibration; nullopt = off. Sessions running
     *  with a store() also journal adoptions to its lineage log. */
    std::optional<RecalibrationPolicy> default_recalibration;
    /** Warm-up intervals per session. */
    std::size_t warmup = 0;
    /** Governed intervals per session. */
    std::size_t intervals = 40;
    /** When non-empty, write one CSV trace per session into this
     *  directory (`<name>.csv`), created on demand. */
    std::string csv_dir;
    /** Put each session's CSV behind an AsyncTelemetrySink so stream
     *  writes happen off the governing thread. */
    bool async_telemetry = false;
    /**
     * Step every session's chip through one SoA sim::ChipBatch on the
     * calling thread instead of per-session scalar loops. Telemetry is
     * bit-identical to the per-session path (any thread count) — the
     * batch's per-lane arithmetic is the scalar step's, reordered
     * across lanes only. Incompatible with replay_path.
     */
    bool batched = false;
    /** When non-empty, record every session's governed interval stream
     *  into this replay file (written after the run completes). */
    std::string record_path;
    /** When non-empty, drive every session from the stream of the same
     *  name in this replay file: zero simulation, mmap ingest. The
     *  file's platform fingerprints must match the sessions' configs.
     *  Incompatible with record_path and batched. */
    std::string replay_path;
    /**
     * Fleet-level power-budget arbitration: when set, the fleet drives
     * every session in lockstep and a BudgetArbiter (or the iterative
     * baseline) redistributes per-session caps from the sessions' own
     * per-VF predictions on a deterministic barrier every interval.
     * Telemetry stays bit-identical at any thread count. Incompatible
     * with batched (the SoA chip lockstep is a separate drive).
     */
    std::optional<ArbiterSpec> arbiter;
    /** The sessions to run. */
    std::vector<FleetSessionSpec> sessions;
};

/** One session's outcome. */
struct FleetSessionResult
{
    std::string name;
    std::uint64_t seed = 0;
    /** False when the session threw; error carries the reason. */
    bool completed = false;
    std::string error;
    /** End-of-run aggregates (meaningful when completed). */
    SummarySink::Summary summary;
    /** DigestSink digest over the deterministic telemetry stream —
     *  the cross-thread bit-identity witness. */
    std::uint64_t telemetry_digest = 0;
    /** Governed intervals run. */
    std::size_t intervals = 0;
    /** Failed-sink errors surfaced by the session. */
    std::vector<std::string> sink_errors;
    /** Wall-clock cost of this session, seconds. */
    double wall_s = 0.0;
    // --- arbitration telemetry (meaningful when the fleet arbitrates
    // --- under a finite budget) --------------------------------------
    /** Mean watt cap allocated to this session per interval. */
    double mean_cap_w = 0.0;
    /** Cap in force after the final interval. */
    double final_cap_w = std::numeric_limits<double>::max();
    /** Mean watts denied per interval (demand minus allocation). */
    double mean_throttled_w = 0.0;
    /** Per-tenant share of the throttled watts, split in proportion to
     *  each tenant's attributed power (summary.tenant_names order). */
    std::vector<double> tenant_throttled_w;
};

/** Fleet rollup (specs order preserved in sessions). */
struct FleetResult
{
    std::vector<FleetSessionResult> sessions;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t total_intervals = 0;
    /** Wall-clock of the whole run() call, seconds. */
    double wall_s = 0.0;
    double sessions_per_s = 0.0;
    double intervals_per_s = 0.0;
    /** Mean of completed sessions' mean power, watts. */
    double mean_power_w = 0.0;
    /** Total energy across completed sessions, joules. */
    double energy_j = 0.0;
    /** Arbitration rollup; arbiter.active is false when the fleet ran
     *  without one. */
    ArbiterReport arbiter;
};

/**
 * Runs a FleetSpec on a fixed-size worker pool. Workers pull session
 * indices from a shared atomic counter; each session is built, driven
 * and torn down entirely on one worker. A session that throws is
 * recorded as failed without taking the pool down.
 */
class Fleet
{
  public:
    explicit Fleet(FleetSpec spec);

    /**
     * Build the model registry (train, or load through the store) on
     * the calling thread: one entry per distinct platform fingerprint
     * among the sessions' configs, resolved once and immutable for the
     * fleet's lifetime. Idempotent; run() calls it implicitly.
     */
    void prepare();

    /** Models/predictor of the fleet-default config's entry; fatal
     *  when no session uses the default config. prepare() first. */
    const model::TrainedModels &models() const;
    const model::Ppep &ppep() const;

    /** Distinct trained configurations in the registry. */
    std::size_t modelEntryCount() const;

    /** Registry entry index serving session @p index — sessions with
     *  fingerprint-identical configs report the same index. */
    std::size_t entryIndexOf(std::size_t index) const;

    /** The predictor serving session @p index (sharing witness). */
    const model::Ppep &ppepOf(std::size_t index) const;

    /** The spec in force. */
    const FleetSpec &spec() const { return spec_; }

    /**
     * Run every session on @p n_threads workers (clamped to
     * [1, sessions]). Per-session results are bit-identical at any
     * thread count.
     */
    FleetResult run(std::size_t n_threads);

  private:
    /** One immutable registry entry: a distinct chip configuration
     *  with its trained models and assembled predictor. */
    struct ModelEntry
    {
        sim::ChipConfig cfg;
        std::uint64_t fingerprint = 0;
        model::TrainedModels models;
        std::optional<model::Ppep> ppep;
    };

    /** Per-session sinks + session, shared by the scalar and batched
     *  drive paths (defined in fleet.cpp). */
    struct Harness;

    FleetSessionResult runOne(std::size_t index);
    /** Build sinks and the session for session @p index into @p h. */
    void buildHarness(std::size_t index, Harness &h);
    /** Close sinks and collect the session's outcome into h.res. */
    void finishHarness(Harness &h);
    /** The lockstep ChipBatch drive (spec_.batched). */
    FleetResult runBatched();
    /** The barrier-arbitrated lockstep drive (spec_.arbiter). */
    FleetResult runArbitrated(std::size_t n_threads);
    /** Rollup + throughput + record-file assembly shared by both
     *  drive paths. */
    void finalizeRun(FleetResult &out, double wall_s);
    const ModelEntry &entryOf(std::size_t index) const;

    FleetSpec spec_;
    /** unique_ptr slots keep entry addresses stable while the registry
     *  grows, so sessions can hold references across prepare(). */
    std::vector<std::unique_ptr<ModelEntry>> entries_;
    /** Session index -> registry entry index. */
    std::vector<std::size_t> session_entry_;
    /** Entry matching spec_.cfg, or npos when no session uses it. */
    std::size_t default_entry_ = static_cast<std::size_t>(-1);
    /** Record mode: one stream builder per session, assembled into
     *  spec_.record_path after the run. Slots are index-owned, so
     *  workers never touch each other's. */
    std::vector<std::unique_ptr<RecorderSink>> recorders_;
    /** Replay mode: the mmap'd file, opened once per run; workers read
     *  it concurrently (the mapping is immutable). */
    std::unique_ptr<trace::ReplayFile> replay_file_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_FLEET_HPP
