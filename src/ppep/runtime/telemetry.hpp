/**
 * @file
 * Per-interval telemetry for governed runs.
 *
 * A TelemetrySink observes a Session's control loop from the outside:
 * once per completed 200 ms interval it receives the measured record,
 * the VF state that produced it, the active cap, the power the governor
 * had predicted for that interval, the per-VF exploration behind the
 * decision just taken, and the wall-clock cost of that decision — the
 * observability surface a production daemon exports.
 *
 * Shipped sinks: CsvSink (spreadsheet-friendly trace), JsonlSink (one
 * JSON object per interval, machine-ingestible), SummarySink (end-of-run
 * aggregates: cap adherence, settle time, VF residency, predicted-vs-
 * measured power MAE, decision latency).
 */

#ifndef PPEP_RUNTIME_TELEMETRY_HPP
#define PPEP_RUNTIME_TELEMETRY_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/runtime/sampler.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/fmt.hpp"

namespace ppep::runtime {

struct TenantAttribution; // runtime/tenant.hpp

/** Everything a sink sees about one completed interval. */
struct IntervalTelemetry
{
    /** Interval number, monotonic across a Session's run() calls. */
    std::size_t index = 0;

    /** Simulated time at the start of the interval, seconds. */
    double time_s = 0.0;

    /** The measured interval (counters, sensor power, diode). */
    const trace::IntervalRecord *rec = nullptr;

    /** Per-CU VF indices applied *during* the interval. */
    const std::vector<std::size_t> *cu_vf = nullptr;

    /** Power cap active during the interval, watts. */
    double cap_w = 0.0;

    /**
     * Chip power the governor predicted for *this* interval when it
     * decided at the end of the previous one; NaN for the first interval
     * and for non-predictive policies.
     */
    double predicted_power_w = std::numeric_limits<double>::quiet_NaN();

    /**
     * The per-VF exploration behind the decision taken at the *end* of
     * this interval (i.e. the sweep that chose the next VF); nullptr for
     * policies that do not explore. Valid only during the callback.
     */
    const std::vector<model::VfPrediction> *exploration = nullptr;

    /** Wall-clock cost of the decide() call that ended the interval. */
    double decision_latency_s = 0.0;

    /**
     * The hardened Sampler's health record for this interval; nullptr
     * when the session runs the perfect-acquisition Collector. Valid
     * only during the callback.
     */
    const SampleHealth *health = nullptr;

    /** True when the decision that ended this interval ran the
     *  degraded-mode safe policy instead of the configured governor. */
    bool degraded = false;

    /** The HealthMonitor's smoothed |predicted - measured| power after
     *  this interval, watts; NaN on plain (non-hardened) sessions. */
    double divergence_ewma_w = std::numeric_limits<double>::quiet_NaN();

    /** True when the session runs an online Recalibrator — the
     *  model_generation and recal_* fields below are then live. */
    bool recal_active = false;

    /** Model generation governing this interval (0 = the offline-
     *  trained models; each adopted refit increments it). */
    std::uint64_t model_generation = 0;

    /** Refits dispatched so far. */
    std::uint64_t recal_triggers = 0;

    /** Refits adopted (hot-swapped in) so far. */
    std::uint64_t recal_accepted = 0;

    /** Refits rejected by the acceptance gate so far. */
    std::uint64_t recal_rejected = 0;

    /** Per-tenant power attribution for this interval; nullptr when the
     *  session defines no tenants. Valid only during the callback. */
    const TenantAttribution *tenants = nullptr;

    /** Tenant names aligned with the attribution arrays; set iff
     *  `tenants` is. Valid only during the callback. */
    const std::vector<std::string> *tenant_names = nullptr;
};

/** Observer of a governed run, invoked once per completed interval. */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /** One completed interval. Pointers are valid only during the call. */
    virtual void onInterval(const IntervalTelemetry &t) = 0;

    /** End of run; flush/summarise. May be called more than once. */
    virtual void finish() {}

    /**
     * Durability point: everything observed so far is pushed through to
     * the underlying medium before flush() returns — buffered writers
     * flush their stream, async sinks drain their queue and flush the
     * sink they wrap. Callable at any point between intervals, any
     * number of times. Default is a no-op (unbuffered sinks).
     */
    virtual void flush() {}

    /**
     * Terminal: flush, then release resources (writer threads, owned
     * files). Idempotent. After close() returns the caller must not
     * deliver further onInterval() calls; failed()/error() stay valid.
     * Destruction implies close(). Default forwards to flush().
     */
    virtual void close() { flush(); }

    /**
     * True when the sink has stopped recording faithfully (e.g. its
     * output stream failed mid-run). Session::run checks this after
     * finish() and reports failed sinks instead of losing data
     * silently.
     */
    virtual bool failed() const { return false; }

    /** Description of the failure; empty while healthy. */
    virtual std::string error() const { return {}; }
};

/** Comma-separated trace, one row per interval, header on first row. */
class CsvSink : public TelemetrySink
{
  public:
    /** Write to a caller-owned stream (kept open). */
    explicit CsvSink(std::ostream &out);

    /** Write to a file; fatal() when it cannot be opened. */
    explicit CsvSink(const std::string &path);

    ~CsvSink() override;

    void onInterval(const IntervalTelemetry &t) override;
    void finish() override;
    void flush() override;
    void close() override;
    bool failed() const override { return failed_; }
    std::string error() const override { return error_; }

  private:
    std::ostream &stream();
    void checkStream();
    /** Encode one row into row_ (no stream I/O, no allocation warm). */
    void encodeRow(const IntervalTelemetry &t) PPEP_NONALLOCATING;

    std::ostream *out_ = nullptr;
    std::unique_ptr<std::ostream> owned_;
    std::string path_;
    util::fmt::RowBuffer row_;
    bool header_written_ = false;
    bool with_health_ = false;
    bool with_recal_ = false;
    bool with_tenants_ = false;
    bool failed_ = false;
    std::string error_;
};

/** JSON-lines trace: one self-contained JSON object per interval. */
class JsonlSink : public TelemetrySink
{
  public:
    explicit JsonlSink(std::ostream &out);
    explicit JsonlSink(const std::string &path);
    ~JsonlSink() override;

    void onInterval(const IntervalTelemetry &t) override;
    void finish() override;
    void flush() override;
    void close() override;
    bool failed() const override { return failed_; }
    std::string error() const override { return error_; }

  private:
    void checkStream();
    /** Encode one object into row_ (no stream I/O, no allocation warm). */
    void encodeRow(const IntervalTelemetry &t) PPEP_NONALLOCATING;

    std::ostream *out_ = nullptr;
    std::unique_ptr<std::ostream> owned_;
    std::string path_;
    util::fmt::RowBuffer row_;
    bool failed_ = false;
    std::string error_;
};

/**
 * Order-sensitive FNV-1a digest over every *deterministic* field of the
 * telemetry stream — the cheap bit-identical-replay witness behind the
 * fleet determinism tests and bench. decision_latency_s (wall clock) is
 * excluded by construction; everything else, down to per-core PMC
 * counts and ground truth, is folded in bit-for-bit.
 */
class DigestSink : public TelemetrySink
{
  public:
    void onInterval(const IntervalTelemetry &t) PPEP_NONBLOCKING override;

    /** Digest over everything seen so far. */
    std::uint64_t digest() const { return hash_; }

    /** Intervals folded in. */
    std::size_t intervals() const { return count_; }

  private:
    void mixU64(std::uint64_t v) PPEP_NONBLOCKING;
    void mixDouble(double v) PPEP_NONBLOCKING;

    std::uint64_t hash_ = 1469598103934665603ULL;
    std::size_t count_ = 0;
};

/** End-of-run aggregates over a governed trace. */
class SummarySink : public TelemetrySink
{
  public:
    struct Summary
    {
        std::size_t intervals = 0;

        /** Fraction of intervals at or under cap (2% grace band). */
        double cap_adherence = 0.0;

        /** Mean intervals to get back under a newly-lowered cap. */
        double mean_settle_intervals = 0.0;

        /**
         * CU-interval counts per VF index (how long each state was
         * occupied, summed over CUs).
         */
        std::vector<std::size_t> vf_residency;

        /** Mean |predicted - measured| chip power over predicted
         *  intervals, watts; NaN when nothing was predicted. */
        double power_mae_w = std::numeric_limits<double>::quiet_NaN();

        /** Number of intervals that carried a power prediction. */
        std::size_t predicted_intervals = 0;

        double mean_power_w = 0.0;
        double energy_j = 0.0; ///< sensor power integrated over time

        double mean_decision_latency_s = 0.0;
        double max_decision_latency_s = 0.0;

        /** Total Sampler fault events over the run (hardened runs). */
        std::size_t fault_events = 0;

        /** Intervals governed by the degraded-mode safe policy. */
        std::size_t degraded_intervals = 0;

        /** Healthy-to-degraded transitions observed. */
        std::size_t demotions = 0;

        /** Divergence EWMA after the final interval, watts; NaN on
         *  plain sessions. */
        double final_divergence_ewma_w =
            std::numeric_limits<double>::quiet_NaN();

        /** Model generation governing the final interval. */
        std::uint64_t model_generation = 0;

        /** Refits dispatched / adopted / rejected over the run. */
        std::uint64_t recal_triggers = 0;
        std::uint64_t recal_accepted = 0;
        std::uint64_t recal_rejected = 0;

        /** Tenant names (empty when the run had no tenants). */
        std::vector<std::string> tenant_names;

        /** Attributed energy per tenant, joules (aligned with names). */
        std::vector<double> tenant_energy_j;

        /** Mean attributed power per tenant, watts. */
        std::vector<double> tenant_mean_power_w;

        /** Energy attributed to cores no tenant owns, joules. */
        double unattributed_energy_j = 0.0;
    };

    void onInterval(const IntervalTelemetry &t) override;

    /** Aggregates over everything seen so far. */
    Summary summary() const;

    /** Print a human-readable report. */
    void print(std::ostream &out) const;

  private:
    struct StepLite
    {
        double cap_w = 0.0;
        double power_w = 0.0;
    };

    std::vector<StepLite> steps_;
    std::vector<std::size_t> residency_;
    std::vector<std::string> tenant_names_;
    std::vector<double> tenant_energy_j_;
    std::vector<double> tenant_power_sum_w_;
    double unattributed_energy_j_ = 0.0;
    std::size_t fault_events_ = 0;
    std::size_t degraded_intervals_ = 0;
    std::size_t demotions_ = 0;
    bool last_degraded_ = false;
    bool recal_seen_ = false;
    double last_divergence_w_ = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t last_generation_ = 0;
    std::uint64_t last_triggers_ = 0;
    std::uint64_t last_accepted_ = 0;
    std::uint64_t last_rejected_ = 0;
    double abs_err_sum_w_ = 0.0;
    std::size_t predicted_ = 0;
    double power_sum_w_ = 0.0;
    double energy_j_ = 0.0;
    double latency_sum_s_ = 0.0;
    double latency_max_s_ = 0.0;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_TELEMETRY_HPP
