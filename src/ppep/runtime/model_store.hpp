/**
 * @file
 * Content-addressed persistence for trained PPEP models.
 *
 * Training is the paper's "one-time, offline effort" per processor
 * (Sec. IV-B): a deployment trains once and every subsequent boot loads
 * the stored models. The ModelStore makes that lifecycle automatic —
 * trainOrLoad() hashes everything that determines the training outcome
 * (platform, seed, trainer version, training set) into a cache key,
 * loads a hit from disk, and trains + persists on a miss. Because the
 * model::serialization text format round-trips every double exactly, a
 * warm-cache run reproduces the cold run's decisions bit for bit.
 */

#ifndef PPEP_RUNTIME_MODEL_STORE_HPP
#define PPEP_RUNTIME_MODEL_STORE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ppep/model/trainer.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::runtime {

/**
 * Version stamp of the offline training pipeline. Bump whenever Trainer
 * (or anything it calls) changes numerically, so stale cache entries
 * stop matching instead of silently serving old models.
 */
inline constexpr std::uint32_t kTrainerVersion = 2;

/**
 * Everything that determines a training run's output.
 *
 * The platform fingerprint covers the complete chip description —
 * topology, core microarchitecture, VF/boost tables, PG support,
 * NB-DVFS capability, interval timing, and the ground-truth power /
 * thermal / sensor constants. Two configurations that differ anywhere
 * get distinct keys even under one platform name, so a heterogeneous
 * fleet can never serve an FX-8320 model to a Phenom II session.
 */
struct ModelKey
{
    std::string platform;          ///< ChipConfig::name
    std::uint64_t fingerprint = 0; ///< digest of the visible config
    std::uint64_t seed = 0;        ///< Trainer seed
    std::uint32_t trainer_version = kTrainerVersion;
    std::uint64_t combo_digest = 0; ///< digest of the training set

    /** Single 64-bit digest over all fields. */
    std::uint64_t digest() const;

    /** Cache file name: `<platform-slug>-<digest-hex>.ppepm`. */
    std::string fileName() const;
};

/** FNV-1a helpers (exposed for tests). */
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t h = 14695981039346656037ull);
std::uint64_t platformFingerprint(const sim::ChipConfig &cfg);
std::uint64_t
comboDigest(const std::vector<const workloads::Combination *> &combos);

/** Disk-backed cache of TrainedModels, one text file per key. */
class ModelStore
{
  public:
    /**
     * @param cache_dir directory holding the cache files; created on
     *        first store. Defaults to defaultCacheDir().
     */
    explicit ModelStore(std::string cache_dir = defaultCacheDir());

    /** `$PPEP_CACHE_DIR` when set, else `.ppep-cache`. */
    static std::string defaultCacheDir();

    const std::string &cacheDir() const { return dir_; }

    /** The key trainOrLoad() would use for this request. */
    static ModelKey
    keyFor(const sim::ChipConfig &cfg, std::uint64_t seed,
           const std::vector<const workloads::Combination *> &combos);

    /** Absolute-ish path a key resolves to inside the cache dir. */
    std::string pathFor(const ModelKey &key) const;

    /** Whether a cache file exists for the key. */
    bool contains(const ModelKey &key) const;

    /**
     * Load the models for (cfg, seed, combos) from the cache, or run
     * `Trainer(cfg, seed).trainAll(combos)` and persist the result.
     *
     * @param was_cached optional out-flag: true when the call was served
     *        from disk without training.
     */
    model::TrainedModels
    trainOrLoad(const sim::ChipConfig &cfg, std::uint64_t seed,
                const std::vector<const workloads::Combination *> &combos,
                bool *was_cached = nullptr) const;

    /** Persist models under the key (atomic replace). */
    void save(const ModelKey &key, const model::TrainedModels &models) const;

    /**
     * Append one line to the store's model-lineage journal
     * (`<cache_dir>/lineage.log`): who refit what, from which parent,
     * why, and how well it scored — the audit trail behind online
     * recalibration. Thread-safe (one in-process lock per journal) and
     * append-only; a crashed writer loses at most its own line.
     */
    void appendLineage(const std::string &platform,
                       std::uint64_t fingerprint,
                       std::uint64_t generation,
                       std::uint64_t parent_digest, std::uint64_t digest,
                       const std::string &reason,
                       std::uint64_t trigger_interval, double cv_mae_w,
                       double incumbent_mae_w) const;

    /** Every line of the lineage journal, oldest first (empty when the
     *  journal does not exist yet). */
    std::vector<std::string> lineageLines() const;

    /**
     * Process-wide count of actual Trainer runs performed by
     * trainOrLoad() (i.e. cache misses that trained). Concurrent
     * trainOrLoad() calls for one key serialise on an in-process
     * per-path lock, so this advances exactly once per distinct key per
     * process — the train-once guarantee the concurrency tests assert.
     */
    static std::uint64_t trainEvents();

    /**
     * Process-wide count of entries in the per-path lock registry
     * (test hook). The registry is bounded: idle entries are evicted
     * LRU once pathLockCapacity() is reached, while entries with a
     * live holder are never evicted (that would mint a second mutex
     * for a path someone still has locked).
     */
    static std::size_t pathLockCount();

    /** The registry's idle-entry cap. */
    static std::size_t pathLockCapacity();

  private:
    std::string dir_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_MODEL_STORE_HPP
