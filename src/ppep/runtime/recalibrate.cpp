#include "ppep/runtime/recalibrate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ppep/math/kfold.hpp"
#include "ppep/math/least_squares.hpp"
#include "ppep/math/matrix.hpp"
#include "ppep/model/dynamic_power_model.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/util/rng.hpp"

namespace ppep::runtime {

namespace {

/** Content digest of one generation's dynamic weights. */
std::uint64_t
weightsDigest(const std::array<double, sim::kNumPowerEvents> &w)
{
    return fnv1a(w.data(), sizeof(double) * w.size());
}

/** design-row . weights, the shared prediction kernel of the gate. */
double
dot(const math::Matrix &design, std::size_t row,
    const std::vector<double> &w)
{
    double acc = 0.0;
    for (std::size_t j = 0; j < w.size(); ++j)
        acc += design(row, j) * w[j];
    return acc;
}

} // namespace

Recalibrator::Recalibrator(const sim::ChipConfig &cfg,
                           const model::TrainedModels &gen0,
                           GovernorRebuilder rebuild,
                           std::uint64_t training_seed,
                           RecalibrationPolicy policy)
    : cfg_(cfg), gen0_(gen0), rebuild_(std::move(rebuild)),
      training_seed_(training_seed), policy_(policy)
{
    PPEP_ASSERT(policy_.recal_divergence_w > 0.0,
                "recalibrate threshold must be positive");
    PPEP_ASSERT(policy_.kfold_k >= 2, "k-fold needs k >= 2");
    PPEP_ASSERT(policy_.min_ring_fill >= policy_.kfold_k,
                "min ring fill must cover the folds");
    PPEP_ASSERT(policy_.ring_capacity >= policy_.min_ring_fill,
                "ring capacity below its own fill threshold");
    PPEP_ASSERT(policy_.adopt_latency_intervals >= 1,
                "adoption needs at least one interval of latency");
    PPEP_ASSERT(policy_.min_improvement >= 0.0 &&
                    policy_.min_improvement < 1.0,
                "min_improvement in [0, 1)");
    PPEP_ASSERT(gen0_.idle.trained() && gen0_.dynamic.trained(),
                "recalibration starts from trained models");
    PPEP_ASSERT(rebuild_ != nullptr,
                "recalibration needs a governor rebuilder");
    ring_.resize(policy_.ring_capacity);
    worker_ = std::thread([this] { workerLoop(); });
}

Recalibrator::~Recalibrator()
{
    {
        util::MutexLock lk(mutex_);
        quit_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

void
Recalibrator::observeInterval(const trace::IntervalRecord &rec,
                              bool clean, std::uint64_t interval_index)
{
    // Only data the sampler vouches for may teach the next model; a
    // fault-storm interval would poison the very refit meant to cure
    // divergence.
    if (!clean || !std::isfinite(rec.sensor_power_w) ||
        !std::isfinite(rec.diode_temp_k) || rec.duration_s <= 0.0)
        return;

    RingRow &row = ring_[ring_head_];
    row.design.fill(0.0);
    row.target_w = 0.0;
    row.interval = interval_index;

    // Eq. 3 design vector with the per-core voltage scale folded into
    // the seven core-event columns: the fit then stays one linear
    // regression even though online rows span arbitrary per-CU VF
    // states, unlike offline training's fixed top-VF protocol.
    const std::size_t table_top = cfg_.vf_table.size() - 1;
    double volt_sum = 0.0;
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const std::size_t vf =
            std::min(rec.cu_vf[cu], table_top);
        const double voltage = cfg_.vf_table.state(vf).voltage;
        const double vscale = gen0_.dynamic.voltageScale(voltage);
        const auto rates =
            model::powerEventRates(rec.pmc[c], rec.duration_s);
        for (std::size_t i = 0; i < sim::kNumCorePowerEvents; ++i)
            row.design[i] += vscale * rates[i];
        for (std::size_t i = sim::kNumCorePowerEvents;
             i < sim::kNumPowerEvents; ++i)
            row.design[i] += rates[i];
    }
    for (std::size_t cu = 0; cu < rec.cu_vf.size(); ++cu)
        volt_sum +=
            cfg_.vf_table.state(std::min(rec.cu_vf[cu], table_top))
                .voltage;
    const double mean_v =
        rec.cu_vf.empty()
            ? cfg_.vf_table.state(table_top).voltage
            : volt_sum / static_cast<double>(rec.cu_vf.size());

    // Target: measured dynamic power, priced against the generation-0
    // idle model (idle/alpha are carried through generations, so the
    // target definition never shifts under the fit).
    row.target_w = rec.sensor_power_w -
                   gen0_.idle.predict(mean_v, rec.diode_temp_k);

    ring_head_ = (ring_head_ + 1) % ring_.size();
    if (ring_fill_ < ring_.size())
        ++ring_fill_;
}

bool
Recalibrator::maybeTrigger(const trace::IntervalRecord &rec,
                           double divergence_ewma_w,
                           std::uint64_t interval_index)
{
    if (pending_.load(std::memory_order_relaxed))
        return false;
    if (!(divergence_ewma_w > policy_.recal_divergence_w))
        return false;
    if (ring_fill_ < policy_.min_ring_fill)
        return false;
    if (interval_index < cooldown_until_)
        return false;
    if (policy_.max_generations != 0 &&
        generation() >= policy_.max_generations)
        return false;

    {
        util::MutexLock lk(mutex_);
        job_.rows.clear();
        job_.rows.reserve(ring_fill_);
        for (std::size_t i = 0; i < ring_fill_; ++i)
            job_.rows.push_back(ring_[i]);
        if (adopted_) {
            job_.incumbent_weights =
                adopted_->models.dynamic.weights();
            job_.incumbent_digest = adopted_->digest;
        } else {
            job_.incumbent_weights = gen0_.dynamic.weights();
            job_.incumbent_digest =
                weightsDigest(gen0_.dynamic.weights());
        }
        job_.generation = generation() + 1;
        job_.trigger_interval = interval_index;
        job_.trigger_ewma_w = divergence_ewma_w;
        job_.warm_rec = rec;
        job_ready_ = true;
        result_ready_ = false;
    }
    pending_.store(true, std::memory_order_relaxed);
    adopt_deadline_ =
        interval_index + policy_.adopt_latency_intervals;
    ++triggers_;
    cv_.notify_all();
    return true;
}

const Recalibrator::ModelVersion *
Recalibrator::adoptIfDue(std::uint64_t interval_index)
{
    if (!pending_.load(std::memory_order_relaxed))
        return nullptr;
    if (interval_index < adopt_deadline_)
        return nullptr;

    Result res;
    {
        // The determinism barrier: adoption happens at exactly
        // trigger + adopt_latency_intervals, so a slow worker delays
        // the wall clock, never the decision sequence.
        util::UniqueLock lk(mutex_);
        while (!result_ready_)
            cv_.wait(lk);
        res = std::move(result_);
        result_ready_ = false;
    }
    pending_.store(false, std::memory_order_relaxed);
    cooldown_until_ = adopt_deadline_ + policy_.cooldown_intervals;
    res.record.decide_interval = interval_index;
    lineage_.push_back(res.record);

    // The previous adoption's grace period is over (this resolution is
    // at least cooldown + latency intervals later): hand the parked
    // version to the worker for destruction off the governing path.
    if (grace_) {
        {
            util::MutexLock lk(mutex_);
            reclaim_.push_back(std::move(grace_));
        }
        cv_.notify_all();
    }

    if (!res.version) {
        ++rejected_;
        return nullptr;
    }
    res.version->adopt_interval = interval_index;
    // Retire, don't destroy: telemetry for the adoption interval still
    // reads the outgoing generation (the exploration behind the
    // decision that just ran lives in its governor), so the old version
    // is parked for one grace period before reclamation.
    grace_ = std::move(adopted_);
    adopted_ = std::move(res.version);
    ++accepted_;
    return adopted_.get();
}

void
Recalibrator::workerLoop()
{
    for (;;) {
        Job job;
        bool have_job = false;
        std::vector<std::unique_ptr<ModelVersion>> retired;
        {
            util::UniqueLock lk(mutex_);
            while (!(quit_ || job_ready_ || !reclaim_.empty()))
                cv_.wait(lk);
            retired.swap(reclaim_);
            if (quit_)
                return;
            if (job_ready_) {
                job = std::move(job_);
                job_ready_ = false;
                have_job = true;
            }
        }
        retired.clear();
        if (!have_job)
            continue;
        Result res = refit(job);
        {
            util::MutexLock lk(mutex_);
            result_ = std::move(res);
            result_ready_ = true;
        }
        cv_.notify_all();
    }
}

Recalibrator::Result
Recalibrator::refit(const Job &job) const
{
    const std::size_t n = job.rows.size();
    const std::size_t p = sim::kNumPowerEvents;

    math::Matrix design(n, p);
    std::vector<double> target(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j)
            design(i, j) = job.rows[i].design[j];
        target[i] = job.rows[i].target_w;
    }

    Result res;
    res.record.generation = job.generation;
    res.record.parent_digest = job.incumbent_digest;
    res.record.trigger_interval = job.trigger_interval;
    res.record.trigger_ewma_w = job.trigger_ewma_w;
    res.record.ring_rows = n;

    // Incumbent error on the very same ring: apples to apples, since
    // both models share the voltage-scale and idle terms.
    const std::vector<double> incumbent(
        job.incumbent_weights.begin(), job.incumbent_weights.end());
    double inc_abs = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        inc_abs += std::abs(dot(design, i, incumbent) - target[i]);
    const double inc_mae = inc_abs / static_cast<double>(n);
    res.record.incumbent_mae_w = inc_mae;

    // Cross-validated candidate error: per-fold NNLS on the training
    // rows, scored on the held-out rows. The shuffle is seeded from
    // (training seed, generation), so identical runs make identical
    // accept/reject calls at any fleet thread count.
    const std::size_t k = std::min(policy_.kfold_k, n);
    util::Rng rng(training_seed_ ^
                  (0x9E3779B97F4A7C15ULL * job.generation));
    const auto folds = math::makeFolds(n, k, rng);
    double cv_abs = 0.0;
    std::size_t cv_count = 0;
    for (const auto &fold : folds) {
        math::Matrix train(fold.train.size(), p);
        std::vector<double> train_y(fold.train.size());
        for (std::size_t r = 0; r < fold.train.size(); ++r) {
            for (std::size_t j = 0; j < p; ++j)
                train(r, j) = design(fold.train[r], j);
            train_y[r] = target[fold.train[r]];
        }
        const auto fit =
            math::fitNonNegativeLeastSquares(train, train_y);
        for (const std::size_t t : fold.test) {
            cv_abs +=
                std::abs(dot(design, t, fit.coefficients) - target[t]);
            ++cv_count;
        }
    }
    const double cv_mae =
        cv_abs / static_cast<double>(cv_count ? cv_count : 1);
    res.record.cv_mae_w = cv_mae;

    // The published weights come from the full-ring fit.
    const auto full = math::fitNonNegativeLeastSquares(design, target);
    std::array<double, sim::kNumPowerEvents> weights{};
    for (std::size_t j = 0; j < p; ++j)
        weights[j] = full.coefficients[j];
    res.record.digest = weightsDigest(weights);

    // Acceptance gate 1: beat the incumbent on its own ring.
    if (!(cv_mae <= inc_mae * (1.0 - policy_.min_improvement))) {
        res.record.verdict = "worse-than-incumbent";
        return res;
    }
    // Gate 2: weights must stay physically plausible energies.
    for (const double w : weights) {
        if (!std::isfinite(w) || w > policy_.max_weight) {
            res.record.verdict = "implausible-weights";
            return res;
        }
    }
    // Gate 3: the fit must not predict absurd power anywhere on the
    // ring it was trained on.
    for (std::size_t i = 0; i < n; ++i) {
        const double pred = dot(design, i, full.coefficients);
        if (!std::isfinite(pred) ||
            std::abs(pred) > policy_.max_predicted_w) {
            res.record.verdict = "implausible-predictions";
            return res;
        }
    }

    // Build the immutable next generation: gen-0 idle/alpha/PG with
    // the refit dynamic weights, a fresh Ppep plan, and a rebuilt
    // governor — pre-warmed here so the first decision after the swap
    // allocates nothing on the governing thread.
    auto ver = std::make_unique<ModelVersion>();
    ver->generation = job.generation;
    ver->parent_digest = job.incumbent_digest;
    ver->digest = res.record.digest;
    ver->trigger_interval = job.trigger_interval;
    ver->cv_mae_w = cv_mae;
    ver->incumbent_ring_mae_w = inc_mae;
    ver->models = gen0_;
    ver->models.dynamic = model::DynamicPowerModel::fromWeights(
        weights, gen0_.dynamic.trainingVoltage(),
        gen0_.dynamic.alpha());
    ver->models.chip = model::ChipPowerModel(
        ver->models.idle, ver->models.dynamic, cfg_.vf_table);
    ver->ppep = std::make_unique<model::Ppep>(cfg_, ver->models.chip,
                                              ver->models.pg);
    ver->gov = rebuild_(cfg_, ver->models, *ver->ppep);
    PPEP_ASSERT(ver->gov != nullptr,
                "governor rebuilder returned null");
    std::vector<std::size_t> scratch;
    const double no_cap = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 3; ++i) {
        ver->gov->decideInto(job.warm_rec, no_cap, scratch);
        (void)ver->gov->decideNb();
    }

    res.record.accepted = true;
    res.record.verdict = "adopted";
    res.version = std::move(ver);
    return res;
}

} // namespace ppep::runtime
