/**
 * @file
 * Drift-triggered online recalibration with an RCU-style hot swap.
 *
 * ModelStore makes training a one-time offline effort, but silicon
 * ages, sensors decalibrate, and workloads shift: the HealthMonitor's
 * divergence EWMA then climbs until the DegradedModeGovernor parks the
 * session on the safe policy — detection without recovery. The
 * Recalibrator closes the loop:
 *
 *  1. every governed interval it snapshots one bounded ring row —
 *     the Eq. 3 design vector (per-core event rates with the per-core
 *     voltage scale folded in) and the measured dynamic power target
 *     (sensor minus the incumbent idle estimate) — allocation-free;
 *  2. when the divergence EWMA crosses the recalibrate threshold
 *     (below the demote threshold: heal before you have to degrade),
 *     it hands the ring to a background worker thread;
 *  3. the worker refits the nine dynamic-power weights with the
 *     existing math/least_squares NNLS + math/kfold machinery and
 *     gates acceptance: the candidate's k-fold error must beat the
 *     incumbent's error on the same ring by a configured margin, and
 *     the weights and predictions must pass plausibility bounds;
 *  4. publication is an atomic hand-off of an immutable
 *     TrainedModels + Ppep + rebuilt (pre-warmed) governor entry that
 *     the session re-points its DegradedModeGovernor at between
 *     decisions, so the warm decide path never blocks or allocates;
 *     retired entries are reclaimed on the worker, off the hot path.
 *
 * Adoption is deterministic by construction: the swap takes effect at
 * exactly trigger + adopt_latency_intervals regardless of how fast the
 * worker runs (the observer blocks on the result only when that
 * deadline arrives), so fleet results stay bit-identical at any thread
 * count. Every refit — accepted or rejected — is recorded in a lineage
 * the ModelStore can persist.
 */

#ifndef PPEP_RUNTIME_RECALIBRATE_HPP
#define PPEP_RUNTIME_RECALIBRATE_HPP

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/events.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/sync.hpp"

namespace ppep::runtime {

/** When to refit, how much history to use, and what to accept. */
struct RecalibrationPolicy
{
    /** Trigger a refit when the divergence EWMA exceeds this, watts.
     *  Keep it below HealthPolicy::demote_divergence_w so healing
     *  starts before the session has to degrade. */
    double recal_divergence_w = 10.0;

    /** Ring capacity: intervals of history a refit can see. */
    std::size_t ring_capacity = 256;

    /** Minimum clean rows in the ring before a refit may trigger. */
    std::size_t min_ring_fill = 64;

    /** Intervals to wait after an adoption/rejection before the next
     *  trigger may fire (lets the EWMA re-converge first). */
    std::size_t cooldown_intervals = 128;

    /** Intervals between the trigger and the deterministic adoption
     *  point — the worker's time budget. The observer blocks only if
     *  the refit has not finished when the deadline arrives, so this
     *  bounds nondeterminism away entirely. */
    std::size_t adopt_latency_intervals = 8;

    /** Folds for the candidate's cross-validated error. */
    std::size_t kfold_k = 4;

    /** Required relative improvement: candidate cv MAE must be at or
     *  under incumbent ring MAE * (1 - min_improvement). */
    double min_improvement = 0.1;

    /** Plausibility: per-event energy weights above this (watts per
     *  event/second; physical values are ~1e-8) are rejected. */
    double max_weight = 1e-3;

    /** Plausibility: a candidate whose ring predictions exceed this
     *  (watts) is rejected. */
    double max_predicted_w = 1e4;

    /** Adopted-generation cap; 0 = unlimited. */
    std::size_t max_generations = 0;
};

/**
 * Rebuilds the session's policy against a recalibrated model set.
 * Defined here (not in terms of session.hpp's GovernorFactory) so the
 * two headers stay acyclic; Session wraps its factory into one of
 * these.
 */
using GovernorRebuilder = std::function<std::unique_ptr<governor::Governor>(
    const sim::ChipConfig &, const model::TrainedModels &,
    const model::Ppep &)>;

/** One refit attempt, accepted or not — the audit trail. */
struct RefitRecord
{
    std::uint64_t generation = 0;
    std::uint64_t parent_digest = 0;
    std::uint64_t digest = 0;
    bool accepted = false;
    /** Static-literal verdict ("adopted", "worse-than-incumbent",
     *  "implausible-weights", "implausible-predictions"). */
    const char *verdict = "";
    std::uint64_t trigger_interval = 0;
    std::uint64_t decide_interval = 0;
    double trigger_ewma_w = 0.0;
    double cv_mae_w = 0.0;
    double incumbent_mae_w = 0.0;
    std::size_t ring_rows = 0;
};

/** Drift-triggered background refit + RCU-style model hot swap. */
class Recalibrator
{
  public:
    /** An immutable published model generation. */
    struct ModelVersion
    {
        std::uint64_t generation = 0;
        /** Digest of the weights this refit replaced. */
        std::uint64_t parent_digest = 0;
        /** Digest of this generation's dynamic weights. */
        std::uint64_t digest = 0;
        std::uint64_t trigger_interval = 0;
        std::uint64_t adopt_interval = 0;
        double cv_mae_w = 0.0;
        double incumbent_ring_mae_w = 0.0;
        model::TrainedModels models;
        std::unique_ptr<model::Ppep> ppep;
        std::unique_ptr<governor::Governor> gov;
    };

    /**
     * @param cfg           the session's chip description (copied).
     * @param gen0          the models the session started with (copied;
     *                      idle model, alpha, and PG decomposition are
     *                      carried through every generation unchanged).
     * @param rebuild       builds a fresh policy over a refit model set.
     * @param training_seed seeds the k-fold shuffles deterministically.
     */
    Recalibrator(const sim::ChipConfig &cfg,
                 const model::TrainedModels &gen0,
                 GovernorRebuilder rebuild, std::uint64_t training_seed,
                 RecalibrationPolicy policy = {});

    Recalibrator(const Recalibrator &) = delete;
    Recalibrator &operator=(const Recalibrator &) = delete;

    ~Recalibrator() PPEP_EXCLUDES(mutex_);

    /**
     * Record one completed interval into the ring. Allocation-free —
     * the ring is preallocated and rows are plain arrays. Rows from
     * unclean intervals (@p clean false: sampler interventions fired)
     * or with a non-finite sensor reading are skipped; a refit must
     * not learn from data the sampler itself distrusts.
     */
    void observeInterval(const trace::IntervalRecord &rec, bool clean,
                         std::uint64_t interval_index);

    /**
     * Fire a refit if the divergence warrants one: EWMA above the
     * threshold, ring sufficiently full, cooldown expired, no refit in
     * flight, generation cap not reached. @p rec is the interval that
     * just completed (its copy pre-warms the rebuilt governor on the
     * worker). Returns true when a refit was dispatched. The fast path
     * is one relaxed atomic load plus arithmetic.
     */
    bool maybeTrigger(const trace::IntervalRecord &rec,
                      double divergence_ewma_w,
                      std::uint64_t interval_index) PPEP_EXCLUDES(mutex_);

    /**
     * At exactly trigger + adopt_latency_intervals, resolve the
     * in-flight refit: returns the newly adopted version (caller
     * re-points its governor and resets its health EWMA), or nullptr
     * when nothing is due or the candidate was rejected. Blocks only
     * when the deadline has arrived and the worker has not finished —
     * the determinism barrier. The retired version is handed to the
     * worker for reclamation, never freed here.
     */
    const ModelVersion *adoptIfDue(std::uint64_t interval_index)
        PPEP_EXCLUDES(mutex_);

    /** The currently adopted version; nullptr while on generation 0. */
    const ModelVersion *current() const { return adopted_.get(); }

    /** Adopted generation count (0 = still the offline models). */
    std::uint64_t generation() const
    {
        return adopted_ ? adopted_->generation : 0;
    }

    /** Refits dispatched so far. */
    std::uint64_t triggers() const { return triggers_; }

    /** Refits adopted so far. */
    std::uint64_t accepted() const { return accepted_; }

    /** Refits rejected by the acceptance gate so far. */
    std::uint64_t rejected() const { return rejected_; }

    /** Clean rows currently in the ring. */
    std::size_t ringFill() const { return ring_fill_; }

    /** True while a dispatched refit has not been resolved. */
    bool refitPending() const
    {
        return pending_.load(std::memory_order_relaxed);
    }

    /** Every refit attempt, in dispatch order. */
    const std::vector<RefitRecord> &lineage() const { return lineage_; }

    /** The policy in force. */
    const RecalibrationPolicy &policy() const { return policy_; }

  private:
    /** One ring row: Eq. 3 design vector + measured dynamic power. */
    struct RingRow
    {
        std::array<double, sim::kNumPowerEvents> design{};
        double target_w = 0.0;
        std::uint64_t interval = 0;
    };

    /** Inputs of one dispatched refit (observer -> worker). */
    struct Job
    {
        std::vector<RingRow> rows;
        std::array<double, sim::kNumPowerEvents> incumbent_weights{};
        std::uint64_t incumbent_digest = 0;
        std::uint64_t generation = 0;
        std::uint64_t trigger_interval = 0;
        double trigger_ewma_w = 0.0;
        trace::IntervalRecord warm_rec;
    };

    /** Outputs of one refit (worker -> observer). */
    struct Result
    {
        std::unique_ptr<ModelVersion> version; ///< null when rejected
        RefitRecord record;
    };

    void workerLoop() PPEP_EXCLUDES(mutex_);
    Result refit(const Job &job) const;

    const sim::ChipConfig cfg_;
    const model::TrainedModels gen0_;
    const GovernorRebuilder rebuild_;
    const std::uint64_t training_seed_;
    const RecalibrationPolicy policy_;

    // --- observer-thread state ----------------------------------------
    // Deliberately NOT PPEP_GUARDED_BY anything: these fields are
    // confined to the observer (governing) thread, which is the RCU
    // reader side of the hot swap. The worker never touches them; the
    // only cross-thread traffic is the mailbox below plus the pending_
    // flag. adopted_/grace_ in particular hold the published model
    // generations: readers dereference them lock-free between
    // decisions, and retirement is deferred one grace period and then
    // destructed on the worker via reclaim_. Annotating them with a
    // mutex capability would force the warm decide path to take a lock
    // it must not take (see DESIGN.md section 18).
    std::vector<RingRow> ring_;
    std::size_t ring_head_ = 0;
    std::size_t ring_fill_ = 0;
    std::unique_ptr<ModelVersion> adopted_;
    /** The version retired by the most recent adoption, parked for one
     *  RCU grace period: the adoption interval's telemetry still reads
     *  the outgoing governor (its exploration buffer), so reclamation
     *  waits until the next refit resolution. */
    std::unique_ptr<ModelVersion> grace_;
    std::uint64_t triggers_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t adopt_deadline_ = 0;
    std::uint64_t cooldown_until_ = 0;
    std::vector<RefitRecord> lineage_;

    // --- observer <-> worker hand-off ---------------------------------
    std::atomic<bool> pending_{false};
    util::Mutex mutex_;
    /** Worker waits: quit_ || job_ready_ || !reclaim_.empty().
     *  Observer waits (in adoptIfDue): result_ready_. */
    util::CondVar cv_;
    bool quit_ PPEP_GUARDED_BY(mutex_) = false;
    bool job_ready_ PPEP_GUARDED_BY(mutex_) = false;
    bool result_ready_ PPEP_GUARDED_BY(mutex_) = false;
    Job job_ PPEP_GUARDED_BY(mutex_);
    Result result_ PPEP_GUARDED_BY(mutex_);
    /** Retired versions awaiting destruction on the worker. */
    std::vector<std::unique_ptr<ModelVersion>> reclaim_
        PPEP_GUARDED_BY(mutex_);
    std::thread worker_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_RECALIBRATE_HPP
