/**
 * @file
 * Fault accounting and model-health tracking for governed runs.
 *
 * The HealthMonitor folds two signals into a single degraded/healthy
 * verdict each interval:
 *
 *  - the Sampler's per-interval fault events (failed read-outs,
 *    rejected samples, substitutions, timing overruns), and
 *  - the divergence between the power the governor *predicted* for an
 *    interval and the power the sensor then *measured*, smoothed with
 *    an EWMA so a single glitch does not flip the verdict.
 *
 * A demotion latches: the system stays degraded until it has seen
 * policy.repromote_clean consecutive clean intervals. The
 * DegradedModeGovernor consults the verdict at the top of every
 * decision.
 */

#ifndef PPEP_RUNTIME_HEALTH_HPP
#define PPEP_RUNTIME_HEALTH_HPP

#include <cstddef>

#include "ppep/runtime/sampler.hpp"

namespace ppep::runtime {

/** Demotion/re-promotion thresholds. */
struct HealthPolicy
{
    /** EWMA smoothing factor for |predicted - measured| power. */
    double ewma_alpha = 0.25;

    /** Demote when the divergence EWMA exceeds this, watts. */
    double demote_divergence_w = 15.0;

    /** Demote when one interval records at least this many fault
     *  events (Sampler interventions). */
    std::size_t demote_fault_events = 3;

    /** Consecutive clean intervals required to re-promote. */
    std::size_t repromote_clean = 5;

    /** An interval only counts as clean if the divergence EWMA is
     *  back under this, watts (hysteresis below the demote level). */
    double clean_divergence_w = 8.0;
};

/** Latching healthy/degraded state machine fed once per interval. */
class HealthMonitor
{
  public:
    explicit HealthMonitor(HealthPolicy policy = {});

    /**
     * Account one completed interval.
     *
     * @param health      the Sampler's record for the interval.
     * @param predicted_w chip power the governor predicted for this
     *                    interval when it decided the previous one;
     *                    NaN when no prediction was made (degraded
     *                    mode, non-predicting policy) — divergence
     *                    tracking is skipped for that interval.
     * @param measured_w  sensor power the interval actually measured.
     */
    void observe(const SampleHealth &health, double predicted_w,
                 double measured_w) PPEP_NONBLOCKING;

    /** Current verdict. */
    bool degraded() const { return degraded_; }

    /** Smoothed |predicted - measured| power, watts. */
    double divergenceEwma() const { return divergence_ewma_; }

    /** Healthy→degraded transitions so far. */
    std::size_t demotions() const { return demotions_; }

    /** Degraded→healthy transitions so far. */
    std::size_t repromotions() const { return repromotions_; }

    /** Consecutive clean intervals ending at the latest observation. */
    std::size_t cleanStreak() const { return clean_streak_; }

    /** Intervals observed so far. */
    std::size_t intervalsObserved() const { return intervals_; }

    /**
     * A recalibrated model was just swapped in: the divergence history
     * was earned by the retired model, so the EWMA restarts from zero
     * and the clean streak with it. The degraded latch is untouched —
     * re-promotion still requires repromote_clean genuinely clean
     * intervals under the incoming model.
     */
    void noteModelSwap() PPEP_NONBLOCKING
    {
        divergence_ewma_ = 0.0;
        clean_streak_ = 0;
        ++model_swaps_;
    }

    /** Model swaps noted so far. */
    std::size_t modelSwaps() const { return model_swaps_; }

    /** The thresholds in force. */
    const HealthPolicy &policy() const { return policy_; }

  private:
    HealthPolicy policy_;
    bool degraded_ = false;
    double divergence_ewma_ = 0.0;
    std::size_t clean_streak_ = 0;
    std::size_t demotions_ = 0;
    std::size_t repromotions_ = 0;
    std::size_t intervals_ = 0;
    std::size_t model_swaps_ = 0;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_HEALTH_HPP
