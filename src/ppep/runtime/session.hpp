/**
 * @file
 * One governed run, end to end, behind a builder.
 *
 * A Session bundles what every governed experiment in this repo used to
 * assemble by hand: chip construction + seeding, job placement, model
 * acquisition (through the ModelStore cache), governor construction,
 * the cap schedule, and the measurement/decision/actuation loop — plus
 * telemetry fan-out to any number of TelemetrySinks.
 *
 *     auto session = runtime::Session::builder(sim::fx8320Config())
 *                        .seed(123)
 *                        .pg(true)
 *                        .onePerCu({"433.milc", "458.sjeng", "CG", "EP"})
 *                        .trainingSeed(42)
 *                        .store(runtime::ModelStore())
 *                        .governor(runtime::edpGovernor())
 *                        .sink(my_sink)
 *                        .build();
 *     auto steps = session.run(40);
 *
 * The loop itself stays in governor::GovernorLoop (one canonical cycle);
 * the Session drives it and feeds its sinks through the loop's step
 * observer, adding per-decision wall-clock latency and the governor's
 * own predictions to the record.
 */

#ifndef PPEP_RUNTIME_SESSION_HPP
#define PPEP_RUNTIME_SESSION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ppep/governor/degraded_mode.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/runtime/health.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/recalibrate.hpp"
#include "ppep/runtime/sampler.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/runtime/tenant.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/replay.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::runtime {

/** What a GovernorFactory gets to work with. */
struct ModelContext
{
    const sim::ChipConfig &cfg;
    const model::TrainedModels &models;
    const model::Ppep &ppep;
    /** The seed the models were trained with (for protocols that need a
     *  Trainer, e.g. the thermal-network fit). */
    std::uint64_t training_seed;
};

/** Builds the session's policy once models are available. */
using GovernorFactory =
    std::function<std::unique_ptr<governor::Governor>(const ModelContext &)>;

/** EDP-optimal one-step DVFS (the daemon default). */
GovernorFactory edpGovernor();

/** Energy-optimal one-step DVFS. */
GovernorFactory energyGovernor();

/** PPEP one-step power capping (Sec. V-B). */
GovernorFactory cappingGovernor(double guard_band = 0.02);

/** A governed run: chip + jobs + models + policy + telemetry. */
class Session
{
  public:
    /** One pinned job. */
    struct JobSpec
    {
        std::size_t core = 0;
        std::string program;
        bool looping = true;
    };

    class Builder
    {
      public:
        explicit Builder(sim::ChipConfig cfg);

        /** Chip RNG seed (default 1). */
        Builder &seed(std::uint64_t s);

        /** Trainer seed for model acquisition (default 42). */
        Builder &trainingSeed(std::uint64_t s);

        /** Enable/disable power gating on the chip (default off). */
        Builder &pg(bool enabled);

        /** Pin explicit jobs to cores. */
        Builder &jobs(std::vector<JobSpec> specs);

        /**
         * Convenience: program i on the first core of CU i, looping —
         * the paper's multi-programmed placement.
         */
        Builder &onePerCu(const std::vector<std::string> &programs);

        /** Place one of the 152 benchmark combinations. */
        Builder &combo(const workloads::Combination &c,
                       bool looping = true);

        /**
         * Training set for model acquisition (default: all 49
         * single-program combinations).
         */
        Builder &trainingCombos(
            std::vector<const workloads::Combination *> combos);

        /** Acquire models through this cache (default: train fresh). */
        Builder &store(ModelStore s);

        /** Use already-trained models; skips the store and training. */
        Builder &models(model::TrainedModels m);

        /**
         * Share caller-owned models and an assembled predictor without
         * copying either — the fleet path: N sessions over one immutable
         * Ppep. Both objects must outlive the session; the session
         * treats them as strictly read-only, so any number of sessions
         * (on any threads) may share them.
         */
        Builder &sharedModels(const model::TrainedModels &m,
                              const model::Ppep &p);

        /** Policy built from the trained models (default: EDP). */
        Builder &governor(GovernorFactory factory);

        /**
         * Use a caller-owned policy instead; the Session then trains no
         * models unless a store or models were given explicitly.
         */
        Builder &governor(ppep::governor::Governor &external);

        /** Cap schedule (default: unlimited). */
        Builder &schedule(ppep::governor::CapSchedule s);

        /** Warm-up intervals to run (and discard) before run(). */
        Builder &warmup(std::size_t intervals);

        /** Attach a caller-owned telemetry sink (repeatable). */
        Builder &sink(TelemetrySink &s);

        /**
         * Split the chip between named tenants: their jobs are placed
         * on their own cores and every interval's power is attributed
         * per tenant (Eqs. 7-8 idle split) into the telemetry stream.
         * Requires trained models and a PG-capable platform; validated
         * at build().
         */
        Builder &tenants(std::vector<TenantSpec> specs);

        // --- hardened acquisition ------------------------------------

        /**
         * Install a hardware fault plan on the chip and switch the
         * run onto the hardened path: Sampler acquisition,
         * HealthMonitor accounting, and a degraded-mode wrapper
         * around the policy. An all-zero plan exercises the hardened
         * path against perfect hardware.
         */
        Builder &faults(const sim::FaultPlan &plan);

        /** Seed for the fault decision stream (default: derived from
         *  the chip seed, so runs stay reproducible). */
        Builder &faultSeed(std::uint64_t s);

        /** Hardened-acquisition tuning (implies the hardened path). */
        Builder &samplerPolicy(const SamplerPolicy &p);

        /** Demotion/re-promotion thresholds (implies hardened path). */
        Builder &healthPolicy(const HealthPolicy &p);

        /** Degraded-mode safe-policy tuning (implies hardened path). */
        Builder &safePolicy(const ppep::governor::SafePolicy &p);

        /**
         * Drive the session from a recorded interval stream instead of
         * the simulated chip: collectInterval reads mmap'd frames, the
         * governor decides and actuates live, and telemetry fans out
         * unchanged — zero simulation, zero per-interval allocation
         * once warm. The source must outlive the session, its stream's
         * fingerprint must match this session's chip config (checked
         * at ReplaySource construction), and the recorded caps must
         * match this session's schedule (checked per interval). Warm-up
         * is skipped: the recording already warmed the run it captured.
         * Replay sessions support drive() only.
         */
        Builder &replay(trace::ReplaySource &src);

        /**
         * Run a Recalibrator alongside the hardened loop (implies the
         * hardened path): when the divergence EWMA crosses the policy's
         * recalibrate threshold, the dynamic-power weights are refit on
         * a background thread and — if they beat the incumbent — hot-
         * swapped in without blocking the governed loop. Incompatible
         * with an external governor (the Recalibrator must be able to
         * rebuild the policy over the refit models). When the session
         * also has a store(), adopted generations are journalled to the
         * store's lineage log.
         */
        Builder &recalibration(const RecalibrationPolicy &p);

        /** Assemble the session (trains or loads models as needed). */
        Session build();

      private:
        sim::ChipConfig cfg_;
        std::uint64_t chip_seed_ = 1;
        std::uint64_t training_seed_ = 42;
        bool pg_ = false;
        std::vector<JobSpec> jobs_;
        const workloads::Combination *combo_ = nullptr;
        bool combo_looping_ = true;
        std::optional<std::vector<const workloads::Combination *>>
            training_combos_;
        std::optional<ModelStore> store_;
        std::optional<model::TrainedModels> models_;
        const model::TrainedModels *shared_models_ = nullptr;
        const model::Ppep *shared_ppep_ = nullptr;
        GovernorFactory factory_;
        ppep::governor::Governor *external_gov_ = nullptr;
        std::optional<ppep::governor::CapSchedule> schedule_;
        std::size_t warmup_ = 0;
        std::vector<TelemetrySink *> sinks_;
        std::vector<TenantSpec> tenants_;
        std::optional<sim::FaultPlan> plan_;
        std::optional<std::uint64_t> fault_seed_;
        SamplerPolicy sampler_policy_;
        HealthPolicy health_policy_;
        ppep::governor::SafePolicy safe_policy_;
        std::optional<RecalibrationPolicy> recal_policy_;
        bool hardened_ = false;
        trace::ReplaySource *replay_ = nullptr;
    };

    /**
     * Splits one governed interval into begin / consumeTick-per-tick /
     * end so an external driver (runtime::Fleet's batched mode) can
     * step many sessions' chips tick-locked through one
     * sim::ChipBatch. The sequence
     *
     *     n = d.beginInterval();
     *     repeat n times { batch.step(); d.consumeTick(batch result); }
     *     d.endInterval();
     *
     * is bit-identical to one interval of Session::drive(): begin and
     * end wrap the same GovernorLoop cycle halves and the same
     * TickedIntervalSource calls the fused path is made of, and the
     * telemetry observer runs inside endInterval() exactly as drive()
     * runs it. Construction runs the session's warm-up (scalar).
     */
    class BatchDriver
    {
      public:
        explicit BatchDriver(Session &session);

        /** The chip to attach to the ChipBatch. */
        sim::Chip &chip();

        /** Open interval; returns its tick count (may be jittered). */
        std::size_t beginInterval() PPEP_NONBLOCKING;

        /** Fold one batch-stepped tick into the open interval. */
        void consumeTick(const sim::TickResult &tick) PPEP_NONBLOCKING;

        /** Close the interval: decide, actuate, fan out telemetry. */
        void endInterval();

        /** End of run: finish()/flush() the session's sinks. */
        void finish();

      private:
        Session &session_;
        ppep::governor::GovernorLoop loop_;
        ppep::governor::GovernorLoop::StepObserver observer_;
        trace::TickedIntervalSource *source_ = nullptr;
        ppep::governor::GovernorStep step_;
        std::vector<std::size_t> next_vf_;
        std::size_t index_ = 0;
    };

    /**
     * Splits one governed interval into a collect phase and a decide
     * phase so an external arbiter (runtime::Fleet's budget drive) can
     * sit between them on a barrier:
     *
     *     d.collectPhase();                 // measure the interval
     *     // barrier: arbiter reads exploration()/measuredPowerW()
     *     d.setCapLimitW(arbiter cap);      // install the allocation
     *     d.decidePhase();                  // decide, actuate, telemetry
     *
     * The two phases are exactly one interval of Session::drive() plus
     * the movable cap limit: with the limit at +inf the sequence is
     * bit-identical to drive(). Works for simulated, hardened, and
     * replayed sessions alike (replay decodes recorded frames in the
     * collect phase and re-checks the recorded cap against the
     * schedule/limit pair). Construction runs the session's warm-up.
     */
    class LockstepDriver
    {
      public:
        explicit LockstepDriver(Session &session);

        /** Open interval @p index: stamp cap context and measure (or
         *  decode the replay frame) into the step. */
        void collectPhase();

        /** Close the interval: decide under the current cap limit,
         *  actuate, fan out telemetry, advance the index. */
        void decidePhase();

        /** Install the arbiter's watt allocation for the decisions
         *  that follow (effective cap = min(schedule, limit)). */
        void setCapLimitW(double cap_w) PPEP_NONBLOCKING;

        /** The governor's per-VF exploration from its latest decide;
         *  nullptr before the first decide or while degraded. */
        const std::vector<model::VfPrediction> *exploration() const
            PPEP_NONBLOCKING;

        /** Measured chip power of the interval just collected. */
        double measuredPowerW() const PPEP_NONBLOCKING;

        /** End of run: finish()/flush() the session's sinks. */
        void finish();

      private:
        Session &session_;
        ppep::governor::GovernorLoop loop_;
        ppep::governor::GovernorLoop::StepObserver observer_;
        /** Null for replay sessions (frames come from the recording). */
        trace::IntervalSource *source_ = nullptr;
        ppep::governor::GovernorStep step_;
        std::vector<std::size_t> next_vf_;
        std::size_t index_ = 0;
    };

    static Builder builder(sim::ChipConfig cfg);

    Session(Session &&) noexcept;
    Session &operator=(Session &&) noexcept;
    ~Session();

    /**
     * Run @p intervals governed intervals, fanning each completed step
     * out to the attached sinks (and calling their finish() at the end).
     * Repeatable; telemetry interval indices continue across calls.
     */
    std::vector<ppep::governor::GovernorStep> run(std::size_t intervals);

    /**
     * run() without retaining the step trace — the steady-state fleet
     * path. Telemetry fan-out, warm-up, sink finish()/flush() and index
     * continuity are identical to run(); the loop reuses one internal
     * step so a governed interval performs zero heap allocations once
     * the scratch buffers are warm. Returns the number of intervals run.
     */
    std::size_t drive(std::size_t intervals);

    /** The simulated chip (for inspection or extra job placement). */
    sim::Chip &chip();
    const sim::ChipConfig &config() const;

    /** Whether this session holds trained models. */
    bool hasModels() const;

    /** Trained models; fatal() when the session trained none. */
    const model::TrainedModels &models() const;

    /** Assembled predictor; fatal() when the session trained none. */
    const model::Ppep &ppep() const;

    /** The active policy. */
    ppep::governor::Governor &policy();

    /** True when build() served the models from the store's cache. */
    bool modelsWereCached() const;

    /** True when this session runs the hardened acquisition path. */
    bool hardened() const;

    /** Hardened sampler; nullptr on plain sessions. */
    const Sampler *sampler() const;

    /** Health monitor; nullptr on plain sessions. */
    const HealthMonitor *healthMonitor() const;

    /** Degraded-mode wrapper; nullptr on plain sessions. */
    const ppep::governor::DegradedModeGovernor *degradedGovernor() const;

    /** Online recalibrator; nullptr when recalibration is off. */
    const Recalibrator *recalibrator() const;

    /** Tenant attributor; nullptr when the session has no tenants. */
    const TenantAttributor *tenantAttributor() const;

    /**
     * Errors from sinks that failed during the most recent run()
     * (satisfying "a full disk must not pass silently"); empty when
     * every sink recorded faithfully.
     */
    const std::vector<std::string> &sinkErrors() const;

  private:
    struct State;
    explicit Session(std::unique_ptr<State> state);

    /** Run the configured warm-up once. */
    void warmupIfNeeded();
    /** The telemetry fan-out observer shared by run() and drive(). */
    ppep::governor::GovernorLoop::StepObserver makeObserver();
    /** finish()+flush() every sink; collect failures. */
    void finishSinks();
    /** drive() over the attached ReplaySource (no simulation). */
    std::size_t driveReplay(std::size_t intervals);
    /** Decode the next replay frame into @p step and verify its
     *  recorded cap matches @p want_cap_w (the schedule/limit pair in
     *  force at @p index). Shared by driveReplay and LockstepDriver. */
    void replayFrameInto(ppep::governor::GovernorStep &step,
                         std::size_t index, double want_cap_w);
    /** The session's splittable source (Sampler or batch Collector). */
    trace::TickedIntervalSource &tickedSource();

    std::unique_ptr<State> state_;
    friend class Builder;
    friend class BatchDriver;
    friend class LockstepDriver;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_SESSION_HPP
