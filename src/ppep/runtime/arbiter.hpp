/**
 * @file
 * Fleet-level power-budget arbitration: one global watt contract split
 * into per-session caps every interval.
 *
 * The paper's systems win (Fig. 7) is that PPEP turns power capping
 * from an iterative search into a single predicted step, because every
 * node already knows its power at every VF state. BudgetArbiter is the
 * fleet-scale analogue: once per interval it gathers every session's
 * per-VF predicted-power row (already materialized by the session's
 * governor exploration) into flat SoA scratch and solves the global
 * allocation in one greedy water-filling sweep over the
 * (session x VF) table — marginal throughput per watt, per-session
 * priority weights, SLO floors, hierarchical tier budgets
 * (rack -> node), and hysteresis so caps don't thrash. The retained
 * IterativeFleetArbiter steps caps reactively from measured power, the
 * fleet-scale equivalent of governor/iterative_capping, so bench_fleet
 * can reproduce the Fig. 7 comparison at fleet scale.
 *
 * Determinism contract: decide() is a pure function of the gathered
 * rows, the measured powers, and the arbiter's own per-session state.
 * runtime::Fleet gathers on worker threads into disjoint per-session
 * SoA lanes and runs decide() serially inside a std::barrier
 * completion step, so fleet telemetry is bit-identical at any thread
 * count. The gather/decide path is PPEP_NONBLOCKING and allocation
 * free once configure() has sized the scratch (test_zero_alloc).
 */

#ifndef PPEP_RUNTIME_ARBITER_HPP
#define PPEP_RUNTIME_ARBITER_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ppep/governor/governor.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/util/annotations.hpp"
#include "ppep/util/thread_annotations.hpp"

namespace ppep::runtime {

/**
 * Phantom capability naming the fleet's barrier-serial section: the
 * one-thread-at-a-time completion step of the interval barrier (or a
 * test's single-threaded harness). FleetArbiter::decide() requires it,
 * so — under the PPEP_THREAD_SAFETY build — decide() can only be
 * called from a scope holding a util::RoleGuard on this role, i.e.
 * from code that has explicitly claimed serial execution. The role is
 * a pure annotation: claiming it never blocks and costs nothing, which
 * is the point — the decide path must stay lock-free
 * (PPEP_NONBLOCKING), and any real mutex added to it by accident is a
 * -Werror=function-effects error, not an added capability.
 */
inline util::Role kArbiterSerialRole;

/** One tier (rack, row, ...) with its own sub-budget. */
struct ArbiterTierSpec
{
    std::string name;
    /** Watts this tier's sessions may draw together. */
    double budget_w = std::numeric_limits<double>::max();
};

/**
 * Per-interval arbitration snapshot handed to ArbiterObserver right
 * after decide(): the caps just installed (governing the *next*
 * interval) and the powers measured over the interval that just
 * closed. Pointers are valid only for the duration of the call.
 */
struct ArbiterIntervalView
{
    std::size_t interval = 0;
    /** Budget governing the interval that just closed. */
    double budget_w = 0.0;
    /** Budget the freshly installed caps target (next interval). */
    double next_budget_w = 0.0;
    const double *caps = nullptr;
    const double *measured = nullptr;
    std::size_t n_sessions = 0;
    /** Budget minus predicted consumption under the installed caps. */
    double headroom_w = 0.0;
    /** Measured power over the closed interval exceeded its budget. */
    bool violation = false;
};

/** Called once per interval after decide(); must not throw (it runs
 *  inside the fleet's barrier completion step). */
using ArbiterObserver = std::function<void(const ArbiterIntervalView &)>;

/** Fleet-level arbitration configuration (FleetSpec::arbiter). */
struct ArbiterSpec
{
    /** The global watt contract, possibly time-varying (Fig. 7-style
     *  budget drops). Unlimited leaves every session uncapped. */
    ppep::governor::CapSchedule budget =
        ppep::governor::CapSchedule::unlimited();
    /** Tier sub-budgets; empty = one implicit unlimited tier. Sessions
     *  without an explicit FleetSessionSpec::tier are assigned
     *  round-robin (session index mod tier count). */
    std::vector<ArbiterTierSpec> tiers;
    /** Suppress cap *raises* smaller than this (lowering always
     *  applies), so near-balanced allocations don't thrash. */
    double hysteresis_w = 0.5;
    /** Use the iterative reactive baseline instead of the single-pass
     *  predictive sweep. */
    bool iterative = false;
    /** Iterative baseline: watts stepped down per over-budget
     *  interval, and the slack required before stepping back up. */
    double step_w = 2.0;
    double raise_margin_w = 8.0;
    /** Optional per-interval hook (soak tests, live dashboards). */
    ArbiterObserver observer;
};

/** End-of-run arbitration rollup (FleetResult::arbiter). */
struct ArbiterReport
{
    /** False when the fleet ran without an arbiter. */
    bool active = false;
    /** "single-pass" or "iterative". */
    std::string policy;
    /** Budget in force at the final interval. */
    double final_budget_w = 0.0;
    std::size_t intervals = 0;
    /** Intervals whose *measured* fleet power exceeded the budget —
     *  latches only on genuine overshoot, never on cap bookkeeping. */
    std::size_t violation_intervals = 0;
    /** Intervals where floors alone exceeded the budget and every cap
     *  was scaled proportionally. */
    std::size_t infeasible_intervals = 0;
    /** Self-check: intervals where the installed caps summed above the
     *  budget (beyond FP tolerance). Always 0. */
    std::size_t cap_sum_violations = 0;
    /** Headroom statistics over finite-budget intervals. */
    double mean_headroom_w = 0.0;
    double min_headroom_w = std::numeric_limits<double>::max();
    /** decide() wall-clock statistics, seconds. */
    double mean_decide_s = 0.0;
    double max_decide_s = 0.0;
    /** Budget-drop events and how fast measured power re-settled
     *  under the lowered budget (the Fig. 7 responsiveness metric). */
    std::size_t budget_drops = 0;
    double mean_settle_intervals = 0.0;
    std::size_t max_settle_intervals = 0;
};

/**
 * Shared machinery of both arbiters: SoA scratch sized once by
 * configure(), per-session gather lanes, and the per-interval
 * statistics (violations, settle, headroom, cap-sum self-check)
 * wrapped around the policy-specific decideImpl().
 */
class FleetArbiter
{
  public:
    /** What the fleet tells the arbiter about one session lane. */
    struct SessionSetup
    {
        /** Weight in the marginal-throughput sweep and in blind /
         *  leftover splits; 0 removes the lane from arbitration. */
        double priority = 1.0;
        /** Never cap this session below this (SLO floor), unless the
         *  floors alone are infeasible. */
        double slo_floor_w = 0.0;
        /** Tier index; nullopt = round-robin over the spec's tiers. */
        std::optional<std::size_t> tier;
        /** VF states this session's exploration covers (its SoA lane
         *  width). */
        std::size_t n_vf = 0;
    };

    virtual ~FleetArbiter() = default;

    /** Size every SoA lane and stat; the only allocating call. */
    void configure(const ArbiterSpec &spec,
                   const std::vector<SessionSetup> &sessions);

    /**
     * Deposit session @p s's per-VF exploration and measured power for
     * this interval into its SoA lane. @p rows may be null / @p n may
     * be 0 (no exploration yet, degraded governor, dead session): the
     * lane then arbitrates blind this interval. Lanes are disjoint, so
     * workers gather their own sessions concurrently.
     */
    void gather(std::size_t s, const model::VfPrediction *rows,
                std::size_t n, double measured_w) PPEP_NONBLOCKING;

    /**
     * Solve the allocation for the *next* interval (caps installed now
     * govern interval @p interval + 1, exactly like a governor's
     * decide) and fold this interval's measured powers into the
     * violation/settle statistics. Serial, deterministic,
     * allocation-free once configured. Clears the gather lanes. Callers
     * claim kArbiterSerialRole (via util::RoleGuard) to assert they sit
     * in the barrier-serial section.
     */
    void decide(std::size_t interval)
        PPEP_NONBLOCKING PPEP_REQUIRES(kArbiterSerialRole);

    /** Cap installed for session @p s by the latest decide(). */
    double capOf(std::size_t s) const PPEP_NONBLOCKING
    {
        return caps_[s];
    }

    /** Watts the latest decide() denied session @p s: its unconstrained
     *  max-throughput demand minus its cap, clamped at 0. */
    double throttledOf(std::size_t s) const PPEP_NONBLOCKING
    {
        return throttled_[s];
    }

    /** Fold one externally timed decide() wall-clock sample in. */
    void noteDecideSeconds(double s) PPEP_NONBLOCKING;

    // Observer-view accessors (valid after decide()).
    const double *capsData() const PPEP_NONBLOCKING { return caps_.data(); }
    const double *measuredData() const PPEP_NONBLOCKING
    {
        return measured_.data();
    }
    std::size_t sessionCount() const PPEP_NONBLOCKING { return n_; }
    double headroomLastW() const PPEP_NONBLOCKING { return headroom_last_; }
    bool lastViolation() const PPEP_NONBLOCKING { return last_violation_; }
    double budgetAt(std::size_t interval) const PPEP_NONBLOCKING
    {
        return budget_.capAt(interval);
    }

    /** "single-pass" or "iterative". */
    virtual const char *policyName() const = 0;

    /** End-of-run rollup. */
    ArbiterReport report() const;

  protected:
    /** Install caps_ for every lane given the budget that will govern
     *  the next interval; also set headroom_last_. */
    virtual void decideImpl(std::size_t interval,
                            double next_budget_w) PPEP_NONBLOCKING = 0;

    /** Size policy-specific scratch off the lane geometry; called at
     *  the end of configure() (the only allocating phase). */
    virtual void onConfigured() {}

    static bool finiteBudget(double b) PPEP_NONBLOCKING
    {
        return b < 0.5 * std::numeric_limits<double>::max();
    }

    // --- configuration (immutable after configure()) -----------------
    ppep::governor::CapSchedule budget_ =
        ppep::governor::CapSchedule::unlimited();
    double hysteresis_w_ = 0.5;
    double step_w_ = 2.0;
    double raise_margin_w_ = 8.0;
    std::size_t n_ = 0;      ///< session lanes
    std::size_t stride_ = 0; ///< widest per-session VF row
    std::vector<double> priority_;
    std::vector<double> floor_;
    std::vector<std::size_t> tier_;      ///< lane -> tier index
    std::vector<double> tier_budget_w_;  ///< per-tier sub-budget
    double priority_total_ = 0.0;

    // --- gather lanes (worker-written, disjoint per session) ---------
    std::vector<double> pred_w_; ///< n_ x stride_ predicted chip power
    std::vector<double> ips_;    ///< n_ x stride_ predicted throughput
    std::vector<std::size_t> n_rows_; ///< rows gathered this interval
    std::vector<double> measured_;    ///< measured power this interval

    // --- decide outputs ----------------------------------------------
    std::vector<double> caps_;
    std::vector<double> prev_cap_;
    std::vector<double> throttled_;
    std::vector<double> desired_; ///< uncapped max-throughput demand
    double headroom_last_ = 0.0;
    bool last_violation_ = false;
    std::size_t infeasible_intervals_ = 0;

  private:
    // --- statistics ---------------------------------------------------
    std::size_t intervals_ = 0;
    std::size_t violation_intervals_ = 0;
    std::size_t cap_sum_violations_ = 0;
    double headroom_sum_w_ = 0.0;
    double headroom_min_w_ = std::numeric_limits<double>::max();
    std::size_t headroom_samples_ = 0;
    double decide_sum_s_ = 0.0;
    double decide_max_s_ = 0.0;
    std::size_t decide_samples_ = 0;
    std::size_t budget_drops_ = 0;
    bool settling_ = false;
    std::size_t settle_count_ = 0;
    double settle_sum_ = 0.0;
    std::size_t settle_events_ = 0;
    std::size_t settle_max_ = 0;
};

/**
 * The single-pass predictive arbiter (the tentpole): per sighted
 * session, build the upper concave hull over its (power, throughput)
 * exploration points — hull steps have non-increasing marginal
 * throughput per watt — then sweep all hulls' steps in one global
 * priority-weighted score order, granting each step while both the
 * global and the session's tier budget allow it. Freeze-on-skip keeps
 * each session's allocation on its hull; leftover headroom is split by
 * priority within tier limits; hysteresis suppresses sub-threshold cap
 * raises. Sessions with no exploration this interval (interval 0,
 * degraded governors, failed builds) fall back to a
 * priority-proportional blind share. When the SLO floors alone exceed
 * the budget, every cap scales proportionally and the interval counts
 * as infeasible.
 */
class BudgetArbiter final : public FleetArbiter
{
  public:
    const char *policyName() const override { return "single-pass"; }

  protected:
    void decideImpl(std::size_t interval,
                    double next_budget_w) PPEP_NONBLOCKING override;
    void onConfigured() override;

  private:
    // Per-session hull scratch (<= stride_ entries each).
    std::vector<std::size_t> row_order_; ///< rows by ascending power
    std::vector<double> hull_p_;
    std::vector<double> hull_i_;
    // Global step table (<= n_ x stride_ entries).
    std::vector<double> step_dp_;
    std::vector<double> step_score_;
    std::vector<std::uint32_t> step_sess_;
    std::vector<std::uint32_t> order_;
    // Per-session sweep state.
    std::vector<double> base_w_;      ///< min-power (or blind) watts
    std::vector<double> alloc_w_;     ///< granted cap before hysteresis
    std::vector<double> chosen_pred_w_; ///< predicted draw at grant
    std::vector<std::uint8_t> frozen_;
    std::vector<std::uint8_t> sighted_;
    // Per-tier sweep state.
    std::vector<double> tier_rem_w_;
    std::vector<double> tier_prio_;
    std::vector<double> tier_give_w_;
};

/**
 * The retained reactive baseline (fleet-scale
 * governor/iterative_capping): start from a priority-proportional
 * split, step every cap down by step_w while the measured fleet power
 * exceeds the budget, step back up only when measured power leaves
 * raise_margin_w of slack. Converges over several intervals after a
 * budget drop — the Fig. 7 comparison point for bench_fleet.
 */
class IterativeFleetArbiter final : public FleetArbiter
{
  public:
    const char *policyName() const override { return "iterative"; }

  protected:
    void decideImpl(std::size_t interval,
                    double next_budget_w) PPEP_NONBLOCKING override;

  private:
    bool initialised_ = false;
};

/** Build the spec's arbiter (allocates; call before the drive). */
std::unique_ptr<FleetArbiter>
makeArbiter(const ArbiterSpec &spec,
            const std::vector<FleetArbiter::SessionSetup> &sessions);

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_ARBITER_HPP
