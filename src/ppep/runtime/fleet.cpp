#include "ppep/runtime/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <memory>
#include <thread>

#include "ppep/model/trainer.hpp"
#include "ppep/runtime/async_telemetry.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::runtime {

namespace {

using clock = std::chrono::steady_clock;

double
secondsSince(clock::time_point t0)
{
    return std::chrono::duration<double>(clock::now() - t0).count();
}

std::vector<const workloads::Combination *>
defaultTrainingCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            out.push_back(&c);
    return out;
}

} // namespace

Fleet::Fleet(FleetSpec spec) : spec_(std::move(spec))
{
    PPEP_ASSERT(!spec_.sessions.empty(), "fleet has no sessions");
    PPEP_ASSERT(spec_.intervals > 0, "fleet intervals must be positive");
    for (std::size_t i = 0; i < spec_.sessions.size(); ++i)
        if (spec_.sessions[i].name.empty())
            spec_.sessions[i].name = "s" + std::to_string(i);
}

void
Fleet::prepare()
{
    if (!entries_.empty())
        return;
    const auto combos = spec_.training_combos ? *spec_.training_combos
                                              : defaultTrainingCombos();

    // Resolve every session's config to a registry entry keyed by the
    // ModelStore platform fingerprint: fingerprint-identical configs
    // share one entry, and each distinct config trains exactly once.
    // The registry is immutable after this loop, so sessions may hold
    // plain const references into it from any worker thread.
    auto acquire = [&](const sim::ChipConfig &cfg) -> std::size_t {
        const std::uint64_t fp = platformFingerprint(cfg);
        for (std::size_t e = 0; e < entries_.size(); ++e)
            if (entries_[e]->fingerprint == fp)
                return e;
        auto entry = std::make_unique<ModelEntry>();
        entry->cfg = cfg;
        entry->fingerprint = fp;
        if (spec_.store) {
            entry->models = spec_.store->trainOrLoad(
                cfg, spec_.training_seed, combos);
        } else {
            model::Trainer trainer(cfg, spec_.training_seed);
            entry->models = trainer.trainAll(combos);
        }
        entry->ppep.emplace(cfg, entry->models.chip, entry->models.pg);
        entries_.push_back(std::move(entry));
        return entries_.size() - 1;
    };

    session_entry_.resize(spec_.sessions.size());
    for (std::size_t i = 0; i < spec_.sessions.size(); ++i) {
        const auto &ss = spec_.sessions[i];
        session_entry_[i] = acquire(ss.cfg ? *ss.cfg : spec_.cfg);
    }
    const std::uint64_t default_fp = platformFingerprint(spec_.cfg);
    for (std::size_t e = 0; e < entries_.size(); ++e)
        if (entries_[e]->fingerprint == default_fp)
            default_entry_ = e;

    // Warm the workload registry's magic statics on this thread too, so
    // workers never contend on first-touch initialisation.
    (void)workloads::allCombinations();
}

const model::TrainedModels &
Fleet::models() const
{
    PPEP_ASSERT(!entries_.empty(), "prepare() has not run");
    if (default_entry_ == static_cast<std::size_t>(-1))
        PPEP_FATAL("no fleet session uses the default config '",
                   spec_.cfg.name, "'; address its entry via ppepOf()");
    return entries_[default_entry_]->models;
}

const model::Ppep &
Fleet::ppep() const
{
    PPEP_ASSERT(!entries_.empty(), "prepare() has not run");
    if (default_entry_ == static_cast<std::size_t>(-1))
        PPEP_FATAL("no fleet session uses the default config '",
                   spec_.cfg.name, "'; address its entry via ppepOf()");
    return *entries_[default_entry_]->ppep;
}

std::size_t
Fleet::modelEntryCount() const
{
    return entries_.size();
}

std::size_t
Fleet::entryIndexOf(std::size_t index) const
{
    PPEP_ASSERT(index < session_entry_.size(), "prepare() has not run");
    return session_entry_[index];
}

const model::Ppep &
Fleet::ppepOf(std::size_t index) const
{
    return *entryOf(index).ppep;
}

const Fleet::ModelEntry &
Fleet::entryOf(std::size_t index) const
{
    PPEP_ASSERT(index < session_entry_.size(), "prepare() has not run");
    return *entries_[session_entry_[index]];
}

FleetSessionResult
Fleet::runOne(std::size_t index)
{
    const FleetSessionSpec &ss = spec_.sessions[index];
    FleetSessionResult res;
    res.name = ss.name;
    res.seed = ss.seed;
    const auto t0 = clock::now();
    try {
        SummarySink summary;
        DigestSink digest;

        std::unique_ptr<CsvSink> csv;
        std::unique_ptr<AsyncTelemetrySink> async_csv;
        if (!spec_.csv_dir.empty()) {
            const auto path =
                std::filesystem::path(spec_.csv_dir) / (ss.name + ".csv");
            csv = std::make_unique<CsvSink>(path.string());
            if (spec_.async_telemetry)
                async_csv =
                    std::make_unique<AsyncTelemetrySink>(*csv);
        }

        const ModelEntry &entry = entryOf(index);
        auto builder = Session::builder(entry.cfg)
                           .seed(ss.seed)
                           .pg(ss.pg)
                           .sharedModels(entry.models, *entry.ppep)
                           .warmup(spec_.warmup)
                           .sink(summary)
                           .sink(digest);
        if (async_csv)
            builder.sink(*async_csv);
        else if (csv)
            builder.sink(*csv);
        if (!ss.jobs.empty())
            builder.jobs(ss.jobs);
        if (!ss.tenants.empty())
            builder.tenants(ss.tenants);
        if (!ss.one_per_cu.empty())
            builder.onePerCu(ss.one_per_cu);
        if (ss.governor)
            builder.governor(ss.governor);
        else if (spec_.default_governor)
            builder.governor(spec_.default_governor);
        if (ss.schedule)
            builder.schedule(*ss.schedule);
        else if (spec_.default_schedule)
            builder.schedule(*spec_.default_schedule);
        if (ss.faults)
            builder.faults(*ss.faults);
        if (ss.fault_seed)
            builder.faultSeed(*ss.fault_seed);
        const std::optional<RecalibrationPolicy> &recal =
            ss.recalibration ? ss.recalibration
                             : spec_.default_recalibration;
        if (recal) {
            builder.recalibration(*recal);
            // The session's lineage journal rides on the fleet store
            // (safe alongside sharedModels: the shared entry wins model
            // acquisition, the store is only consulted for lineage).
            if (spec_.store)
                builder.store(*spec_.store);
        }

        Session session = builder.build();
        res.intervals = session.drive(spec_.intervals);
        res.sink_errors = session.sinkErrors();
        if (async_csv)
            async_csv->close();
        else if (csv)
            csv->close();
        res.summary = summary.summary();
        res.telemetry_digest = digest.digest();
        res.completed = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    } catch (...) {
        res.error = "unknown exception";
    }
    res.wall_s = secondsSince(t0);
    return res;
}

FleetResult
Fleet::run(std::size_t n_threads)
{
    prepare();
    if (!spec_.csv_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec_.csv_dir, ec);
        if (ec)
            PPEP_FATAL("cannot create fleet csv dir '", spec_.csv_dir,
                       "': ", ec.message());
    }

    const std::size_t n_sessions = spec_.sessions.size();
    const std::size_t workers =
        std::clamp<std::size_t>(n_threads, 1, n_sessions);

    FleetResult out;
    out.sessions.resize(n_sessions);
    const auto t0 = clock::now();

    // Workers pull indices from a shared counter; every result lands in
    // its preallocated slot, so no two threads ever touch the same
    // session, result, model, or chip. The shared Ppep/TrainedModels
    // are read-only by the Session contract.
    std::atomic<std::size_t> next{0};
    auto work = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n_sessions)
                return;
            out.sessions[i] = runOne(i);
        }
    };
    if (workers == 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (auto &th : pool)
            th.join();
    }

    out.wall_s = secondsSince(t0);
    double power_sum = 0.0;
    for (const auto &r : out.sessions) {
        if (r.completed) {
            ++out.completed;
            out.total_intervals += r.intervals;
            power_sum += r.summary.mean_power_w;
            out.energy_j += r.summary.energy_j;
        } else {
            ++out.failed;
            PPEP_WARN("fleet session '", r.name,
                      "' failed: ", r.error);
        }
    }
    if (out.completed)
        out.mean_power_w =
            power_sum / static_cast<double>(out.completed);
    if (out.wall_s > 0.0) {
        out.sessions_per_s =
            static_cast<double>(out.completed) / out.wall_s;
        out.intervals_per_s =
            static_cast<double>(out.total_intervals) / out.wall_s;
    }
    return out;
}

} // namespace ppep::runtime
