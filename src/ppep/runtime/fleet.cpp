#include "ppep/runtime/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <filesystem>
#include <memory>
#include <thread>

#include "ppep/model/trainer.hpp"
#include "ppep/runtime/async_telemetry.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::runtime {

namespace {

using clock = std::chrono::steady_clock;

double
secondsSince(clock::time_point t0)
{
    return std::chrono::duration<double>(clock::now() - t0).count();
}

std::vector<const workloads::Combination *>
defaultTrainingCombos()
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            out.push_back(&c);
    return out;
}

} // namespace

Fleet::Fleet(FleetSpec spec) : spec_(std::move(spec))
{
    PPEP_ASSERT(!spec_.sessions.empty(), "fleet has no sessions");
    PPEP_ASSERT(spec_.intervals > 0, "fleet intervals must be positive");
    if (!spec_.replay_path.empty() && spec_.batched)
        PPEP_FATAL("a replayed fleet has no chips to batch-step; "
                   "use batched or replay_path, not both");
    if (!spec_.replay_path.empty() && !spec_.record_path.empty())
        PPEP_FATAL("a fleet cannot record and replay at once");
    if (spec_.arbiter && spec_.batched)
        PPEP_FATAL("the arbitrated drive and the batched SIMD drive "
                   "are separate locksteps; use arbiter or batched, "
                   "not both");
    for (std::size_t i = 0; i < spec_.sessions.size(); ++i)
        if (spec_.sessions[i].name.empty())
            spec_.sessions[i].name = "s" + std::to_string(i);
}

void
Fleet::prepare()
{
    if (!entries_.empty())
        return;
    const auto combos = spec_.training_combos ? *spec_.training_combos
                                              : defaultTrainingCombos();

    // Resolve every session's config to a registry entry keyed by the
    // ModelStore platform fingerprint: fingerprint-identical configs
    // share one entry, and each distinct config trains exactly once.
    // The registry is immutable after this loop, so sessions may hold
    // plain const references into it from any worker thread.
    auto acquire = [&](const sim::ChipConfig &cfg) -> std::size_t {
        const std::uint64_t fp = platformFingerprint(cfg);
        for (std::size_t e = 0; e < entries_.size(); ++e)
            if (entries_[e]->fingerprint == fp)
                return e;
        auto entry = std::make_unique<ModelEntry>();
        entry->cfg = cfg;
        entry->fingerprint = fp;
        if (spec_.store) {
            entry->models = spec_.store->trainOrLoad(
                cfg, spec_.training_seed, combos);
        } else {
            model::Trainer trainer(cfg, spec_.training_seed);
            entry->models = trainer.trainAll(combos);
        }
        entry->ppep.emplace(cfg, entry->models.chip, entry->models.pg);
        entries_.push_back(std::move(entry));
        return entries_.size() - 1;
    };

    session_entry_.resize(spec_.sessions.size());
    for (std::size_t i = 0; i < spec_.sessions.size(); ++i) {
        const auto &ss = spec_.sessions[i];
        session_entry_[i] = acquire(ss.cfg ? *ss.cfg : spec_.cfg);
    }
    const std::uint64_t default_fp = platformFingerprint(spec_.cfg);
    for (std::size_t e = 0; e < entries_.size(); ++e)
        if (entries_[e]->fingerprint == default_fp)
            default_entry_ = e;

    // Warm the workload registry's magic statics on this thread too, so
    // workers never contend on first-touch initialisation.
    (void)workloads::allCombinations();
}

const model::TrainedModels &
Fleet::models() const
{
    PPEP_ASSERT(!entries_.empty(), "prepare() has not run");
    if (default_entry_ == static_cast<std::size_t>(-1))
        PPEP_FATAL("no fleet session uses the default config '",
                   spec_.cfg.name, "'; address its entry via ppepOf()");
    return entries_[default_entry_]->models;
}

const model::Ppep &
Fleet::ppep() const
{
    PPEP_ASSERT(!entries_.empty(), "prepare() has not run");
    if (default_entry_ == static_cast<std::size_t>(-1))
        PPEP_FATAL("no fleet session uses the default config '",
                   spec_.cfg.name, "'; address its entry via ppepOf()");
    return *entries_[default_entry_]->ppep;
}

std::size_t
Fleet::modelEntryCount() const
{
    return entries_.size();
}

std::size_t
Fleet::entryIndexOf(std::size_t index) const
{
    PPEP_ASSERT(index < session_entry_.size(), "prepare() has not run");
    return session_entry_[index];
}

const model::Ppep &
Fleet::ppepOf(std::size_t index) const
{
    return *entryOf(index).ppep;
}

const Fleet::ModelEntry &
Fleet::entryOf(std::size_t index) const
{
    PPEP_ASSERT(index < session_entry_.size(), "prepare() has not run");
    return *entries_[session_entry_[index]];
}

/** Everything one fleet session needs alive while it is driven. */
struct Fleet::Harness
{
    FleetSessionResult res;
    SummarySink summary;
    DigestSink digest;
    std::unique_ptr<CsvSink> csv;
    std::unique_ptr<AsyncTelemetrySink> async_csv;
    std::optional<trace::ReplaySource> replay;
    std::optional<Session> session;
};

void
Fleet::buildHarness(std::size_t index, Harness &h)
{
    const FleetSessionSpec &ss = spec_.sessions[index];
    h.res.name = ss.name;
    h.res.seed = ss.seed;

    if (!spec_.csv_dir.empty()) {
        const auto path =
            std::filesystem::path(spec_.csv_dir) / (ss.name + ".csv");
        h.csv = std::make_unique<CsvSink>(path.string());
        if (spec_.async_telemetry)
            h.async_csv = std::make_unique<AsyncTelemetrySink>(*h.csv);
    }

    const ModelEntry &entry = entryOf(index);
    const std::optional<RecalibrationPolicy> &recal =
        ss.recalibration ? ss.recalibration
                         : spec_.default_recalibration;

    auto builder = Session::builder(entry.cfg)
                       .seed(ss.seed)
                       .pg(ss.pg)
                       .sharedModels(entry.models, *entry.ppep)
                       .warmup(spec_.warmup)
                       .sink(h.summary)
                       .sink(h.digest);
    if (h.async_csv)
        builder.sink(*h.async_csv);
    else if (h.csv)
        builder.sink(*h.csv);
    if (!spec_.record_path.empty()) {
        // A hardened session's frames carry the health block: the
        // replayed run must reconstruct the same SampleHealth the
        // digest hashed live.
        const bool with_health = ss.faults.has_value() ||
                                 recal.has_value();
        recorders_[index] = std::make_unique<RecorderSink>(
            ss.name, entry.fingerprint, entry.cfg.coreCount(),
            entry.cfg.n_cus, with_health);
        builder.sink(*recorders_[index]);
    }
    if (!spec_.replay_path.empty()) {
        const trace::ReplayFile &file = *replay_file_;
        std::size_t stream = file.streamCount();
        for (std::size_t s = 0; s < file.streamCount(); ++s)
            if (file.stream(s).name == ss.name)
                stream = s;
        if (stream == file.streamCount())
            PPEP_FATAL("replay file '", file.path(),
                       "' has no stream for session '", ss.name, "'");
        h.replay.emplace(file, stream, entry.fingerprint);
        builder.replay(*h.replay);
    }
    if (!ss.jobs.empty())
        builder.jobs(ss.jobs);
    if (!ss.tenants.empty())
        builder.tenants(ss.tenants);
    if (!ss.one_per_cu.empty())
        builder.onePerCu(ss.one_per_cu);
    if (ss.governor)
        builder.governor(ss.governor);
    else if (spec_.default_governor)
        builder.governor(spec_.default_governor);
    if (ss.schedule)
        builder.schedule(*ss.schedule);
    else if (spec_.default_schedule)
        builder.schedule(*spec_.default_schedule);
    if (ss.faults)
        builder.faults(*ss.faults);
    if (ss.fault_seed)
        builder.faultSeed(*ss.fault_seed);
    if (recal) {
        builder.recalibration(*recal);
        // The session's lineage journal rides on the fleet store
        // (safe alongside sharedModels: the shared entry wins model
        // acquisition, the store is only consulted for lineage).
        if (spec_.store)
            builder.store(*spec_.store);
    }

    h.session.emplace(builder.build());
}

void
Fleet::finishHarness(Harness &h)
{
    h.res.sink_errors = h.session->sinkErrors();
    if (h.async_csv)
        h.async_csv->close();
    else if (h.csv)
        h.csv->close();
    h.res.summary = h.summary.summary();
    h.res.telemetry_digest = h.digest.digest();
    h.res.completed = true;
}

FleetSessionResult
Fleet::runOne(std::size_t index)
{
    const auto t0 = clock::now();
    Harness h;
    try {
        buildHarness(index, h);
        h.res.intervals = h.session->drive(spec_.intervals);
        finishHarness(h);
    } catch (const std::exception &e) {
        h.res.error = e.what();
    } catch (...) {
        h.res.error = "unknown exception";
    }
    h.res.wall_s = secondsSince(t0);
    return h.res;
}

FleetResult
Fleet::run(std::size_t n_threads)
{
    prepare();
    if (!spec_.csv_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(spec_.csv_dir, ec);
        if (ec)
            PPEP_FATAL("cannot create fleet csv dir '", spec_.csv_dir,
                       "': ", ec.message());
    }
    const std::size_t n_sessions = spec_.sessions.size();
    // Slots are written by whichever worker builds the session; the
    // vector itself never reallocates under the workers.
    recorders_.clear();
    recorders_.resize(n_sessions);
    if (!spec_.replay_path.empty() && !replay_file_)
        replay_file_ =
            std::make_unique<trace::ReplayFile>(spec_.replay_path);

    if (spec_.batched)
        return runBatched();
    if (spec_.arbiter)
        return runArbitrated(n_threads);

    const std::size_t workers =
        std::clamp<std::size_t>(n_threads, 1, n_sessions);

    FleetResult out;
    out.sessions.resize(n_sessions);
    const auto t0 = clock::now();

    // Workers pull indices from a shared counter; every result lands in
    // its preallocated slot, so no two threads ever touch the same
    // session, result, model, or chip. The shared Ppep/TrainedModels
    // are read-only by the Session contract.
    std::atomic<std::size_t> next{0};
    auto work = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n_sessions)
                return;
            out.sessions[i] = runOne(i);
        }
    };
    if (workers == 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (auto &th : pool)
            th.join();
    }

    finalizeRun(out, secondsSince(t0));
    return out;
}

FleetResult
Fleet::runBatched()
{
    const std::size_t n_sessions = spec_.sessions.size();
    FleetResult out;
    out.sessions.resize(n_sessions);
    const auto t0 = clock::now();

    // Build every harness on this thread, attach its chip to the batch.
    // A session that fails to build is recorded and left out of the
    // lockstep; its lane is never allocated.
    std::vector<std::unique_ptr<Harness>> harnesses(n_sessions);
    std::vector<std::optional<Session::BatchDriver>> drivers(n_sessions);
    std::vector<clock::time_point> started(n_sessions);
    sim::ChipBatch batch;
    constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);
    std::vector<std::size_t> lane_of(n_sessions, kNoLane);
    for (std::size_t i = 0; i < n_sessions; ++i) {
        started[i] = clock::now();
        harnesses[i] = std::make_unique<Harness>();
        try {
            buildHarness(i, *harnesses[i]);
            drivers[i].emplace(*harnesses[i]->session);
            lane_of[i] = batch.attach(drivers[i]->chip());
        } catch (const std::exception &e) {
            harnesses[i]->res.error = e.what();
            drivers[i].reset();
        } catch (...) {
            harnesses[i]->res.error = "unknown exception";
            drivers[i].reset();
        }
    }

    // The lockstep: open the interval on every session, step all chips
    // tick-locked through the batch, fan each tick result back, close.
    // Fault-jittered sessions may run short intervals; their lanes go
    // inactive for the tail ticks, exactly as if they had stopped
    // stepping their own chip.
    std::vector<std::size_t> ticks(n_sessions, 0);
    for (std::size_t interval = 0; interval < spec_.intervals;
         ++interval) {
        std::size_t max_ticks = 0;
        for (std::size_t i = 0; i < n_sessions; ++i) {
            if (!drivers[i])
                continue;
            ticks[i] = drivers[i]->beginInterval();
            batch.setActive(lane_of[i], true);
            max_ticks = std::max(max_ticks, ticks[i]);
        }
        for (std::size_t t = 0; t < max_ticks; ++t) {
            for (std::size_t i = 0; i < n_sessions; ++i)
                if (drivers[i] && ticks[i] == t)
                    batch.setActive(lane_of[i], false);
            batch.step();
            for (std::size_t i = 0; i < n_sessions; ++i)
                if (drivers[i] && t < ticks[i])
                    drivers[i]->consumeTick(batch.result(lane_of[i]));
        }
        for (std::size_t i = 0; i < n_sessions; ++i)
            if (drivers[i])
                drivers[i]->endInterval();
    }

    for (std::size_t i = 0; i < n_sessions; ++i) {
        Harness &h = *harnesses[i];
        if (drivers[i]) {
            drivers[i]->finish();
            h.res.intervals = spec_.intervals;
            finishHarness(h);
        }
        h.res.wall_s = secondsSince(started[i]);
        out.sessions[i] = std::move(h.res);
    }

    finalizeRun(out, secondsSince(t0));
    return out;
}

FleetResult
Fleet::runArbitrated(std::size_t n_threads)
{
    const ArbiterSpec &aspec = *spec_.arbiter;
    const std::size_t n_sessions = spec_.sessions.size();
    FleetResult out;
    out.sessions.resize(n_sessions);
    const auto t0 = clock::now();

    // Build every harness on this thread; a session that fails to
    // build is recorded, excluded from the lockstep, and enters the
    // arbiter with priority 0 so it draws no budget.
    std::vector<std::unique_ptr<Harness>> harnesses(n_sessions);
    std::vector<std::optional<Session::LockstepDriver>> drivers(
        n_sessions);
    std::vector<clock::time_point> started(n_sessions);
    for (std::size_t i = 0; i < n_sessions; ++i) {
        started[i] = clock::now();
        harnesses[i] = std::make_unique<Harness>();
        try {
            buildHarness(i, *harnesses[i]);
            drivers[i].emplace(*harnesses[i]->session);
        } catch (const std::exception &e) {
            harnesses[i]->res.error = e.what();
            drivers[i].reset();
        } catch (...) {
            harnesses[i]->res.error = "unknown exception";
            drivers[i].reset();
        }
    }

    std::vector<FleetArbiter::SessionSetup> setups(n_sessions);
    std::vector<std::size_t> live;
    live.reserve(n_sessions);
    for (std::size_t i = 0; i < n_sessions; ++i) {
        const FleetSessionSpec &ss = spec_.sessions[i];
        auto &su = setups[i];
        if (drivers[i]) {
            su.priority = ss.priority;
            su.slo_floor_w = ss.slo_floor_w;
            live.push_back(i);
        } else {
            su.priority = 0.0;
            su.slo_floor_w = 0.0;
        }
        su.tier = ss.tier;
        const sim::ChipConfig &cfg = ss.cfg ? *ss.cfg : spec_.cfg;
        su.n_vf = cfg.vf_table.size();
    }
    const std::unique_ptr<FleetArbiter> arbiter =
        makeArbiter(aspec, setups);

    std::vector<double> cap_sum_w(n_sessions, 0.0);
    std::vector<double> throttled_sum_w(n_sessions, 0.0);

    const std::size_t workers = live.empty()
                                    ? 1
                                    : std::clamp<std::size_t>(
                                          n_threads, 1, live.size());

    // The barrier completion step runs serially (on whichever worker
    // arrived last) once every worker has collected and gathered its
    // slice: the arbiter's decision is a pure function of the gathered
    // SoA table, so fleet telemetry is bit-identical at any worker
    // count. Observers run here too — outside the sessions' annotated
    // regions, like the telemetry hand-off.
    std::size_t interval = 0;
    auto arbitrate = [&]() noexcept {
        // Claim the barrier-serial role: exactly one thread (the last
        // to arrive) runs this completion step, which is what lets
        // decide() stay lock-free yet race-free.
        util::RoleGuard serial(kArbiterSerialRole);
        const auto d0 = clock::now();
        arbiter->decide(interval);
        arbiter->noteDecideSeconds(secondsSince(d0));
        for (std::size_t i = 0; i < n_sessions; ++i) {
            cap_sum_w[i] += arbiter->capOf(i);
            throttled_sum_w[i] += arbiter->throttledOf(i);
        }
        if (aspec.observer) {
            ArbiterIntervalView view;
            view.interval = interval;
            view.budget_w = arbiter->budgetAt(interval);
            view.next_budget_w = arbiter->budgetAt(interval + 1);
            view.caps = arbiter->capsData();
            view.measured = arbiter->measuredData();
            view.n_sessions = n_sessions;
            view.headroom_w = arbiter->headroomLastW();
            view.violation = arbiter->lastViolation();
            aspec.observer(view);
        }
        ++interval;
    };

    if (!live.empty()) {
        std::barrier bar(static_cast<std::ptrdiff_t>(workers),
                         arbitrate);
        auto work = [&](std::size_t w) {
            // Contiguous slice of the live sessions for this worker.
            const std::size_t lo = live.size() * w / workers;
            const std::size_t hi = live.size() * (w + 1) / workers;
            for (std::size_t iv = 0; iv < spec_.intervals; ++iv) {
                for (std::size_t k = lo; k < hi; ++k) {
                    const std::size_t i = live[k];
                    auto &d = *drivers[i];
                    d.collectPhase();
                    const auto *ex = d.exploration();
                    arbiter->gather(
                        i, ex ? ex->data() : nullptr,
                        ex ? ex->size() : 0, d.measuredPowerW());
                }
                bar.arrive_and_wait();
                for (std::size_t k = lo; k < hi; ++k) {
                    const std::size_t i = live[k];
                    drivers[i]->setCapLimitW(arbiter->capOf(i));
                    drivers[i]->decidePhase();
                }
            }
        };
        if (workers == 1) {
            work(0);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w)
                pool.emplace_back(work, w);
            for (auto &th : pool)
                th.join();
        }
    }

    const double intervals_d =
        static_cast<double>(std::max<std::size_t>(1, spec_.intervals));
    for (std::size_t i = 0; i < n_sessions; ++i) {
        Harness &h = *harnesses[i];
        if (drivers[i]) {
            drivers[i]->finish();
            h.res.intervals = spec_.intervals;
            finishHarness(h);
            h.res.mean_cap_w = cap_sum_w[i] / intervals_d;
            h.res.final_cap_w = arbiter->capOf(i);
            h.res.mean_throttled_w = throttled_sum_w[i] / intervals_d;
            // Bill throttling to tenants in proportion to their
            // attributed power draw — the tenant that pulled the watts
            // carries the denial.
            const auto &sum = h.res.summary;
            if (!sum.tenant_names.empty()) {
                double total_w = 0.0;
                for (double w : sum.tenant_mean_power_w)
                    total_w += w;
                h.res.tenant_throttled_w.resize(
                    sum.tenant_names.size(), 0.0);
                for (std::size_t t = 0;
                     t < sum.tenant_names.size(); ++t)
                    h.res.tenant_throttled_w[t] =
                        total_w > 0.0
                            ? h.res.mean_throttled_w *
                                  sum.tenant_mean_power_w[t] / total_w
                            : 0.0;
            }
        }
        h.res.wall_s = secondsSince(started[i]);
        out.sessions[i] = std::move(h.res);
    }

    out.arbiter = arbiter->report();
    finalizeRun(out, secondsSince(t0));
    return out;
}

void
Fleet::finalizeRun(FleetResult &out, double wall_s)
{
    out.wall_s = wall_s;
    double power_sum = 0.0;
    for (const auto &r : out.sessions) {
        if (r.completed) {
            ++out.completed;
            out.total_intervals += r.intervals;
            power_sum += r.summary.mean_power_w;
            out.energy_j += r.summary.energy_j;
        } else {
            ++out.failed;
            PPEP_WARN("fleet session '", r.name,
                      "' failed: ", r.error);
        }
    }
    if (out.completed)
        out.mean_power_w =
            power_sum / static_cast<double>(out.completed);
    if (out.wall_s > 0.0) {
        out.sessions_per_s =
            static_cast<double>(out.completed) / out.wall_s;
        out.intervals_per_s =
            static_cast<double>(out.total_intervals) / out.wall_s;
    }
    if (!spec_.record_path.empty()) {
        std::vector<const trace::ReplayStreamBuilder *> streams;
        streams.reserve(recorders_.size());
        for (const auto &r : recorders_)
            if (r)
                streams.push_back(&r->stream());
        trace::writeReplayFile(spec_.record_path, streams);
        recorders_.clear();
    }
}

} // namespace ppep::runtime
