#include "ppep/runtime/health.hpp"

#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

HealthMonitor::HealthMonitor(HealthPolicy policy) : policy_(policy)
{
    PPEP_ASSERT(policy_.ewma_alpha > 0.0 && policy_.ewma_alpha <= 1.0,
                "ewma_alpha in (0, 1]");
    PPEP_ASSERT(policy_.clean_divergence_w <=
                    policy_.demote_divergence_w,
                "clean threshold must not exceed demote threshold");
    PPEP_ASSERT(policy_.repromote_clean >= 1,
                "re-promotion needs at least one clean interval");
}

void
HealthMonitor::observe(const SampleHealth &health, double predicted_w,
                       double measured_w) PPEP_NONBLOCKING
{
    ++intervals_;
    // Divergence only updates when the governor actually predicted —
    // in degraded mode (or under a non-predicting policy) the EWMA
    // holds its last value rather than decaying on missing data.
    if (std::isfinite(predicted_w) && std::isfinite(measured_w)) {
        const double err = std::abs(predicted_w - measured_w);
        divergence_ewma_ =
            policy_.ewma_alpha * err +
            (1.0 - policy_.ewma_alpha) * divergence_ewma_;
    }

    const std::size_t faults = health.faultEvents();
    const bool clean = faults == 0 &&
                       divergence_ewma_ <= policy_.clean_divergence_w;
    clean_streak_ = clean ? clean_streak_ + 1 : 0;

    if (!degraded_) {
        if (faults >= policy_.demote_fault_events ||
            divergence_ewma_ > policy_.demote_divergence_w) {
            degraded_ = true;
            clean_streak_ = 0;
            ++demotions_;
        }
    } else if (clean_streak_ >= policy_.repromote_clean) {
        degraded_ = false;
        clean_streak_ = 0;
        ++repromotions_;
    }
}

} // namespace ppep::runtime
