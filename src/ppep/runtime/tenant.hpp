/**
 * @file
 * Multi-tenant power and energy attribution on one simulated chip.
 *
 * A tenant is a named set of cores (and the jobs pinned to them) that
 * time-shares a chip with other tenants. Each interval, the chip's
 * predicted power is split across tenants using the models the paper
 * already provides: every busy core is charged its own Eq. 3 dynamic
 * power (as model/per_core_power does), and the chip idle power — the
 * Fig. 4 decomposition behind Eqs. 7-8 — is divided by *ownership*
 * rather than by busyness, so an all-idle tenant is still charged its
 * pg-idle share of the base/NB floor while gated CUs it owns cost it
 * nothing. The split mirrors PgIdleModel::chipIdleMixed() term for
 * term, so per-tenant totals plus the unattributed remainder reconcile
 * with the chip total to floating-point round-off (the invariant the
 * tenant soak test asserts at 1e-9 W).
 *
 * The warm path is allocation-free: TenantAttribution is sized once by
 * makeAttribution() and attributeInto() only writes through it.
 */

#ifndef PPEP_RUNTIME_TENANT_HPP
#define PPEP_RUNTIME_TENANT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "ppep/model/dynamic_power_model.hpp"
#include "ppep/model/pg_idle_model.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::runtime {

/** One workload pinned to one of a tenant's cores. */
struct TenantJob
{
    /** Core the job runs on; must be owned by the tenant. */
    std::size_t core = 0;
    /** Workload program name (workloads::suite). */
    std::string program;
    /** Restart the program when it finishes. */
    bool looping = true;
};

/** A named set of cores time-sharing the chip. */
struct TenantSpec
{
    std::string name;
    /** Cores this tenant owns; disjoint across tenants, in range. */
    std::vector<std::size_t> cores;
    /** Jobs to launch on the tenant's cores. */
    std::vector<TenantJob> jobs;
};

/**
 * One interval's attribution result + reusable scratch. Size with
 * TenantAttributor::makeAttribution() once; attributeInto() never
 * grows it.
 */
struct TenantAttribution
{
    /** Eq. 3 dynamic power summed over each tenant's busy cores, W. */
    std::vector<double> dynamic_w;
    /** Ownership share of the Fig. 4 idle decomposition, W. */
    std::vector<double> idle_w;
    /** dynamic_w + idle_w, per tenant. */
    std::vector<double> total_w;
    /** Power on cores no tenant owns (dynamic + idle shares), W. */
    double unattributed_w = 0.0;
    /** Independently computed chip total: Eq. 3 sum + chipIdleMixed. */
    double chip_total_w = 0.0;

    /** Scratch: busy cores per CU (Eq. 7/8 topology). */
    std::vector<std::size_t> busy_per_cu;
};

/**
 * Splits one interval's predicted chip power across tenants.
 *
 * Requires a trained Eq. 3 dynamic model and a trained Fig. 4 PG idle
 * decomposition; platforms without power gating (Phenom II) have no
 * trained PgIdleModel and are rejected at construction.
 */
class TenantAttributor
{
  public:
    /**
     * @param cfg   platform description (topology, VF table).
     * @param dyn   trained Eq. 3 model; must outlive the attributor.
     * @param pg    trained Eq. 7/8 decomposition; must outlive it.
     * @param specs tenant definitions; validated (non-empty disjoint
     *              in-range core sets, jobs on owned cores).
     */
    TenantAttributor(const sim::ChipConfig &cfg,
                     const model::DynamicPowerModel &dyn,
                     const model::PgIdleModel &pg,
                     std::vector<TenantSpec> specs);

    /** A correctly sized result/scratch block for attributeInto(). */
    TenantAttribution makeAttribution() const;

    /**
     * Attribute one interval. @p out must come from makeAttribution().
     *
     * Idle split, mirroring chipIdleMixed(): pBaseAvg is divided
     * equally among all cores; pNbAvg likewise when the NB is awake
     * (any core busy, or PG off); each counted CU's Pidle(CU) at its
     * own VF is divided equally among that CU's cores. A CU counts
     * when it has a busy core or PG is off — a gated CU charges its
     * owners nothing, which is exactly the Eq. 7 boundary condition.
     */
    void attributeInto(const trace::IntervalRecord &rec, bool pg_enabled,
                       TenantAttribution &out) const PPEP_NONBLOCKING;

    const std::vector<TenantSpec> &specs() const { return specs_; }

    std::size_t tenantCount() const { return specs_.size(); }

    /** Owning tenant index for a core, or -1 when unowned. */
    std::ptrdiff_t ownerOf(std::size_t core) const
    {
        return owner_[core];
    }

  private:
    const sim::ChipConfig &cfg_;
    const model::DynamicPowerModel &dyn_;
    const model::PgIdleModel &pg_;
    std::vector<TenantSpec> specs_;
    std::vector<std::ptrdiff_t> owner_; ///< core -> tenant index or -1
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_TENANT_HPP
