#include "ppep/runtime/recorder.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

RecorderSink::RecorderSink(std::string name, std::uint64_t fingerprint,
                           std::size_t n_cores, std::size_t n_cus,
                           bool with_health)
    : builder_(std::move(name), fingerprint, n_cores, n_cus, with_health)
{
}

void
RecorderSink::onInterval(const IntervalTelemetry &t)
{
    PPEP_ASSERT(t.rec != nullptr, "telemetry carries no record");
    if (builder_.withHealth()) {
        // A hardened session always attaches its Sampler's health; a
        // recorder configured with_health on a plain session is a
        // harness bug, not a data error.
        PPEP_ASSERT(t.health != nullptr,
                    "with_health recorder saw an interval without "
                    "health");
        const SampleHealth &h = *t.health;
        trace::ReplayHealth rh;
        rh.msr_retries = h.msr_retries;
        rh.msr_failed_cores = h.msr_failed_cores;
        rh.pmc_rejected_cores = h.pmc_rejected_cores;
        rh.substituted_cores = h.substituted_cores;
        rh.zeroed_cores = h.zeroed_cores;
        rh.sensor_rejects = h.sensor_rejects;
        rh.diode_rejects = h.diode_rejects;
        rh.ticks = h.ticks;
        rh.timing_overrun = h.timing_overrun;
        rh.pmc_wrap_events = h.pmc_wrap_events;
        rh.total_fault_events = h.total_fault_events;
        builder_.addFrame(t.time_s, t.cap_w, *t.rec, &rh);
    } else {
        builder_.addFrame(t.time_s, t.cap_w, *t.rec, nullptr);
    }
}

} // namespace ppep::runtime
