#include "ppep/runtime/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

Sampler::Sampler(sim::Chip &chip, SamplerPolicy policy)
    : chip_(chip), policy_(policy),
      last_good_pmc_(chip.config().coreCount(), sim::EventVector{}),
      staleness_(chip.config().coreCount(), 0),
      last_good_power_w_(0.0),
      last_good_temp_k_(chip.config().thermal.ambient_k)
{
    PPEP_ASSERT(policy_.staleness_budget >= 1, "staleness budget >= 1");
    PPEP_ASSERT(policy_.min_temp_k < policy_.max_temp_k &&
                    policy_.min_power_w < policy_.max_power_w &&
                    policy_.min_cpi < policy_.max_cpi,
                "sampler plausibility windows must be non-empty");
}

bool
Sampler::countsPlausible(const sim::EventVector &counts,
                         double duration_s) const PPEP_NONBLOCKING
{
    double max_freq_ghz = 0.0;
    for (std::size_t s = 0; s < chip_.stateCount(); ++s)
        max_freq_ghz = std::max(max_freq_ghz,
                                chip_.stateOf(s).freq_ghz);
    // The most cycles a core can physically accumulate, with headroom
    // for multiplexing extrapolation overshoot.
    const double max_cycles = max_freq_ghz * 1e9 * duration_s * 1.25;
    const double ceiling = max_cycles * policy_.max_events_per_cycle;
    for (double v : counts) {
        if (!std::isfinite(v) || v < 0.0 || v > ceiling)
            return false;
    }
    const double inst =
        counts[sim::eventIndex(sim::Event::RetiredInst)];
    const double cycles =
        counts[sim::eventIndex(sim::Event::ClocksNotHalted)];
    if (cycles > max_cycles)
        return false;
    if (inst > 0.0) {
        // Wraparound makes CPI absurdly small, saturation absurdly
        // large; either way the set is corrupt.
        const double cpi = cycles / inst;
        if (cpi < policy_.min_cpi || cpi > policy_.max_cpi)
            return false;
    }
    return true;
}

trace::IntervalRecord
Sampler::collectInterval()
{
    trace::IntervalRecord rec;
    collectIntervalInto(rec);
    return rec;
}

void
Sampler::collectIntervalInto(trace::IntervalRecord &rec) PPEP_NONBLOCKING
{
    // The fused scalar path: identical to what a batched driver does
    // with the three calls, with the chip stepped in between.
    const std::size_t n_ticks = beginIntervalInto(rec);
    for (std::size_t t = 0; t < n_ticks; ++t) {
        chip_.stepInto(tick_);
        consumeTick(rec, tick_);
    }
    finishIntervalInto(rec);
}

std::size_t
Sampler::beginIntervalInto(trace::IntervalRecord &rec) PPEP_NONBLOCKING
{
    const auto &cfg = chip_.config();
    const std::size_t n_cores = cfg.coreCount();
    const std::size_t nominal = cfg.ticks_per_interval;
    sim::FaultInjector *injector = chip_.faultInjector();

    // Carry the cumulative tallies across the per-interval reset.
    const std::size_t carried_total =
        health_.total_fault_events + health_.faultEvents();
    health_ = SampleHealth{};
    health_.total_fault_events = carried_total;

    // The daemon's alarm may fire early or late; measure what actually
    // elapsed rather than assuming the nominal interval.
    const std::size_t n_ticks =
        injector ? injector->jitterTicks(nominal) : nominal;
    health_.ticks = n_ticks;
    health_.timing_overrun = n_ticks != nominal;
    interval_ticks_ = n_ticks;

    rec.duration_s = cfg.tick_s * static_cast<double>(n_ticks);
    rec.sensor_power_w = 0.0;
    rec.diode_temp_k = 0.0;
    rec.true_power_w = 0.0;
    rec.true_dynamic_w = 0.0;
    rec.true_idle_w = 0.0;
    rec.true_nb_power_w = 0.0;
    rec.true_temp_k = 0.0;
    rec.nb_utilization = 0.0;
    rec.busy_cores = 0;
    // rt-escape: warm-up growth of the caller-owned record and member
    // scratch; no-ops once sized (test_zero_alloc).
    PPEP_RT_WARMUP_BEGIN
    rec.oracle.assign(n_cores, sim::EventVector{});
    rec.cu_vf.resize(cfg.n_cus);
    retired_.assign(n_cores, 0.0);
    PPEP_RT_WARMUP_END
    for (std::size_t cu = 0; cu < cfg.n_cus; ++cu)
        rec.cu_vf[cu] = chip_.cuVf(cu);
    rec.nb_vf = chip_.nbVf();

    sensor_sum_ = 0.0;
    diode_sum_ = 0.0;
    sensor_ok_ = 0;
    diode_ok_ = 0;
    return n_ticks;
}

void
Sampler::consumeTick(trace::IntervalRecord &rec,
                     const sim::TickResult &tick) PPEP_NONBLOCKING
{
    const std::size_t n_cores = chip_.config().coreCount();
    // Per-sample sanity guards: reject NaN/Inf and physically
    // impossible readings instead of folding them into the mean.
    if (std::isfinite(tick.sensor_power_w) &&
        tick.sensor_power_w >= policy_.min_power_w &&
        tick.sensor_power_w <= policy_.max_power_w) {
        sensor_sum_ += tick.sensor_power_w;
        ++sensor_ok_;
    } else {
        ++health_.sensor_rejects;
    }
    if (std::isfinite(tick.diode_temp_k) &&
        tick.diode_temp_k >= policy_.min_temp_k &&
        tick.diode_temp_k <= policy_.max_temp_k) {
        diode_sum_ += tick.diode_temp_k;
        ++diode_ok_;
    } else {
        ++health_.diode_rejects;
    }
    rec.true_power_w += tick.truth.power.total;
    rec.true_dynamic_w += tick.truth.power.coreDynamicTotal() +
                          tick.truth.power.nb_dynamic;
    rec.true_idle_w += tick.truth.power.base +
                       tick.truth.power.housekeeping +
                       tick.truth.power.nb_static +
                       tick.truth.power.cuIdleTotal();
    rec.true_nb_power_w += tick.truth.power.nb_static +
                           tick.truth.power.nb_dynamic;
    rec.true_temp_k += tick.truth.temperature_k;
    rec.nb_utilization += tick.truth.nb_utilization;
    for (std::size_t c = 0; c < n_cores; ++c) {
        for (std::size_t e = 0; e < sim::kNumEvents; ++e)
            rec.oracle[c][e] += tick.truth.core_events[c][e];
        retired_[c] += tick.truth.activity[c].instructions;
    }
}

void
Sampler::finishIntervalInto(trace::IntervalRecord &rec) PPEP_NONBLOCKING
{
    const std::size_t n_cores = chip_.config().coreCount();
    sim::FaultInjector *injector = chip_.faultInjector();
    const std::size_t n_ticks = interval_ticks_;
    const double sensor_sum = sensor_sum_;
    const double diode_sum = diode_sum_;
    const std::size_t sensor_ok = sensor_ok_;
    const std::size_t diode_ok = diode_ok_;

    const double inv = 1.0 / static_cast<double>(n_ticks);
    rec.true_power_w *= inv;
    rec.true_dynamic_w *= inv;
    rec.true_idle_w *= inv;
    rec.true_nb_power_w *= inv;
    rec.true_temp_k *= inv;
    rec.nb_utilization *= inv;

    // Interval means over the *accepted* samples; a fully-rejected
    // stream substitutes the last good interval's mean. When every
    // sample was accepted the arithmetic matches the Collector's
    // sum * (1/n) bit for bit.
    if (sensor_ok == n_ticks) {
        rec.sensor_power_w = sensor_sum * inv;
        last_good_power_w_ = rec.sensor_power_w;
    } else if (sensor_ok > 0) {
        rec.sensor_power_w =
            sensor_sum / static_cast<double>(sensor_ok);
        last_good_power_w_ = rec.sensor_power_w;
    } else {
        rec.sensor_power_w = last_good_power_w_;
    }
    if (diode_ok == n_ticks) {
        rec.diode_temp_k = diode_sum * inv;
        last_good_temp_k_ = rec.diode_temp_k;
    } else if (diode_ok > 0) {
        rec.diode_temp_k = diode_sum / static_cast<double>(diode_ok);
        last_good_temp_k_ = rec.diode_temp_k;
    } else {
        rec.diode_temp_k = last_good_temp_k_;
    }

    // Counter read-out: bounded retry, window normalisation, sanity
    // guards, then last-good substitution under a staleness budget.
    // rt-escape: warm-up growth of the record's PMC vector.
    PPEP_RT_WARMUP_BEGIN
    rec.pmc.resize(n_cores);
    PPEP_RT_WARMUP_END
    for (std::size_t c = 0; c < n_cores; ++c) {
        const std::size_t window = chip_.pmcTicksSinceReset(c);
        sim::EventVector counts{};
        bool read_ok = false;
        for (std::size_t attempt = 0;
             attempt <= policy_.max_read_retries && !read_ok;
             ++attempt) {
            if (chip_.tryReadPmc(c, counts))
                read_ok = true;
            else
                ++health_.msr_retries;
        }
        bool sane = false;
        if (read_ok) {
            // A read that finally lands after earlier failures covers
            // several intervals' worth of ticks; normalise to this
            // interval under the even-rate assumption, the same
            // discipline as a wraparound-safe delta on a raw counter.
            if (window != n_ticks && window > 0) {
                const double scale = static_cast<double>(n_ticks) /
                                     static_cast<double>(window);
                for (double &v : counts)
                    v *= scale;
            }
            sane = countsPlausible(counts, rec.duration_s);
            if (read_ok && !sane)
                ++health_.pmc_rejected_cores;
        } else {
            ++health_.msr_failed_cores;
        }
        if (read_ok && sane) {
            rec.pmc[c] = counts;
            last_good_pmc_[c] = counts;
            staleness_[c] = 0;
        } else if (staleness_[c] < policy_.staleness_budget) {
            // Stale-but-sane beats fresh-but-corrupt, within budget.
            ++staleness_[c];
            ++health_.substituted_cores;
            rec.pmc[c] = last_good_pmc_[c];
        } else {
            // Budget exhausted: the defined halted-core sentinel.
            ++health_.zeroed_cores;
            rec.pmc[c] = sim::EventVector{};
        }
        if (retired_[c] > 0.0)
            ++rec.busy_cores;
    }

    if (injector)
        health_.injected = injector->counters();
    health_.pmc_wrap_events = chip_.pmcWrapEvents();
}

} // namespace ppep::runtime
