#include "ppep/runtime/session.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "ppep/governor/energy_governor.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::runtime {

namespace {

std::vector<const workloads::Combination *>
defaultTrainingCombos()
{
    // Every single-program combination: the diverse one-time training
    // set the repo's daemons and benches standardise on.
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1)
            out.push_back(&c);
    return out;
}

} // namespace

GovernorFactory
edpGovernor()
{
    return [](const ModelContext &ctx) {
        return std::make_unique<governor::EnergyOptimalGovernor>(
            ctx.cfg, ctx.ppep, governor::EnergyObjective::Edp);
    };
}

GovernorFactory
energyGovernor()
{
    return [](const ModelContext &ctx) {
        return std::make_unique<governor::EnergyOptimalGovernor>(
            ctx.cfg, ctx.ppep, governor::EnergyObjective::Energy);
    };
}

GovernorFactory
cappingGovernor(double guard_band)
{
    return [guard_band](const ModelContext &ctx) {
        return std::make_unique<governor::PpepCappingGovernor>(
            ctx.cfg, ctx.ppep, guard_band);
    };
}

/** Everything a built session owns; address-stable behind unique_ptr. */
struct Session::State
{
    sim::ChipConfig cfg;
    std::optional<model::TrainedModels> models;
    std::optional<model::Ppep> ppep;
    /** Fleet path: caller-owned immutable models shared across sessions. */
    const model::TrainedModels *shared_models = nullptr;
    const model::Ppep *shared_ppep = nullptr;
    std::optional<sim::Chip> chip;
    std::unique_ptr<governor::Governor> owned_gov;
    governor::Governor *gov = nullptr;
    governor::CapSchedule schedule = governor::CapSchedule::unlimited();
    std::vector<TelemetrySink *> sinks;
    std::size_t warmup = 0;
    bool warmed = false;
    bool was_cached = false;
    std::size_t next_index = 0;
    /** lastPredictedPower() carried over to the interval it forecasts. */
    double pending_pred = std::numeric_limits<double>::quiet_NaN();
    // Tenant attribution; the attributor references cfg + the models,
    // both address-stable inside this State.
    bool pg = false;
    std::optional<TenantAttributor> attributor;
    TenantAttribution attribution;
    std::vector<std::string> tenant_names;
    // Hardened-path members; declared after chip so they die first.
    bool hardened = false;
    std::optional<Sampler> sampler;
    std::optional<HealthMonitor> monitor;
    std::unique_ptr<governor::DegradedModeGovernor> degraded_gov;
    /** Online recalibration; declared after degraded_gov so the worker
     *  (which may hold a governor being reclaimed) dies first. */
    std::unique_ptr<Recalibrator> recal;
    /** Store whose lineage journal adopted generations are appended
     *  to; set only when the session was built with both. */
    std::optional<ModelStore> lineage_store;
    std::vector<std::string> sink_errors;
    // Replay ingest: the session reads recorded intervals instead of
    // simulating. The frame's context replaces what the chip/Sampler
    // would have provided.
    trace::ReplaySource *replay = nullptr;
    double replay_time_s = 0.0;
    SampleHealth replay_health;
    /** Plain sessions' splittable source for the batched fleet drive
     *  (hardened sessions use their Sampler). */
    std::optional<trace::Collector> batch_collector;

    /** The health record the current interval was observed with:
     *  decoded from the replay frame, or the live Sampler's. Only
     *  meaningful when hasObservedHealth(). */
    const SampleHealth &observedHealth() const
    {
        return replay ? replay_health : sampler->lastHealth();
    }
    bool hasObservedHealth() const
    {
        return replay ? replay->hasHealth() : sampler.has_value();
    }
};

Session::Builder::Builder(sim::ChipConfig cfg) : cfg_(std::move(cfg)) {}

Session::Builder &
Session::Builder::seed(std::uint64_t s)
{
    chip_seed_ = s;
    return *this;
}

Session::Builder &
Session::Builder::trainingSeed(std::uint64_t s)
{
    training_seed_ = s;
    return *this;
}

Session::Builder &
Session::Builder::pg(bool enabled)
{
    pg_ = enabled;
    return *this;
}

Session::Builder &
Session::Builder::jobs(std::vector<JobSpec> specs)
{
    for (auto &j : specs)
        jobs_.push_back(std::move(j));
    return *this;
}

Session::Builder &
Session::Builder::onePerCu(const std::vector<std::string> &programs)
{
    PPEP_ASSERT(programs.size() <= cfg_.n_cus,
                "more programs than compute units");
    for (std::size_t i = 0; i < programs.size(); ++i)
        jobs_.push_back({i * cfg_.cores_per_cu, programs[i], true});
    return *this;
}

Session::Builder &
Session::Builder::combo(const workloads::Combination &c, bool looping)
{
    combo_ = &c;
    combo_looping_ = looping;
    return *this;
}

Session::Builder &
Session::Builder::trainingCombos(
    std::vector<const workloads::Combination *> combos)
{
    training_combos_ = std::move(combos);
    return *this;
}

Session::Builder &
Session::Builder::store(ModelStore s)
{
    store_ = std::move(s);
    return *this;
}

Session::Builder &
Session::Builder::models(model::TrainedModels m)
{
    models_ = std::move(m);
    return *this;
}

Session::Builder &
Session::Builder::sharedModels(const model::TrainedModels &m,
                               const model::Ppep &p)
{
    shared_models_ = &m;
    shared_ppep_ = &p;
    return *this;
}

Session::Builder &
Session::Builder::governor(GovernorFactory factory)
{
    factory_ = std::move(factory);
    external_gov_ = nullptr;
    return *this;
}

Session::Builder &
Session::Builder::governor(ppep::governor::Governor &external)
{
    external_gov_ = &external;
    factory_ = nullptr;
    return *this;
}

Session::Builder &
Session::Builder::schedule(ppep::governor::CapSchedule s)
{
    schedule_ = std::move(s);
    return *this;
}

Session::Builder &
Session::Builder::warmup(std::size_t intervals)
{
    warmup_ = intervals;
    return *this;
}

Session::Builder &
Session::Builder::sink(TelemetrySink &s)
{
    sinks_.push_back(&s);
    return *this;
}

Session::Builder &
Session::Builder::tenants(std::vector<TenantSpec> specs)
{
    tenants_ = std::move(specs);
    return *this;
}

Session::Builder &
Session::Builder::faults(const sim::FaultPlan &plan)
{
    plan_ = plan;
    hardened_ = true;
    return *this;
}

Session::Builder &
Session::Builder::faultSeed(std::uint64_t s)
{
    fault_seed_ = s;
    return *this;
}

Session::Builder &
Session::Builder::samplerPolicy(const SamplerPolicy &p)
{
    sampler_policy_ = p;
    hardened_ = true;
    return *this;
}

Session::Builder &
Session::Builder::healthPolicy(const HealthPolicy &p)
{
    health_policy_ = p;
    hardened_ = true;
    return *this;
}

Session::Builder &
Session::Builder::safePolicy(const ppep::governor::SafePolicy &p)
{
    safe_policy_ = p;
    hardened_ = true;
    return *this;
}

Session::Builder &
Session::Builder::replay(trace::ReplaySource &src)
{
    replay_ = &src;
    return *this;
}

Session::Builder &
Session::Builder::recalibration(const RecalibrationPolicy &p)
{
    recal_policy_ = p;
    hardened_ = true;
    return *this;
}

Session
Session::Builder::build()
{
    auto state = std::make_unique<State>();
    state->cfg = std::move(cfg_);
    state->schedule = schedule_ ? std::move(*schedule_)
                                : governor::CapSchedule::unlimited();
    state->sinks = std::move(sinks_);
    state->warmup = warmup_;

    // Model acquisition. An external governor needs none unless the
    // caller explicitly supplied models or a store; shared models skip
    // acquisition entirely (the fleet trained them once up front).
    const bool needs_models =
        models_.has_value() || store_.has_value() ||
        (external_gov_ == nullptr && shared_ppep_ == nullptr);
    if (shared_ppep_) {
        state->shared_models = shared_models_;
        state->shared_ppep = shared_ppep_;
    } else if (models_) {
        state->models = std::move(*models_);
    } else if (needs_models) {
        const auto combos =
            training_combos_ ? *training_combos_
                             : defaultTrainingCombos();
        if (store_) {
            state->models = store_->trainOrLoad(
                state->cfg, training_seed_, combos,
                &state->was_cached);
        } else {
            model::Trainer trainer(state->cfg, training_seed_);
            state->models = trainer.trainAll(combos);
        }
    }
    if (state->models)
        state->ppep.emplace(state->cfg, state->models->chip,
                            state->models->pg);

    // Chip + jobs.
    state->pg = pg_;
    state->chip.emplace(state->cfg, chip_seed_);
    state->chip->setPowerGatingEnabled(pg_);
    if (combo_)
        workloads::launch(*state->chip, *combo_, combo_looping_);
    for (const auto &j : jobs_) {
        const auto &profile = workloads::Suite::byName(j.program);
        state->chip->setJob(j.core, j.looping
                                        ? profile.makeLoopingJob()
                                        : profile.makeJob());
    }

    // Tenants: validate ownership against the config, place their
    // jobs, and set up per-interval attribution over the trained
    // models (the attributor rejects platforms without a trained PG
    // idle decomposition).
    if (!tenants_.empty()) {
        const model::TrainedModels *m =
            state->shared_models
                ? state->shared_models
                : (state->models ? &*state->models : nullptr);
        if (!m)
            PPEP_FATAL("tenant attribution requires trained models; "
                       "give the session models, a store, or "
                       "sharedModels()");
        state->attributor.emplace(state->cfg, m->dynamic, m->pg,
                                  std::move(tenants_));
        state->attribution = state->attributor->makeAttribution();
        for (const auto &spec : state->attributor->specs()) {
            state->tenant_names.push_back(spec.name);
            for (const auto &job : spec.jobs) {
                const auto &profile =
                    workloads::Suite::byName(job.program);
                state->chip->setJob(job.core,
                                    job.looping
                                        ? profile.makeLoopingJob()
                                        : profile.makeJob());
            }
        }
    }

    // Policy.
    if (external_gov_) {
        state->gov = external_gov_;
    } else {
        const GovernorFactory factory =
            factory_ ? factory_ : edpGovernor();
        PPEP_ASSERT((state->models && state->ppep) ||
                        (state->shared_models && state->shared_ppep),
                    "governor factory requires trained models");
        const ModelContext ctx{
            state->cfg,
            state->shared_models ? *state->shared_models
                                 : *state->models,
            state->shared_ppep ? *state->shared_ppep : *state->ppep,
            training_seed_};
        state->owned_gov = factory(ctx);
        PPEP_ASSERT(state->owned_gov != nullptr,
                    "governor factory returned null");
        state->gov = state->owned_gov.get();
    }

    // Hardened acquisition: faults on the chip, the Sampler in the
    // loop, the HealthMonitor scoring every interval, and the
    // degraded-mode wrapper gating the policy on its verdict.
    state->hardened = hardened_;
    if (plan_) {
        // Decorrelate from the chip's own noise streams by default,
        // but keep the derivation a pure function of the chip seed.
        const std::uint64_t fseed =
            fault_seed_ ? *fault_seed_
                        : chip_seed_ ^ 0x9E3779B97F4A7C15ULL;
        state->chip->setFaultPlan(*plan_, fseed);
    }
    if (hardened_) {
        state->sampler.emplace(*state->chip, sampler_policy_);
        state->monitor.emplace(health_policy_);
        State *st = state.get();
        // The probe runs at the top of every decide(), when the
        // wrapper's lastPredictedPower() is still the forecast made
        // for the interval in rec — exactly what divergence needs.
        state->degraded_gov =
            std::make_unique<governor::DegradedModeGovernor>(
                *state->chip, *state->gov,
                [st](const trace::IntervalRecord &rec) {
                    st->monitor->observe(
                        st->observedHealth(),
                        st->degraded_gov->lastPredictedPower(),
                        rec.sensor_power_w);
                    return st->monitor->degraded();
                },
                safe_policy_);
        state->gov = state->degraded_gov.get();
    }

    // Online recalibration: a background refitter that can rebuild the
    // policy over hot-swapped models — so it cannot manage a policy it
    // does not know how to construct.
    if (recal_policy_) {
        PPEP_ASSERT(external_gov_ == nullptr,
                    "recalibration rebuilds the governor from its "
                    "factory; it cannot manage an external policy");
        const model::TrainedModels *gen0 =
            state->shared_models ? state->shared_models
                                 : (state->models ? &*state->models
                                                  : nullptr);
        PPEP_ASSERT(gen0 != nullptr,
                    "recalibration requires trained models");
        const GovernorFactory factory =
            factory_ ? factory_ : edpGovernor();
        const std::uint64_t tseed = training_seed_;
        GovernorRebuilder rebuild =
            [factory, tseed](const sim::ChipConfig &cfg,
                             const model::TrainedModels &m,
                             const model::Ppep &p) {
                return factory(ModelContext{cfg, m, p, tseed});
            };
        state->recal = std::make_unique<Recalibrator>(
            state->cfg, *gen0, std::move(rebuild), training_seed_,
            *recal_policy_);
        if (store_)
            state->lineage_store = *store_;
    }

    state->replay = replay_;

    return Session(std::move(state));
}

Session::Builder
Session::builder(sim::ChipConfig cfg)
{
    return Builder(std::move(cfg));
}

Session::Session(std::unique_ptr<State> state) : state_(std::move(state))
{
}

Session::Session(Session &&) noexcept = default;
Session &Session::operator=(Session &&) noexcept = default;
Session::~Session() = default;

void
Session::warmupIfNeeded()
{
    auto &s = *state_;
    if (s.replay) {
        // The recording already warmed the run it captured; replaying
        // a warm-up would consume governed frames.
        s.warmed = true;
        return;
    }
    if (!s.warmup || s.warmed)
        return;
    if (s.sampler) {
        // Warm through the hardened path so its last-good state
        // is primed before governed intervals begin.
        for (std::size_t i = 0; i < s.warmup; ++i)
            s.sampler->collectInterval();
    } else {
        trace::Collector warm(*s.chip);
        warm.collect(s.warmup);
    }
    s.warmed = true;
}

governor::GovernorLoop::StepObserver
Session::makeObserver()
{
    State *sp = state_.get();
    return [sp](const governor::GovernorStep &step, double latency_s) {
        auto &s = *sp;
        IntervalTelemetry t;
        t.index = s.next_index++;
        // Accumulated tick rounding can leave the first interval a hair
        // below zero; clamp rather than report negative time. Replay
        // serves the recorded timestamp: the chip never steps.
        t.time_s =
            s.replay
                ? s.replay_time_s
                : std::max(0.0, s.chip->timeS() - step.rec.duration_s);
        t.rec = &step.rec;
        t.cu_vf = &step.cu_vf;
        t.cap_w = step.cap_w;
        t.predicted_power_w = s.pending_pred;
        t.exploration = s.gov->lastExploration();
        t.decision_latency_s = latency_s;
        t.health =
            s.hasObservedHealth() ? &s.observedHealth() : nullptr;
        t.degraded =
            s.degraded_gov ? s.degraded_gov->degradedNow() : false;
        if (s.monitor)
            t.divergence_ewma_w = s.monitor->divergenceEwma();
        // The decision that just ran governs the *next* interval; hold
        // its forecast until that interval's record arrives. Captured
        // before any model swap below, so the forecast stays paired
        // with the governor that actually made the decision.
        const double next_pred = s.gov->lastPredictedPower();
        if (s.recal) {
            // Feed the ring, resolve any due refit (re-pointing the
            // degraded wrapper at the new generation and restarting
            // the divergence EWMA), then consider a new trigger —
            // adopt-before-trigger so a freshly reset EWMA cannot
            // immediately re-dispatch.
            s.recal->observeInterval(
                step.rec, s.observedHealth().faultEvents() == 0,
                t.index);
            if (const auto *ver = s.recal->adoptIfDue(t.index)) {
                s.degraded_gov->setInner(*ver->gov);
                s.monitor->noteModelSwap();
                t.divergence_ewma_w = s.monitor->divergenceEwma();
                if (s.lineage_store)
                    s.lineage_store->appendLineage(
                        s.cfg.name, platformFingerprint(s.cfg),
                        ver->generation, ver->parent_digest,
                        ver->digest, "drift-refit",
                        ver->trigger_interval, ver->cv_mae_w,
                        ver->incumbent_ring_mae_w);
            }
            s.recal->maybeTrigger(step.rec,
                                  s.monitor->divergenceEwma(),
                                  t.index);
            t.recal_active = true;
            t.model_generation = s.recal->generation();
            t.recal_triggers = s.recal->triggers();
            t.recal_accepted = s.recal->accepted();
            t.recal_rejected = s.recal->rejected();
        }
        if (s.attributor) {
            s.attributor->attributeInto(step.rec, s.pg,
                                        s.attribution);
            t.tenants = &s.attribution;
            t.tenant_names = &s.tenant_names;
        }
        for (auto *sink : s.sinks)
            sink->onInterval(t);
        s.pending_pred = next_pred;
    };
}

void
Session::finishSinks()
{
    auto &s = *state_;
    s.sink_errors.clear();
    for (auto *sink : s.sinks) {
        sink->finish();
        // The explicit durability point of the sink contract: after
        // run()/drive() returns, everything observed is on its medium.
        sink->flush();
        if (sink->failed()) {
            PPEP_WARN("telemetry sink failed: ", sink->error());
            s.sink_errors.push_back(sink->error());
        }
    }
}

std::vector<governor::GovernorStep>
Session::run(std::size_t intervals)
{
    auto &s = *state_;
    if (s.replay)
        PPEP_FATAL("replay sessions support drive() only; run() "
                   "retains a step trace the steady-state ingest path "
                   "is built to avoid");
    warmupIfNeeded();
    governor::GovernorLoop loop =
        s.sampler ? governor::GovernorLoop(*s.chip, *s.gov, *s.sampler)
                  : governor::GovernorLoop(*s.chip, *s.gov);
    auto steps = loop.run(intervals, s.schedule, makeObserver());
    finishSinks();
    return steps;
}

std::size_t
Session::drive(std::size_t intervals)
{
    auto &s = *state_;
    if (s.replay)
        return driveReplay(intervals);
    warmupIfNeeded();
    governor::GovernorLoop loop =
        s.sampler ? governor::GovernorLoop(*s.chip, *s.gov, *s.sampler)
                  : governor::GovernorLoop(*s.chip, *s.gov);
    const std::size_t ran = loop.drive(intervals, s.schedule,
                                       makeObserver());
    finishSinks();
    return ran;
}

void
Session::replayFrameInto(governor::GovernorStep &step, std::size_t index,
                         double want_cap_w)
{
    auto &s = *state_;
    if (s.replay->done())
        PPEP_FATAL("replay stream exhausted after ",
                   s.replay->framesConsumed(), " frames at interval ",
                   index);
    s.replay->collectIntervalInto(step.rec);
    // The frame's telemetry context replaces what cycleBegin would
    // read off the chip. The recorded VF context equals what the
    // live run stamped from its chip at the same point, and the
    // recorded cap must agree with this session's schedule (and any
    // arbiter limit) or the governor would be reacting to caps the
    // record never ran.
    step.cap_w = s.replay->frameCapW();
    if (step.cap_w != want_cap_w)
        PPEP_FATAL("replayed cap ", step.cap_w, " W at interval ",
                   index, " does not match the session schedule's ",
                   want_cap_w, " W");
    step.cu_vf = step.rec.cu_vf;
    s.replay_time_s = s.replay->frameTimeS();
    if (s.replay->hasHealth()) {
        const trace::ReplayHealth &rh = s.replay->frameHealth();
        SampleHealth &h = s.replay_health;
        h.msr_retries = static_cast<std::size_t>(rh.msr_retries);
        h.msr_failed_cores =
            static_cast<std::size_t>(rh.msr_failed_cores);
        h.pmc_rejected_cores =
            static_cast<std::size_t>(rh.pmc_rejected_cores);
        h.substituted_cores =
            static_cast<std::size_t>(rh.substituted_cores);
        h.zeroed_cores = static_cast<std::size_t>(rh.zeroed_cores);
        h.sensor_rejects =
            static_cast<std::size_t>(rh.sensor_rejects);
        h.diode_rejects =
            static_cast<std::size_t>(rh.diode_rejects);
        h.ticks = static_cast<std::size_t>(rh.ticks);
        h.timing_overrun = rh.timing_overrun;
        h.pmc_wrap_events =
            static_cast<std::size_t>(rh.pmc_wrap_events);
        h.total_fault_events =
            static_cast<std::size_t>(rh.total_fault_events);
    }
}

std::size_t
Session::driveReplay(std::size_t intervals)
{
    auto &s = *state_;
    s.warmed = true;
    governor::GovernorLoop loop(*s.chip, *s.gov);
    const auto observer = makeObserver();
    governor::GovernorStep step;
    std::vector<std::size_t> next_vf;
    for (std::size_t i = 0; i < intervals; ++i) {
        replayFrameInto(step, i, s.schedule.capAt(i));
        double latency_s = 0.0;
        loop.cycleDecide(i, s.schedule, step, next_vf, latency_s);
        observer(step, latency_s);
    }
    finishSinks();
    return intervals;
}

trace::TickedIntervalSource &
Session::tickedSource()
{
    auto &s = *state_;
    if (s.sampler)
        return *s.sampler;
    if (!s.batch_collector)
        s.batch_collector.emplace(*s.chip);
    return *s.batch_collector;
}

Session::BatchDriver::BatchDriver(Session &session)
    : session_(session),
      loop_(*session.state_->chip, *session.state_->gov),
      observer_(session.makeObserver())
{
    PPEP_ASSERT(session.state_->replay == nullptr,
                "a replay session has no chip to batch-step");
    session.warmupIfNeeded();
    source_ = &session.tickedSource();
}

sim::Chip &
Session::BatchDriver::chip()
{
    return *session_.state_->chip;
}

std::size_t
Session::BatchDriver::beginInterval() PPEP_NONBLOCKING
{
    loop_.cycleBegin(index_, session_.state_->schedule, step_);
    return source_->beginIntervalInto(step_.rec);
}

void
Session::BatchDriver::consumeTick(const sim::TickResult &tick)
    PPEP_NONBLOCKING
{
    source_->consumeTick(step_.rec, tick);
}

void
Session::BatchDriver::endInterval()
{
    source_->finishIntervalInto(step_.rec);
    double latency_s = 0.0;
    loop_.cycleDecide(index_, session_.state_->schedule, step_,
                      next_vf_, latency_s);
    // The observer hand-off lives outside the annotated region, same
    // as run()/drive(): AsyncTelemetrySink blocks by design.
    observer_(step_, latency_s);
    ++index_;
}

void
Session::BatchDriver::finish()
{
    session_.finishSinks();
}

Session::LockstepDriver::LockstepDriver(Session &session)
    : session_(session),
      loop_(*session.state_->chip, *session.state_->gov),
      observer_(session.makeObserver())
{
    session.warmupIfNeeded();
    if (session.state_->replay == nullptr)
        source_ = &session.tickedSource();
}

void
Session::LockstepDriver::collectPhase()
{
    auto &s = *session_.state_;
    if (s.replay) {
        session_.replayFrameInto(
            step_, index_,
            std::min(s.schedule.capAt(index_), loop_.capLimit()));
        return;
    }
    loop_.cycleBegin(index_, s.schedule, step_);
    source_->collectIntervalInto(step_.rec);
}

void
Session::LockstepDriver::decidePhase()
{
    double latency_s = 0.0;
    loop_.cycleDecide(index_, session_.state_->schedule, step_,
                      next_vf_, latency_s);
    // The observer hand-off lives outside the annotated region, same
    // as run()/drive(): AsyncTelemetrySink blocks by design.
    observer_(step_, latency_s);
    ++index_;
}

void
Session::LockstepDriver::setCapLimitW(double cap_w) PPEP_NONBLOCKING
{
    loop_.setCapLimit(cap_w);
}

const std::vector<model::VfPrediction> *
Session::LockstepDriver::exploration() const PPEP_NONBLOCKING
{
    return session_.state_->gov->lastExploration();
}

double
Session::LockstepDriver::measuredPowerW() const PPEP_NONBLOCKING
{
    return step_.rec.sensor_power_w;
}

void
Session::LockstepDriver::finish()
{
    session_.finishSinks();
}

sim::Chip &
Session::chip()
{
    return *state_->chip;
}

const sim::ChipConfig &
Session::config() const
{
    return state_->cfg;
}

bool
Session::hasModels() const
{
    return state_->models.has_value() ||
           state_->shared_models != nullptr;
}

const model::TrainedModels &
Session::models() const
{
    if (state_->shared_models)
        return *state_->shared_models;
    if (!state_->models)
        PPEP_FATAL("this session trained no models");
    return *state_->models;
}

const model::Ppep &
Session::ppep() const
{
    if (state_->shared_ppep)
        return *state_->shared_ppep;
    if (!state_->ppep)
        PPEP_FATAL("this session trained no models");
    return *state_->ppep;
}

governor::Governor &
Session::policy()
{
    return *state_->gov;
}

bool
Session::modelsWereCached() const
{
    return state_->was_cached;
}

bool
Session::hardened() const
{
    return state_->hardened;
}

const Sampler *
Session::sampler() const
{
    return state_->sampler ? &*state_->sampler : nullptr;
}

const HealthMonitor *
Session::healthMonitor() const
{
    return state_->monitor ? &*state_->monitor : nullptr;
}

const ppep::governor::DegradedModeGovernor *
Session::degradedGovernor() const
{
    return state_->degraded_gov.get();
}

const Recalibrator *
Session::recalibrator() const
{
    return state_->recal.get();
}

const TenantAttributor *
Session::tenantAttributor() const
{
    return state_->attributor ? &*state_->attributor : nullptr;
}

const std::vector<std::string> &
Session::sinkErrors() const
{
    return state_->sink_errors;
}

} // namespace ppep::runtime
