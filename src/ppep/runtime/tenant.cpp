#include "ppep/runtime/tenant.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

TenantAttributor::TenantAttributor(const sim::ChipConfig &cfg,
                                   const model::DynamicPowerModel &dyn,
                                   const model::PgIdleModel &pg,
                                   std::vector<TenantSpec> specs)
    : cfg_(cfg), dyn_(dyn), pg_(pg), specs_(std::move(specs)),
      owner_(cfg.coreCount(), -1)
{
    PPEP_ASSERT(dyn_.trained(), "dynamic model not trained");
    if (!pg_.trained())
        PPEP_FATAL("tenant attribution needs a trained PG idle model; "
                   "platform '", cfg_.name,
                   "' has none (no power-gating sweep)");
    if (specs_.empty())
        PPEP_FATAL("tenant list must not be empty");

    for (std::size_t t = 0; t < specs_.size(); ++t) {
        const TenantSpec &spec = specs_[t];
        if (spec.name.empty())
            PPEP_FATAL("tenant ", t, " has an empty name");
        for (char ch : spec.name) {
            const bool ok =
                (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                (ch >= '0' && ch <= '9') || ch == '_' || ch == '-';
            // Names become CSV column headers and JSON object keys.
            if (!ok)
                PPEP_FATAL("tenant name '", spec.name,
                           "' may only use [A-Za-z0-9_-]");
        }
        for (std::size_t u = 0; u < t; ++u)
            if (specs_[u].name == spec.name)
                PPEP_FATAL("duplicate tenant name '", spec.name, "'");
        if (spec.cores.empty())
            PPEP_FATAL("tenant '", spec.name, "' owns no cores");
        for (std::size_t core : spec.cores) {
            if (core >= cfg_.coreCount())
                PPEP_FATAL("tenant '", spec.name, "' claims core ", core,
                           " but platform '", cfg_.name, "' has only ",
                           cfg_.coreCount(), " cores");
            if (owner_[core] >= 0)
                PPEP_FATAL("core ", core, " claimed by both tenant '",
                           specs_[static_cast<std::size_t>(owner_[core])]
                               .name,
                           "' and tenant '", spec.name, "'");
            owner_[core] = static_cast<std::ptrdiff_t>(t);
        }
        for (const TenantJob &job : spec.jobs) {
            if (job.core >= cfg_.coreCount() ||
                owner_[job.core] != static_cast<std::ptrdiff_t>(t))
                PPEP_FATAL("tenant '", spec.name, "' pins job '",
                           job.program, "' to core ", job.core,
                           " which it does not own");
        }
    }
}

TenantAttribution
TenantAttributor::makeAttribution() const
{
    TenantAttribution out;
    out.dynamic_w.resize(specs_.size(), 0.0);
    out.idle_w.resize(specs_.size(), 0.0);
    out.total_w.resize(specs_.size(), 0.0);
    out.busy_per_cu.resize(cfg_.n_cus, 0);
    return out;
}

void
TenantAttributor::attributeInto(const trace::IntervalRecord &rec,
                                bool pg_enabled,
                                TenantAttribution &out) const
    PPEP_NONBLOCKING
{
    PPEP_ASSERT(rec.pmc.size() == cfg_.coreCount(),
                "record core count mismatch");
    PPEP_ASSERT(rec.cu_vf.size() == cfg_.n_cus,
                "record CU context mismatch");
    PPEP_ASSERT(out.dynamic_w.size() == specs_.size() &&
                    out.busy_per_cu.size() == cfg_.n_cus,
                "attribution block not from makeAttribution()");

    for (std::size_t t = 0; t < specs_.size(); ++t) {
        out.dynamic_w[t] = 0.0;
        out.idle_w[t] = 0.0;
        out.total_w[t] = 0.0;
    }
    out.unattributed_w = 0.0;

    // Busy topology (same busy test as model/per_core_power).
    std::size_t busy_total = 0;
    for (std::size_t cu = 0; cu < cfg_.n_cus; ++cu)
        out.busy_per_cu[cu] = 0;
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        if (rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)] > 0.0) {
            ++out.busy_per_cu[c / cfg_.cores_per_cu];
            ++busy_total;
        }
    }

    // Ownership split of chipIdleMixed(): base over all cores, NB over
    // all cores when the NB is awake, each counted CU's Pidle(CU) over
    // that CU's cores.
    const double n_cores = static_cast<double>(cfg_.coreCount());
    const bool nb_awake = busy_total > 0 || !pg_enabled;
    const double base_share = pg_.pBaseAvg() / n_cores;
    const double nb_share = nb_awake ? pg_.pNbAvg() / n_cores : 0.0;
    const double cu_cores = static_cast<double>(cfg_.cores_per_cu);

    double dyn_total = 0.0;
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const bool cu_counts = out.busy_per_cu[cu] > 0 || !pg_enabled;
        const double cu_share =
            cu_counts ? pg_.components(rec.cu_vf[cu]).p_cu / cu_cores
                      : 0.0;
        const double idle_c = base_share + nb_share + cu_share;

        double dyn_c = 0.0;
        if (rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)] > 0.0) {
            const auto rates = model::powerEventRates(rec.pmc[c],
                                                      rec.duration_s);
            const double voltage =
                cfg_.vf_table.state(rec.cu_vf[cu]).voltage;
            dyn_c = dyn_.estimate(rates, voltage);
        }
        dyn_total += dyn_c;

        const std::ptrdiff_t owner = owner_[c];
        if (owner >= 0) {
            const auto t = static_cast<std::size_t>(owner);
            out.dynamic_w[t] += dyn_c;
            out.idle_w[t] += idle_c;
        } else {
            out.unattributed_w += dyn_c + idle_c;
        }
    }
    for (std::size_t t = 0; t < specs_.size(); ++t)
        out.total_w[t] = out.dynamic_w[t] + out.idle_w[t];

    // Independent total for the reconciliation invariant: the sum of
    // the per-tenant shares and the unattributed remainder must match
    // this to floating-point round-off.
    out.chip_total_w =
        dyn_total +
        pg_.chipIdleMixed(rec.cu_vf, out.busy_per_cu, pg_enabled);
}

} // namespace ppep::runtime
