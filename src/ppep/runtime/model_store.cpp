#include "ppep/runtime/model_store.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <list>
#include <memory>
#include <unordered_map>

#include "ppep/model/serialization.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/util/sync.hpp"

namespace ppep::runtime {

namespace fs = std::filesystem;

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

std::uint64_t
mixString(std::uint64_t h, const std::string &s)
{
    // Length-prefix so {"ab","c"} and {"a","bc"} hash differently.
    const std::uint64_t len = s.size();
    h = fnv1a(&len, sizeof(len), h);
    return fnv1a(s.data(), s.size(), h);
}

std::uint64_t
mixDouble(std::uint64_t h, double d)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return fnv1a(&bits, sizeof(bits), h);
}

std::uint64_t
mixU64(std::uint64_t h, std::uint64_t v)
{
    return fnv1a(&v, sizeof(v), h);
}

std::uint64_t
mixVf(std::uint64_t h, const sim::VfState &vf)
{
    h = mixDouble(h, vf.voltage);
    return mixDouble(h, vf.freq_ghz);
}

std::atomic<std::uint64_t> g_train_events{0};

/**
 * Bounded registry of per-path locks. Concurrent trainOrLoad() calls
 * for the same key serialise on one lock: the first caller trains and
 * publishes, later callers load the published file — exactly-once
 * training per key per process. Distinct keys proceed in parallel.
 * (Cross-process racers are still safe via write-then-rename; they may
 * train redundantly but never corrupt the cache.)
 *
 * Bounded because a long-lived fleet process touches a fresh path per
 * (platform, seed, training-set) tuple: an unbounded map would grow for
 * process lifetime. acquire() hands out shared_ptr handles and evicts
 * cold entries only when the registry alone holds the reference
 * (use_count() == 1), so an evicted path can never have a live holder —
 * a re-acquire minting a fresh mutex while the old one is still locked
 * would silently break per-path exclusion.
 *
 * Lock order (encoded with PPEP_EXCLUDES): the registry lock mu_ is
 * always taken first and dropped before the per-path lock is taken;
 * acquire() only returns a handle, it never locks it.
 */
class PathLockRegistry
{
  public:
    /** Registry cap; live holders can push the size past it (eviction
     *  never sacrifices exclusion), but idle entries stay below it. */
    static constexpr std::size_t kCapacity = 64;

    static PathLockRegistry &instance()
    {
        static PathLockRegistry reg;
        return reg;
    }

    /**
     * The lock handle for @p path. Hold the shared_ptr for the whole
     * lock()..unlock() window: the live reference pins the entry
     * against eviction, so every holder of one path shares one mutex.
     */
    std::shared_ptr<util::Mutex> acquire(const std::string &path)
        PPEP_EXCLUDES(mu_)
    {
        util::MutexLock g(mu_);
        const auto it = map_.find(path);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            return it->second.lock;
        }
        evictIfFull();
        lru_.push_front(path);
        auto lock = std::make_shared<util::Mutex>();
        map_.emplace(path, Entry{lock, lru_.begin()});
        return lock;
    }

    /** Current entry count (test hook). */
    std::size_t size() const PPEP_EXCLUDES(mu_)
    {
        util::MutexLock g(mu_);
        return map_.size();
    }

  private:
    struct Entry
    {
        std::shared_ptr<util::Mutex> lock;
        std::list<std::string>::iterator pos;
    };

    void evictIfFull() PPEP_REQUIRES(mu_)
    {
        if (map_.size() < kCapacity)
            return;
        // Walk from the cold end and drop the first entry nobody
        // holds (the registry's own reference is the use_count()==1).
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            const auto m = map_.find(*it);
            if (m->second.lock.use_count() == 1) {
                map_.erase(m);
                lru_.erase(std::next(it).base());
                return;
            }
        }
        // Every entry has a live holder: more in-flight paths than the
        // cap. Grow past it rather than break exclusion.
    }

    mutable util::Mutex mu_;
    std::unordered_map<std::string, Entry> map_ PPEP_GUARDED_BY(mu_);
    /** Eviction order, most recently used first. */
    std::list<std::string> lru_ PPEP_GUARDED_BY(mu_);
};

/** The process-wide per-path lock handle for @p path. */
std::shared_ptr<util::Mutex>
pathLockFor(const std::string &path)
{
    return PathLockRegistry::instance().acquire(path);
}

} // namespace

std::uint64_t
platformFingerprint(const sim::ChipConfig &cfg)
{
    // Cover the ENTIRE chip description, ground truth included: two
    // silicon configurations that differ anywhere must never share a
    // cache entry, even when they share a platform name. An FX-8320
    // model served to a Phenom II session would predict garbage; a
    // stale-fingerprint hit is strictly worse than a retrain.
    std::uint64_t h = 14695981039346656037ull;
    h = mixU64(h, cfg.n_cus);
    h = mixU64(h, cfg.cores_per_cu);
    h = mixDouble(h, cfg.issue_width);
    h = mixDouble(h, cfg.mispredict_penalty);
    h = mixU64(h, cfg.pg_supported ? 1 : 0);
    h = mixU64(h, cfg.nb_dvfs_capable ? 1 : 0);
    h = mixU64(h, cfg.per_cu_voltage ? 1 : 0);
    h = mixDouble(h, cfg.tick_s);
    h = mixU64(h, cfg.ticks_per_interval);
    h = mixU64(h, cfg.vf_table.size());
    for (std::size_t i = 0; i < cfg.vf_table.size(); ++i)
        h = mixVf(h, cfg.vf_table.state(i));
    h = mixU64(h, cfg.boost_states.size());
    for (const auto &vf : cfg.boost_states)
        h = mixVf(h, vf);
    h = mixDouble(h, cfg.boost_temp_limit_k);
    h = mixU64(h, cfg.boost_max_busy_cus);

    const sim::GroundTruthPower &p = cfg.power;
    for (double e : p.event_energy_nj)
        h = mixDouble(h, e);
    h = mixDouble(h, p.alpha_true);
    h = mixDouble(h, p.busy_cycle_energy_nj);
    h = mixDouble(h, p.cu_clock_coeff);
    h = mixDouble(h, p.cu_leak_ref_w);
    h = mixDouble(h, p.leak_volt_k);
    h = mixDouble(h, p.leak_temp_k);
    h = mixDouble(h, p.leak_temp_ref_k);
    h = mixDouble(h, p.nb_leak_ref_w);
    h = mixDouble(h, p.nb_clock_coeff);
    h = mixDouble(h, p.l3_access_energy_nj);
    h = mixDouble(h, p.dram_access_energy_nj);
    h = mixDouble(h, p.base_power_w);
    h = mixDouble(h, p.pg_residual);
    h = mixDouble(h, p.housekeeping_w);
    h = mixDouble(h, p.phase_activity_sd);

    h = mixDouble(h, cfg.thermal.ambient_k);
    h = mixDouble(h, cfg.thermal.resistance_k_per_w);
    h = mixDouble(h, cfg.thermal.time_constant_s);
    h = mixDouble(h, cfg.thermal.diode_quantum_k);

    h = mixDouble(h, cfg.sensor.noise_fraction);
    h = mixDouble(h, cfg.sensor.noise_floor_w);
    h = mixDouble(h, cfg.sensor.quantum_w);

    h = mixVf(h, cfg.nb.vf_hi);
    h = mixVf(h, cfg.nb.vf_lo);
    h = mixDouble(h, cfg.nb.l3_latency_cycles);
    h = mixDouble(h, cfg.nb.dram_fixed_ns);
    h = mixDouble(h, cfg.nb.mc_latency_cycles);
    h = mixDouble(h, cfg.nb.dram_bw_gbs);
    h = mixDouble(h, cfg.nb.line_bytes);
    h = mixDouble(h, cfg.nb.max_utilization);
    h = mixDouble(h, cfg.nb.mlp_collapse);

    for (double s : cfg.event_freq_sens)
        h = mixDouble(h, s);
    h = mixDouble(h, cfg.rate_jitter_sd);
    h = mixU64(h, cfg.pmc_counters);
    return h;
}

std::uint64_t
comboDigest(const std::vector<const workloads::Combination *> &combos)
{
    std::uint64_t h = 14695981039346656037ull;
    h = mixU64(h, combos.size());
    for (const auto *c : combos) {
        PPEP_ASSERT(c != nullptr, "null training combination");
        h = mixString(h, c->name);
        h = mixU64(h, c->instances.size());
        for (const auto &inst : c->instances)
            h = mixString(h, inst);
    }
    return h;
}

std::uint64_t
ModelKey::digest() const
{
    std::uint64_t h = 14695981039346656037ull;
    h = mixString(h, platform);
    h = mixU64(h, fingerprint);
    h = mixU64(h, seed);
    h = mixU64(h, trainer_version);
    h = mixU64(h, combo_digest);
    return h;
}

std::string
ModelKey::fileName() const
{
    // Platform slug keeps the cache human-navigable; the digest keeps it
    // collision-safe.
    std::string slug;
    for (char c : platform) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            slug += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!slug.empty() && slug.back() != '-')
            slug += '-';
    }
    while (!slug.empty() && slug.back() == '-')
        slug.pop_back();
    if (slug.empty())
        slug = "platform";

    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(digest()));
    return slug + "-" + hex + ".ppepm";
}

ModelStore::ModelStore(std::string cache_dir) : dir_(std::move(cache_dir))
{
    PPEP_ASSERT(!dir_.empty(), "cache dir must be non-empty");
}

std::string
ModelStore::defaultCacheDir()
{
    if (const char *env = std::getenv("PPEP_CACHE_DIR"); env && *env)
        return env;
    return ".ppep-cache";
}

ModelKey
ModelStore::keyFor(const sim::ChipConfig &cfg, std::uint64_t seed,
                   const std::vector<const workloads::Combination *> &combos)
{
    ModelKey key;
    key.platform = cfg.name;
    key.fingerprint = platformFingerprint(cfg);
    key.seed = seed;
    key.trainer_version = kTrainerVersion;
    key.combo_digest = comboDigest(combos);
    return key;
}

std::string
ModelStore::pathFor(const ModelKey &key) const
{
    return (fs::path(dir_) / key.fileName()).string();
}

bool
ModelStore::contains(const ModelKey &key) const
{
    std::error_code ec;
    return fs::is_regular_file(pathFor(key), ec);
}

void
ModelStore::save(const ModelKey &key, const model::TrainedModels &models) const
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        PPEP_FATAL("cannot create model cache dir '", dir_,
                   "': ", ec.message());

    // Write-then-rename: a crashed or concurrent writer never leaves a
    // half-written cache entry where a reader can find it.
    const std::string final_path = pathFor(key);
    const std::string tmp_path = final_path + ".tmp";
    model::saveModels(models, tmp_path);
    fs::rename(tmp_path, final_path, ec);
    if (ec)
        PPEP_FATAL("cannot publish model cache entry '", final_path,
                   "': ", ec.message());
}

model::TrainedModels
ModelStore::trainOrLoad(
    const sim::ChipConfig &cfg, std::uint64_t seed,
    const std::vector<const workloads::Combination *> &combos,
    bool *was_cached) const
{
    const ModelKey key = keyFor(cfg, seed, combos);
    const std::string path = pathFor(key);
    const auto path_mu = pathLockFor(path);
    util::MutexLock lock(*path_mu);
    if (contains(key)) {
        if (was_cached)
            *was_cached = true;
        return model::loadModels(path, cfg);
    }
    if (was_cached)
        *was_cached = false;
    ++g_train_events;
    model::Trainer trainer(cfg, seed);
    model::TrainedModels models = trainer.trainAll(combos);
    save(key, models);
    return models;
}

void
ModelStore::appendLineage(const std::string &platform,
                          std::uint64_t fingerprint,
                          std::uint64_t generation,
                          std::uint64_t parent_digest,
                          std::uint64_t digest, const std::string &reason,
                          std::uint64_t trigger_interval, double cv_mae_w,
                          double incumbent_mae_w) const
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        PPEP_FATAL("cannot create model cache dir '", dir_,
                   "': ", ec.message());
    const std::string path = (fs::path(dir_) / "lineage.log").string();
    const auto path_mu = pathLockFor(path);
    util::MutexLock lock(*path_mu);
    std::FILE *f = std::fopen(path.c_str(), "ae");
    if (!f)
        PPEP_FATAL("cannot open lineage journal '", path, "'");
    std::fprintf(f,
                 "platform=%s fingerprint=%016llx gen=%llu "
                 "parent=%016llx digest=%016llx reason=%s "
                 "trigger_interval=%llu cv_mae_w=%.17g "
                 "incumbent_mae_w=%.17g\n",
                 platform.c_str(),
                 static_cast<unsigned long long>(fingerprint),
                 static_cast<unsigned long long>(generation),
                 static_cast<unsigned long long>(parent_digest),
                 static_cast<unsigned long long>(digest), reason.c_str(),
                 static_cast<unsigned long long>(trigger_interval),
                 cv_mae_w, incumbent_mae_w);
    const bool ok = std::fflush(f) == 0 && !std::ferror(f);
    std::fclose(f);
    if (!ok)
        PPEP_FATAL("lineage journal write failed ('", path, "')");
}

std::vector<std::string>
ModelStore::lineageLines() const
{
    const std::string path = (fs::path(dir_) / "lineage.log").string();
    const auto path_mu = pathLockFor(path);
    util::MutexLock lock(*path_mu);
    std::vector<std::string> out;
    std::FILE *f = std::fopen(path.c_str(), "re");
    if (!f)
        return out;
    std::string line;
    for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
        if (c == '\n') {
            out.push_back(line);
            line.clear();
        } else {
            line += static_cast<char>(c);
        }
    }
    if (!line.empty())
        out.push_back(line);
    std::fclose(f);
    return out;
}

std::uint64_t
ModelStore::trainEvents()
{
    return g_train_events.load();
}

std::size_t
ModelStore::pathLockCount()
{
    return PathLockRegistry::instance().size();
}

std::size_t
ModelStore::pathLockCapacity()
{
    return PathLockRegistry::kCapacity;
}

} // namespace ppep::runtime
