#include "ppep/runtime/arbiter.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

namespace {

constexpr double kInf = std::numeric_limits<double>::max();

} // namespace

void
FleetArbiter::configure(const ArbiterSpec &spec,
                        const std::vector<SessionSetup> &sessions)
{
    PPEP_ASSERT(!sessions.empty(), "arbiter has no session lanes");
    budget_ = spec.budget;
    hysteresis_w_ = spec.hysteresis_w;
    step_w_ = spec.step_w;
    raise_margin_w_ = spec.raise_margin_w;
    n_ = sessions.size();
    stride_ = 1;
    for (const auto &s : sessions)
        stride_ = std::max(stride_, s.n_vf);

    const std::size_t n_tiers = std::max<std::size_t>(
        1, spec.tiers.size());
    tier_budget_w_.assign(n_tiers, kInf);
    for (std::size_t t = 0; t < spec.tiers.size(); ++t)
        tier_budget_w_[t] = spec.tiers[t].budget_w;

    priority_.resize(n_);
    floor_.resize(n_);
    tier_.resize(n_);
    priority_total_ = 0.0;
    for (std::size_t s = 0; s < n_; ++s) {
        PPEP_ASSERT(sessions[s].priority >= 0.0,
                    "arbiter priority must be non-negative");
        PPEP_ASSERT(sessions[s].slo_floor_w >= 0.0,
                    "arbiter SLO floor must be non-negative");
        priority_[s] = sessions[s].priority;
        floor_[s] = sessions[s].slo_floor_w;
        const std::size_t t = sessions[s].tier
                                  ? *sessions[s].tier
                                  : s % n_tiers;
        PPEP_ASSERT(t < n_tiers, "arbiter tier index out of range");
        tier_[s] = t;
        priority_total_ += priority_[s];
    }

    pred_w_.assign(n_ * stride_, 0.0);
    ips_.assign(n_ * stride_, 0.0);
    n_rows_.assign(n_, 0);
    measured_.assign(n_, 0.0);
    caps_.assign(n_, kInf);
    prev_cap_.assign(n_, kInf);
    throttled_.assign(n_, 0.0);
    desired_.assign(n_, 0.0);

    onConfigured();
}

void
FleetArbiter::gather(std::size_t s, const model::VfPrediction *rows,
                     std::size_t n, double measured_w) PPEP_NONBLOCKING
{
    measured_[s] = measured_w;
    if (rows == nullptr || n == 0) {
        n_rows_[s] = 0;
        return;
    }
    const std::size_t take = std::min(n, stride_);
    double *pred = pred_w_.data() + s * stride_;
    double *ips = ips_.data() + s * stride_;
    for (std::size_t k = 0; k < take; ++k) {
        pred[k] = rows[k].chip_power_w;
        ips[k] = rows[k].total_ips;
    }
    n_rows_[s] = take;
}

void
FleetArbiter::decide(std::size_t interval)
    PPEP_NONBLOCKING PPEP_REQUIRES(kArbiterSerialRole)
{
    const double b_now = budget_.capAt(interval);
    // Caps installed now govern the *next* interval, exactly like a
    // governor's decide; the budget they must meet is next interval's.
    const double b_next = budget_.capAt(interval + 1);

    // Each lane's unconstrained demand: predicted power at its
    // max-throughput VF (ties to the lower index), for throttled-watt
    // accounting. Blind lanes demand nothing measurable.
    for (std::size_t s = 0; s < n_; ++s) {
        const std::size_t rows = n_rows_[s];
        if (rows == 0) {
            desired_[s] = 0.0;
            continue;
        }
        const double *pred = pred_w_.data() + s * stride_;
        const double *ips = ips_.data() + s * stride_;
        std::size_t best = 0;
        for (std::size_t k = 1; k < rows; ++k)
            if (ips[k] > ips[best])
                best = k;
        desired_[s] = pred[best];
    }

    decideImpl(interval, b_next);

    for (std::size_t s = 0; s < n_; ++s) {
        const double cap = caps_[s];
        throttled_[s] =
            (n_rows_[s] > 0 && finiteBudget(cap))
                ? std::max(0.0, desired_[s] - cap)
                : 0.0;
    }

    double sum_measured = 0.0;
    for (std::size_t s = 0; s < n_; ++s)
        sum_measured += measured_[s];

    last_violation_ = false;
    if (finiteBudget(b_now)) {
        // Latch only on genuine measured overshoot of the budget that
        // actually governed this interval.
        if (sum_measured > b_now) {
            ++violation_intervals_;
            last_violation_ = true;
        }
        if (interval > 0 && b_now < budget_.capAt(interval - 1)) {
            ++budget_drops_;
            settling_ = true;
            settle_count_ = 0;
        }
        if (settling_) {
            ++settle_count_;
            // Same 2% grace band as governor::meanSettleIntervals.
            if (sum_measured <= b_now * 1.02) {
                settle_sum_ += static_cast<double>(settle_count_);
                settle_max_ = std::max(settle_max_, settle_count_);
                ++settle_events_;
                settling_ = false;
            }
        }
        headroom_sum_w_ += headroom_last_;
        headroom_min_w_ = std::min(headroom_min_w_, headroom_last_);
        ++headroom_samples_;
    }
    if (finiteBudget(b_next)) {
        double cap_sum = 0.0;
        for (std::size_t s = 0; s < n_; ++s)
            cap_sum += caps_[s];
        // FP tolerance: the sweep subtracts grants from a running
        // remainder, so the sum can sit within an ulp of the budget.
        if (cap_sum > b_next * (1.0 + 1e-9) + 1e-6)
            ++cap_sum_violations_;
    }
    ++intervals_;

    // Lanes must re-gather every interval; stale rows never carry over.
    for (std::size_t s = 0; s < n_; ++s)
        n_rows_[s] = 0;
}

void
FleetArbiter::noteDecideSeconds(double s) PPEP_NONBLOCKING
{
    decide_sum_s_ += s;
    decide_max_s_ = std::max(decide_max_s_, s);
    ++decide_samples_;
}

ArbiterReport
FleetArbiter::report() const
{
    ArbiterReport r;
    r.active = true;
    r.policy = policyName();
    r.final_budget_w =
        intervals_ ? budget_.capAt(intervals_ - 1) : budget_.capAt(0);
    r.intervals = intervals_;
    r.violation_intervals = violation_intervals_;
    r.infeasible_intervals = infeasible_intervals_;
    r.cap_sum_violations = cap_sum_violations_;
    if (headroom_samples_) {
        r.mean_headroom_w =
            headroom_sum_w_ / static_cast<double>(headroom_samples_);
        r.min_headroom_w = headroom_min_w_;
    }
    if (decide_samples_) {
        r.mean_decide_s =
            decide_sum_s_ / static_cast<double>(decide_samples_);
        r.max_decide_s = decide_max_s_;
    }
    r.budget_drops = budget_drops_;
    if (settle_events_) {
        r.mean_settle_intervals =
            settle_sum_ / static_cast<double>(settle_events_);
        r.max_settle_intervals = settle_max_;
    }
    return r;
}

// ---------------------------------------------------------------------------
// BudgetArbiter: the single-pass predictive sweep.
// ---------------------------------------------------------------------------

void
BudgetArbiter::onConfigured()
{
    row_order_.assign(stride_, 0);
    hull_p_.assign(stride_, 0.0);
    hull_i_.assign(stride_, 0.0);
    const std::size_t max_steps = n_ * stride_;
    step_dp_.assign(max_steps, 0.0);
    step_score_.assign(max_steps, 0.0);
    step_sess_.assign(max_steps, 0);
    order_.assign(max_steps, 0);
    base_w_.assign(n_, 0.0);
    alloc_w_.assign(n_, 0.0);
    chosen_pred_w_.assign(n_, 0.0);
    frozen_.assign(n_, 0);
    sighted_.assign(n_, 0);
    const std::size_t n_tiers = tier_budget_w_.size();
    tier_rem_w_.assign(n_tiers, 0.0);
    tier_prio_.assign(n_tiers, 0.0);
    tier_give_w_.assign(n_tiers, 0.0);
}

void
BudgetArbiter::decideImpl(std::size_t /*interval*/,
                          double next_budget_w) PPEP_NONBLOCKING
{
    const double b = next_budget_w;
    if (!finiteBudget(b)) {
        for (std::size_t s = 0; s < n_; ++s) {
            caps_[s] = kInf;
            prev_cap_[s] = kInf;
        }
        headroom_last_ = kInf;
        return;
    }

    const std::size_t n_tiers = tier_budget_w_.size();

    // Base allocation: sighted lanes start at their min-power VF (or
    // their SLO floor if higher); blind lanes take a priority-
    // proportional share of the budget outright — the cold-start /
    // degraded fallback — and are excluded from the sweep.
    double sum_base = 0.0;
    for (std::size_t t = 0; t < n_tiers; ++t)
        tier_rem_w_[t] = tier_budget_w_[t];
    for (std::size_t s = 0; s < n_; ++s) {
        const std::size_t rows = n_rows_[s];
        sighted_[s] = rows > 0 ? 1 : 0;
        frozen_[s] = 0;
        double base;
        if (rows > 0) {
            const double *pred = pred_w_.data() + s * stride_;
            std::size_t vmin = 0;
            for (std::size_t k = 1; k < rows; ++k)
                if (pred[k] < pred[vmin])
                    vmin = k;
            base = std::max(pred[vmin], floor_[s]);
            chosen_pred_w_[s] = pred[vmin];
        } else {
            const double share =
                priority_total_ > 0.0
                    ? b * priority_[s] / priority_total_
                    : b / static_cast<double>(n_);
            base = std::max(floor_[s], share);
            if (priority_[s] == 0.0)
                base = std::max(floor_[s], 0.0);
            chosen_pred_w_[s] = base;
        }
        alloc_w_[s] = base;
        base_w_[s] = base;
        sum_base += base;
        if (finiteBudget(tier_budget_w_[tier_[s]]))
            tier_rem_w_[tier_[s]] -= base;
    }

    double rem = b - sum_base;
    // Tolerance: blind priority shares sum to the budget by
    // construction, and FP summation can land an ulp above it — that
    // is not an infeasible interval.
    if (rem < -(b * 1e-12 + 1e-9)) {
        // Floors/blind shares alone exceed the budget: scale every
        // allocation proportionally so the contract still holds.
        ++infeasible_intervals_;
        const double scale = sum_base > 0.0 ? b / sum_base : 0.0;
        double pred_sum = 0.0;
        for (std::size_t s = 0; s < n_; ++s) {
            const double cap = alloc_w_[s] * scale;
            caps_[s] = cap;
            prev_cap_[s] = cap;
            pred_sum += std::min(chosen_pred_w_[s], cap);
        }
        headroom_last_ = b - pred_sum;
        return;
    }
    for (std::size_t t = 0; t < n_tiers; ++t)
        tier_rem_w_[t] = std::max(0.0, tier_rem_w_[t]);

    // Build every sighted lane's upper concave hull over its
    // (power, throughput) points and emit the hull steps into one
    // global table. Within a lane, marginal throughput per watt is
    // non-increasing along the hull, so a single globally sorted
    // greedy sweep with freeze-on-skip is optimal for the relaxation.
    std::size_t n_steps = 0;
    for (std::size_t s = 0; s < n_; ++s) {
        if (!sighted_[s])
            continue;
        const std::size_t rows = n_rows_[s];
        const double *pred = pred_w_.data() + s * stride_;
        const double *ips = ips_.data() + s * stride_;
        // Rows by ascending power (ties to the lower VF index); an
        // insertion sort over <= stride_ entries, deterministic.
        for (std::size_t k = 0; k < rows; ++k) {
            std::size_t j = k;
            while (j > 0 && pred[row_order_[j - 1]] > pred[k]) {
                row_order_[j] = row_order_[j - 1];
                --j;
            }
            row_order_[j] = k;
        }
        // Upper hull from the min-power point upward: skip dominated
        // points, pop while the new slope would not decrease.
        std::size_t hn = 0;
        for (std::size_t k = 0; k < rows; ++k) {
            const std::size_t r = row_order_[k];
            const double p = pred[r];
            const double i = ips[r];
            if (hn > 0 &&
                (p <= hull_p_[hn - 1] || i <= hull_i_[hn - 1]))
                continue;
            while (hn >= 2) {
                const double dp1 = hull_p_[hn - 1] - hull_p_[hn - 2];
                const double di1 = hull_i_[hn - 1] - hull_i_[hn - 2];
                const double dp2 = p - hull_p_[hn - 1];
                const double di2 = i - hull_i_[hn - 1];
                // Keep the previous point only while its slope is
                // strictly steeper than the candidate's.
                if (di1 * dp2 > di2 * dp1)
                    break;
                --hn;
            }
            hull_p_[hn] = p;
            hull_i_[hn] = i;
            ++hn;
        }
        for (std::size_t h = 1; h < hn; ++h) {
            const double dp = hull_p_[h] - hull_p_[h - 1];
            const double di = hull_i_[h] - hull_i_[h - 1];
            step_dp_[n_steps] = dp;
            step_score_[n_steps] =
                dp > 0.0 ? priority_[s] * di / dp : 0.0;
            step_sess_[n_steps] = static_cast<std::uint32_t>(s);
            order_[n_steps] = static_cast<std::uint32_t>(n_steps);
            ++n_steps;
        }
    }

    // Steps were appended lane by lane, so index order is (session,
    // hull position) lexicographic; sorting by (score desc, index asc)
    // therefore keeps each lane's hull order among ties, and the
    // whole ordering is a pure function of the gathered table.
    // rt-escape: std::sort over a raw index array — opaque to the
    // effect analysis through the library template, but introsort is
    // in-place and allocation-free for PODs; RTSan keeps checking it.
    PPEP_RT_OPAQUE_BEGIN
    std::sort(order_.begin(),
              order_.begin() + static_cast<std::ptrdiff_t>(n_steps),
              [this](std::uint32_t a, std::uint32_t b2) {
                  if (step_score_[a] != step_score_[b2])
                      return step_score_[a] > step_score_[b2];
                  return a < b2;
              });
    PPEP_RT_OPAQUE_END

    // The sweep: grant hull steps in score order while both the global
    // remainder and the lane's tier remainder can pay for them. A lane
    // whose step is skipped freezes — granting a later (cheaper-rate)
    // step without its predecessor would leave the hull.
    for (std::size_t k = 0; k < n_steps; ++k) {
        const std::uint32_t idx = order_[k];
        const std::size_t s = step_sess_[idx];
        if (frozen_[s])
            continue;
        const double dp = step_dp_[idx];
        const std::size_t t = tier_[s];
        if (dp <= rem && dp <= tier_rem_w_[t]) {
            rem -= dp;
            tier_rem_w_[t] -= dp;
            alloc_w_[s] += dp;
            chosen_pred_w_[s] += dp;
        } else {
            frozen_[s] = 1;
        }
    }

    // Leftover headroom: split by priority among sighted lanes within
    // tier limits. Accumulator clamping keeps the grants numerically
    // under both the global remainder and each tier's.
    if (rem > 1e-12) {
        for (std::size_t t = 0; t < n_tiers; ++t)
            tier_prio_[t] = 0.0;
        double prio_sighted = 0.0;
        for (std::size_t s = 0; s < n_; ++s) {
            if (!sighted_[s])
                continue;
            tier_prio_[tier_[s]] += priority_[s];
            prio_sighted += priority_[s];
        }
        if (prio_sighted > 0.0) {
            double global_acc = rem;
            for (std::size_t t = 0; t < n_tiers; ++t) {
                const double want =
                    rem * tier_prio_[t] / prio_sighted;
                const double give = std::min(
                    {tier_rem_w_[t], want, global_acc});
                tier_give_w_[t] = std::max(0.0, give);
                global_acc -= tier_give_w_[t];
            }
            for (std::size_t t = 0; t < n_tiers; ++t)
                tier_rem_w_[t] = tier_give_w_[t];
            for (std::size_t s = 0; s < n_; ++s) {
                if (!sighted_[s] || priority_[s] <= 0.0)
                    continue;
                const std::size_t t = tier_[s];
                const double want = tier_give_w_[t] * priority_[s] /
                                    tier_prio_[t];
                const double d = std::min(want, tier_rem_w_[t]);
                tier_rem_w_[t] -= d;
                alloc_w_[s] += d;
            }
        }
    }

    // Hysteresis: a raise smaller than the threshold keeps the old
    // (smaller) cap, so near-balanced allocations don't thrash;
    // lowering always applies, so the budget sum is preserved.
    double pred_sum = 0.0;
    for (std::size_t s = 0; s < n_; ++s) {
        double cap = alloc_w_[s];
        if (cap > prev_cap_[s] && cap - prev_cap_[s] < hysteresis_w_)
            cap = prev_cap_[s];
        caps_[s] = cap;
        prev_cap_[s] = cap;
        pred_sum += std::min(chosen_pred_w_[s], cap);
    }
    headroom_last_ = b - pred_sum;
}

// ---------------------------------------------------------------------------
// IterativeFleetArbiter: the reactive baseline.
// ---------------------------------------------------------------------------

void
IterativeFleetArbiter::decideImpl(std::size_t /*interval*/,
                                  double next_budget_w) PPEP_NONBLOCKING
{
    const double b = next_budget_w;
    if (!finiteBudget(b)) {
        for (std::size_t s = 0; s < n_; ++s)
            caps_[s] = kInf;
        headroom_last_ = kInf;
        initialised_ = false;
        return;
    }
    if (!initialised_) {
        for (std::size_t s = 0; s < n_; ++s) {
            const double share =
                priority_total_ > 0.0
                    ? b * priority_[s] / priority_total_
                    : b / static_cast<double>(n_);
            caps_[s] = std::max(floor_[s], share);
        }
        initialised_ = true;
    }
    double sum_measured = 0.0;
    for (std::size_t s = 0; s < n_; ++s)
        sum_measured += measured_[s];
    if (sum_measured > b) {
        // Over budget: every cap steps down by one fixed watt
        // increment — the fleet-scale analogue of the per-node
        // IterativeCappingGovernor's one-VF-state-per-interval search
        // the paper contrasts against.
        for (std::size_t s = 0; s < n_; ++s)
            caps_[s] = std::max(floor_[s], caps_[s] - step_w_);
    } else if (sum_measured < b - raise_margin_w_) {
        double cap_sum = 0.0;
        for (std::size_t s = 0; s < n_; ++s)
            cap_sum += caps_[s];
        for (std::size_t s = 0; s < n_; ++s) {
            if (cap_sum + step_w_ > b)
                break;
            caps_[s] += step_w_;
            cap_sum += step_w_;
        }
    }
    headroom_last_ = b - sum_measured;
}

std::unique_ptr<FleetArbiter>
makeArbiter(const ArbiterSpec &spec,
            const std::vector<FleetArbiter::SessionSetup> &sessions)
{
    std::unique_ptr<FleetArbiter> arb;
    if (spec.iterative)
        arb = std::make_unique<IterativeFleetArbiter>();
    else
        arb = std::make_unique<BudgetArbiter>();
    arb->configure(spec, sessions);
    return arb;
}

} // namespace ppep::runtime
