/**
 * @file
 * Telemetry sink that records a governed run into a replay stream.
 *
 * A RecorderSink captures exactly what a later trace::ReplaySource
 * needs to re-drive the governor/telemetry pipeline without
 * simulation: the interval record, its telemetry context (time, cap),
 * and — on hardened sessions — the digest-relevant health counters.
 * Frames buffer in the wrapped ReplayStreamBuilder; the caller
 * assembles one or more builders into a file with
 * trace::writeReplayFile() after the run.
 */

#ifndef PPEP_RUNTIME_RECORDER_HPP
#define PPEP_RUNTIME_RECORDER_HPP

#include <cstdint>
#include <string>

#include "ppep/runtime/telemetry.hpp"
#include "ppep/trace/replay.hpp"

namespace ppep::runtime {

/** Records each observed interval as one replay frame. */
class RecorderSink : public TelemetrySink
{
  public:
    /**
     * @param name        stream name stored in the file (session name).
     * @param fingerprint platformFingerprint of the recorded chip.
     * @param with_health record the health block (hardened sessions).
     */
    RecorderSink(std::string name, std::uint64_t fingerprint,
                 std::size_t n_cores, std::size_t n_cus,
                 bool with_health);

    void onInterval(const IntervalTelemetry &t) override;

    /** The accumulated stream, for trace::writeReplayFile(). */
    const trace::ReplayStreamBuilder &stream() const { return builder_; }

    bool failed() const override { return failed_; }
    std::string error() const override { return error_; }

  private:
    trace::ReplayStreamBuilder builder_;
    bool failed_ = false;
    std::string error_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_RECORDER_HPP
