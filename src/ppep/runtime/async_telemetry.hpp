/**
 * @file
 * Asynchronous telemetry: a bounded SPSC ring between the governing
 * thread and a dedicated writer thread.
 *
 * Serialising telemetry (CSV/JSONL formatting, stream writes) on the
 * governing thread puts disk latency inside the 200 ms control loop. An
 * AsyncTelemetrySink moves it off: onInterval() deep-copies the
 * interval into a preallocated ring slot (the IntervalTelemetry
 * pointers are only valid during the callback) and returns; a writer
 * thread drains slots into the wrapped sink in order.
 *
 * The ring is bounded and the producer *blocks* when it is full —
 * backpressure, never loss: a slow disk throttles the session rather
 * than silently dropping intervals. One sink serves one session
 * (single producer); the fleet attaches one per session.
 */

#ifndef PPEP_RUNTIME_ASYNC_TELEMETRY_HPP
#define PPEP_RUNTIME_ASYNC_TELEMETRY_HPP

#include <cstddef>
#include <thread>
#include <vector>

#include "ppep/runtime/telemetry.hpp"
#include "ppep/runtime/tenant.hpp"
#include "ppep/util/sync.hpp"

namespace ppep::runtime {

/** Decouples a wrapped sink from the governing thread via a bounded
 *  ring and a writer thread. See file comment for the contract. */
class AsyncTelemetrySink : public TelemetrySink
{
  public:
    /**
     * @param wrapped  sink to drain into; owned by the caller, must
     *                 outlive this object. After construction it is
     *                 touched only from the writer thread (and from
     *                 flush()/close(), which drain first).
     * @param capacity ring depth in intervals (> 0). The producer
     *                 blocks once this many intervals are in flight.
     */
    explicit AsyncTelemetrySink(TelemetrySink &wrapped,
                                std::size_t capacity = 64);

    ~AsyncTelemetrySink() override;

    AsyncTelemetrySink(const AsyncTelemetrySink &) = delete;
    AsyncTelemetrySink &operator=(const AsyncTelemetrySink &) = delete;

    /** Deep-copy the interval into the ring; blocks while full. A
     *  producer still blocked here when close() lands dies loudly
     *  (PPEP_FATAL) instead of hanging or losing the interval — see
     *  the single-producer contract in the class comment. */
    void onInterval(const IntervalTelemetry &t) override PPEP_EXCLUDES(mu_);

    /** Drain, then finish() the wrapped sink. */
    void finish() override PPEP_EXCLUDES(mu_);

    /** Drain, then flush() the wrapped sink (the durability point). */
    void flush() override PPEP_EXCLUDES(mu_);

    /** Drain, stop the writer thread, close() the wrapped sink.
     *  Idempotent; implied by destruction. */
    void close() override PPEP_EXCLUDES(mu_);

    /** Wrapped sink's failure state (meaningful after a drain). */
    bool failed() const override;
    std::string error() const override;

    /** High-water mark of in-flight intervals (observability). */
    std::size_t maxDepth() const PPEP_EXCLUDES(mu_);

    /** Cumulative wall time the writer thread spent inside the wrapped
     *  sink's onInterval() — i.e. encode + write cost moved off the
     *  governing thread (observability; bench_fleet reports it). */
    double encodeSeconds() const PPEP_EXCLUDES(mu_);

    /** Intervals handed off to the wrapped sink so far. */
    std::size_t encodedIntervals() const PPEP_EXCLUDES(mu_);

  private:
    /** One ring entry: the telemetry plus deep copies of everything it
     *  points at, re-pointed before hand-off. */
    struct Slot
    {
        IntervalTelemetry t;
        trace::IntervalRecord rec;
        std::vector<std::size_t> cu_vf;
        std::vector<model::VfPrediction> exploration;
        bool has_exploration = false;
        SampleHealth health;
        bool has_health = false;
        TenantAttribution tenants;
        std::vector<std::string> tenant_names;
        bool has_tenants = false;
    };

    void writerLoop() PPEP_EXCLUDES(mu_);
    /** Blocks until every enqueued interval has been handed off. */
    void drain() PPEP_EXCLUDES(mu_);

    TelemetrySink &wrapped_;
    /** The slots themselves are NOT guarded by mu_: ownership of
     *  ring_[head_] transfers to the writer under the lock, which then
     *  formats/writes it unlocked — the producer cannot reuse the slot
     *  until size_ (guarded) drops below capacity, which only happens
     *  when the writer re-takes mu_ after the hand-off. The vector
     *  never resizes after construction. */
    std::vector<Slot> ring_;

    mutable util::Mutex mu_;
    /** Producer waits: size_ < ring_.size() || closed_. */
    util::CondVar producer_cv_;
    /** Writer waits: size_ > 0 || stop_. */
    util::CondVar writer_cv_;
    /** drain() waits: size_ == 0. */
    util::CondVar drained_cv_;
    /** Next slot the writer consumes. */
    std::size_t head_ PPEP_GUARDED_BY(mu_) = 0;
    /** Slots in flight. */
    std::size_t size_ PPEP_GUARDED_BY(mu_) = 0;
    std::size_t max_depth_ PPEP_GUARDED_BY(mu_) = 0;
    /** Wrapped onInterval() wall time. */
    double encode_s_ PPEP_GUARDED_BY(mu_) = 0.0;
    /** Intervals handed off. */
    std::size_t encoded_count_ PPEP_GUARDED_BY(mu_) = 0;
    bool stop_ PPEP_GUARDED_BY(mu_) = false;
    bool closed_ PPEP_GUARDED_BY(mu_) = false;

    std::thread writer_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_ASYNC_TELEMETRY_HPP
