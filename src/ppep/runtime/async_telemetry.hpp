/**
 * @file
 * Asynchronous telemetry: a bounded SPSC ring between the governing
 * thread and a dedicated writer thread.
 *
 * Serialising telemetry (CSV/JSONL formatting, stream writes) on the
 * governing thread puts disk latency inside the 200 ms control loop. An
 * AsyncTelemetrySink moves it off: onInterval() deep-copies the
 * interval into a preallocated ring slot (the IntervalTelemetry
 * pointers are only valid during the callback) and returns; a writer
 * thread drains slots into the wrapped sink in order.
 *
 * The ring is bounded and the producer *blocks* when it is full —
 * backpressure, never loss: a slow disk throttles the session rather
 * than silently dropping intervals. One sink serves one session
 * (single producer); the fleet attaches one per session.
 */

#ifndef PPEP_RUNTIME_ASYNC_TELEMETRY_HPP
#define PPEP_RUNTIME_ASYNC_TELEMETRY_HPP

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "ppep/runtime/telemetry.hpp"
#include "ppep/runtime/tenant.hpp"

namespace ppep::runtime {

/** Decouples a wrapped sink from the governing thread via a bounded
 *  ring and a writer thread. See file comment for the contract. */
class AsyncTelemetrySink : public TelemetrySink
{
  public:
    /**
     * @param wrapped  sink to drain into; owned by the caller, must
     *                 outlive this object. After construction it is
     *                 touched only from the writer thread (and from
     *                 flush()/close(), which drain first).
     * @param capacity ring depth in intervals (> 0). The producer
     *                 blocks once this many intervals are in flight.
     */
    explicit AsyncTelemetrySink(TelemetrySink &wrapped,
                                std::size_t capacity = 64);

    ~AsyncTelemetrySink() override;

    AsyncTelemetrySink(const AsyncTelemetrySink &) = delete;
    AsyncTelemetrySink &operator=(const AsyncTelemetrySink &) = delete;

    /** Deep-copy the interval into the ring; blocks while full. */
    void onInterval(const IntervalTelemetry &t) override;

    /** Drain, then finish() the wrapped sink. */
    void finish() override;

    /** Drain, then flush() the wrapped sink (the durability point). */
    void flush() override;

    /** Drain, stop the writer thread, close() the wrapped sink.
     *  Idempotent; implied by destruction. */
    void close() override;

    /** Wrapped sink's failure state (meaningful after a drain). */
    bool failed() const override;
    std::string error() const override;

    /** High-water mark of in-flight intervals (observability). */
    std::size_t maxDepth() const;

    /** Cumulative wall time the writer thread spent inside the wrapped
     *  sink's onInterval() — i.e. encode + write cost moved off the
     *  governing thread (observability; bench_fleet reports it). */
    double encodeSeconds() const;

    /** Intervals handed off to the wrapped sink so far. */
    std::size_t encodedIntervals() const;

  private:
    /** One ring entry: the telemetry plus deep copies of everything it
     *  points at, re-pointed before hand-off. */
    struct Slot
    {
        IntervalTelemetry t;
        trace::IntervalRecord rec;
        std::vector<std::size_t> cu_vf;
        std::vector<model::VfPrediction> exploration;
        bool has_exploration = false;
        SampleHealth health;
        bool has_health = false;
        TenantAttribution tenants;
        std::vector<std::string> tenant_names;
        bool has_tenants = false;
    };

    void writerLoop();
    /** Blocks until every enqueued interval has been handed off. */
    void drain();

    TelemetrySink &wrapped_;
    std::vector<Slot> ring_;

    mutable std::mutex mu_;
    std::condition_variable producer_cv_;
    std::condition_variable writer_cv_;
    std::condition_variable drained_cv_;
    std::size_t head_ = 0; ///< next slot the writer consumes
    std::size_t size_ = 0; ///< slots in flight
    std::size_t max_depth_ = 0;
    double encode_s_ = 0.0;         ///< wrapped onInterval() wall time
    std::size_t encoded_count_ = 0; ///< intervals handed off
    bool stop_ = false;
    bool closed_ = false;

    std::thread writer_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_ASYNC_TELEMETRY_HPP
