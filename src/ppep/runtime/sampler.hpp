/**
 * @file
 * Hardened interval acquisition for governed runs.
 *
 * trace::Collector assumes perfect hardware: every sensor sample is
 * finite and plausible, every PMC read succeeds, every interval is
 * exactly ticks_per_interval long. The Sampler assumes none of that. It
 * owns the acquisition path a production daemon needs:
 *
 *  - bounded retry on failed PMC read-outs, with tick-count
 *    normalisation when a retry finally reads a multi-interval window
 *    (the wraparound-safe-delta discipline applied at interval scale);
 *  - per-sample sanity guards: NaN/Inf rejection and physical range
 *    clamps on the sensor and diode streams, CPI-plausibility rejection
 *    of counter sets corrupted by wraparound or saturation;
 *  - last-good substitution with a staleness budget: a core whose
 *    counters cannot be trusted reports its last sane interval, up to
 *    policy.staleness_budget intervals, after which it degrades to the
 *    defined all-zero (halted-core) sentinel rather than stale lies;
 *  - interval-timing tolerance: jittered/overrun intervals report their
 *    true duration so downstream rate math stays correct.
 *
 * Every intervention is counted in a SampleHealth record, which the
 * HealthMonitor and telemetry sinks consume. On clean hardware the
 * Sampler's records are identical to the Collector's.
 */

#ifndef PPEP_RUNTIME_SAMPLER_HPP
#define PPEP_RUNTIME_SAMPLER_HPP

#include <cstddef>
#include <vector>

#include "ppep/sim/chip.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/trace/interval.hpp"

namespace ppep::runtime {

/** Acquisition limits and plausibility windows. */
struct SamplerPolicy
{
    /** Retries after a failed PMC read-out (attempts = retries + 1). */
    std::size_t max_read_retries = 3;

    /** Intervals a core may substitute last-good counts before it
     *  degrades to the all-zero halted sentinel. */
    std::size_t staleness_budget = 5;

    /** Plausible thermal-diode window, kelvin. Outside = glitch. */
    double min_temp_k = 230.0;
    double max_temp_k = 420.0;

    /** Plausible sensor-power window, watts. Outside = glitch. */
    double min_power_w = 0.0;
    double max_power_w = 1000.0;

    /** CPI plausibility window for a core that retired instructions;
     *  outside it the counter set is treated as corrupted (wraparound
     *  makes CPI absurdly small, saturation absurdly large). */
    double min_cpi = 0.05;
    double max_cpi = 500.0;

    /** Per-tick event-count ceiling as a multiple of the fastest
     *  state's cycles per interval; counts above it are corrupt. */
    double max_events_per_cycle = 8.0;
};

/** Everything the Sampler did to one interval (plus cumulative state). */
struct SampleHealth
{
    // --- this interval --------------------------------------------------
    /** Failed PMC read-out attempts that were retried. */
    std::size_t msr_retries = 0;
    /** Cores whose read-out failed every attempt this interval. */
    std::size_t msr_failed_cores = 0;
    /** Cores whose counter set failed the sanity guards. */
    std::size_t pmc_rejected_cores = 0;
    /** Cores reporting last-good substitute counts. */
    std::size_t substituted_cores = 0;
    /** Cores degraded to the all-zero sentinel (budget exhausted). */
    std::size_t zeroed_cores = 0;
    /** Sensor samples rejected (NaN/Inf or outside the window). */
    std::size_t sensor_rejects = 0;
    /** Diode samples rejected. */
    std::size_t diode_rejects = 0;
    /** Ticks this interval actually ran. */
    std::size_t ticks = 0;
    /** True when ticks != the configured nominal interval length. */
    bool timing_overrun = false;

    /** Fault-relevant events this interval (the health-policy input). */
    std::size_t faultEvents() const
    {
        return msr_retries + msr_failed_cores + pmc_rejected_cores +
               substituted_cores + zeroed_cores + sensor_rejects +
               diode_rejects + (timing_overrun ? 1 : 0);
    }

    // --- cumulative since construction ----------------------------------
    /** Snapshot of the chip injector's counters (zero when absent). */
    sim::FaultCounters injected{};
    /** Total PMC wraparounds the hardware performed. */
    std::size_t pmc_wrap_events = 0;
    /** Running sum of faultEvents() over all intervals. */
    std::size_t total_fault_events = 0;
};

/** Hardened tick-accurate interval acquisition bound to one chip. */
class Sampler : public trace::TickedIntervalSource
{
  public:
    explicit Sampler(sim::Chip &chip, SamplerPolicy policy = {});

    /** Run one interval with the full retry/guard/substitute path. */
    trace::IntervalRecord collectInterval() override;

    /** Allocation-free collectInterval() (bit-identical records). */
    void collectIntervalInto(trace::IntervalRecord &rec) PPEP_NONBLOCKING
        override;

    // Split interval protocol for the batched fleet driver; the fused
    // path above is these three calls with the chip stepped between
    // them (bit-identical by construction). beginIntervalInto() also
    // draws the fault injector's interval jitter, so it must run
    // before the first tick exactly as the fused path does.
    std::size_t beginIntervalInto(trace::IntervalRecord &rec)
        PPEP_NONBLOCKING override;
    void consumeTick(trace::IntervalRecord &rec,
                     const sim::TickResult &tick) PPEP_NONBLOCKING
        override;
    void finishIntervalInto(trace::IntervalRecord &rec) PPEP_NONBLOCKING
        override;

    /** Health record of the most recent interval. */
    const SampleHealth &lastHealth() const { return health_; }

    /** The acquisition policy in force. */
    const SamplerPolicy &policy() const { return policy_; }

  private:
    /** True when a counter set passes the sanity guards. */
    bool countsPlausible(const sim::EventVector &counts,
                         double duration_s) const PPEP_NONBLOCKING;

    sim::Chip &chip_;
    SamplerPolicy policy_;
    SampleHealth health_;

    /** Per-interval scratch reused by collectIntervalInto(). */
    sim::TickResult tick_;
    std::vector<double> retired_;

    // Open-interval accumulators shared by the fused and split paths.
    std::size_t interval_ticks_ = 0;
    double sensor_sum_ = 0.0;
    double diode_sum_ = 0.0;
    std::size_t sensor_ok_ = 0;
    std::size_t diode_ok_ = 0;

    // Last-good state for substitution.
    std::vector<sim::EventVector> last_good_pmc_;
    std::vector<std::size_t> staleness_;
    double last_good_power_w_;
    double last_good_temp_k_;
};

} // namespace ppep::runtime

#endif // PPEP_RUNTIME_SAMPLER_HPP
