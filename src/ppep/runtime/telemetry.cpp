#include "ppep/runtime/telemetry.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>

#include "ppep/runtime/tenant.hpp"
#include "ppep/sim/events.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::runtime {

namespace {

std::unique_ptr<std::ostream>
openFile(const std::string &path)
{
    auto f = std::make_unique<std::ofstream>(path);
    if (!f->is_open())
        PPEP_FATAL("cannot open telemetry output '", path, "'");
    return f;
}

double
totalIps(const trace::IntervalRecord &rec)
{
    double inst = 0.0;
    for (const auto &core : rec.pmc)
        inst += core[sim::eventIndex(sim::Event::RetiredInst)];
    return rec.duration_s > 0.0 ? inst / rec.duration_s : 0.0;
}

double
coreIps(const trace::IntervalRecord &rec, std::size_t c)
{
    const double inst =
        rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)];
    return rec.duration_s > 0.0 ? inst / rec.duration_s : 0.0;
}

} // namespace

// --- CsvSink -------------------------------------------------------------

CsvSink::CsvSink(std::ostream &out) : out_(&out) {}

CsvSink::CsvSink(const std::string &path)
    : owned_(openFile(path)), path_(path)
{
    out_ = owned_.get();
}

CsvSink::~CsvSink() = default;

std::ostream &
CsvSink::stream()
{
    return *out_;
}

void
CsvSink::checkStream()
{
    if (failed_ || *out_)
        return;
    failed_ = true;
    error_ = "csv telemetry write failed" +
             (path_.empty() ? std::string() : " ('" + path_ + "')");
}

void
CsvSink::onInterval(const IntervalTelemetry &t)
{
    auto &os = stream();
    if (!header_written_) {
        // The layout is derived from the session's chip config (via the
        // sizes the first interval carries): one VF column per CU, one
        // IPS column per core, so a Phenom II session and an FX-class
        // session in one fleet each get their own correct header.
        // Fault columns appear only on hardened runs; tenant columns
        // only on sessions that define tenants.
        with_health_ = t.health != nullptr;
        with_recal_ = t.recal_active;
        with_tenants_ = t.tenants != nullptr;
        os << "interval,time_s,cap_w";
        for (std::size_t i = 0; i < t.cu_vf->size(); ++i)
            os << ",cu" << i << "_vf";
        os << ",measured_power_w,predicted_power_w,diode_temp_k,"
              "total_ips";
        for (std::size_t c = 0; c < t.rec->pmc.size(); ++c)
            os << ",core" << c << "_ips";
        os << ",decision_latency_us";
        if (with_health_)
            os << ",fault_events,substituted_cores,zeroed_cores,"
                  "sensor_rejects,diode_rejects,degraded,"
                  "divergence_ewma_w";
        if (with_recal_)
            os << ",model_gen,recal_triggers,recal_accepted,"
                  "recal_rejected";
        if (with_tenants_) {
            for (const auto &name : *t.tenant_names)
                os << ",tenant_" << name << "_w";
            os << ",unattributed_w";
        }
        os << '\n';
        header_written_ = true;
    }
    // Encode the whole row into the reused buffer (shortest
    // round-trip doubles, no locale, no per-cell allocation), then
    // hand the stream one write.
    encodeRow(t);
    os.write(row_.data(), static_cast<std::streamsize>(row_.size()));
    checkStream();
}

void
CsvSink::encodeRow(const IntervalTelemetry &t) PPEP_NONALLOCATING
{
    util::fmt::RowBuffer &row = row_;
    row.clear();
    row.appendU64(t.index);
    row.append(',');
    row.appendDouble(t.time_s);
    row.append(',');
    row.appendDouble(t.cap_w);
    for (std::size_t i = 0; i < t.cu_vf->size(); ++i) {
        row.append(',');
        row.appendU64((*t.cu_vf)[i]);
    }
    row.append(',');
    row.appendDouble(t.rec->sensor_power_w);
    row.append(',');
    if (std::isfinite(t.predicted_power_w))
        row.appendDouble(t.predicted_power_w);
    row.append(',');
    row.appendDouble(t.rec->diode_temp_k);
    row.append(',');
    row.appendDouble(totalIps(*t.rec));
    for (std::size_t c = 0; c < t.rec->pmc.size(); ++c) {
        row.append(',');
        row.appendDouble(coreIps(*t.rec, c));
    }
    row.append(',');
    row.appendDouble(t.decision_latency_s * 1e6);
    if (with_health_) {
        if (t.health) {
            row.append(',');
            row.appendU64(t.health->faultEvents());
            row.append(',');
            row.appendU64(t.health->substituted_cores);
            row.append(',');
            row.appendU64(t.health->zeroed_cores);
            row.append(',');
            row.appendU64(t.health->sensor_rejects);
            row.append(',');
            row.appendU64(t.health->diode_rejects);
            row.append(',');
            row.append(t.degraded ? '1' : '0');
            row.append(',');
            if (std::isfinite(t.divergence_ewma_w))
                row.appendDouble(t.divergence_ewma_w);
        } else {
            row.append(std::string_view{",0,0,0,0,0,0,"});
        }
    }
    if (with_recal_) {
        row.append(',');
        row.appendU64(t.model_generation);
        row.append(',');
        row.appendU64(t.recal_triggers);
        row.append(',');
        row.appendU64(t.recal_accepted);
        row.append(',');
        row.appendU64(t.recal_rejected);
    }
    if (with_tenants_ && t.tenants) {
        for (double w : t.tenants->total_w) {
            row.append(',');
            row.appendDouble(w);
        }
        row.append(',');
        row.appendDouble(t.tenants->unattributed_w);
    }
    row.append('\n');
}

void
CsvSink::finish()
{
    stream().flush();
    checkStream();
}

void
CsvSink::flush()
{
    stream().flush();
    checkStream();
}

void
CsvSink::close()
{
    auto *f = dynamic_cast<std::ofstream *>(owned_.get());
    if (f && !f->is_open())
        return; // already closed
    flush();
    if (f)
        f->close();
}

// --- JsonlSink -----------------------------------------------------------

JsonlSink::JsonlSink(std::ostream &out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string &path)
    : owned_(openFile(path)), path_(path)
{
    out_ = owned_.get();
}

JsonlSink::~JsonlSink() = default;

void
JsonlSink::checkStream()
{
    if (failed_ || *out_)
        return;
    failed_ = true;
    error_ = "jsonl telemetry write failed" +
             (path_.empty() ? std::string() : " ('" + path_ + "')");
}

void
JsonlSink::onInterval(const IntervalTelemetry &t)
{
    encodeRow(t);
    out_->write(row_.data(), static_cast<std::streamsize>(row_.size()));
    checkStream();
}

void
JsonlSink::encodeRow(const IntervalTelemetry &t) PPEP_NONALLOCATING
{
    util::fmt::RowBuffer &row = row_;
    row.clear();
    row.append(std::string_view{"{\"interval\":"});
    row.appendU64(t.index);
    row.append(std::string_view{",\"time_s\":"});
    row.appendJsonDouble(t.time_s);
    row.append(std::string_view{",\"cap_w\":"});
    row.appendJsonDouble(t.cap_w);
    row.append(std::string_view{",\"cu_vf\":["});
    for (std::size_t i = 0; i < t.cu_vf->size(); ++i) {
        if (i)
            row.append(',');
        row.appendU64((*t.cu_vf)[i]);
    }
    row.append(std::string_view{"],\"measured_power_w\":"});
    row.appendJsonDouble(t.rec->sensor_power_w);
    row.append(std::string_view{",\"predicted_power_w\":"});
    row.appendJsonDouble(t.predicted_power_w);
    row.append(std::string_view{",\"diode_temp_k\":"});
    row.appendJsonDouble(t.rec->diode_temp_k);
    row.append(std::string_view{",\"total_ips\":"});
    row.appendJsonDouble(totalIps(*t.rec));
    row.append(std::string_view{",\"core_ips\":["});
    for (std::size_t c = 0; c < t.rec->pmc.size(); ++c) {
        if (c)
            row.append(',');
        row.appendJsonDouble(coreIps(*t.rec, c));
    }
    row.append(std::string_view{"],\"decision_latency_us\":"});
    row.appendJsonDouble(t.decision_latency_s * 1e6);
    if (t.health) {
        row.append(std::string_view{",\"fault_events\":"});
        row.appendU64(t.health->faultEvents());
        row.append(std::string_view{",\"substituted_cores\":"});
        row.appendU64(t.health->substituted_cores);
        row.append(std::string_view{",\"zeroed_cores\":"});
        row.appendU64(t.health->zeroed_cores);
        row.append(std::string_view{",\"sensor_rejects\":"});
        row.appendU64(t.health->sensor_rejects);
        row.append(std::string_view{",\"diode_rejects\":"});
        row.appendU64(t.health->diode_rejects);
        row.append(std::string_view{",\"total_fault_events\":"});
        row.appendU64(t.health->total_fault_events +
                      t.health->faultEvents());
        row.append(std::string_view{",\"degraded\":"});
        row.append(std::string_view{t.degraded ? "true" : "false"});
        row.append(std::string_view{",\"divergence_ewma_w\":"});
        row.appendJsonDouble(t.divergence_ewma_w);
    }
    if (t.recal_active) {
        row.append(std::string_view{",\"model_gen\":"});
        row.appendU64(t.model_generation);
        row.append(std::string_view{",\"recal_triggers\":"});
        row.appendU64(t.recal_triggers);
        row.append(std::string_view{",\"recal_accepted\":"});
        row.appendU64(t.recal_accepted);
        row.append(std::string_view{",\"recal_rejected\":"});
        row.appendU64(t.recal_rejected);
    }
    if (t.tenants && t.tenant_names) {
        const TenantAttribution &a = *t.tenants;
        row.append(std::string_view{",\"tenants\":{"});
        for (std::size_t i = 0; i < t.tenant_names->size(); ++i) {
            if (i)
                row.append(',');
            row.append('"');
            row.append(std::string_view{(*t.tenant_names)[i]});
            row.append(std::string_view{"\":{\"dynamic_w\":"});
            row.appendJsonDouble(a.dynamic_w[i]);
            row.append(std::string_view{",\"idle_w\":"});
            row.appendJsonDouble(a.idle_w[i]);
            row.append(std::string_view{",\"total_w\":"});
            row.appendJsonDouble(a.total_w[i]);
            row.append('}');
        }
        row.append(std::string_view{"},\"unattributed_w\":"});
        row.appendJsonDouble(a.unattributed_w);
        row.append(std::string_view{",\"tenant_chip_total_w\":"});
        row.appendJsonDouble(a.chip_total_w);
    }
    row.append(std::string_view{"}\n"});
}

void
JsonlSink::finish()
{
    out_->flush();
    checkStream();
}

void
JsonlSink::flush()
{
    out_->flush();
    checkStream();
}

void
JsonlSink::close()
{
    auto *f = dynamic_cast<std::ofstream *>(owned_.get());
    if (f && !f->is_open())
        return; // already closed
    flush();
    if (f)
        f->close();
}

// --- DigestSink ----------------------------------------------------------

void
DigestSink::mixU64(std::uint64_t v) PPEP_NONBLOCKING
{
    // Wide FNV-1a variant: fold all 8 bytes in one xor-multiply step.
    // The byte-at-a-time form costs eight serially dependent multiplies
    // per word; at ~260 words per interval that chain alone dominated
    // replay ingest. One multiply per word keeps full avalanche for the
    // bit-identity witness at an eighth of the latency.
    hash_ ^= v;
    hash_ *= 1099511628211ULL;
}

void
DigestSink::mixDouble(double v) PPEP_NONBLOCKING
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mixU64(bits);
}

void
DigestSink::onInterval(const IntervalTelemetry &t) PPEP_NONBLOCKING
{
    ++count_;
    mixU64(t.index);
    mixDouble(t.time_s);
    mixDouble(t.cap_w);
    mixDouble(t.predicted_power_w);
    mixU64(t.degraded ? 1 : 0);
    // decision_latency_s is wall clock — deliberately NOT hashed.

    for (std::size_t v : *t.cu_vf)
        mixU64(v);

    const trace::IntervalRecord &rec = *t.rec;
    mixDouble(rec.duration_s);
    mixDouble(rec.sensor_power_w);
    mixDouble(rec.diode_temp_k);
    mixU64(rec.busy_cores);
    mixDouble(rec.nb_utilization);
    mixDouble(rec.true_power_w);
    mixDouble(rec.true_dynamic_w);
    mixDouble(rec.true_idle_w);
    mixDouble(rec.true_nb_power_w);
    mixDouble(rec.true_temp_k);
    mixDouble(rec.nb_vf.voltage);
    mixDouble(rec.nb_vf.freq_ghz);
    for (std::size_t v : rec.cu_vf)
        mixU64(v);
    for (const auto &core : rec.pmc)
        for (double e : core)
            mixDouble(e);
    for (const auto &core : rec.oracle)
        for (double e : core)
            mixDouble(e);

    if (t.exploration) {
        for (const auto &p : *t.exploration) {
            mixU64(p.vf_index);
            mixDouble(p.total_ips);
            mixDouble(p.idle_w);
            mixDouble(p.dynamic_w);
            mixDouble(p.chip_power_w);
            mixDouble(p.energy_per_inst);
            mixDouble(p.edp_per_inst);
        }
    }

    if (t.tenants) {
        const TenantAttribution &a = *t.tenants;
        for (double v : a.dynamic_w)
            mixDouble(v);
        for (double v : a.idle_w)
            mixDouble(v);
        for (double v : a.total_w)
            mixDouble(v);
        mixDouble(a.unattributed_w);
        mixDouble(a.chip_total_w);
    }

    if (t.health) {
        const SampleHealth &h = *t.health;
        mixU64(h.msr_retries);
        mixU64(h.msr_failed_cores);
        mixU64(h.pmc_rejected_cores);
        mixU64(h.substituted_cores);
        mixU64(h.zeroed_cores);
        mixU64(h.sensor_rejects);
        mixU64(h.diode_rejects);
        mixU64(h.ticks);
        mixU64(h.timing_overrun ? 1 : 0);
        mixU64(h.pmc_wrap_events);
        mixU64(h.total_fault_events);
        mixDouble(t.divergence_ewma_w);
    }

    // Gated so that plain-session digests (the committed bench
    // baselines) are unchanged by the recalibration columns.
    if (t.recal_active) {
        mixU64(t.model_generation);
        mixU64(t.recal_triggers);
        mixU64(t.recal_accepted);
        mixU64(t.recal_rejected);
    }
}

// --- SummarySink ---------------------------------------------------------

void
SummarySink::onInterval(const IntervalTelemetry &t)
{
    steps_.push_back({t.cap_w, t.rec->sensor_power_w});
    for (std::size_t v : *t.cu_vf) {
        if (v >= residency_.size())
            residency_.resize(v + 1, 0);
        ++residency_[v];
    }
    if (std::isfinite(t.predicted_power_w)) {
        abs_err_sum_w_ +=
            std::abs(t.predicted_power_w - t.rec->sensor_power_w);
        ++predicted_;
    }
    power_sum_w_ += t.rec->sensor_power_w;
    energy_j_ += t.rec->sensor_power_w * t.rec->duration_s;
    latency_sum_s_ += t.decision_latency_s;
    latency_max_s_ = std::max(latency_max_s_, t.decision_latency_s);
    if (t.tenants) {
        const TenantAttribution &a = *t.tenants;
        if (tenant_names_.empty() && t.tenant_names)
            tenant_names_ = *t.tenant_names;
        if (tenant_energy_j_.size() < a.total_w.size()) {
            tenant_energy_j_.resize(a.total_w.size(), 0.0);
            tenant_power_sum_w_.resize(a.total_w.size(), 0.0);
        }
        for (std::size_t i = 0; i < a.total_w.size(); ++i) {
            tenant_energy_j_[i] += a.total_w[i] * t.rec->duration_s;
            tenant_power_sum_w_[i] += a.total_w[i];
        }
        unattributed_energy_j_ +=
            a.unattributed_w * t.rec->duration_s;
    }
    if (t.health)
        fault_events_ += t.health->faultEvents();
    last_divergence_w_ = t.divergence_ewma_w;
    if (t.recal_active) {
        recal_seen_ = true;
        last_generation_ = t.model_generation;
        last_triggers_ = t.recal_triggers;
        last_accepted_ = t.recal_accepted;
        last_rejected_ = t.recal_rejected;
    }
    if (t.degraded) {
        ++degraded_intervals_;
        if (!last_degraded_)
            ++demotions_;
    }
    last_degraded_ = t.degraded;
}

SummarySink::Summary
SummarySink::summary() const
{
    Summary s;
    s.intervals = steps_.size();
    s.vf_residency = residency_;
    if (steps_.empty())
        return s;

    // Same grace band as governor::capAdherence: sensor noise alone can
    // cross an exact cap.
    std::size_t ok = 0;
    for (const auto &st : steps_)
        if (st.power_w <= st.cap_w * 1.02)
            ++ok;
    s.cap_adherence =
        static_cast<double>(ok) / static_cast<double>(steps_.size());

    double settle_total = 0.0;
    std::size_t settle_events = 0;
    for (std::size_t i = 1; i < steps_.size(); ++i) {
        if (!(steps_[i].cap_w < steps_[i - 1].cap_w))
            continue;
        std::size_t taken = 0;
        for (std::size_t j = i; j < steps_.size(); ++j) {
            ++taken;
            if (steps_[j].power_w <= steps_[j].cap_w * 1.02)
                break;
        }
        settle_total += static_cast<double>(taken);
        ++settle_events;
    }
    s.mean_settle_intervals =
        settle_events
            ? settle_total / static_cast<double>(settle_events)
            : 0.0;

    s.predicted_intervals = predicted_;
    if (predicted_)
        s.power_mae_w =
            abs_err_sum_w_ / static_cast<double>(predicted_);
    s.mean_power_w =
        power_sum_w_ / static_cast<double>(steps_.size());
    s.energy_j = energy_j_;
    s.mean_decision_latency_s =
        latency_sum_s_ / static_cast<double>(steps_.size());
    s.max_decision_latency_s = latency_max_s_;
    s.fault_events = fault_events_;
    s.degraded_intervals = degraded_intervals_;
    s.demotions = demotions_;
    s.final_divergence_ewma_w = last_divergence_w_;
    s.model_generation = last_generation_;
    s.recal_triggers = last_triggers_;
    s.recal_accepted = last_accepted_;
    s.recal_rejected = last_rejected_;
    s.tenant_names = tenant_names_;
    s.tenant_energy_j = tenant_energy_j_;
    s.tenant_mean_power_w = tenant_power_sum_w_;
    for (double &w : s.tenant_mean_power_w)
        w /= static_cast<double>(steps_.size());
    s.unattributed_energy_j = unattributed_energy_j_;
    return s;
}

void
SummarySink::print(std::ostream &out) const
{
    const Summary s = summary();
    util::fmt::RowBuffer row(512);
    row.append(std::string_view{"run summary: "});
    row.appendU64(s.intervals);
    row.append(std::string_view{" intervals, mean power "});
    row.appendFixed(s.mean_power_w, 1);
    row.append(std::string_view{" W, energy "});
    row.appendFixed(s.energy_j, 1);
    row.append(std::string_view{" J\n  cap adherence "});
    row.appendFixed(100.0 * s.cap_adherence, 1);
    row.append(std::string_view{"%, mean settle "});
    row.appendFixed(s.mean_settle_intervals, 2);
    row.append(std::string_view{" intervals\n"});
    if (s.predicted_intervals) {
        row.append(
            std::string_view{"  predicted-vs-measured power MAE "});
        row.appendFixed(s.power_mae_w, 2);
        row.append(std::string_view{" W over "});
        row.appendU64(s.predicted_intervals);
        row.append(std::string_view{" intervals\n"});
    }
    row.append(std::string_view{"  decision latency mean "});
    row.appendFixed(1e6 * s.mean_decision_latency_s, 1);
    row.append(std::string_view{" us, max "});
    row.appendFixed(1e6 * s.max_decision_latency_s, 1);
    row.append(std::string_view{" us\n"});
    if (s.fault_events || s.degraded_intervals) {
        row.append(std::string_view{"  fault events "});
        row.appendU64(s.fault_events);
        row.append(std::string_view{", degraded intervals "});
        row.appendU64(s.degraded_intervals);
        row.append(std::string_view{" ("});
        row.appendU64(s.demotions);
        row.append(std::string_view{" demotions)\n"});
    }
    if (recal_seen_) {
        row.append(std::string_view{"  recalibration: generation "});
        row.appendU64(s.model_generation);
        row.append(std::string_view{", "});
        row.appendU64(s.recal_triggers);
        row.append(std::string_view{" refits ("});
        row.appendU64(s.recal_accepted);
        row.append(std::string_view{" adopted, "});
        row.appendU64(s.recal_rejected);
        row.append(std::string_view{" rejected), divergence EWMA "});
        row.appendFixed(s.final_divergence_ewma_w, 2);
        row.append(std::string_view{" W\n"});
    }
    for (std::size_t i = 0; i < s.tenant_names.size(); ++i) {
        row.append(std::string_view{"  tenant "});
        row.append(std::string_view{s.tenant_names[i]});
        row.append(std::string_view{": energy "});
        row.appendFixed(s.tenant_energy_j[i], 1);
        row.append(std::string_view{" J, mean power "});
        row.appendFixed(s.tenant_mean_power_w[i], 2);
        row.append(std::string_view{" W\n"});
    }
    row.append(std::string_view{"  VF residency (CU-intervals):"});
    for (std::size_t v = 0; v < s.vf_residency.size(); ++v) {
        row.append(std::string_view{" VF"});
        row.appendU64(v + 1);
        row.append('=');
        row.appendU64(s.vf_residency[v]);
    }
    row.append('\n');
    out.write(row.data(), static_cast<std::streamsize>(row.size()));
}

} // namespace ppep::runtime
