#include "ppep/runtime/async_telemetry.hpp"

#include <algorithm>
#include <chrono>

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

AsyncTelemetrySink::AsyncTelemetrySink(TelemetrySink &wrapped,
                                       std::size_t capacity)
    : wrapped_(wrapped), ring_(capacity)
{
    PPEP_ASSERT(capacity > 0, "ring capacity must be positive");
    writer_ = std::thread([this] { writerLoop(); });
}

AsyncTelemetrySink::~AsyncTelemetrySink()
{
    close();
}

void
AsyncTelemetrySink::onInterval(const IntervalTelemetry &t)
{
    util::UniqueLock lock(mu_);
    PPEP_ASSERT(!closed_, "onInterval() after close()");
    while (size_ >= ring_.size() && !closed_)
        producer_cv_.wait(lock);
    if (closed_) {
        // close() woke us: the writer is (or will be) gone, so this
        // interval could never drain. The single-producer contract says
        // the owner must stop producing before closing — fail loudly
        // rather than hang on a dead ring or drop the interval.
        PPEP_FATAL("producer blocked in onInterval() across close()");
    }

    // Deep-copy into the slot: the callback's pointers die when we
    // return, but the slot (and its re-pointed telemetry) stays valid
    // until the writer advances past it. Assignments reuse the slot's
    // existing buffers, so a warmed ring costs no allocation.
    Slot &slot = ring_[(head_ + size_) % ring_.size()];
    slot.t = t;
    slot.rec = *t.rec;
    slot.t.rec = &slot.rec;
    slot.cu_vf = *t.cu_vf;
    slot.t.cu_vf = &slot.cu_vf;
    slot.has_exploration = t.exploration != nullptr;
    if (slot.has_exploration) {
        slot.exploration = *t.exploration;
        slot.t.exploration = &slot.exploration;
    } else {
        slot.t.exploration = nullptr;
    }
    slot.has_health = t.health != nullptr;
    if (slot.has_health) {
        slot.health = *t.health;
        slot.t.health = &slot.health;
    } else {
        slot.t.health = nullptr;
    }
    slot.has_tenants = t.tenants != nullptr && t.tenant_names != nullptr;
    if (slot.has_tenants) {
        slot.tenants = *t.tenants;
        slot.t.tenants = &slot.tenants;
        slot.tenant_names = *t.tenant_names;
        slot.t.tenant_names = &slot.tenant_names;
    } else {
        slot.t.tenants = nullptr;
        slot.t.tenant_names = nullptr;
    }

    ++size_;
    max_depth_ = std::max(max_depth_, size_);
    writer_cv_.notify_one();
}

void
AsyncTelemetrySink::writerLoop()
{
    for (;;) {
        util::UniqueLock lock(mu_);
        while (size_ == 0 && !stop_)
            writer_cv_.wait(lock);
        if (size_ == 0 && stop_)
            return;
        Slot &slot = ring_[head_];
        lock.unlock();
        // The slot cannot be overwritten while unlocked: the producer
        // only reuses it after size_ drops below capacity, which
        // happens under the lock below.
        const auto t0 = std::chrono::steady_clock::now();
        wrapped_.onInterval(slot.t);
        const auto t1 = std::chrono::steady_clock::now();
        lock.lock();
        encode_s_ += std::chrono::duration<double>(t1 - t0).count();
        ++encoded_count_;
        head_ = (head_ + 1) % ring_.size();
        --size_;
        if (size_ == 0)
            drained_cv_.notify_all();
        producer_cv_.notify_one();
    }
}

void
AsyncTelemetrySink::drain()
{
    util::UniqueLock lock(mu_);
    while (size_ != 0)
        drained_cv_.wait(lock);
}

void
AsyncTelemetrySink::finish()
{
    drain();
    wrapped_.finish();
}

void
AsyncTelemetrySink::flush()
{
    drain();
    wrapped_.flush();
}

void
AsyncTelemetrySink::close()
{
    {
        util::MutexLock lock(mu_);
        if (closed_)
            return;
        closed_ = true;
        stop_ = true;
        writer_cv_.notify_one();
        // A producer blocked on a full ring must not sleep through the
        // shutdown: wake it so it can fail loudly (see onInterval).
        producer_cv_.notify_all();
    }
    if (writer_.joinable())
        writer_.join(); // writer drains the ring before exiting
    wrapped_.close();
}

bool
AsyncTelemetrySink::failed() const
{
    return wrapped_.failed();
}

std::string
AsyncTelemetrySink::error() const
{
    return wrapped_.error();
}

std::size_t
AsyncTelemetrySink::maxDepth() const
{
    util::MutexLock lock(mu_);
    return max_depth_;
}

double
AsyncTelemetrySink::encodeSeconds() const
{
    util::MutexLock lock(mu_);
    return encode_s_;
}

std::size_t
AsyncTelemetrySink::encodedIntervals() const
{
    util::MutexLock lock(mu_);
    return encoded_count_;
}

} // namespace ppep::runtime
