#include "ppep/runtime/async_telemetry.hpp"

#include <algorithm>
#include <chrono>

#include "ppep/util/logging.hpp"

namespace ppep::runtime {

AsyncTelemetrySink::AsyncTelemetrySink(TelemetrySink &wrapped,
                                       std::size_t capacity)
    : wrapped_(wrapped), ring_(capacity)
{
    PPEP_ASSERT(capacity > 0, "ring capacity must be positive");
    writer_ = std::thread([this] { writerLoop(); });
}

AsyncTelemetrySink::~AsyncTelemetrySink()
{
    close();
}

void
AsyncTelemetrySink::onInterval(const IntervalTelemetry &t)
{
    std::unique_lock<std::mutex> lock(mu_);
    PPEP_ASSERT(!closed_, "onInterval() after close()");
    producer_cv_.wait(lock, [this] { return size_ < ring_.size(); });

    // Deep-copy into the slot: the callback's pointers die when we
    // return, but the slot (and its re-pointed telemetry) stays valid
    // until the writer advances past it. Assignments reuse the slot's
    // existing buffers, so a warmed ring costs no allocation.
    Slot &slot = ring_[(head_ + size_) % ring_.size()];
    slot.t = t;
    slot.rec = *t.rec;
    slot.t.rec = &slot.rec;
    slot.cu_vf = *t.cu_vf;
    slot.t.cu_vf = &slot.cu_vf;
    slot.has_exploration = t.exploration != nullptr;
    if (slot.has_exploration) {
        slot.exploration = *t.exploration;
        slot.t.exploration = &slot.exploration;
    } else {
        slot.t.exploration = nullptr;
    }
    slot.has_health = t.health != nullptr;
    if (slot.has_health) {
        slot.health = *t.health;
        slot.t.health = &slot.health;
    } else {
        slot.t.health = nullptr;
    }
    slot.has_tenants = t.tenants != nullptr && t.tenant_names != nullptr;
    if (slot.has_tenants) {
        slot.tenants = *t.tenants;
        slot.t.tenants = &slot.tenants;
        slot.tenant_names = *t.tenant_names;
        slot.t.tenant_names = &slot.tenant_names;
    } else {
        slot.t.tenants = nullptr;
        slot.t.tenant_names = nullptr;
    }

    ++size_;
    max_depth_ = std::max(max_depth_, size_);
    writer_cv_.notify_one();
}

void
AsyncTelemetrySink::writerLoop()
{
    for (;;) {
        std::unique_lock<std::mutex> lock(mu_);
        writer_cv_.wait(lock, [this] { return size_ > 0 || stop_; });
        if (size_ == 0 && stop_)
            return;
        Slot &slot = ring_[head_];
        lock.unlock();
        // The slot cannot be overwritten while unlocked: the producer
        // only reuses it after size_ drops below capacity, which
        // happens under the lock below.
        const auto t0 = std::chrono::steady_clock::now();
        wrapped_.onInterval(slot.t);
        const auto t1 = std::chrono::steady_clock::now();
        lock.lock();
        encode_s_ += std::chrono::duration<double>(t1 - t0).count();
        ++encoded_count_;
        head_ = (head_ + 1) % ring_.size();
        --size_;
        if (size_ == 0)
            drained_cv_.notify_all();
        producer_cv_.notify_one();
    }
}

void
AsyncTelemetrySink::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return size_ == 0; });
}

void
AsyncTelemetrySink::finish()
{
    drain();
    wrapped_.finish();
}

void
AsyncTelemetrySink::flush()
{
    drain();
    wrapped_.flush();
}

void
AsyncTelemetrySink::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            return;
        closed_ = true;
        stop_ = true;
        writer_cv_.notify_one();
    }
    if (writer_.joinable())
        writer_.join(); // writer drains the ring before exiting
    wrapped_.close();
}

bool
AsyncTelemetrySink::failed() const
{
    return wrapped_.failed();
}

std::string
AsyncTelemetrySink::error() const
{
    return wrapped_.error();
}

std::size_t
AsyncTelemetrySink::maxDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
}

double
AsyncTelemetrySink::encodeSeconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return encode_s_;
}

std::size_t
AsyncTelemetrySink::encodedIntervals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return encoded_count_;
}

} // namespace ppep::runtime
