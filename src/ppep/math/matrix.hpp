/**
 * @file
 * Small dense matrix with just the operations the regression models need:
 * products, transpose, and a symmetric-positive-definite Cholesky solve.
 *
 * Sizes here are tiny (<= 12 columns, a few thousand rows), so a plain
 * row-major std::vector backing store is plenty.
 */

#ifndef PPEP_MATH_MATRIX_HPP
#define PPEP_MATH_MATRIX_HPP

#include <cstddef>
#include <vector>

namespace ppep::math {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix, zero-initialised. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Construct from nested initialiser data (rows of equal width). */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access. @pre indices in range (checked). */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Unchecked element access for hot loops. */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Matrix product this * rhs. @pre cols() == rhs.rows(). */
    Matrix multiply(const Matrix &rhs) const;

    /** Matrix-vector product. @pre cols() == v.size(). */
    std::vector<double> multiply(const std::vector<double> &v) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /**
     * Solve A x = b for symmetric positive definite A via Cholesky
     * decomposition. A small diagonal jitter is added on failure so that
     * nearly-singular normal equations (collinear events) still solve.
     * @pre square, b.size() == rows().
     */
    std::vector<double> solveSpd(const std::vector<double> &b) const;

    /**
     * Least-squares solve min ||A x - b|| via Householder QR — more
     * numerically stable than forming the normal equations when the
     * design matrix is ill-conditioned.
     * @pre rows() >= cols(), b.size() == rows(), full column rank
     *      (a zero R diagonal is fatal).
     */
    std::vector<double>
    solveLeastSquaresQr(const std::vector<double> &b) const;

  private:
    /** Cholesky factor attempt; returns false if not positive definite. */
    bool cholesky(Matrix &chol_lower) const;

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace ppep::math

#endif // PPEP_MATH_MATRIX_HPP
