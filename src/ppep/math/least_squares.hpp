/**
 * @file
 * Ordinary / ridge / non-negative least squares.
 *
 * The dynamic power model (paper Eq. 3) is a linear regression over nine
 * event rates; its physically meaningful coefficients are energies per
 * event, so a non-negative variant is provided and used by default — a
 * negative per-event energy would make voltage scaling behave nonsensically
 * at other VF states.
 */

#ifndef PPEP_MATH_LEAST_SQUARES_HPP
#define PPEP_MATH_LEAST_SQUARES_HPP

#include <vector>

#include "ppep/math/matrix.hpp"

namespace ppep::math {

/** Result of a least-squares fit. */
struct FitResult
{
    /** Fitted coefficients, one per regressor column. */
    std::vector<double> coefficients;
    /** Root mean squared residual on the training data. */
    double rmse = 0.0;
    /** Coefficient of determination on the training data. */
    double r_squared = 0.0;
};

/**
 * Ordinary least squares via Householder QR (normal equations +
 * Cholesky when a ridge penalty is requested).
 *
 * @param design n x p design matrix (include a ones column yourself if an
 *               intercept is wanted).
 * @param target n observations.
 * @param ridge  optional Tikhonov regularisation strength (>= 0).
 */
FitResult fitLeastSquares(const Matrix &design,
                          const std::vector<double> &target,
                          double ridge = 0.0);

/**
 * Non-negative least squares (Lawson-Hanson active set).
 *
 * Solves min ||A x - b||^2 subject to x >= 0. Used for the per-event
 * energy coefficients of the dynamic power model.
 */
FitResult fitNonNegativeLeastSquares(const Matrix &design,
                                     const std::vector<double> &target);

/** Predicted values design * coefficients. */
std::vector<double> predict(const Matrix &design,
                            const std::vector<double> &coefficients);

} // namespace ppep::math

#endif // PPEP_MATH_LEAST_SQUARES_HPP
