#include "ppep/math/polynomial.hpp"

#include "ppep/math/least_squares.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::math {

Polynomial::Polynomial(std::vector<double> coefficients)
    : coeffs_(std::move(coefficients))
{
}

Polynomial
Polynomial::fit(std::span<const double> xs, std::span<const double> ys,
                int degree)
{
    PPEP_ASSERT(degree >= 0, "polynomial degree must be non-negative");
    PPEP_ASSERT(xs.size() == ys.size(), "polynomial fit: length mismatch");
    PPEP_ASSERT(xs.size() > static_cast<std::size_t>(degree),
                "polynomial fit: need more points than degree");

    Matrix design(xs.size(), static_cast<std::size_t>(degree) + 1);
    for (std::size_t r = 0; r < xs.size(); ++r) {
        double pow_x = 1.0;
        for (int d = 0; d <= degree; ++d) {
            design(r, static_cast<std::size_t>(d)) = pow_x;
            pow_x *= xs[r];
        }
    }
    auto fit_result = fitLeastSquares(
        design, std::vector<double>(ys.begin(), ys.end()));
    return Polynomial(std::move(fit_result.coefficients));
}

double
Polynomial::operator()(double x) const
{
    double acc = 0.0;
    for (std::size_t i = coeffs_.size(); i-- > 0;)
        acc = acc * x + coeffs_[i];
    return acc;
}

int
Polynomial::degree() const
{
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
        if (coeffs_[i] != 0.0)
            return static_cast<int>(i);
    }
    return 0;
}

Polynomial
Polynomial::derivative() const
{
    if (coeffs_.size() <= 1)
        return Polynomial(std::vector<double>{0.0});
    std::vector<double> deriv(coeffs_.size() - 1);
    for (std::size_t i = 1; i < coeffs_.size(); ++i)
        deriv[i - 1] = coeffs_[i] * static_cast<double>(i);
    return Polynomial(std::move(deriv));
}

} // namespace ppep::math
