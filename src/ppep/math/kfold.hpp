/**
 * @file
 * k-fold cross-validation splitting.
 *
 * The paper validates its power models with 4-fold cross validation over
 * 152 benchmark combinations: "randomly split our collection ... into four
 * equally sized sets and perform 4-fold cross validation".
 */

#ifndef PPEP_MATH_KFOLD_HPP
#define PPEP_MATH_KFOLD_HPP

#include <cstddef>
#include <vector>

#include "ppep/util/rng.hpp"

namespace ppep::math {

/** One train/test split. */
struct Fold
{
    /** Indices of items used for model training. */
    std::vector<std::size_t> train;
    /** Indices of items held out for validation. */
    std::vector<std::size_t> test;
};

/**
 * Produce @p k folds over @p item_count items. Items are shuffled with
 * @p rng, dealt into k near-equal groups, and each fold holds one group
 * out. Every item appears in exactly one test set.
 *
 * @pre k >= 2 and item_count >= k.
 */
std::vector<Fold> makeFolds(std::size_t item_count, std::size_t k,
                            util::Rng &rng);

} // namespace ppep::math

#endif // PPEP_MATH_KFOLD_HPP
