#include "ppep/math/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::math {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    PPEP_ASSERT(!rows.empty(), "fromRows: empty input");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        PPEP_ASSERT(rows[r].size() == m.cols_, "fromRows: ragged input");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    PPEP_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    PPEP_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix
Matrix::multiply(const Matrix &rhs) const
{
    PPEP_ASSERT(cols_ == rhs.rows_, "multiply: dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double> &v) const
{
    PPEP_ASSERT(cols_ == v.size(), "multiply: vector length mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            s += (*this)(i, j) * v[j];
        out[i] = s;
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = (*this)(i, j);
    return out;
}

bool
Matrix::cholesky(Matrix &chol_lower) const
{
    const std::size_t n = rows_;
    chol_lower = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double d = (*this)(j, j);
        for (std::size_t k = 0; k < j; ++k)
            d -= chol_lower(j, k) * chol_lower(j, k);
        if (d <= 0.0)
            return false;
        chol_lower(j, j) = std::sqrt(d);
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = (*this)(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= chol_lower(i, k) * chol_lower(j, k);
            chol_lower(i, j) = s / chol_lower(j, j);
        }
    }
    return true;
}

std::vector<double>
Matrix::solveSpd(const std::vector<double> &b) const
{
    PPEP_ASSERT(rows_ == cols_, "solveSpd: matrix not square");
    PPEP_ASSERT(b.size() == rows_, "solveSpd: rhs length mismatch");
    const std::size_t n = rows_;

    Matrix chol;
    if (!cholesky(chol)) {
        // Fall back to a jittered copy; the regression problems here are
        // well scaled, so a tiny ridge restores positive definiteness
        // without materially changing the solution.
        Matrix jittered(*this);
        double scale = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            scale = std::max(scale, std::fabs(jittered(i, i)));
        const double jitter = (scale > 0.0 ? scale : 1.0) * 1e-10;
        for (int attempt = 0; attempt < 8; ++attempt) {
            for (std::size_t i = 0; i < n; ++i)
                jittered(i, i) += jitter * std::pow(10.0, attempt);
            if (jittered.cholesky(chol))
                break;
            if (attempt == 7)
                PPEP_PANIC("solveSpd: matrix is not positive definite");
        }
    }

    // Forward substitution: L y = b.
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= chol(i, k) * y[k];
        y[i] = s / chol(i, i);
    }
    // Backward substitution: L^T x = y.
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            s -= chol(k, ii) * x[k];
        x[ii] = s / chol(ii, ii);
    }
    return x;
}

std::vector<double>
Matrix::solveLeastSquaresQr(const std::vector<double> &b) const
{
    PPEP_ASSERT(rows_ >= cols_, "QR solve needs rows >= cols");
    PPEP_ASSERT(b.size() == rows_, "QR solve: rhs length mismatch");
    const std::size_t m = rows_;
    const std::size_t n = cols_;

    // Householder QR applied in place to a working copy of [A | b]:
    // each reflector zeroes one column below the diagonal and is
    // applied to the rhs as it is built (we never form Q).
    Matrix a(*this);
    std::vector<double> rhs(b);
    for (std::size_t k = 0; k < n; ++k) {
        // Build the reflector for column k.
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i)
            norm += a(i, k) * a(i, k);
        norm = std::sqrt(norm);
        PPEP_ASSERT(norm > 0.0, "QR solve: rank-deficient column ", k);
        const double alpha = a(k, k) >= 0.0 ? -norm : norm;
        std::vector<double> v(m - k);
        v[0] = a(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = a(i, k);
        double vtv = 0.0;
        for (double x : v)
            vtv += x * x;
        if (vtv == 0.0)
            continue; // column already triangular

        // Apply I - 2 v v^T / (v^T v) to the remaining columns and rhs.
        for (std::size_t j = k; j < n; ++j) {
            double dot = 0.0;
            for (std::size_t i = k; i < m; ++i)
                dot += v[i - k] * a(i, j);
            const double scale = 2.0 * dot / vtv;
            for (std::size_t i = k; i < m; ++i)
                a(i, j) -= scale * v[i - k];
        }
        double dot = 0.0;
        for (std::size_t i = k; i < m; ++i)
            dot += v[i - k] * rhs[i];
        const double scale = 2.0 * dot / vtv;
        for (std::size_t i = k; i < m; ++i)
            rhs[i] -= scale * v[i - k];
    }

    // Back substitution on the triangular top block. Rank deficiency
    // shows up as an R diagonal entry at rounding-noise scale relative
    // to the largest one; treat that as singular rather than dividing
    // by it.
    double r_max = 0.0;
    for (std::size_t k = 0; k < n; ++k)
        r_max = std::max(r_max, std::fabs(a(k, k)));
    std::vector<double> x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = rhs[ii];
        for (std::size_t j = ii + 1; j < n; ++j)
            s -= a(ii, j) * x[j];
        PPEP_ASSERT(std::fabs(a(ii, ii)) > 1e-12 * r_max,
                    "QR solve: singular R (rank-deficient design)");
        x[ii] = s / a(ii, ii);
    }
    return x;
}

} // namespace ppep::math
