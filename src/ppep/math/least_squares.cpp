#include "ppep/math/least_squares.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ppep/util/logging.hpp"

namespace ppep::math {

namespace {

/** Compute rmse and R^2 given the fitted coefficients. */
void
fillGoodness(const Matrix &design, const std::vector<double> &target,
             FitResult &fit)
{
    const auto pred = predict(design, fit.coefficients);
    double sse = 0.0;
    double mean_y = 0.0;
    for (double y : target)
        mean_y += y;
    mean_y /= static_cast<double>(target.size());
    double sst = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i) {
        sse += (pred[i] - target[i]) * (pred[i] - target[i]);
        sst += (target[i] - mean_y) * (target[i] - mean_y);
    }
    fit.rmse = std::sqrt(sse / static_cast<double>(target.size()));
    fit.r_squared = sst > 0.0 ? 1.0 - sse / sst : 0.0;
}

} // namespace

FitResult
fitLeastSquares(const Matrix &design, const std::vector<double> &target,
                double ridge)
{
    PPEP_ASSERT(design.rows() == target.size(),
                "least squares: row/target mismatch");
    PPEP_ASSERT(design.rows() >= design.cols(),
                "least squares: underdetermined system (", design.rows(),
                " rows, ", design.cols(), " cols)");

    FitResult fit;
    if (ridge > 0.0) {
        // Tikhonov-regularised normal equations.
        const Matrix xt = design.transposed();
        Matrix xtx = xt.multiply(design);
        for (std::size_t i = 0; i < xtx.rows(); ++i)
            xtx(i, i) += ridge;
        fit.coefficients = xtx.solveSpd(xt.multiply(target));
    } else {
        // Householder QR: avoids squaring the condition number the way
        // the normal equations do.
        fit.coefficients = design.solveLeastSquaresQr(target);
    }
    fillGoodness(design, target, fit);
    return fit;
}

FitResult
fitNonNegativeLeastSquares(const Matrix &design,
                           const std::vector<double> &target)
{
    PPEP_ASSERT(design.rows() == target.size(),
                "nnls: row/target mismatch");
    const std::size_t p = design.cols();
    const Matrix xt = design.transposed();
    const Matrix xtx = xt.multiply(design);
    const std::vector<double> xty = xt.multiply(target);

    // Lawson-Hanson active set. P = passive (free) set, others clamped to
    // zero. Problems here have p <= 12, so the O(p^3) inner solves are
    // negligible.
    std::vector<bool> passive(p, false);
    std::vector<double> x(p, 0.0);

    auto gradient = [&]() {
        // w = X^T y - X^T X x
        std::vector<double> w(p);
        for (std::size_t i = 0; i < p; ++i) {
            double s = xty[i];
            for (std::size_t j = 0; j < p; ++j)
                s -= xtx(i, j) * x[j];
            w[i] = s;
        }
        return w;
    };

    auto solvePassive = [&]() {
        // Solve the unconstrained problem restricted to the passive set.
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < p; ++i)
            if (passive[i])
                idx.push_back(i);
        std::vector<double> z(p, 0.0);
        if (idx.empty())
            return z;
        Matrix sub(idx.size(), idx.size());
        std::vector<double> rhs(idx.size());
        for (std::size_t a = 0; a < idx.size(); ++a) {
            rhs[a] = xty[idx[a]];
            for (std::size_t b = 0; b < idx.size(); ++b)
                sub(a, b) = xtx(idx[a], idx[b]);
        }
        const auto sol = sub.solveSpd(rhs);
        for (std::size_t a = 0; a < idx.size(); ++a)
            z[idx[a]] = sol[a];
        return z;
    };

    const double tol = 1e-10;
    for (std::size_t outer = 0; outer < 4 * p + 16; ++outer) {
        const auto w = gradient();
        // Pick the most violated clamped coordinate.
        std::size_t best = p;
        double best_w = tol;
        for (std::size_t i = 0; i < p; ++i) {
            if (!passive[i] && w[i] > best_w) {
                best_w = w[i];
                best = i;
            }
        }
        if (best == p)
            break; // KKT satisfied.
        passive[best] = true;

        for (std::size_t inner = 0; inner < 4 * p + 16; ++inner) {
            auto z = solvePassive();
            // If all passive coordinates stayed positive, accept.
            bool feasible = true;
            for (std::size_t i = 0; i < p; ++i) {
                if (passive[i] && z[i] <= 0.0) {
                    feasible = false;
                    break;
                }
            }
            if (feasible) {
                x = std::move(z);
                break;
            }
            // Backtrack along x -> z to the first boundary crossing.
            double alpha = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < p; ++i) {
                if (passive[i] && z[i] <= 0.0) {
                    const double step = x[i] / (x[i] - z[i]);
                    alpha = std::min(alpha, step);
                }
            }
            for (std::size_t i = 0; i < p; ++i) {
                x[i] += alpha * (z[i] - x[i]);
                if (passive[i] && x[i] <= tol) {
                    x[i] = 0.0;
                    passive[i] = false;
                }
            }
        }
    }

    FitResult fit;
    fit.coefficients = std::move(x);
    fillGoodness(design, target, fit);
    return fit;
}

std::vector<double>
predict(const Matrix &design, const std::vector<double> &coefficients)
{
    return design.multiply(coefficients);
}

} // namespace ppep::math
