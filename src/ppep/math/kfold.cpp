#include "ppep/math/kfold.hpp"

#include <numeric>

#include "ppep/util/logging.hpp"

namespace ppep::math {

std::vector<Fold>
makeFolds(std::size_t item_count, std::size_t k, util::Rng &rng)
{
    PPEP_ASSERT(k >= 2, "need at least two folds");
    PPEP_ASSERT(item_count >= k, "need at least one item per fold");

    std::vector<std::size_t> order(item_count);
    std::iota(order.begin(), order.end(), 0);
    // Fisher-Yates with our deterministic stream.
    for (std::size_t i = item_count; i-- > 1;) {
        const std::size_t j = rng.uniformInt(i + 1);
        std::swap(order[i], order[j]);
    }

    std::vector<Fold> folds(k);
    for (std::size_t i = 0; i < item_count; ++i) {
        const std::size_t group = i % k;
        folds[group].test.push_back(order[i]);
    }
    for (std::size_t g = 0; g < k; ++g) {
        for (std::size_t other = 0; other < k; ++other) {
            if (other == g)
                continue;
            folds[g].train.insert(folds[g].train.end(),
                                  folds[other].test.begin(),
                                  folds[other].test.end());
        }
    }
    return folds;
}

} // namespace ppep::math
