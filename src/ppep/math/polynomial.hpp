/**
 * @file
 * Polynomial evaluation and least-squares polynomial fitting.
 *
 * The idle power model (paper Eq. 2) stores its two temperature-regression
 * coefficients as third-order polynomials of voltage; this module supplies
 * the fit and evaluation primitives.
 */

#ifndef PPEP_MATH_POLYNOMIAL_HPP
#define PPEP_MATH_POLYNOMIAL_HPP

#include <span>
#include <vector>

namespace ppep::math {

/**
 * Polynomial with coefficients in ascending-power order:
 * p(x) = c[0] + c[1] x + ... + c[d] x^d.
 */
class Polynomial
{
  public:
    /** Zero polynomial. */
    Polynomial() = default;

    /** Construct from ascending-power coefficients. */
    explicit Polynomial(std::vector<double> coefficients);

    /**
     * Least-squares fit of a degree-@p degree polynomial through the
     * sample points. @pre xs.size() == ys.size() > degree.
     */
    static Polynomial fit(std::span<const double> xs,
                          std::span<const double> ys, int degree);

    /** Evaluate at @p x via Horner's scheme. */
    double operator()(double x) const;

    /** Degree (0 for constants and the zero polynomial). */
    int degree() const;

    /** Coefficients in ascending-power order. */
    const std::vector<double> &coefficients() const { return coeffs_; }

    /** First derivative polynomial. */
    Polynomial derivative() const;

  private:
    std::vector<double> coeffs_;
};

} // namespace ppep::math

#endif // PPEP_MATH_POLYNOMIAL_HPP
