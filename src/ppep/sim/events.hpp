/**
 * @file
 * The twelve hardware performance events of paper Table I.
 *
 * E1-E9 feed the dynamic power model (Eq. 3); E10-E12 feed the CPI
 * performance model (Eq. 1). Event codes are the AMD family-15h PMC select
 * values the paper lists.
 */

#ifndef PPEP_SIM_EVENTS_HPP
#define PPEP_SIM_EVENTS_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ppep::sim {

/** Event identifiers, in Table I order. */
enum class Event : std::size_t
{
    RetiredUop = 0,            ///< E1  PMCx0c1
    FpuPipeAssignment = 1,     ///< E2  PMCx000
    InstCacheFetch = 2,        ///< E3  PMCx080
    DataCacheAccess = 3,       ///< E4  PMCx040
    RequestToL2 = 4,           ///< E5  PMCx07d
    RetiredBranch = 5,         ///< E6  PMCx0c2
    RetiredMispBranch = 6,     ///< E7  PMCx0c3
    L2CacheMiss = 7,           ///< E8  PMCx07e
    DispatchStall = 8,         ///< E9  PMCx0d1 (stall *cycles*)
    ClocksNotHalted = 9,       ///< E10 PMCx076
    RetiredInst = 10,          ///< E11 PMCx0c0
    MabWaitCycles = 11,        ///< E12 PMCx069
};

/** Total number of modelled events. */
inline constexpr std::size_t kNumEvents = 12;

/** Events consumed by the dynamic power model (E1-E9). */
inline constexpr std::size_t kNumPowerEvents = 9;

/**
 * Core-private power events (E1-E7). Their per-instruction counts are
 * VF-invariant (Observation 1) and their power-model weights are scaled by
 * (Vn/V5)^alpha when the core changes VF state.
 */
inline constexpr std::size_t kNumCorePowerEvents = 7;

/** Fixed-size per-event count/rate vector. */
using EventVector = std::array<double, kNumEvents>;

/** Index helper. */
constexpr std::size_t
eventIndex(Event e)
{
    return static_cast<std::size_t>(e);
}

/** Table-I mnemonic for the event ("Retired UOP", ...). */
std::string_view eventName(Event e);

/** Table-I PMC select code ("PMCx0c1", ...). */
std::string_view eventCode(Event e);

/** Paper label ("E1".."E12"). */
std::string_view eventLabel(Event e);

/** True for events whose counts are cycle counts rather than occurrences. */
bool eventCountsCycles(Event e);

/** Numeric PMC event-select code (e.g. 0x0c1 for E1). */
std::uint16_t eventSelect(Event e);

/** Reverse lookup of a select code; nullopt for unmodelled events. */
std::optional<Event> eventFromSelect(std::uint16_t select);

/** All events, in Table I order, for iteration. */
const std::array<Event, kNumEvents> &allEvents();

} // namespace ppep::sim

#endif // PPEP_SIM_EVENTS_HPP
