#include "ppep/sim/hw_power_model.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

double
PowerBreakdown::cuIdleTotal() const PPEP_NONBLOCKING
{
    double s = 0.0;
    for (double w : cu_idle)
        s += w;
    return s;
}

double
PowerBreakdown::coreDynamicTotal() const PPEP_NONBLOCKING
{
    double s = 0.0;
    for (double w : core_dynamic)
        s += w;
    return s;
}

HwPowerModel::HwPowerModel(const ChipConfig &cfg)
    : cfg_(cfg),
      vref_(cfg.vf_table.state(cfg.vf_table.top()).voltage),
      nb_vref_(cfg.nb.vf_hi.voltage)
{
}

double
HwPowerModel::dynScale(double voltage) const PPEP_NONBLOCKING
{
    return std::pow(voltage / vref_, cfg_.power.alpha_true);
}

double
HwPowerModel::cuIdlePower(double voltage, double freq_ghz,
                          double temp_k) const PPEP_NONBLOCKING
{
    const auto &p = cfg_.power;
    const double leak = p.cu_leak_ref_w *
                        std::exp(p.leak_volt_k * (voltage - vref_)) *
                        std::exp(p.leak_temp_k *
                                 (temp_k - p.leak_temp_ref_k));
    const double clock = p.cu_clock_coeff * freq_ghz * voltage * voltage;
    return leak + clock;
}

double
HwPowerModel::nbStaticPower(const VfState &nb_vf, double temp_k) const PPEP_NONBLOCKING
{
    const auto &p = cfg_.power;
    const double leak = p.nb_leak_ref_w *
                        std::exp(p.leak_volt_k *
                                 (nb_vf.voltage - nb_vref_)) *
                        std::exp(p.leak_temp_k *
                                 (temp_k - p.leak_temp_ref_k));
    const double clock =
        p.nb_clock_coeff * nb_vf.freq_ghz * nb_vf.voltage * nb_vf.voltage;
    return leak + clock;
}

PowerBreakdown
HwPowerModel::compute(const std::vector<CorePowerInput> &cores,
                      const std::vector<bool> &cu_gated, bool nb_gated,
                      const std::vector<double> &cu_voltage,
                      const std::vector<double> &cu_freq_ghz,
                      const VfState &nb_vf, double temp_k,
                      double dt_s) const
{
    PowerBreakdown out;
    computeInto(cores, cu_gated, nb_gated, cu_voltage, cu_freq_ghz,
                nb_vf, temp_k, dt_s, out);
    return out;
}

void
HwPowerModel::computeInto(const std::vector<CorePowerInput> &cores,
                          const std::vector<bool> &cu_gated,
                          bool nb_gated,
                          const std::vector<double> &cu_voltage,
                          const std::vector<double> &cu_freq_ghz,
                          const VfState &nb_vf, double temp_k,
                          double dt_s, PowerBreakdown &out,
                          const double *core_energy_nj) const
    PPEP_NONBLOCKING
{
    PPEP_ASSERT(cores.size() == cfg_.coreCount(), "core count mismatch");
    PPEP_ASSERT(cu_gated.size() == cfg_.n_cus &&
                cu_voltage.size() == cfg_.n_cus &&
                cu_freq_ghz.size() == cfg_.n_cus,
                "CU vector size mismatch");
    PPEP_ASSERT(dt_s > 0.0, "non-positive tick");

    const auto &p = cfg_.power;
    out.base = p.base_power_w;

    // Per-CU idle (leakage + clock tree), with the gate applied.
    // rt-escape: warm-up growth of the caller-owned breakdown.
    PPEP_RT_WARMUP_BEGIN
    out.cu_idle.assign(cfg_.n_cus, 0.0);
    PPEP_RT_WARMUP_END
    bool any_cu_alive = false;
    for (std::size_t cu = 0; cu < cfg_.n_cus; ++cu) {
        const double full =
            cuIdlePower(cu_voltage[cu], cu_freq_ghz[cu], temp_k);
        out.cu_idle[cu] = cu_gated[cu] ? full * p.pg_residual : full;
        any_cu_alive = any_cu_alive || !cu_gated[cu];
    }

    // OS housekeeping runs whenever at least one CU is clocked.
    out.housekeeping = any_cu_alive ? p.housekeeping_w : 0.0;

    // NB static, gated only when every CU is gated.
    const double nb_full = nbStaticPower(nb_vf, temp_k);
    out.nb_static = nb_gated ? nb_full * p.pg_residual : nb_full;

    // Per-core switched energy + NB access energy.
    // rt-escape: warm-up growth of the caller-owned breakdown.
    PPEP_RT_WARMUP_BEGIN
    out.core_dynamic.assign(cores.size(), 0.0);
    PPEP_RT_WARMUP_END
    double l3_rate = 0.0;
    double dram_rate = 0.0;
    for (std::size_t c = 0; c < cores.size(); ++c) {
        const auto &in = cores[c];
        PPEP_ASSERT(in.activity != nullptr, "null core activity");
        const auto &act = *in.activity;
        if (!act.busy)
            continue;

        // Clock-spine energy on *productive* cycles only: stalled
        // pipeline stages are clock gated on modern cores, so stall
        // cycles burn (almost) no extra clock power. This also keeps
        // the quantity inside the span of Eq. 3's regressors (retiring
        // + discarded cycles are linear in E1/E7 via Eq. 5). A batched
        // caller hands the identical quantity in, priced for all its
        // chips' cores in one SIMD pass.
        double energy_nj;
        if (core_energy_nj != nullptr) {
            energy_nj = core_energy_nj[c];
        } else {
            const double active_cycles = std::max(
                0.0, act.cycles - act.events[eventIndex(
                                      Event::DispatchStall)]);
            energy_nj = active_cycles * p.busy_cycle_energy_nj;
            for (std::size_t i = 0; i < kNumPowerEvents; ++i)
                energy_nj += act.events[i] * p.event_energy_nj[i];
        }
        out.core_dynamic[c] = energy_nj * 1e-9 / dt_s *
                              dynScale(in.voltage) * in.activity_factor;

        l3_rate += act.l3_accesses / dt_s;
        dram_rate += act.dram_accesses / dt_s;
    }

    // NB dynamic: per-access energies at the NB voltage (quadratic — the
    // source of the paper's "-36% NB dynamic at -20% voltage" what-if).
    const double nb_vscale =
        (nb_vf.voltage / nb_vref_) * (nb_vf.voltage / nb_vref_);
    out.nb_dynamic = (l3_rate * p.l3_access_energy_nj +
                      dram_rate * p.dram_access_energy_nj) *
                     1e-9 * nb_vscale;

    out.total = out.base + out.housekeeping + out.nb_static +
                out.nb_dynamic + out.cuIdleTotal() +
                out.coreDynamicTotal();
}

} // namespace ppep::sim
