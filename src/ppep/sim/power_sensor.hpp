/**
 * @file
 * Simulated Hall-effect current sensor.
 *
 * The paper clamps a Pololu ACS711 onto the CPU's +12 V ATX line and
 * samples it through an Arduino ADC every 20 ms. We model the measurement
 * chain as multiplicative gain noise + an additive noise floor + ADC
 * quantisation. Model training consumes *these* readings, never the true
 * power, so regression residuals include realistic measurement error.
 */

#ifndef PPEP_SIM_POWER_SENSOR_HPP
#define PPEP_SIM_POWER_SENSOR_HPP

#include "ppep/sim/chip_config.hpp"
#include "ppep/util/rng.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** Noisy, quantised power meter. */
class PowerSensor
{
  public:
    PowerSensor(const SensorConfig &cfg, util::Rng rng);

    /** One 20 ms reading of @p true_power_w watts. */
    double sample(double true_power_w) PPEP_NONBLOCKING;

  private:
    const SensorConfig cfg_;
    util::Rng rng_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_POWER_SENSOR_HPP
