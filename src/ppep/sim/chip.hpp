/**
 * @file
 * The simulated processor: cores, CUs, NB, thermal, ground-truth power,
 * sensor, and PMCs, advanced in 20 ms ticks.
 *
 * The Chip is the hardware boundary. Everything above it (trace
 * collection, PPEP models, governors) may only touch what real software
 * can touch: job placement (taskset), per-CU VF requests (P-state MSRs),
 * PMC reads (msr-tools), the thermal diode (hwmon), and the external
 * power sensor. Ground-truth internals are exposed separately and only
 * for validation/benchmarks via TickResult::truth.
 */

#ifndef PPEP_SIM_CHIP_HPP
#define PPEP_SIM_CHIP_HPP

#include <memory>
#include <optional>
#include <vector>

#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/core_model.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/sim/hw_power_model.hpp"
#include "ppep/sim/northbridge.hpp"
#include "ppep/sim/phase.hpp"
#include "ppep/sim/pmc.hpp"
#include "ppep/sim/power_sensor.hpp"
#include "ppep/sim/thermal_model.hpp"
#include "ppep/util/annotations.hpp"
#include "ppep/util/rng.hpp"

namespace ppep::sim {

/** Ground-truth internals of one tick (validation only). */
struct TickTruth
{
    /** True power decomposition. */
    PowerBreakdown power;
    /** Per-core true event counts (no multiplexing). */
    std::vector<EventVector> core_events;
    /** Per-core activity summary. */
    std::vector<CoreActivity> activity;
    /** Per-CU gate state this tick. */
    std::vector<bool> cu_gated;
    /** NB gate state this tick. */
    bool nb_gated = false;
    /** DRAM utilisation from the contention fixed point. */
    double nb_utilization = 0.0;
    /** True junction temperature, kelvin. */
    double temperature_k = 0.0;
};

/** Everything observable (plus truth) from one 20 ms tick. */
struct TickResult
{
    /** Sensor power reading, watts — what training may use. */
    double sensor_power_w = 0.0;
    /** Thermal diode reading, kelvin — what training may use. */
    double diode_temp_k = 0.0;
    /** Ground-truth internals — validation only. */
    TickTruth truth;
};

/** The simulated processor. */
class Chip
{
  public:
    /** Build a chip; @p seed drives every stochastic element. */
    explicit Chip(ChipConfig cfg, std::uint64_t seed = 1);

    /** Static configuration. */
    const ChipConfig &config() const { return cfg_; }

    // --- software-visible controls -------------------------------------

    /** Place (or replace) a job on a core. */
    void setJob(std::size_t core, std::unique_ptr<Job> job);

    /** Remove the job from a core (core halts). */
    void clearJob(std::size_t core);

    /** Job currently on a core; nullptr when idle. */
    const Job *job(std::size_t core) const;

    /**
     * Request a VF state (ascending index) for one CU. Indices past the
     * software table address the hardware boost states
     * (vf_table.size() + k selects boost_states[k]); the hardware grants
     * boost only while few CUs are busy and the die is cool, clamping to
     * the top P-state otherwise.
     */
    void setCuVf(std::size_t cu, std::size_t vf_index) PPEP_NONBLOCKING;

    /** Request a VF state for every CU. */
    void setAllVf(std::size_t vf_index) PPEP_NONBLOCKING;

    /** Requested VF index of a CU. */
    std::size_t cuVf(std::size_t cu) const PPEP_NONBLOCKING;

    /** Total selectable states: P-states plus boost states. */
    std::size_t stateCount() const PPEP_NONBLOCKING;

    /** Operating point of any selectable index (P-state or boost). */
    const VfState &stateOf(std::size_t index) const PPEP_NONBLOCKING;

    /**
     * The state the hardware would actually grant a CU right now: the
     * request, unless it is a boost level the busy-CU count or the die
     * temperature currently forbids.
     */
    std::size_t grantedVf(std::size_t cu) const PPEP_NONBLOCKING;

    /** Enable/disable power gating (the paper's BIOS switch). */
    void setPowerGatingEnabled(bool enabled);

    /** Whether power gating is enabled. */
    bool powerGatingEnabled() const { return pg_enabled_; }

    /** Set the NB operating point (Sec. V-C2 what-if). */
    void setNbVf(const VfState &vf) PPEP_NONBLOCKING { nb_.setVf(vf); }

    /** Current NB operating point. */
    const VfState &nbVf() const PPEP_NONBLOCKING { return nb_.vf(); }

    /**
     * Read-and-reset one core's software-multiplexed counters (the
     * daemon path the paper uses). Never fails — the legacy perfect-
     * hardware read. @pre auto-multiplexing is enabled.
     */
    EventVector readPmc(std::size_t core) PPEP_NONBLOCKING;

    /**
     * Fallible read-and-reset of one core's multiplexed counters. With
     * a fault plan installed the attempt can fail (EAGAIN-style, per
     * FaultPlan::msr_read_fail_p); the multiplexer then keeps
     * accumulating, so a later retry reads a longer window. Returns
     * false and leaves @p out untouched on failure.
     * @pre auto-multiplexing is enabled.
     */
    bool tryReadPmc(std::size_t core, EventVector &out) PPEP_NONBLOCKING;

    /**
     * Ticks the core's multiplexer has accumulated since its last
     * successful read — the read window a tryReadPmc() success would
     * cover (longer than one interval after failed reads).
     */
    std::size_t pmcTicksSinceReset(std::size_t core) const PPEP_NONBLOCKING;

    /**
     * Enable/disable the built-in per-core software multiplexer. With
     * it disabled, nothing reprograms the counter selects between
     * ticks: program the bank yourself (directly or through the MSR
     * facade) and read raw counts — the msr-tools workflow.
     */
    void setPmcAutoMultiplex(bool enabled);

    /** Whether the built-in multiplexer is driving the counters. */
    bool pmcAutoMultiplex() const { return pmc_auto_mux_; }

    /** Direct access to a core's counter hardware (MSR-level use). */
    PmcBank &pmcBank(std::size_t core);

    // --- fault injection ------------------------------------------------

    /**
     * Install a fault plan (see sim/fault.hpp): every hardware interface
     * the daemon touches then misbehaves at the configured rates, driven
     * by a dedicated RNG stream derived from @p seed. Strictly opt-in —
     * without this call (or with an all-zero plan) the chip's outputs
     * are bit-identical to a fault-free build. Finite counter width
     * (plan.pmc_wrap_bits) is applied to every core's PmcBank.
     */
    void setFaultPlan(const FaultPlan &plan, std::uint64_t seed);

    /** The installed injector; nullptr when no plan is installed. */
    FaultInjector *faultInjector() { return injector_.get(); }
    const FaultInjector *faultInjector() const { return injector_.get(); }

    /** Total PMC wraparounds across all cores (finite-width counters). */
    std::size_t pmcWrapEvents() const PPEP_NONBLOCKING;

    // --- simulation -----------------------------------------------------

    /** Advance one 20 ms tick. */
    TickResult step();

    /**
     * step() into a caller-owned result, reusing its vectors (and the
     * chip's internal scratch) — the allocation-free per-tick path.
     * Outputs are bit-identical to step().
     */
    void stepInto(TickResult &res) PPEP_NONBLOCKING;

    /** Advance @p n ticks, discarding results (warm-up helper). */
    void run(std::size_t n);

    /** Simulated time elapsed, seconds. */
    double timeS() const { return time_s_; }

    /** True junction temperature (truth; use diode in models). */
    double temperatureK() const { return thermal_.temperature(); }

    /** Force the die temperature (scenario setup). */
    void setTemperatureK(double t) { thermal_.setTemperature(t); }

    /** Effective voltage a CU currently sees (rail sharing resolved). */
    double effectiveCuVoltage(std::size_t cu) const PPEP_NONBLOCKING;

  private:
    /** The batched stepper drives the tick phases individually. */
    friend class ChipBatch;

    /**
     * stepInto() split into three phases so ChipBatch can interleave
     * many chips' ticks around one shared SIMD pricing pass.
     * stepInto() == A, B(nullptr), C by construction (pure code
     * motion), so the scalar path stays the golden reference.
     *
     * A: VF landing, gating, rail resolution, NB contention, core
     *    execution (fills res.truth.activity).
     * B: ground-truth power; when @p core_energy_nj is non-null it
     *    supplies each core's switched energy (nJ) instead of the
     *    inline per-core loop — the batch kernel's output.
     * C: thermal advance, sensor/diode sampling, PMC tick.
     */
    void stepPhaseA(TickResult &res) PPEP_NONBLOCKING;
    void stepPhaseB(TickResult &res,
                    const double *core_energy_nj) PPEP_NONBLOCKING;
    void stepPhaseC(TickResult &res) PPEP_NONBLOCKING;
    /** True when both cores of a CU are idle (no runnable job). */
    bool cuIdle(std::size_t cu) const PPEP_NONBLOCKING;

    /** Hidden per-phase activity factor for a core's current phase. */
    double activityFactor(std::size_t core) const PPEP_NONBLOCKING;

    ChipConfig cfg_;
    NorthBridge nb_;
    ThermalModel thermal_;
    HwPowerModel hw_power_;
    PowerSensor sensor_;

    std::vector<std::unique_ptr<Job>> jobs_;
    std::vector<std::size_t> cu_vf_;
    std::vector<std::unique_ptr<PmcBank>> pmc_banks_;
    std::vector<std::unique_ptr<PmcMultiplexer>> pmc_mux_;
    bool pmc_auto_mux_ = true;
    std::vector<util::Rng> core_rngs_;
    bool pg_enabled_ = false;
    double time_s_ = 0.0;

    /** A P-state write the hardware accepted but has not applied yet. */
    struct PendingVfWrite
    {
        std::size_t cu = 0;
        std::size_t vf_index = 0;
        std::size_t ticks_left = 0;
    };
    std::unique_ptr<FaultInjector> injector_;
    std::vector<PendingVfWrite> pending_vf_;

    /**
     * Per-tick scratch reused by stepInto() so steady-state stepping
     * performs no heap allocation. Sized on first use; never observable
     * from outside a tick.
     */
    struct StepScratch
    {
        std::vector<bool> cu_gated;
        std::vector<double> cu_volt;
        std::vector<double> cu_freq;
        std::vector<PerInstRates> rates;
        std::vector<CoreDemand> demands;
        std::vector<std::size_t> demand_core;
        std::vector<double> act_factor;
        std::vector<CorePowerInput> pins;
        NbResolution nb_res;
        /** NB gate state carried from phase A to phase B. */
        bool nb_gated = false;
    };
    StepScratch scratch_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_CHIP_HPP
