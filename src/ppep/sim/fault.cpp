#include "ppep/sim/fault.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

bool
FaultPlan::any() const
{
    return msr_read_fail_p > 0.0 || pmc_wrap_bits > 0 ||
           pmc_slot_saturate_p > 0.0 || mux_dropout_p > 0.0 ||
           diode_spike_p > 0.0 || diode_stuck_p > 0.0 ||
           diode_dropout_p > 0.0 || sensor_spike_p > 0.0 ||
           sensor_dropout_p > 0.0 || vf_reject_p > 0.0 ||
           vf_delay_p > 0.0 || tick_jitter_p > 0.0 ||
           power_drift_rate > 0.0 || power_drift_bias != 0.0 ||
           sensor_drift_rate > 0.0 || sensor_drift_bias != 0.0;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            PPEP_FATAL("fault spec item '", item, "' has no '='");
        const std::string key = item.substr(0, eq);
        const double value = std::stod(item.substr(eq + 1));
        PPEP_ASSERT(value >= 0.0, "fault rates must be non-negative");
        if (key == "msr")
            plan.msr_read_fail_p = value;
        else if (key == "wrap")
            plan.pmc_wrap_bits = static_cast<unsigned>(value);
        else if (key == "saturate")
            plan.pmc_slot_saturate_p = value;
        else if (key == "mux")
            plan.mux_dropout_p = value;
        else if (key == "diode_spike")
            plan.diode_spike_p = value;
        else if (key == "diode_spike_k")
            plan.diode_spike_k = value;
        else if (key == "diode_stuck")
            plan.diode_stuck_p = value;
        else if (key == "diode_stuck_ticks")
            plan.diode_stuck_ticks = static_cast<std::size_t>(value);
        else if (key == "diode_drop")
            plan.diode_dropout_p = value;
        else if (key == "sensor_spike")
            plan.sensor_spike_p = value;
        else if (key == "sensor_spike_w")
            plan.sensor_spike_w = value;
        else if (key == "sensor_drop")
            plan.sensor_dropout_p = value;
        else if (key == "vf_reject")
            plan.vf_reject_p = value;
        else if (key == "vf_delay")
            plan.vf_delay_p = value;
        else if (key == "vf_delay_ticks")
            plan.vf_delay_ticks = static_cast<std::size_t>(value);
        else if (key == "jitter")
            plan.tick_jitter_p = value;
        else if (key == "jitter_max")
            plan.tick_jitter_max = static_cast<std::size_t>(value);
        else if (key == "power_drift")
            plan.power_drift_rate = value;
        else if (key == "power_drift_bias")
            plan.power_drift_bias = value;
        else if (key == "sensor_drift")
            plan.sensor_drift_rate = value;
        else if (key == "sensor_drift_bias")
            plan.sensor_drift_bias = value;
        else if (key == "drift_clamp")
            plan.drift_clamp = value;
        else
            PPEP_FATAL("unknown fault spec key '", key, "'");
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    if (!any())
        return "no faults";
    std::string out;
    const auto add = [&out](const char *key, double v) {
        if (v <= 0.0)
            return;
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s%s=%g", out.empty() ? "" : ",",
                      key, v);
        out += buf;
    };
    add("msr", msr_read_fail_p);
    add("wrap", static_cast<double>(pmc_wrap_bits));
    add("saturate", pmc_slot_saturate_p);
    add("mux", mux_dropout_p);
    add("diode_spike", diode_spike_p);
    add("diode_stuck", diode_stuck_p);
    add("diode_drop", diode_dropout_p);
    add("sensor_spike", sensor_spike_p);
    add("sensor_drop", sensor_dropout_p);
    add("vf_reject", vf_reject_p);
    add("vf_delay", vf_delay_p);
    add("jitter", tick_jitter_p);
    // Biases may be negative (programmatic plans); add() skips v <= 0.
    const auto addSigned = [&out](const char *key, double v) {
        if (v == 0.0)
            return;
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s%s=%g", out.empty() ? "" : ",",
                      key, v);
        out += buf;
    };
    add("power_drift", power_drift_rate);
    addSigned("power_drift_bias", power_drift_bias);
    add("sensor_drift", sensor_drift_rate);
    addSigned("sensor_drift_bias", sensor_drift_bias);
    // Only meaningful alongside a drift term; emit when it differs
    // from the default so describe() round-trips through parse().
    const bool drifting = power_drift_rate > 0.0 ||
                          power_drift_bias != 0.0 ||
                          sensor_drift_rate > 0.0 ||
                          sensor_drift_bias != 0.0;
    if (drifting && drift_clamp != FaultPlan{}.drift_clamp)
        addSigned("drift_clamp", drift_clamp);
    return out;
}

std::size_t
FaultCounters::total() const PPEP_NONBLOCKING
{
    return msr_read_failures + pmc_slot_saturations + mux_dropped_ticks +
           diode_spikes + diode_stuck_ticks + diode_dropouts +
           sensor_spikes + sensor_dropouts + vf_rejects + vf_delays +
           jittered_intervals + drift_ticks;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), rng_(seed)
{
    PPEP_ASSERT(plan_.pmc_wrap_bits <= 63,
                "counter width must fit a 64-bit register");
}

bool
FaultInjector::msrReadFails() PPEP_NONBLOCKING
{
    if (plan_.msr_read_fail_p <= 0.0 ||
        !rng_.bernoulli(plan_.msr_read_fail_p))
        return false;
    ++counters_.msr_read_failures;
    return true;
}

bool
FaultInjector::muxTickDropped() PPEP_NONBLOCKING
{
    if (plan_.mux_dropout_p <= 0.0 ||
        !rng_.bernoulli(plan_.mux_dropout_p))
        return false;
    ++counters_.mux_dropped_ticks;
    return true;
}

std::optional<std::size_t>
FaultInjector::saturatedSlot(std::size_t n_slots) PPEP_NONBLOCKING
{
    if (plan_.pmc_slot_saturate_p <= 0.0 || plan_.pmc_wrap_bits == 0 ||
        n_slots == 0 || !rng_.bernoulli(plan_.pmc_slot_saturate_p))
        return std::nullopt;
    ++counters_.pmc_slot_saturations;
    return rng_.uniformInt(n_slots);
}

double
FaultInjector::corruptDiode(double reading_k) PPEP_NONBLOCKING
{
    // A stuck diode wins over everything: the readout register simply
    // stops updating for a while.
    if (diode_stuck_left_ > 0) {
        --diode_stuck_left_;
        ++counters_.diode_stuck_ticks;
        return diode_stuck_value_;
    }
    if (plan_.diode_stuck_p > 0.0 && rng_.bernoulli(plan_.diode_stuck_p)) {
        diode_stuck_left_ = plan_.diode_stuck_ticks;
        diode_stuck_value_ = reading_k;
        return reading_k;
    }
    if (plan_.diode_dropout_p > 0.0 &&
        rng_.bernoulli(plan_.diode_dropout_p)) {
        ++counters_.diode_dropouts;
        return 0.0; // the hwmon "sensor unavailable" read
    }
    if (plan_.diode_spike_p > 0.0 && rng_.bernoulli(plan_.diode_spike_p)) {
        ++counters_.diode_spikes;
        const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
        return reading_k + sign * plan_.diode_spike_k;
    }
    return reading_k;
}

double
FaultInjector::corruptSensor(double reading_w) PPEP_NONBLOCKING
{
    if (plan_.sensor_dropout_p > 0.0 &&
        rng_.bernoulli(plan_.sensor_dropout_p)) {
        ++counters_.sensor_dropouts;
        return std::numeric_limits<double>::quiet_NaN();
    }
    if (plan_.sensor_spike_p > 0.0 &&
        rng_.bernoulli(plan_.sensor_spike_p)) {
        ++counters_.sensor_spikes;
        // ADC rail hits: full-scale or zero, both seen on real loggers.
        return rng_.bernoulli(0.5) ? plan_.sensor_spike_w : 0.0;
    }
    return reading_w;
}

FaultInjector::VfWrite
FaultInjector::onVfWrite() PPEP_NONBLOCKING
{
    if (plan_.vf_reject_p > 0.0 && rng_.bernoulli(plan_.vf_reject_p)) {
        ++counters_.vf_rejects;
        return VfWrite::Reject;
    }
    if (plan_.vf_delay_p > 0.0 && rng_.bernoulli(plan_.vf_delay_p)) {
        ++counters_.vf_delays;
        return VfWrite::Delay;
    }
    return VfWrite::Apply;
}

void
FaultInjector::advanceDrift() PPEP_NONBLOCKING
{
    ++counters_.drift_ticks;
    const double clamp = plan_.drift_clamp;
    const auto step = [this, clamp](double log_gain, double bias,
                                    double rate) {
        // Draw only when the walk is stochastic: bias-only plans leave
        // the shared RNG stream untouched for every other fault kind.
        log_gain += bias + (rate > 0.0 ? rate * rng_.gaussian() : 0.0);
        if (log_gain > clamp)
            log_gain = clamp;
        else if (log_gain < -clamp)
            log_gain = -clamp;
        return log_gain;
    };
    power_log_gain_ = step(power_log_gain_, plan_.power_drift_bias,
                           plan_.power_drift_rate);
    sensor_log_gain_ = step(sensor_log_gain_, plan_.sensor_drift_bias,
                            plan_.sensor_drift_rate);
    power_gain_ = std::exp(power_log_gain_);
    sensor_gain_ = std::exp(sensor_log_gain_);
}

std::size_t
FaultInjector::jitterTicks(std::size_t nominal) PPEP_NONBLOCKING
{
    if (plan_.tick_jitter_p <= 0.0 || plan_.tick_jitter_max == 0 ||
        !rng_.bernoulli(plan_.tick_jitter_p))
        return nominal;
    ++counters_.jittered_intervals;
    const std::size_t span = 2 * plan_.tick_jitter_max + 1;
    const std::int64_t offset =
        static_cast<std::int64_t>(rng_.uniformInt(span)) -
        static_cast<std::int64_t>(plan_.tick_jitter_max);
    const std::int64_t jittered =
        static_cast<std::int64_t>(nominal) + offset;
    return jittered < 1 ? 1 : static_cast<std::size_t>(jittered);
}

} // namespace ppep::sim
