#include "ppep/sim/chip.hpp"

#include <algorithm>
#include <limits>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

Chip::Chip(ChipConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      nb_(cfg_),
      thermal_(cfg_.thermal),
      hw_power_(cfg_),
      sensor_(cfg_.sensor, util::Rng(seed).fork(0xBEEF)),
      jobs_(cfg_.coreCount()),
      cu_vf_(cfg_.n_cus, cfg_.vf_table.top()),
      pg_enabled_(false)
{
    cfg_.validate();
    util::Rng root(seed);
    std::vector<Event> all(allEvents().begin(), allEvents().end());
    for (std::size_t c = 0; c < cfg_.coreCount(); ++c) {
        pmc_banks_.push_back(
            std::make_unique<PmcBank>(cfg_.pmc_counters));
        pmc_mux_.push_back(
            std::make_unique<PmcMultiplexer>(*pmc_banks_.back(), all,
                                             c));
        core_rngs_.push_back(root.fork(100 + c));
    }
}

void
Chip::setJob(std::size_t core, std::unique_ptr<Job> job)
{
    PPEP_ASSERT(core < jobs_.size(), "core ", core, " out of range");
    jobs_[core] = std::move(job);
}

void
Chip::clearJob(std::size_t core)
{
    PPEP_ASSERT(core < jobs_.size(), "core ", core, " out of range");
    jobs_[core].reset();
}

const Job *
Chip::job(std::size_t core) const
{
    PPEP_ASSERT(core < jobs_.size(), "core ", core, " out of range");
    return jobs_[core].get();
}

void
Chip::setCuVf(std::size_t cu, std::size_t vf_index) PPEP_NONBLOCKING
{
    PPEP_ASSERT(cu < cu_vf_.size(), "CU ", cu, " out of range");
    PPEP_ASSERT(vf_index < stateCount(), "VF index out of range");
    if (injector_) {
        switch (injector_->onVfWrite()) {
        case FaultInjector::VfWrite::Reject:
            return; // silently dropped, like a contended P-state MSR
        case FaultInjector::VfWrite::Delay:
            // rt-escape: delayed-write queue growth; capacity is
            // reserved in setFaultPlan() so warm pushes reuse it.
            PPEP_RT_WARMUP_BEGIN
            pending_vf_.push_back(
                {cu, vf_index, injector_->plan().vf_delay_ticks});
            PPEP_RT_WARMUP_END
            return;
        case FaultInjector::VfWrite::Apply:
            break;
        }
    }
    cu_vf_[cu] = vf_index;
}

std::size_t
Chip::stateCount() const PPEP_NONBLOCKING
{
    return cfg_.vf_table.size() + cfg_.boost_states.size();
}

const VfState &
Chip::stateOf(std::size_t index) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(index < stateCount(), "state index out of range");
    if (index < cfg_.vf_table.size())
        return cfg_.vf_table.state(index);
    return cfg_.boost_states[index - cfg_.vf_table.size()];
}

std::size_t
Chip::grantedVf(std::size_t cu) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(cu < cu_vf_.size(), "CU out of range");
    const std::size_t requested = cu_vf_[cu];
    if (requested < cfg_.vf_table.size())
        return requested;
    std::size_t busy_cus = 0;
    for (std::size_t i = 0; i < cfg_.n_cus; ++i)
        busy_cus += !cuIdle(i);
    const bool allowed =
        busy_cus <= cfg_.boost_max_busy_cus &&
        thermal_.temperature() < cfg_.boost_temp_limit_k;
    return allowed ? requested : cfg_.vf_table.top();
}

void
Chip::setAllVf(std::size_t vf_index) PPEP_NONBLOCKING
{
    for (std::size_t cu = 0; cu < cu_vf_.size(); ++cu)
        setCuVf(cu, vf_index);
}

std::size_t
Chip::cuVf(std::size_t cu) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(cu < cu_vf_.size(), "CU ", cu, " out of range");
    return cu_vf_[cu];
}

void
Chip::setPowerGatingEnabled(bool enabled)
{
    PPEP_ASSERT(!enabled || cfg_.pg_supported,
                "this processor does not support power gating");
    pg_enabled_ = enabled;
}

EventVector
Chip::readPmc(std::size_t core) PPEP_NONBLOCKING
{
    PPEP_ASSERT(core < pmc_mux_.size(), "core ", core, " out of range");
    PPEP_ASSERT(pmc_auto_mux_,
                "auto-multiplexing is off; read the PmcBank directly");
    return pmc_mux_[core]->readAndReset();
}

bool
Chip::tryReadPmc(std::size_t core, EventVector &out) PPEP_NONBLOCKING
{
    PPEP_ASSERT(core < pmc_mux_.size(), "core ", core, " out of range");
    PPEP_ASSERT(pmc_auto_mux_,
                "auto-multiplexing is off; read the PmcBank directly");
    if (injector_ && injector_->msrReadFails())
        return false;
    out = pmc_mux_[core]->readAndReset();
    return true;
}

std::size_t
Chip::pmcTicksSinceReset(std::size_t core) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(core < pmc_mux_.size(), "core ", core, " out of range");
    return pmc_mux_[core]->ticksSinceReset();
}

void
Chip::setFaultPlan(const FaultPlan &plan, std::uint64_t seed)
{
    injector_ = std::make_unique<FaultInjector>(plan, seed);
    for (auto &bank : pmc_banks_)
        bank->setWrapBits(plan.pmc_wrap_bits);
    // Bound the delayed-write queue up front so the warm hot path never
    // grows it: at most one in-flight write per CU per delay window.
    pending_vf_.reserve(cfg_.n_cus *
                        std::max<std::size_t>(1, plan.vf_delay_ticks));
}

std::size_t
Chip::pmcWrapEvents() const PPEP_NONBLOCKING
{
    std::size_t total = 0;
    for (const auto &bank : pmc_banks_)
        total += bank->wrapEvents();
    return total;
}

void
Chip::setPmcAutoMultiplex(bool enabled)
{
    pmc_auto_mux_ = enabled;
}

PmcBank &
Chip::pmcBank(std::size_t core)
{
    PPEP_ASSERT(core < pmc_banks_.size(), "core ", core,
                " out of range");
    return *pmc_banks_[core];
}

bool
Chip::cuIdle(std::size_t cu) const PPEP_NONBLOCKING
{
    for (std::size_t k = 0; k < cfg_.cores_per_cu; ++k) {
        const std::size_t core = cu * cfg_.cores_per_cu + k;
        if (jobs_[core] && !jobs_[core]->finished())
            return false;
    }
    return true;
}

double
Chip::effectiveCuVoltage(std::size_t cu) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(cu < cu_vf_.size(), "CU out of range");
    if (cfg_.per_cu_voltage)
        return stateOf(grantedVf(cu)).voltage;
    // Shared rail: the highest granted voltage among ungated CUs wins.
    double v = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < cu_vf_.size(); ++i) {
        if (pg_enabled_ && cuIdle(i))
            continue;
        v = std::max(v, stateOf(grantedVf(i)).voltage);
        any = true;
    }
    if (!any)
        v = cfg_.vf_table.state(0).voltage;
    return v;
}

double
Chip::activityFactor(std::size_t core) const PPEP_NONBLOCKING
{
    const Job *j = jobs_[core].get();
    if (!j || j->finished())
        return 1.0;
    // Deterministic per (benchmark, phase index): the same code region
    // has the same unmodeled behaviour at every VF state and in every
    // run — exactly like real software. The job caches its name hash at
    // construction so this stays off the per-tick critical path.
    const std::uint64_t h =
        j->nameHash() ^
        (j->currentPhaseIndex() * 0x9e3779b97f4a7c15ULL);
    util::Rng r(h);
    return std::max(0.5,
                    1.0 + r.gaussian(0.0, cfg_.power.phase_activity_sd));
}

TickResult
Chip::step()
{
    TickResult res;
    stepInto(res);
    return res;
}

void
Chip::stepInto(TickResult &res) PPEP_NONBLOCKING
{
    // Pure composition of the three phases — the scalar golden
    // reference ChipBatch must match bit for bit.
    stepPhaseA(res);
    stepPhaseB(res, nullptr);
    stepPhaseC(res);
}

void
Chip::stepPhaseA(TickResult &res) PPEP_NONBLOCKING
{
    const double dt = cfg_.tick_s;
    const std::size_t n_cores = cfg_.coreCount();

    // 0. Delayed P-state writes land once their latency expires.
    if (!pending_vf_.empty()) {
        std::size_t kept = 0;
        for (auto &w : pending_vf_) {
            if (w.ticks_left > 0) {
                --w.ticks_left;
                pending_vf_[kept++] = w;
            } else {
                cu_vf_[w.cu] = w.vf_index;
            }
        }
        // rt-escape: shrinking resize — never reallocates, but the
        // analysis cannot prove kept <= size().
        PPEP_RT_WARMUP_BEGIN
        pending_vf_.resize(kept);
        PPEP_RT_WARMUP_END
    }

    // 1. Gate states for this tick.
    std::vector<bool> &cu_gated = scratch_.cu_gated;
    // rt-escape: warm-up growth of per-tick scratch; assign() at steady
    // sizes reuses capacity (test_zero_alloc).
    PPEP_RT_WARMUP_BEGIN
    cu_gated.assign(cfg_.n_cus, false);
    PPEP_RT_WARMUP_END
    bool all_gated = true;
    for (std::size_t cu = 0; cu < cfg_.n_cus; ++cu) {
        cu_gated[cu] = pg_enabled_ && cuIdle(cu);
        all_gated = all_gated && cu_gated[cu];
    }
    scratch_.nb_gated = pg_enabled_ && all_gated;

    // 2. Effective per-CU voltage/frequency.
    std::vector<double> &cu_volt = scratch_.cu_volt;
    std::vector<double> &cu_freq = scratch_.cu_freq;
    // rt-escape: warm-up growth of per-tick scratch.
    PPEP_RT_WARMUP_BEGIN
    cu_volt.assign(cfg_.n_cus, 0.0);
    cu_freq.assign(cfg_.n_cus, 0.0);
    PPEP_RT_WARMUP_END
    for (std::size_t cu = 0; cu < cfg_.n_cus; ++cu) {
        cu_volt[cu] = effectiveCuVoltage(cu);
        cu_freq[cu] = stateOf(grantedVf(cu)).freq_ghz;
    }

    // 3. Effective rates for busy cores, then the NB contention fixed
    //    point across all of them.
    std::vector<PerInstRates> &rates = scratch_.rates;
    // rt-escape: warm-up growth of per-tick scratch.
    PPEP_RT_WARMUP_BEGIN
    rates.assign(n_cores, PerInstRates{});
    PPEP_RT_WARMUP_END
    std::vector<CoreDemand> &demands = scratch_.demands;
    std::vector<std::size_t> &demand_core = scratch_.demand_core;
    demands.clear();
    demand_core.clear();
    for (std::size_t c = 0; c < n_cores; ++c) {
        Job *j = jobs_[c].get();
        if (!j || j->finished())
            continue;
        const std::size_t cu = c / cfg_.cores_per_cu;
        rates[c] = CoreModel::effectiveRates(cfg_, j->currentPhase(),
                                             cu_freq[cu], core_rngs_[c]);
        // rt-escape: push into cleared-but-warm scratch; capacity is
        // reused after the first tick at a given core count.
        PPEP_RT_WARMUP_BEGIN
        demands.push_back({rates[c], cu_freq[cu]});
        demand_core.push_back(c);
        PPEP_RT_WARMUP_END
    }
    const NbResolution &nb_res = scratch_.nb_res;
    nb_.resolveInto(demands, scratch_.nb_res);

    // 4. Execute each busy core and advance its job.
    res.sensor_power_w = 0.0;
    res.diode_temp_k = 0.0;
    std::vector<double> &act_factor = scratch_.act_factor;
    // rt-escape: warm-up growth of the caller-owned result and scratch.
    PPEP_RT_WARMUP_BEGIN
    res.truth.activity.assign(n_cores, CoreActivity{});
    res.truth.core_events.assign(n_cores, EventVector{});
    act_factor.assign(n_cores, 1.0);
    PPEP_RT_WARMUP_END
    for (std::size_t d = 0; d < demands.size(); ++d) {
        const std::size_t c = demand_core[d];
        Job *j = jobs_[c].get();
        act_factor[c] = activityFactor(c);
        const std::size_t cu = c / cfg_.cores_per_cu;
        CoreActivity act = CoreModel::execute(
            cfg_, rates[c], cu_freq[cu], nb_res.mem_lat_ns[d], dt,
            std::numeric_limits<double>::infinity());
        const double consumed = j->advance(act.instructions);
        if (consumed < act.instructions) {
            // Job finished mid-tick; scale the tick's activity down.
            const double frac =
                act.instructions > 0.0 ? consumed / act.instructions : 0.0;
            act.instructions = consumed;
            act.cycles *= frac;
            for (auto &e : act.events)
                e *= frac;
            act.l3_accesses *= frac;
            act.dram_accesses *= frac;
        }
        res.truth.activity[c] = act;
        res.truth.core_events[c] = act.events;
    }
}

void
Chip::stepPhaseB(TickResult &res,
                 const double *core_energy_nj) PPEP_NONBLOCKING
{
    const double dt = cfg_.tick_s;
    const std::size_t n_cores = cfg_.coreCount();
    const std::vector<bool> &cu_gated = scratch_.cu_gated;
    const std::vector<double> &cu_volt = scratch_.cu_volt;
    const std::vector<double> &cu_freq = scratch_.cu_freq;
    const std::vector<double> &act_factor = scratch_.act_factor;
    const NbResolution &nb_res = scratch_.nb_res;
    const bool nb_gated = scratch_.nb_gated;

    // 5. Ground-truth power.
    std::vector<CorePowerInput> &pins = scratch_.pins;
    // rt-escape: warm-up growth of per-tick scratch.
    PPEP_RT_WARMUP_BEGIN
    pins.assign(n_cores, CorePowerInput{});
    PPEP_RT_WARMUP_END
    for (std::size_t c = 0; c < n_cores; ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        pins[c].activity = &res.truth.activity[c];
        pins[c].voltage = cu_volt[cu];
        pins[c].freq_ghz = cu_freq[cu];
        pins[c].activity_factor = act_factor[c];
    }
    hw_power_.computeInto(pins, cu_gated, nb_gated, cu_volt, cu_freq,
                          nb_.vf(), thermal_.temperature(), dt,
                          res.truth.power, core_energy_nj);
    if (injector_ && injector_->drifting()) {
        // Silicon aging: the whole true power decomposition wanders by
        // one multiplicative gain, so the trained models slowly go
        // stale while the decomposition stays self-consistent.
        injector_->advanceDrift();
        const double g = injector_->powerGain();
        PowerBreakdown &pw = res.truth.power;
        pw.total *= g;
        pw.base *= g;
        pw.housekeeping *= g;
        pw.nb_static *= g;
        pw.nb_dynamic *= g;
        for (double &w : pw.cu_idle)
            w *= g;
        for (double &w : pw.core_dynamic)
            w *= g;
    }
    // rt-escape: warm-up growth of the caller-owned result.
    PPEP_RT_WARMUP_BEGIN
    res.truth.cu_gated.assign(cu_gated.begin(), cu_gated.end());
    PPEP_RT_WARMUP_END
    res.truth.nb_gated = nb_gated;
    res.truth.nb_utilization = nb_res.utilization;
}

void
Chip::stepPhaseC(TickResult &res) PPEP_NONBLOCKING
{
    const double dt = cfg_.tick_s;
    const std::size_t n_cores = cfg_.coreCount();

    // 6. Thermal advance, then the observable readings.
    thermal_.step(res.truth.power.total, dt);
    res.truth.temperature_k = thermal_.temperature();
    res.sensor_power_w = sensor_.sample(res.truth.power.total);
    res.diode_temp_k = thermal_.diodeReading();
    if (injector_) {
        if (injector_->drifting())
            res.sensor_power_w *= injector_->sensorGain();
        res.sensor_power_w = injector_->corruptSensor(res.sensor_power_w);
        res.diode_temp_k = injector_->corruptDiode(res.diode_temp_k);
    }

    // 7. Counter hardware ticks; the software multiplexer (when
    //    enabled) harvests the active group and rotates the selects.
    //    Injected faults: a slot may saturate to full scale, and the
    //    daemon-side harvest may miss the tick entirely (the counts
    //    then bleed into the next harvest unrotated).
    for (std::size_t c = 0; c < n_cores; ++c) {
        pmc_banks_[c]->observe(res.truth.core_events[c]);
        if (injector_) {
            if (const auto slot = injector_->saturatedSlot(
                    pmc_banks_[c]->counterCount()))
                pmc_banks_[c]->write(*slot, pmc_banks_[c]->maxCount());
            if (pmc_auto_mux_ && injector_->muxTickDropped())
                continue;
        }
        if (pmc_auto_mux_)
            pmc_mux_[c]->afterTick();
    }

    time_s_ += dt;
}

void
Chip::run(std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        step();
}

} // namespace ppep::sim
