#include "ppep/sim/power_sensor.hpp"

#include <algorithm>
#include <cmath>

namespace ppep::sim {

PowerSensor::PowerSensor(const SensorConfig &cfg, util::Rng rng)
    : cfg_(cfg), rng_(rng)
{
}

double
PowerSensor::sample(double true_power_w) PPEP_NONBLOCKING
{
    const double gain = 1.0 + rng_.gaussian(0.0, cfg_.noise_fraction);
    const double noisy = true_power_w * gain +
                         rng_.gaussian(0.0, cfg_.noise_floor_w);
    const double clamped = std::max(0.0, noisy);
    return std::round(clamped / cfg_.quantum_w) * cfg_.quantum_w;
}

} // namespace ppep::sim
