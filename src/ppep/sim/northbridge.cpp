#include "ppep/sim/northbridge.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

NorthBridge::NorthBridge(const ChipConfig &cfg)
    : cfg_(cfg), vf_(cfg.nb.vf_hi)
{
}

void
NorthBridge::setVf(const VfState &vf) PPEP_NONBLOCKING
{
    PPEP_ASSERT(vf.freq_ghz > 0.0 && vf.voltage > 0.0, "bad NB VF state");
    vf_ = vf;
}

double
NorthBridge::l3LatencyNs() const PPEP_NONBLOCKING
{
    return cfg_.nb.l3_latency_cycles / vf_.freq_ghz;
}

double
NorthBridge::dramLatencyNs() const PPEP_NONBLOCKING
{
    return cfg_.nb.dram_fixed_ns +
           cfg_.nb.mc_latency_cycles / vf_.freq_ghz;
}

double
NorthBridge::coreLatencyNs(double l3_miss_rate, double queue_factor) const PPEP_NONBLOCKING
{
    return l3LatencyNs() * (1.0 - l3_miss_rate) +
           dramLatencyNs() * queue_factor * l3_miss_rate;
}

NbResolution
NorthBridge::resolve(const std::vector<CoreDemand> &demands) const
{
    NbResolution res;
    resolveInto(demands, res);
    return res;
}

void
NorthBridge::resolveInto(const std::vector<CoreDemand> &demands,
                         NbResolution &res) const PPEP_NONBLOCKING
{
    // rt-escape: warm-up growth of the caller-owned resolution buffer.
    PPEP_RT_WARMUP_BEGIN
    res.mem_lat_ns.assign(demands.size(), 0.0);
    PPEP_RT_WARMUP_END
    res.utilization = 0.0;
    res.queue_factor = 1.0;
    if (demands.empty())
        return;

    const double bw_max = cfg_.nb.dram_bw_gbs * 1e9;

    // Fixed point: latency -> instruction rate -> bandwidth -> latency.
    // Damped iteration converges in a handful of rounds for any sane
    // utilisation; the cap keeps the M/M/1 form from diverging.
    double queue_factor = 1.0;
    double utilization = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
        // MLP collapse: under pressure, overlapped misses serialise and
        // the effective leading-load latency grows super-linearly.
        const double mlp_scale =
            1.0 + cfg_.nb.mlp_collapse * utilization * utilization;
        double bytes_per_s = 0.0;
        for (std::size_t i = 0; i < demands.size(); ++i) {
            const auto &d = demands[i];
            const double lat = coreLatencyNs(
                d.rates.l3_per_inst > 0.0
                    ? d.rates.dram_per_inst / d.rates.l3_per_inst
                    : 0.0,
                queue_factor) * mlp_scale;
            res.mem_lat_ns[i] = lat;
            const double ips = CoreModel::instRate(d.rates, d.f_ghz, lat);
            bytes_per_s += ips * d.rates.dram_per_inst * cfg_.nb.line_bytes;
        }
        const double rho =
            std::min(bytes_per_s / bw_max, cfg_.nb.max_utilization);
        const double target_qf = 1.0 / (1.0 - rho);
        const double next_qf = 0.5 * queue_factor + 0.5 * target_qf;
        const bool converged = std::fabs(next_qf - queue_factor) < 1e-12;
        queue_factor = next_qf;
        utilization = rho;
        if (converged)
            break;
    }

    res.utilization = utilization;
    res.queue_factor = queue_factor;
}

} // namespace ppep::sim
