/**
 * @file
 * Lumped RC thermal network.
 *
 * One thermal node (the die/package) coupled to ambient through a thermal
 * resistance, with a first-order time constant. This reproduces the
 * exponential heat-up/cool-down transients of paper Fig. 1, which the idle
 * power model's training protocol exploits: heat the chip with work, stop,
 * and record (power, temperature) pairs while it cools.
 */

#ifndef PPEP_SIM_THERMAL_MODEL_HPP
#define PPEP_SIM_THERMAL_MODEL_HPP

#include "ppep/sim/chip_config.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** First-order thermal model with a quantised diode readout. */
class ThermalModel
{
  public:
    /** Start at ambient temperature. */
    explicit ThermalModel(const ThermalConfig &cfg);

    /**
     * Advance by @p dt_s seconds with @p power_w watts dissipated.
     * Exact exponential update (unconditionally stable for any dt):
     * T -> T_ss + (T - T_ss) * exp(-dt/tau), T_ss = T_amb + R * P.
     */
    void step(double power_w, double dt_s) PPEP_NONBLOCKING;

    /** True junction temperature, kelvin. */
    double temperature() const PPEP_NONBLOCKING { return temp_k_; }

    /** Diode readout: quantised junction temperature, kelvin. */
    double diodeReading() const PPEP_NONBLOCKING;

    /** Steady-state temperature this power level would settle at. */
    double steadyState(double power_w) const;

    /** Force the node to a temperature (test/scenario setup). */
    void setTemperature(double temp_k);

  private:
    const ThermalConfig cfg_;
    double temp_k_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_THERMAL_MODEL_HPP
