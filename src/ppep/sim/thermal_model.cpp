#include "ppep/sim/thermal_model.hpp"

#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

ThermalModel::ThermalModel(const ThermalConfig &cfg)
    : cfg_(cfg), temp_k_(cfg.ambient_k)
{
}

void
ThermalModel::step(double power_w, double dt_s) PPEP_NONBLOCKING
{
    PPEP_ASSERT(dt_s > 0.0, "non-positive thermal step");
    PPEP_ASSERT(power_w >= 0.0, "negative power");
    const double t_ss = steadyState(power_w);
    const double decay = std::exp(-dt_s / cfg_.time_constant_s);
    temp_k_ = t_ss + (temp_k_ - t_ss) * decay;
}

double
ThermalModel::diodeReading() const PPEP_NONBLOCKING
{
    const double q = cfg_.diode_quantum_k;
    return std::round(temp_k_ / q) * q;
}

double
ThermalModel::steadyState(double power_w) const
{
    return cfg_.ambient_k + cfg_.resistance_k_per_w * power_w;
}

void
ThermalModel::setTemperature(double temp_k)
{
    PPEP_ASSERT(temp_k > 0.0, "non-positive absolute temperature");
    temp_k_ = temp_k;
}

} // namespace ppep::sim
