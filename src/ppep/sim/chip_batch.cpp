#include "ppep/sim/chip_batch.hpp"

#include <algorithm>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

std::size_t
ChipBatch::attach(Chip &chip)
{
    const std::size_t lane = lanes_.size();
    const std::size_t n = chip.config().coreCount();
    lanes_.push_back({&chip, total_cores_, n, true});
    results_.emplace_back();

    const auto &p = chip.config().power;
    const std::size_t total = total_cores_ + n;
    cycles_.resize(total, 0.0);
    stall_.resize(total, 0.0);
    energy_nj_.resize(total, 0.0);
    busy_coeff_.resize(total, p.busy_cycle_energy_nj);
    for (std::size_t i = 0; i < kNumPowerEvents; ++i) {
        ev_[i].resize(total, 0.0);
        coeff_[i].resize(total, p.event_energy_nj[i]);
    }
    total_cores_ = total;
    return lane;
}

void
ChipBatch::setActive(std::size_t lane, bool active) PPEP_NONBLOCKING
{
    PPEP_ASSERT(lane < lanes_.size(), "lane ", lane, " out of range");
    lanes_[lane].active = active;
}

bool
ChipBatch::laneActive(std::size_t lane) const
{
    PPEP_ASSERT(lane < lanes_.size(), "lane ", lane, " out of range");
    return lanes_[lane].active;
}

TickResult &
ChipBatch::result(std::size_t lane)
{
    PPEP_ASSERT(lane < lanes_.size(), "lane ", lane, " out of range");
    return results_[lane];
}

void
ChipBatch::step() PPEP_NONBLOCKING
{
    const std::size_t stall_idx = eventIndex(Event::DispatchStall);

    // Phase A per chip, in lane order: job advance, VF/gating, the NB
    // fixed point, core execution. Per-chip RNG streams advance here,
    // exactly as the scalar path would.
    for (std::size_t l = 0; l < lanes_.size(); ++l)
        if (lanes_[l].active)
            lanes_[l].chip->stepPhaseA(results_[l]);

    // Pack each active lane's activity into the SoA columns. Idle
    // cores price to zero; their entry in phase B is skipped anyway
    // (the scalar reference never reads energy for !busy cores).
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
        if (!lanes_[l].active)
            continue;
        const Lane &lane = lanes_[l];
        for (std::size_t k = 0; k < lane.n_cores; ++k) {
            const std::size_t f = lane.core_offset + k;
            const CoreActivity &act = results_[l].truth.activity[k];
            if (act.busy) {
                cycles_[f] = act.cycles;
                stall_[f] = act.events[stall_idx];
                for (std::size_t i = 0; i < kNumPowerEvents; ++i)
                    ev_[i][f] = act.events[i];
            } else {
                cycles_[f] = 0.0;
                stall_[f] = 0.0;
                for (std::size_t i = 0; i < kNumPowerEvents; ++i)
                    ev_[i][f] = 0.0;
            }
        }
    }

    // The shared pricing pass: per flat core lane, the exact operation
    // sequence of HwPowerModel's inline loop — one multiply on the
    // productive cycles, then the nine event multiply-adds in
    // ascending event order. Cross-lane vectorization cannot reorder
    // the per-lane sequence, and -ffp-contract=off keeps every
    // intermediate individually rounded, so each lane's result is
    // bitwise the scalar one.
    {
        const double *cy = cycles_.data();
        const double *st = stall_.data();
        const double *bc = busy_coeff_.data();
        double *en = energy_nj_.data();
        const std::size_t n = total_cores_;
#pragma omp simd
        for (std::size_t f = 0; f < n; ++f)
            en[f] = std::max(0.0, cy[f] - st[f]) * bc[f];
        for (std::size_t i = 0; i < kNumPowerEvents; ++i) {
            const double *ev = ev_[i].data();
            const double *co = coeff_[i].data();
#pragma omp simd
            for (std::size_t f = 0; f < n; ++f)
                en[f] += ev[f] * co[f];
        }
    }

    // Phases B and C per chip, again in lane order. Chips share no
    // state, so phase interleaving across chips is unobservable.
    for (std::size_t l = 0; l < lanes_.size(); ++l)
        if (lanes_[l].active)
            lanes_[l].chip->stepPhaseB(
                results_[l], energy_nj_.data() + lanes_[l].core_offset);
    for (std::size_t l = 0; l < lanes_.size(); ++l)
        if (lanes_[l].active)
            lanes_[l].chip->stepPhaseC(results_[l]);
}

} // namespace ppep::sim
