/**
 * @file
 * Workload phase descriptors and jobs.
 *
 * A Phase holds the *per-instruction* microarchitectural characteristics of
 * a stretch of program execution: how many uops, cache accesses, branches,
 * misses, and leading loads each instruction generates, plus the
 * frequency-invariant stall component of its CPI. Interval analysis over
 * these rates is what makes the paper's Observations 1 and 2 emerge in the
 * simulator rather than being assumed.
 *
 * A Job is a sequence of phases a core executes; it tracks progress in
 * retired instructions.
 */

#ifndef PPEP_SIM_PHASE_HPP
#define PPEP_SIM_PHASE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/**
 * Per-instruction characteristics of one program phase.
 *
 * All `*_per_inst` fields are average event occurrences per retired
 * instruction and are VF-invariant by construction (Observation 1); the
 * memory side is expressed as leading loads per instruction plus the L3
 * hit/miss split, from which wall-clock memory time follows.
 */
struct Phase
{
    /** Micro-ops per instruction (E1). */
    double uops_per_inst = 1.3;
    /** FPU pipe assignments per instruction (E2). */
    double fpu_per_inst = 0.1;
    /** Instruction cache fetches per instruction (E3). */
    double ifetch_per_inst = 0.25;
    /** Data cache accesses per instruction (E4). */
    double dcache_per_inst = 0.4;
    /** L2 cache requests per instruction (E5). */
    double l2req_per_inst = 0.02;
    /** Retired branches per instruction (E6). */
    double branch_per_inst = 0.15;
    /** Retired mispredicted branches per instruction (E7). */
    double mispred_per_inst = 0.002;
    /** L2 misses per instruction (E8) — these become L3 accesses. */
    double l2miss_per_inst = 0.001;

    /**
     * Leading loads per instruction: off-core demand misses that stall the
     * core for the full memory latency (the LL-MAB approximation measures
     * their outstanding cycles as E12). A fraction of E8; memory-level
     * parallelism hides the rest.
     */
    double leading_per_inst = 0.0005;

    /** Fraction of L3 accesses that miss to DRAM. */
    double l3_miss_rate = 0.3;

    /**
     * Frequency-invariant stall CPI from non-memory resources (ROB/LSQ
     * pressure, long-latency ALU chains). Counted in Dispatch Stalls (E9)
     * but not in MAB Wait Cycles (E12).
     */
    double resource_stall_cpi = 0.3;

    /** Instructions this phase lasts. */
    double inst_count = 1e9;

    /** Sanity-check field ranges; panics on nonsense. */
    void validate() const;
};

/**
 * A runnable sequence of phases with an instruction-granular cursor.
 *
 * Jobs can be finite (run each phase once, then finish) or looping
 * (restart from the first phase forever — used for steady background
 * instances and microbenchmarks).
 */
class Job
{
  public:
    /** Construct from phases. @pre non-empty. */
    Job(std::string name, std::vector<Phase> phases, bool looping = false);

    /** Job/benchmark name (e.g. "433.milc"). */
    const std::string &name() const { return name_; }

    /**
     * std::hash of name(), cached at construction. The chip derives its
     * hidden per-phase activity factor from this every tick; hashing
     * the string there would put O(name length) work — and a read of a
     * heap-allocated buffer — on the per-tick critical path.
     */
    std::uint64_t nameHash() const PPEP_NONBLOCKING { return name_hash_; }

    /** Current phase. @pre !finished(). */
    const Phase &currentPhase() const PPEP_NONBLOCKING;

    /** Index of the current phase. @pre !finished(). */
    std::size_t currentPhaseIndex() const PPEP_NONBLOCKING;

    /** True once every phase has been fully executed (never for loops). */
    bool finished() const PPEP_NONBLOCKING { return finished_; }

    /**
     * Consume @p instructions retired instructions, advancing through
     * phase boundaries. Returns the number actually consumed (less than
     * requested only if the job finishes mid-tick).
     */
    double advance(double instructions) PPEP_NONBLOCKING;

    /** Total instructions retired so far. */
    double instructionsRetired() const { return retired_; }

    /** Total instructions across all phases (one iteration). */
    double totalInstructions() const;

    /** Reset the cursor to the beginning. */
    void reset();

    /** Number of phases. */
    std::size_t phaseCount() const { return phases_.size(); }

    /** Phase by index (for inspection/tests). */
    const Phase &phase(std::size_t i) const;

  private:
    std::string name_;
    std::uint64_t name_hash_ = 0;
    std::vector<Phase> phases_;
    bool looping_ = false;
    std::size_t phase_index_ = 0;
    double into_phase_ = 0.0; ///< instructions consumed in current phase
    double retired_ = 0.0;
    bool finished_ = false;
};

} // namespace ppep::sim

#endif // PPEP_SIM_PHASE_HPP
