/**
 * @file
 * Voltage-frequency (VF) state descriptors and tables.
 *
 * The paper's main platform, the AMD FX-8320, exposes five software-visible
 * VF states (VF5 down to VF1); the secondary AMD Phenom II X6 1090T exposes
 * four. The north bridge (NB) has its own VF domain, fixed in stock
 * hardware and made scalable in the Sec. V-C2 what-if study.
 */

#ifndef PPEP_SIM_VF_STATE_HPP
#define PPEP_SIM_VF_STATE_HPP

#include <cstddef>
#include <string>
#include <vector>
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** One voltage-frequency operating point. */
struct VfState
{
    /** Supply voltage in volts. */
    double voltage = 0.0;
    /** Core clock in GHz. */
    double freq_ghz = 0.0;
};

/**
 * Ordered table of VF states, index 0 = lowest (paper's VF1).
 *
 * The paper numbers states VF1..VF5 from slowest to fastest; we store them
 * in the same ascending order, so `state(0)` is VF1 and `state(size()-1)`
 * is the top state.
 */
class VfTable
{
  public:
    /** Build from ascending states. @pre non-empty, strictly ascending f. */
    explicit VfTable(std::vector<VfState> states);

    /** Number of states. */
    std::size_t size() const { return states_.size(); }

    /** State by ascending index (0 = VF1). @pre index < size(). */
    const VfState &state(std::size_t index) const PPEP_NONBLOCKING;

    /** Index of the top (fastest) state. */
    std::size_t top() const PPEP_NONBLOCKING { return states_.size() - 1; }

    /** Human-readable name, "VF1".."VFn", by ascending index. */
    std::string name(std::size_t index) const;

    /** Highest voltage in the table (the shared-rail ceiling). */
    double maxVoltage() const;

  private:
    std::vector<VfState> states_;
};

/** The AMD FX-8320 table from Sec. II: VF1..VF5. */
VfTable fx8320VfTable();

/** The AMD Phenom II X6 1090T table: VF1..VF4. */
VfTable phenomIIVfTable();

/** NB operating points from Sec. V-C2. */
VfState nbVfHi(); ///< Stock NB point (1.175 V, 2.2 GHz).
VfState nbVfLo(); ///< Hypothetical low NB point (0.940 V, 1.1 GHz).

} // namespace ppep::sim

#endif // PPEP_SIM_VF_STATE_HPP
