/**
 * @file
 * AMD family-15h style MSR facade over the counter hardware — the
 * interface the paper's daemon actually uses ("we use ... msr-tools to
 * set and read performance counters").
 *
 * Six counter pairs per core:
 *   PERF_CTL<i> = 0xC0010200 + 2*i   (event select)
 *   PERF_CTR<i> = 0xC0010201 + 2*i   (48-bit count)
 *
 * PERF_CTL uses the real family-15h layout: EventSelect[7:0] in bits
 * 7..0 and EventSelect[11:8] in bits 35..32, unit mask in 15..8, USR in
 * 16, OS in 17, EN in 22. Writing an enabled select whose event the
 * simulator models programs the slot; anything else disables it.
 */

#ifndef PPEP_SIM_MSR_HPP
#define PPEP_SIM_MSR_HPP

#include <cstdint>

#include "ppep/sim/pmc.hpp"

namespace ppep::sim {

/** Base address of PERF_CTL0. */
inline constexpr std::uint32_t kMsrPerfCtlBase = 0xC0010200;
/** Base address of PERF_CTR0. */
inline constexpr std::uint32_t kMsrPerfCtrBase = 0xC0010201;
/** Address stride between successive counter pairs. */
inline constexpr std::uint32_t kMsrPerfStride = 2;

/** Decoded PERF_CTL register. */
struct PerfEvtSel
{
    /** 12-bit event select code (e.g. 0x0c1 = Retired UOP). */
    std::uint16_t event_select = 0;
    /** Unit mask (sub-event filter; informational in this model). */
    std::uint8_t unit_mask = 0;
    /** Count user-mode activity. */
    bool user = true;
    /** Count kernel-mode activity. */
    bool os = true;
    /** Counter enabled. */
    bool enable = false;

    /** Pack into the family-15h register layout. */
    std::uint64_t encode() const;

    /** Unpack from the register layout. */
    static PerfEvtSel decode(std::uint64_t value);
};

/**
 * Per-core MSR device (the /dev/cpu/N/msr equivalent). A thin view over
 * one PmcBank; construct as many as you like.
 */
class MsrDevice
{
  public:
    /** Bind to a core's counter hardware (not owned). */
    explicit MsrDevice(PmcBank &bank);

    /**
     * Write an MSR. PERF_CTL writes (re)program the slot; PERF_CTR
     * writes overwrite the count. Unknown addresses are fatal, like a
     * #GP from the real wrmsr.
     */
    void wrmsr(std::uint32_t addr, std::uint64_t value);

    /** Read an MSR (CTL reads return the last written select). */
    std::uint64_t rdmsr(std::uint32_t addr) const;

  private:
    /** Map an address onto (is_ctl, slot); fatal on unknown MSRs. */
    std::size_t slotOf(std::uint32_t addr, bool &is_ctl) const;

    PmcBank &bank_;
    std::vector<std::uint64_t> ctl_shadow_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_MSR_HPP
