/**
 * @file
 * Per-core performance-monitor hardware and the software multiplexer.
 *
 * The hardware (PmcBank) is a set of programmable counter slots, six per
 * core on the AMD FX-8320: each slot is told which event to count and
 * accumulates that event's occurrences every tick. That is all the
 * silicon provides.
 *
 * PPEP needs twelve events (Table I), so the paper's daemon
 * time-multiplexes the slots *in software* — reprogramming the selects
 * periodically and extrapolating each event's accumulated count by
 * total-ticks / observed-ticks. PmcMultiplexer is that daemon-side
 * logic. Benchmarks whose phases flip at the multiplexing timescale
 * therefore show extrapolation error — the outlier mechanism the paper
 * reports for dedup/IS/DC.
 */

#ifndef PPEP_SIM_PMC_HPP
#define PPEP_SIM_PMC_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "ppep/sim/events.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/**
 * Wraparound-safe delta between two raw reads of a free-running
 * @p width_bits counter: the true increment modulo 2^width, assuming at
 * most one wrap between the reads (the standard perf/msr-tools polling
 * contract — poll faster than the counter can wrap twice).
 * @pre 1 <= width_bits <= 63 and both reads fit the width.
 */
std::uint64_t wrapCounterDelta(std::uint64_t prev, std::uint64_t cur,
                               unsigned width_bits);

/** One core's programmable counter hardware. */
class PmcBank
{
  public:
    /** @param n_counters physical slots (6 on the FX-8320). */
    explicit PmcBank(std::size_t n_counters);

    /** Number of physical slots. */
    std::size_t counterCount() const PPEP_NONBLOCKING { return slots_.size(); }

    /**
     * Bound every slot at 2^bits (counts wrap on overflow, like the real
     * 48-bit PERF_CTRs). 0 (the default) leaves counters unbounded — the
     * seed behaviour, bit-identical to hardware that never overflows.
     */
    void setWrapBits(unsigned bits);

    /** Configured counter width; 0 = unbounded. */
    unsigned wrapBits() const { return wrap_bits_; }

    /** Largest representable count (2^bits - 1); unbounded when 0 bits. */
    double maxCount() const PPEP_NONBLOCKING;

    /** Number of wraparounds observe() has performed since construction. */
    std::size_t wrapEvents() const PPEP_NONBLOCKING { return wrap_events_; }

    /** Select the event a slot counts (nullopt disables the slot). */
    void program(std::size_t slot, std::optional<Event> event);

    /** The event a slot currently counts. */
    std::optional<Event> programmed(std::size_t slot) const;

    /** Raw accumulated count of a slot. */
    double read(std::size_t slot) const;

    /** Overwrite a slot's accumulated count (wrmsr to the CTR). */
    void write(std::size_t slot, double value) PPEP_NONBLOCKING;

    /**
     * Hardware tick: every enabled slot accumulates its selected
     * event's true count.
     */
    void observe(const EventVector &true_counts) PPEP_NONBLOCKING;

  private:
    struct Slot
    {
        std::optional<Event> event;
        double count = 0.0;
    };
    std::vector<Slot> slots_;
    unsigned wrap_bits_ = 0;
    double wrap_modulus_ = 0.0;
    std::size_t wrap_events_ = 0;
};

/**
 * The daemon-side time multiplexer: rotates a list of events through a
 * PmcBank's slots, one group per tick, and extrapolates on read.
 */
class PmcMultiplexer
{
  public:
    /**
     * @param bank    the hardware to drive (not owned).
     * @param events  events to cover, in read-out order.
     * @param stagger initial group offset so different cores need not
     *                rotate in lockstep.
     */
    PmcMultiplexer(PmcBank &bank, std::vector<Event> events,
                   std::size_t stagger = 0);

    /** Number of rotation groups (ceil(events / slots)). */
    std::size_t groupCount() const { return n_groups_; }

    /** Group an event belongs to; group order follows the event list. */
    std::size_t groupOf(Event e) const;

    /**
     * Program the bank for the current group. Call before the tick the
     * group should observe.
     */
    void programCurrentGroup();

    /**
     * Harvest the just-observed group's counts from the bank and rotate
     * to the next group. Call after every hardware tick.
     */
    void afterTick() PPEP_NONBLOCKING;

    /**
     * Extrapolated per-event counts for the ticks observed since the
     * last reset, then clear.
     *
     * Contract for partial coverage: an event whose group was scheduled
     * zero ticks in the window (harvest preempted, or the window shorter
     * than one full rotation) reads as exactly 0.0 — a defined sentinel,
     * never a division by its zero coverage time. Likewise a window with
     * zero observed ticks reads all-zero. Callers that must distinguish
     * "counted nothing" from "never scheduled" should check
     * ticksSinceReset() against groupCount() before reading.
     */
    EventVector readAndReset() PPEP_NONBLOCKING;

    /** Ticks observed since last reset. */
    std::size_t ticksSinceReset() const PPEP_NONBLOCKING { return total_ticks_; }

  private:
    PmcBank &bank_;
    std::vector<Event> events_;
    std::size_t n_groups_;
    std::size_t current_group_;
    std::size_t total_ticks_ = 0;
    EventVector accum_{};
    std::vector<std::size_t> group_ticks_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_PMC_HPP
