#include "ppep/sim/core_model.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

PerInstRates
CoreModel::effectiveRates(const ChipConfig &cfg, const Phase &phase,
                          double f_ghz, util::Rng &rng) PPEP_NONBLOCKING
{
    const double f_top =
        cfg.vf_table.state(cfg.vf_table.top()).freq_ghz;
    const double rel = (f_ghz - f_top) / f_top;

    // Raw per-inst occurrence rates in Table I order E1..E8.
    const std::array<double, 8> raw{
        phase.uops_per_inst,   phase.fpu_per_inst,
        phase.ifetch_per_inst, phase.dcache_per_inst,
        phase.l2req_per_inst,  phase.branch_per_inst,
        phase.mispred_per_inst, phase.l2miss_per_inst,
    };

    PerInstRates out;
    for (std::size_t i = 0; i < 8; ++i) {
        const double sens = cfg.event_freq_sens[i];
        const double jitter = 1.0 + rng.gaussian(0.0, cfg.rate_jitter_sd);
        out.power_events[i] =
            std::max(0.0, raw[i] * (1.0 + sens * rel) * jitter);
    }

    // Leading loads and the L3/DRAM split follow E8's effective rate so
    // the memory-side quantities stay mutually consistent.
    const double miss_scale =
        phase.l2miss_per_inst > 0.0
            ? out.power_events[7] / phase.l2miss_per_inst
            : 1.0;
    out.leading_per_inst = phase.leading_per_inst * miss_scale;
    out.l3_per_inst = out.power_events[7];
    out.dram_per_inst = out.l3_per_inst * phase.l3_miss_rate;

    // Interval-analysis CCPI decomposition.
    const double retire_cpi = 1.0 / cfg.issue_width;
    const double mispred_cpi =
        cfg.mispredict_penalty * out.power_events[6];
    out.ccpi = retire_cpi + mispred_cpi + phase.resource_stall_cpi;
    out.obs2_gap = retire_cpi + mispred_cpi;

    // E9: dispatch-stall cycles per instruction excluding memory time;
    // the memory part is added in execute() once latency is known.
    out.power_events[8] = phase.resource_stall_cpi;

    return out;
}

double
CoreModel::instRate(const PerInstRates &rates, double f_ghz,
                    double mem_lat_ns) PPEP_NONBLOCKING
{
    const double mcpi = rates.leading_per_inst * mem_lat_ns * f_ghz;
    const double cpi = rates.ccpi + mcpi;
    PPEP_ASSERT(cpi > 0.0, "non-positive CPI");
    return f_ghz * 1e9 / cpi;
}

CoreActivity
CoreModel::execute(const ChipConfig &cfg, const PerInstRates &rates,
                   double f_ghz, double mem_lat_ns, double dt_s,
                   double max_instructions) PPEP_NONBLOCKING
{
    CoreActivity act;
    act.busy = true;

    const double mcpi = rates.leading_per_inst * mem_lat_ns * f_ghz;
    const double cpi = rates.ccpi + mcpi;
    const double ips = f_ghz * 1e9 / cpi;
    act.instructions = std::min(ips * dt_s, max_instructions);
    act.cycles = act.instructions * cpi;
    act.cpi = cpi;
    act.mcpi = mcpi;

    // Occurrence events E1..E8.
    for (std::size_t i = 0; i < 8; ++i)
        act.events[i] = rates.power_events[i] * act.instructions;
    // E9 dispatch stalls: resource stalls + memory stall cycles.
    act.events[eventIndex(Event::DispatchStall)] =
        (rates.power_events[8] + mcpi) * act.instructions;
    // E10 unhalted cycles, E11 retired instructions, E12 MAB wait cycles.
    act.events[eventIndex(Event::ClocksNotHalted)] = act.cycles;
    act.events[eventIndex(Event::RetiredInst)] = act.instructions;
    act.events[eventIndex(Event::MabWaitCycles)] = mcpi * act.instructions;

    act.l3_accesses = rates.l3_per_inst * act.instructions;
    act.dram_accesses = rates.dram_per_inst * act.instructions;

    (void)cfg;
    return act;
}

CoreActivity
CoreModel::idleTick()
{
    return CoreActivity{};
}

} // namespace ppep::sim
