#include "ppep/sim/msr.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::sim {

std::uint64_t
PerfEvtSel::encode() const
{
    std::uint64_t v = 0;
    v |= static_cast<std::uint64_t>(event_select & 0xFF);
    v |= static_cast<std::uint64_t>(unit_mask) << 8;
    if (user)
        v |= 1ULL << 16;
    if (os)
        v |= 1ULL << 17;
    if (enable)
        v |= 1ULL << 22;
    v |= static_cast<std::uint64_t>((event_select >> 8) & 0xF) << 32;
    return v;
}

PerfEvtSel
PerfEvtSel::decode(std::uint64_t value)
{
    PerfEvtSel sel;
    sel.event_select = static_cast<std::uint16_t>(
        (value & 0xFF) | (((value >> 32) & 0xF) << 8));
    sel.unit_mask = static_cast<std::uint8_t>((value >> 8) & 0xFF);
    sel.user = (value >> 16) & 1;
    sel.os = (value >> 17) & 1;
    sel.enable = (value >> 22) & 1;
    return sel;
}

MsrDevice::MsrDevice(PmcBank &bank)
    : bank_(bank), ctl_shadow_(bank.counterCount(), 0)
{
}

std::size_t
MsrDevice::slotOf(std::uint32_t addr, bool &is_ctl) const
{
    if (addr >= kMsrPerfCtlBase &&
        addr < kMsrPerfCtlBase +
                   kMsrPerfStride * bank_.counterCount()) {
        const std::uint32_t off = addr - kMsrPerfCtlBase;
        is_ctl = (off % kMsrPerfStride) == 0;
        return off / kMsrPerfStride;
    }
    PPEP_FATAL("unknown MSR 0x", std::hex, addr);
}

void
MsrDevice::wrmsr(std::uint32_t addr, std::uint64_t value)
{
    bool is_ctl = false;
    const std::size_t slot = slotOf(addr, is_ctl);
    if (is_ctl) {
        ctl_shadow_[slot] = value;
        const PerfEvtSel sel = PerfEvtSel::decode(value);
        if (sel.enable) {
            const auto event = eventFromSelect(sel.event_select);
            // Selects the simulator does not model count nothing —
            // the counter freezes, exactly like asking real silicon
            // for a reserved event.
            bank_.program(slot, event);
        } else {
            bank_.program(slot, std::nullopt);
        }
    } else {
        bank_.write(slot, static_cast<double>(value));
    }
}

std::uint64_t
MsrDevice::rdmsr(std::uint32_t addr) const
{
    bool is_ctl = false;
    const std::size_t slot = slotOf(addr, is_ctl);
    if (is_ctl)
        return ctl_shadow_[slot];
    // 48-bit counters wrap on real hardware; counts here stay far below.
    return static_cast<std::uint64_t>(bank_.read(slot));
}

} // namespace ppep::sim
