/**
 * @file
 * Static configuration of a simulated chip.
 *
 * Everything the simulator needs to produce event counts, wall power, and
 * temperature lives here: topology, core microarchitecture, the VF table,
 * the *hidden* ground-truth power constants, the thermal network, the
 * current-sensor characteristics, and the NB latency model.
 *
 * The ground-truth power section is deliberately richer than the forms
 * PPEP fits (exponential leakage vs. linear-in-T, V^alpha_true per-event
 * energy vs. a fitted alpha, hidden per-phase activity factors) so that the
 * learned models exhibit silicon-like residual errors.
 */

#ifndef PPEP_SIM_CHIP_CONFIG_HPP
#define PPEP_SIM_CHIP_CONFIG_HPP

#include <array>
#include <cstddef>
#include <string>

#include "ppep/sim/events.hpp"
#include "ppep/sim/vf_state.hpp"

namespace ppep::sim {

/** Ground-truth power constants (hidden from the PPEP models). */
struct GroundTruthPower
{
    /**
     * Energy per event occurrence at the reference (top-state) voltage,
     * in nanojoules, for power events E1..E9. E9 (dispatch stalls) carries
     * a small per-stall-cycle energy — stalled pipelines still clock
     * latches. E8 additionally drives NB energy, below.
     */
    std::array<double, kNumPowerEvents> event_energy_nj{};

    /** True voltage exponent for switched-capacitance energy. */
    double alpha_true = 2.3;

    /**
     * Energy per *unhalted cycle* of a busy core, nJ at the reference
     * voltage: the clock spine and always-toggling structures burn this
     * regardless of IPC (a stalled core still clocks its latches). This
     * compresses the power spread between IPC-0.3 and IPC-1.8 codes to
     * realistic levels. Representable by the paper's Eq. 3 regression
     * through the E1/E7/E9 combination (Eq. 5: unhalted = retiring +
     * stalls + discarded).
     */
    double busy_cycle_energy_nj = 1.1;

    /** Per-CU clock-tree + idle-active power, W per (GHz * V^2). */
    double cu_clock_coeff = 0.40;

    /** Per-CU leakage at (reference voltage, reference temp), watts. */
    double cu_leak_ref_w = 4.0;

    /** Leakage voltage shape: P ~ exp(leak_volt_k * (V - Vref)). */
    double leak_volt_k = 2.6;

    /** Leakage temperature shape: P ~ exp(leak_temp_k * (T - Tref)). */
    double leak_temp_k = 0.014;

    /** Reference temperature for leakage, kelvin. */
    double leak_temp_ref_k = 320.0;

    /** NB leakage at (NB reference voltage, reference temp), watts. */
    double nb_leak_ref_w = 3.2;

    /** NB clock power, W per (GHz * V^2). */
    double nb_clock_coeff = 1.15;

    /** Energy per L3 access (core E8), nJ at NB reference voltage. */
    double l3_access_energy_nj = 7.0;

    /** Energy per DRAM access, nJ at NB reference voltage. */
    double dram_access_energy_nj = 24.0;

    /** Always-on package power (I/O, PLLs), watts; never gated. */
    double base_power_w = 6.5;

    /** Fraction of CU/NB idle power that survives power gating. */
    double pg_residual = 0.03;

    /** OS housekeeping dynamic power on an idle, ungated chip, watts. */
    double housekeeping_w = 0.9;

    /**
     * Standard deviation of the hidden per-phase activity factor. Each
     * phase's true dynamic power is scaled by a factor drawn from
     * N(1, this); no linear event model can explain it — the residual the
     * paper's 8-14% dynamic-model errors come from.
     */
    double phase_activity_sd = 0.055;
};

/** Lumped RC thermal network parameters. */
struct ThermalConfig
{
    /** Ambient (heatsink inlet) temperature, kelvin. */
    double ambient_k = 302.0;
    /** Junction-to-ambient thermal resistance, K/W. */
    double resistance_k_per_w = 0.28;
    /** Thermal time constant, seconds. */
    double time_constant_s = 45.0;
    /** Thermal diode quantisation step, kelvin. */
    double diode_quantum_k = 0.125;
};

/** Hall-effect current sensor + ADC characteristics (Sec. II setup). */
struct SensorConfig
{
    /** Multiplicative gaussian noise (1 sigma, fraction of reading). */
    double noise_fraction = 0.01;
    /** Additive gaussian noise floor, watts. */
    double noise_floor_w = 0.15;
    /** ADC quantisation step, watts. */
    double quantum_w = 0.05;
};

/** NB / memory-hierarchy latency and bandwidth model. */
struct NbConfig
{
    /** Stock NB operating point. */
    VfState vf_hi = nbVfHi();
    /** Hypothetical low NB operating point (Sec. V-C2). */
    VfState vf_lo = nbVfLo();
    /** L3 hit latency in NB cycles. */
    double l3_latency_cycles = 22.0;
    /** Fixed (DRAM-array) part of a DRAM access, nanoseconds. */
    double dram_fixed_ns = 48.0;
    /** Memory-controller part of a DRAM access, NB cycles. */
    double mc_latency_cycles = 46.0;
    /** Effective random-access DRAM bandwidth, GB/s (two DDR3 DIMMs;
     *  well below peak because of bank conflicts and read/write turns). */
    double dram_bw_gbs = 12.8;
    /** Cache line size, bytes. */
    double line_bytes = 64.0;
    /** Queueing model utilisation cap (latency blows up beyond it). */
    double max_utilization = 0.92;
    /**
     * MLP-collapse strength: effective leading-load latency grows by
     * (1 + mlp_collapse * rho^2) — under bandwidth pressure, overlapped
     * misses serialise, so loads that were hidden become leading. This
     * is the super-linear slowdown Miftakhutdinov et al. showed simple
     * leading-loads models miss, and the mechanism behind the paper's
     * Fig. 8 observation 2 (multi-programmed memory-bound runs cost more
     * energy per thread).
     */
    double mlp_collapse = 1.0;
};

/**
 * Small systematic frequency sensitivity of each power event's
 * per-instruction count, making Observation 1 approximate rather than
 * exact: rate_eff = rate * (1 + sens * (f - f_top) / f_top).
 * Values chosen to reproduce the paper's measured VF5-vs-VF2 deltas
 * (0.6% .. 5.0% for E1..E8).
 */
using EventFreqSensitivity = std::array<double, kNumPowerEvents>;

/** Complete static description of a simulated processor. */
struct ChipConfig
{
    /** Platform name for reports. */
    std::string name = "AMD FX-8320 (simulated)";

    /** Number of compute units. */
    std::size_t n_cus = 4;
    /** Cores per compute unit. */
    std::size_t cores_per_cu = 2;

    /** Superscalar issue/commit width. */
    double issue_width = 4.0;
    /** Branch misprediction penalty, cycles. */
    double mispredict_penalty = 20.0;

    /** Core VF states, ascending. */
    VfTable vf_table = fx8320VfTable();

    /**
     * Hardware boost states above the top software P-state, ascending
     * (Sec. II: the FX-8320 has two, which the paper disables; Sec. IV-E
     * notes a firmware PPEP could control them). A CU may *request* a
     * boost level (index vf_table.size() + k via setCuVf), but the
     * hardware grants it only while few CUs are busy and the die is
     * cool; otherwise the request clamps to the top P-state.
     */
    std::vector<VfState> boost_states{};

    /** Boost denied at or above this junction temperature, kelvin. */
    double boost_temp_limit_k = 330.0;

    /** Boost denied when more than this many CUs are busy. */
    std::size_t boost_max_busy_cus = 2;

    /** Whether per-CU power gating exists (BIOS-controllable). */
    bool pg_supported = true;

    /**
     * Whether the NB voltage/frequency can be switched at run time
     * (Sec. V-C2, Fig. 11): stock parts pin the NB at nb.vf_hi; a
     * NB-DVFS-capable variant may drop to nb.vf_lo when the predicted
     * energy saving warrants it. Changes what training measures, so it
     * participates in the ModelStore fingerprint.
     */
    bool nb_dvfs_capable = false;

    /**
     * Whether each CU has its own voltage plane. Real parts share one
     * rail (voltage = max over CUs); the paper's capping study assumes
     * separate planes, as prior work [20, 21] does.
     */
    bool per_cu_voltage = false;

    /** Simulation tick, seconds (one sensor sample). */
    double tick_s = 0.020;
    /** Ticks per DVFS decision interval (200 ms / 20 ms). */
    std::size_t ticks_per_interval = 10;

    GroundTruthPower power{};
    ThermalConfig thermal{};
    SensorConfig sensor{};
    NbConfig nb{};
    EventFreqSensitivity event_freq_sens{};

    /** Per-tick multiplicative jitter on event rates (1 sigma). */
    double rate_jitter_sd = 0.004;

    /** Number of physical PMC counters per core (events multiplexed). */
    std::size_t pmc_counters = 6;

    /** Total core count. */
    std::size_t coreCount() const { return n_cus * cores_per_cu; }

    /** Sanity-check the configuration; panics on nonsense. */
    void validate() const;
};

/** The paper's main platform: AMD FX-8320, 4 CUs x 2 cores, 5 VF states. */
ChipConfig fx8320Config();

/**
 * The FX-8320 with its two hardware boost states enabled (3.8 and
 * 4.0 GHz) — the configuration the paper's Sec. IV-E firmware
 * discussion points at.
 */
ChipConfig fx8320ConfigWithBoost();

/** The secondary platform: AMD Phenom II X6 1090T, 6 cores, no PG. */
ChipConfig phenomIIConfig();

/**
 * The Fig. 11 what-if platform: an FX-8320 whose NB domain supports
 * run-time DVFS between nb.vf_hi and nb.vf_lo (Sec. V-C2).
 */
ChipConfig fx8320NbDvfsConfig();

} // namespace ppep::sim

#endif // PPEP_SIM_CHIP_CONFIG_HPP
