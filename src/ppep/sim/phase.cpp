#include "ppep/sim/phase.hpp"

#include <functional>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

void
Phase::validate() const
{
    PPEP_ASSERT(uops_per_inst >= 1.0, "uops/inst must be >= 1");
    PPEP_ASSERT(fpu_per_inst >= 0.0, "negative FPU rate");
    PPEP_ASSERT(ifetch_per_inst > 0.0, "ifetch rate must be positive");
    PPEP_ASSERT(dcache_per_inst >= 0.0, "negative dcache rate");
    PPEP_ASSERT(l2req_per_inst >= 0.0, "negative L2 request rate");
    PPEP_ASSERT(branch_per_inst >= 0.0 && branch_per_inst <= 1.0,
                "branch rate out of [0,1]");
    PPEP_ASSERT(mispred_per_inst >= 0.0 &&
                mispred_per_inst <= branch_per_inst,
                "mispredictions exceed branches");
    PPEP_ASSERT(l2miss_per_inst >= 0.0 && l2miss_per_inst <= l2req_per_inst,
                "L2 misses exceed L2 requests");
    PPEP_ASSERT(leading_per_inst >= 0.0 &&
                leading_per_inst <= l2miss_per_inst + 1e-12,
                "leading loads exceed L2 misses");
    PPEP_ASSERT(l3_miss_rate >= 0.0 && l3_miss_rate <= 1.0,
                "L3 miss rate out of [0,1]");
    PPEP_ASSERT(resource_stall_cpi >= 0.0, "negative stall CPI");
    PPEP_ASSERT(inst_count > 0.0, "phase must contain instructions");
}

Job::Job(std::string name, std::vector<Phase> phases, bool looping)
    : name_(std::move(name)),
      name_hash_(std::hash<std::string>{}(name_)),
      phases_(std::move(phases)),
      looping_(looping)
{
    PPEP_ASSERT(!phases_.empty(), "job '", name_, "' has no phases");
    for (const auto &p : phases_)
        p.validate();
}

const Phase &
Job::currentPhase() const PPEP_NONBLOCKING
{
    PPEP_ASSERT(!finished_, "currentPhase() on a finished job");
    return phases_[phase_index_];
}

std::size_t
Job::currentPhaseIndex() const PPEP_NONBLOCKING
{
    PPEP_ASSERT(!finished_, "currentPhaseIndex() on a finished job");
    return phase_index_;
}

double
Job::advance(double instructions) PPEP_NONBLOCKING
{
    PPEP_ASSERT(instructions >= 0.0, "cannot advance backwards");
    double remaining = instructions;
    double consumed = 0.0;
    while (remaining > 0.0 && !finished_) {
        const Phase &p = phases_[phase_index_];
        const double left = p.inst_count - into_phase_;
        const double step = remaining < left ? remaining : left;
        into_phase_ += step;
        retired_ += step;
        consumed += step;
        remaining -= step;
        if (into_phase_ >= p.inst_count) {
            into_phase_ = 0.0;
            ++phase_index_;
            if (phase_index_ >= phases_.size()) {
                if (looping_)
                    phase_index_ = 0;
                else
                    finished_ = true;
            }
        }
    }
    return consumed;
}

double
Job::totalInstructions() const
{
    double total = 0.0;
    for (const auto &p : phases_)
        total += p.inst_count;
    return total;
}

void
Job::reset()
{
    phase_index_ = 0;
    into_phase_ = 0.0;
    retired_ = 0.0;
    finished_ = false;
}

const Phase &
Job::phase(std::size_t i) const
{
    PPEP_ASSERT(i < phases_.size(), "phase index out of range");
    return phases_[i];
}

} // namespace ppep::sim
