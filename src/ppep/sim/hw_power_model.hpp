/**
 * @file
 * Ground-truth chip power — the simulated silicon's *actual* draw.
 *
 * This is the quantity the Hall-effect sensor measures and the quantity
 * PPEP's learned models try to approximate. It is deliberately richer than
 * the learned forms:
 *
 *  - leakage is exponential in voltage and temperature (the learned idle
 *    model is linear in T and polynomial in V);
 *  - per-event switching energy scales as V^alpha_true (the learned model
 *    fits its own alpha);
 *  - each workload phase carries a hidden activity factor no linear event
 *    model can explain;
 *  - NB energy is driven by actual L3/DRAM access counts, which PPEP can
 *    only proxy through E8/E9.
 *
 * Nothing in ppep::model may include this header; the only sanctioned
 * couplings are through the sensor, the diode, and the PMCs — same as on
 * real hardware.
 */

#ifndef PPEP_SIM_HW_POWER_MODEL_HPP
#define PPEP_SIM_HW_POWER_MODEL_HPP

#include <vector>

#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/core_model.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** Per-core input to the ground-truth power computation for one tick. */
struct CorePowerInput
{
    /** This tick's activity (events, L3/DRAM counts). */
    const CoreActivity *activity = nullptr;
    /** Effective supply voltage seen by this core, volts. */
    double voltage = 0.0;
    /** Core clock, GHz. */
    double freq_ghz = 0.0;
    /** Hidden per-phase activity factor (1.0 = nominal). */
    double activity_factor = 1.0;
};

/** Decomposed true power for one tick, watts. */
struct PowerBreakdown
{
    double total = 0.0;         ///< Everything below summed.
    double base = 0.0;          ///< Always-on package power.
    double housekeeping = 0.0;  ///< OS background dynamic power.
    double nb_static = 0.0;     ///< NB leakage + clock (after gating).
    double nb_dynamic = 0.0;    ///< L3 + DRAM access energy.
    std::vector<double> cu_idle;      ///< Per-CU leakage+clock (gated ok).
    std::vector<double> core_dynamic; ///< Per-core switched energy.

    /** Sum of per-CU idle power. */
    double cuIdleTotal() const PPEP_NONBLOCKING;
    /** Sum of per-core dynamic power. */
    double coreDynamicTotal() const PPEP_NONBLOCKING;
};

/** Stateless ground-truth power evaluator. */
class HwPowerModel
{
  public:
    explicit HwPowerModel(const ChipConfig &cfg);

    /**
     * Compute the chip's true power for one tick.
     *
     * @param cores       one entry per core, in core-id order.
     * @param cu_gated    per-CU power-gate state.
     * @param nb_gated    whether the NB is power gated.
     * @param cu_voltage  per-CU effective voltage (shared rail already
     *                    resolved by the caller).
     * @param cu_freq_ghz per-CU clock.
     * @param nb_vf       NB operating point.
     * @param temp_k      junction temperature.
     * @param dt_s        tick length (converts event counts to rates).
     */
    PowerBreakdown compute(const std::vector<CorePowerInput> &cores,
                           const std::vector<bool> &cu_gated, bool nb_gated,
                           const std::vector<double> &cu_voltage,
                           const std::vector<double> &cu_freq_ghz,
                           const VfState &nb_vf, double temp_k,
                           double dt_s) const;

    /**
     * compute() into a caller-owned breakdown, reusing its per-CU and
     * per-core vectors — the allocation-free per-tick path.
     *
     * @param core_energy_nj optional per-core switched energy (nJ) for
     *        this tick, one entry per core; read only for busy cores.
     *        When non-null it replaces the inline cycle/event pricing
     *        loop — sim::ChipBatch computes the same quantity for many
     *        chips in one SIMD pass and hands it back here. Must be
     *        bitwise equal to the inline computation for digests to
     *        match (same operation order, no FP contraction).
     */
    void computeInto(const std::vector<CorePowerInput> &cores,
                     const std::vector<bool> &cu_gated, bool nb_gated,
                     const std::vector<double> &cu_voltage,
                     const std::vector<double> &cu_freq_ghz,
                     const VfState &nb_vf, double temp_k, double dt_s,
                     PowerBreakdown &out,
                     const double *core_energy_nj = nullptr) const
        PPEP_NONBLOCKING;

    /** CU leakage+clock power at the given point (before gating). */
    double cuIdlePower(double voltage, double freq_ghz,
                       double temp_k) const PPEP_NONBLOCKING;

    /** NB leakage+clock power at the given point (before gating). */
    double nbStaticPower(const VfState &nb_vf, double temp_k) const PPEP_NONBLOCKING;

    /** Voltage scale factor (v/vref)^alpha_true for switched energy. */
    double dynScale(double voltage) const PPEP_NONBLOCKING;

  private:
    const ChipConfig &cfg_;
    double vref_;    ///< Core reference voltage (top VF state).
    double nb_vref_; ///< NB reference voltage (stock NB point).
};

} // namespace ppep::sim

#endif // PPEP_SIM_HW_POWER_MODEL_HPP
