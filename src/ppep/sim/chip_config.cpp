#include "ppep/sim/chip_config.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::sim {

void
ChipConfig::validate() const
{
    PPEP_ASSERT(n_cus >= 1 && cores_per_cu >= 1, "empty topology");
    PPEP_ASSERT(issue_width >= 1.0, "issue width must be >= 1");
    PPEP_ASSERT(mispredict_penalty >= 0.0, "negative mispredict penalty");
    PPEP_ASSERT(tick_s > 0.0, "tick must be positive");
    PPEP_ASSERT(ticks_per_interval >= 1, "need at least one tick/interval");
    PPEP_ASSERT(pmc_counters >= 1, "need at least one PMC counter");
    PPEP_ASSERT(power.alpha_true > 0.0, "alpha must be positive");
    PPEP_ASSERT(power.pg_residual >= 0.0 && power.pg_residual <= 1.0,
                "pg_residual out of [0,1]");
    PPEP_ASSERT(thermal.resistance_k_per_w > 0.0 &&
                thermal.time_constant_s > 0.0,
                "thermal parameters must be positive");
    PPEP_ASSERT(nb.dram_bw_gbs > 0.0, "DRAM bandwidth must be positive");
    PPEP_ASSERT(nb.max_utilization > 0.0 && nb.max_utilization < 1.0,
                "utilisation cap out of (0,1)");
    for (double e : power.event_energy_nj)
        PPEP_ASSERT(e >= 0.0, "negative event energy");
    double prev_f = vf_table.state(vf_table.top()).freq_ghz;
    double prev_v = vf_table.state(vf_table.top()).voltage;
    for (const auto &b : boost_states) {
        PPEP_ASSERT(b.freq_ghz > prev_f && b.voltage >= prev_v,
                    "boost states must ascend above the top P-state");
        prev_f = b.freq_ghz;
        prev_v = b.voltage;
    }
}

ChipConfig
fx8320Config()
{
    ChipConfig cfg;
    cfg.name = "AMD FX-8320 (simulated)";
    cfg.n_cus = 4;
    cfg.cores_per_cu = 2;
    cfg.issue_width = 4.0;
    cfg.mispredict_penalty = 20.0;
    cfg.vf_table = fx8320VfTable();
    cfg.pg_supported = true;

    // Per-event energies (nJ at 1.320 V): E1 uop, E2 FPU op, E3 I-fetch,
    // E4 D-access, E5 L2 request, E6 branch, E7 mispredicted branch
    // (recovery energy), E8 L2 miss (core-side MAB cost only; the L3/DRAM
    // cost is NB-side, below), E9 dispatch-stall cycle (latch clocking
    // while stalled). Calibrated so a CPU-heavy core draws ~12-14 W of
    // switched power at the top state — a Piledriver-class budget that,
    // together with leakage-heavy CU statics and a modest uncore floor,
    // reproduces the paper's Fig. 8 energy shapes (lowest VF state =
    // lowest energy).
    cfg.power.event_energy_nj = {1.2, 2.2, 0.9, 1.2, 5.5,
                                 0.7, 16.0, 3.6, 0.2};
    cfg.power.alpha_true = 2.3;
    cfg.power.busy_cycle_energy_nj = 1.1;
    cfg.power.cu_clock_coeff = 0.30;
    cfg.power.cu_leak_ref_w = 5.8;
    cfg.power.leak_volt_k = 4.0;
    cfg.power.leak_temp_k = 0.014;
    cfg.power.leak_temp_ref_k = 320.0;
    cfg.power.nb_leak_ref_w = 2.4;
    cfg.power.nb_clock_coeff = 0.82;
    cfg.power.l3_access_energy_nj = 12.0;
    cfg.power.dram_access_energy_nj = 45.0;
    cfg.power.base_power_w = 0.6;
    cfg.power.pg_residual = 0.03;
    cfg.power.housekeeping_w = 0.4;
    cfg.power.phase_activity_sd = 0.070;

    // Reproduce the paper's Observation-1 deltas (VF5 vs VF2 per-inst
    // count differences of 0.6/0.9/0.7/5.0/0.7/1.3/4.0/~2 percent for
    // E1..E8): delta = sens * (3.5-1.7)/3.5 = 0.514 * sens.
    cfg.event_freq_sens = {0.012, 0.018, 0.014, 0.097, 0.014,
                           0.025, 0.078, 0.039, 0.0};

    cfg.validate();
    return cfg;
}

ChipConfig
fx8320ConfigWithBoost()
{
    ChipConfig cfg = fx8320Config();
    cfg.name = "AMD FX-8320 (simulated, boost enabled)";
    // Two hardware boost points above VF5 (1.320 V, 3.5 GHz): the
    // FX-8320's all-but-idle 3.8 GHz step and its 4.0 GHz max turbo.
    cfg.boost_states = {{1.3875, 3.8}, {1.4250, 4.0}};
    cfg.boost_temp_limit_k = 330.0;
    cfg.boost_max_busy_cus = 2;
    cfg.validate();
    return cfg;
}

ChipConfig
fx8320NbDvfsConfig()
{
    ChipConfig cfg = fx8320Config();
    cfg.name = "AMD FX-8320 (simulated, NB-DVFS)";
    cfg.nb_dvfs_capable = true;
    cfg.validate();
    return cfg;
}

ChipConfig
phenomIIConfig()
{
    ChipConfig cfg;
    cfg.name = "AMD Phenom II X6 1090T (simulated)";
    // Six independent cores: model as six single-core CUs.
    cfg.n_cus = 6;
    cfg.cores_per_cu = 1;
    cfg.issue_width = 3.0;
    cfg.mispredict_penalty = 15.0;
    cfg.vf_table = phenomIIVfTable();
    cfg.pg_supported = false; // Sec. II: the 1090T has no power gating.

    // 45 nm part: higher per-op energy, lower leakage sensitivity than
    // the 32 nm FX-8320, single-core "CUs" with smaller uncore share.
    cfg.power.event_energy_nj = {1.4, 2.6, 1.1, 1.4, 6.3,
                                 0.8, 18.0, 4.2, 0.24};
    cfg.power.alpha_true = 2.1;
    cfg.power.busy_cycle_energy_nj = 1.3;
    cfg.power.cu_clock_coeff = 0.28;
    cfg.power.cu_leak_ref_w = 3.8;
    cfg.power.leak_volt_k = 3.2;
    cfg.power.leak_temp_k = 0.011;
    cfg.power.leak_temp_ref_k = 320.0;
    cfg.power.nb_leak_ref_w = 2.0;
    cfg.power.nb_clock_coeff = 0.85;
    // The 1090T NB runs at 2.0 GHz.
    cfg.nb.vf_hi = {1.150, 2.0};
    cfg.nb.vf_lo = {0.920, 1.0};
    cfg.power.l3_access_energy_nj = 13.0;
    cfg.power.dram_access_energy_nj = 48.0;
    cfg.power.base_power_w = 0.7;
    cfg.power.pg_residual = 1.0; // no gating: residual never applies
    cfg.power.housekeeping_w = 0.45;
    cfg.power.phase_activity_sd = 0.045;

    cfg.event_freq_sens = {0.010, 0.015, 0.012, 0.080, 0.012,
                           0.022, 0.065, 0.032, 0.0};

    cfg.validate();
    return cfg;
}

} // namespace ppep::sim
