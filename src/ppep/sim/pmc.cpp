#include "ppep/sim/pmc.hpp"

#include <algorithm>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

std::uint64_t
wrapCounterDelta(std::uint64_t prev, std::uint64_t cur,
                 unsigned width_bits)
{
    PPEP_ASSERT(width_bits >= 1 && width_bits <= 63,
                "counter width out of range");
    const std::uint64_t mask = (1ULL << width_bits) - 1;
    PPEP_ASSERT(prev <= mask && cur <= mask,
                "raw reads exceed the counter width");
    return (cur - prev) & mask;
}

PmcBank::PmcBank(std::size_t n_counters) : slots_(n_counters)
{
    PPEP_ASSERT(n_counters >= 1, "need at least one counter");
}

void
PmcBank::setWrapBits(unsigned bits)
{
    PPEP_ASSERT(bits <= 63, "counter width must fit a 64-bit register");
    wrap_bits_ = bits;
    wrap_modulus_ =
        bits ? static_cast<double>(1ULL << bits) : 0.0;
}

double
PmcBank::maxCount() const PPEP_NONBLOCKING
{
    PPEP_ASSERT(wrap_bits_ > 0, "unbounded counters have no full scale");
    return wrap_modulus_ - 1.0;
}

void
PmcBank::program(std::size_t slot, std::optional<Event> event)
{
    PPEP_ASSERT(slot < slots_.size(), "slot ", slot, " out of range");
    slots_[slot].event = event;
}

std::optional<Event>
PmcBank::programmed(std::size_t slot) const
{
    PPEP_ASSERT(slot < slots_.size(), "slot ", slot, " out of range");
    return slots_[slot].event;
}

double
PmcBank::read(std::size_t slot) const
{
    PPEP_ASSERT(slot < slots_.size(), "slot ", slot, " out of range");
    return slots_[slot].count;
}

void
PmcBank::write(std::size_t slot, double value) PPEP_NONBLOCKING
{
    PPEP_ASSERT(slot < slots_.size(), "slot ", slot, " out of range");
    PPEP_ASSERT(value >= 0.0, "counters hold non-negative counts");
    slots_[slot].count = value;
}

void
PmcBank::observe(const EventVector &true_counts) PPEP_NONBLOCKING
{
    for (auto &slot : slots_) {
        if (!slot.event)
            continue;
        slot.count += true_counts[eventIndex(*slot.event)];
        if (wrap_modulus_ > 0.0) {
            // Finite-width counters lose their high bits on overflow,
            // exactly like a real 48-bit PERF_CTR rolling over.
            while (slot.count >= wrap_modulus_) {
                slot.count -= wrap_modulus_;
                ++wrap_events_;
            }
        }
    }
}

PmcMultiplexer::PmcMultiplexer(PmcBank &bank, std::vector<Event> events,
                               std::size_t stagger)
    : bank_(bank), events_(std::move(events)),
      n_groups_((events_.size() + bank.counterCount() - 1) /
                bank.counterCount()),
      current_group_(n_groups_ ? stagger % n_groups_ : 0)
{
    PPEP_ASSERT(!events_.empty(), "multiplexer needs events");
    group_ticks_.assign(n_groups_, 0);
    programCurrentGroup();
}

std::size_t
PmcMultiplexer::groupOf(Event e) const
{
    const auto it = std::find(events_.begin(), events_.end(), e);
    PPEP_ASSERT(it != events_.end(), "event not covered");
    return static_cast<std::size_t>(
               std::distance(events_.begin(), it)) /
           bank_.counterCount();
}

void
PmcMultiplexer::programCurrentGroup()
{
    const std::size_t width = bank_.counterCount();
    const std::size_t lo = current_group_ * width;
    for (std::size_t s = 0; s < width; ++s) {
        const std::size_t idx = lo + s;
        bank_.program(s, idx < events_.size()
                             ? std::optional<Event>(events_[idx])
                             : std::nullopt);
        bank_.write(s, 0.0);
    }
}

void
PmcMultiplexer::afterTick() PPEP_NONBLOCKING
{
    // Harvest what the hardware just counted for the active group.
    const std::size_t width = bank_.counterCount();
    const std::size_t lo = current_group_ * width;
    for (std::size_t s = 0; s < width; ++s) {
        const std::size_t idx = lo + s;
        if (idx < events_.size())
            accum_[eventIndex(events_[idx])] += bank_.read(s);
    }
    ++group_ticks_[current_group_];
    ++total_ticks_;
    current_group_ = (current_group_ + 1) % n_groups_;
    programCurrentGroup();
}

EventVector
PmcMultiplexer::readAndReset() PPEP_NONBLOCKING
{
    EventVector out{};
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const std::size_t g = i / bank_.counterCount();
        if (group_ticks_[g] > 0) {
            const std::size_t e = eventIndex(events_[i]);
            out[e] = accum_[e] * static_cast<double>(total_ticks_) /
                     static_cast<double>(group_ticks_[g]);
        }
    }
    accum_ = EventVector{};
    // rt-escape: assign() at the fixed group count reuses capacity
    // sized in the constructor; never reallocates.
    PPEP_RT_WARMUP_BEGIN
    group_ticks_.assign(n_groups_, 0);
    PPEP_RT_WARMUP_END
    total_ticks_ = 0;
    return out;
}

} // namespace ppep::sim
