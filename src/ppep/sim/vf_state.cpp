#include "ppep/sim/vf_state.hpp"

#include <algorithm>

#include "ppep/util/logging.hpp"

namespace ppep::sim {

VfTable::VfTable(std::vector<VfState> states) : states_(std::move(states))
{
    PPEP_ASSERT(!states_.empty(), "VF table must not be empty");
    for (std::size_t i = 1; i < states_.size(); ++i) {
        PPEP_ASSERT(states_[i].freq_ghz > states_[i - 1].freq_ghz,
                    "VF table must be ascending in frequency");
        PPEP_ASSERT(states_[i].voltage >= states_[i - 1].voltage,
                    "VF table voltage must be non-decreasing");
    }
}

const VfState &
VfTable::state(std::size_t index) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(index < states_.size(), "VF index ", index, " out of range");
    return states_[index];
}

std::string
VfTable::name(std::size_t index) const
{
    PPEP_ASSERT(index < states_.size(), "VF index out of range");
    return "VF" + std::to_string(index + 1);
}

double
VfTable::maxVoltage() const
{
    return states_.back().voltage;
}

VfTable
fx8320VfTable()
{
    // Sec. II: VF5 (1.320V, 3.5GHz) ... VF1 (0.888V, 1.4GHz).
    return VfTable({
        {0.888, 1.4},
        {1.008, 1.7},
        {1.128, 2.3},
        {1.242, 2.9},
        {1.320, 3.5},
    });
}

VfTable
phenomIIVfTable()
{
    // The 1090T's P-states; voltages follow the same node scaling.
    return VfTable({
        {0.925, 0.8},
        {1.075, 1.6},
        {1.225, 2.4},
        {1.350, 3.2},
    });
}

VfState
nbVfHi()
{
    return {1.175, 2.2};
}

VfState
nbVfLo()
{
    return {0.940, 1.1};
}

} // namespace ppep::sim
