/**
 * @file
 * Interval-analysis core model.
 *
 * Executes one simulation tick of a phase on one core: splits CPI into a
 * frequency-scaling core component (CCPI) and a wall-clock-constant memory
 * component (MCPI, the leading-loads time), then derives instruction
 * throughput and all twelve Table-I event counts. The decomposition follows
 * Eyerman et al.'s interval model, which the paper builds Eq. 4-6 on:
 *
 *   cycles = retiring + dispatch stalls + discarded (mispredict recovery)
 *   CCPI   = 1/IssueWidth + MisBranchPen * mispred/inst + resource stalls
 *   MCPI   = leading_loads/inst * memory_latency_ns * f
 *
 * Per-instruction event rates are VF-invariant up to a small configured
 * frequency sensitivity and per-tick jitter — Observation 1 — and
 * CPI - DispatchStalls/inst equals the frequency-invariant
 * 1/IW + penalty * mispred/inst term — Observation 2.
 */

#ifndef PPEP_SIM_CORE_MODEL_HPP
#define PPEP_SIM_CORE_MODEL_HPP

#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/events.hpp"
#include "ppep/sim/phase.hpp"
#include "ppep/util/rng.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** Effective (jittered, frequency-adjusted) per-instruction rates. */
struct PerInstRates
{
    /** Per-instruction occurrence rates for power events E1..E9 — for E9
     *  this is dispatch-stall *cycles* per instruction. */
    std::array<double, kNumPowerEvents> power_events{};
    /** Leading loads per instruction. */
    double leading_per_inst = 0.0;
    /** L3 accesses (L2 misses) per instruction. */
    double l3_per_inst = 0.0;
    /** DRAM accesses per instruction. */
    double dram_per_inst = 0.0;
    /** Core CPI (no memory time): retire + mispredict + resource stalls. */
    double ccpi = 0.0;
    /** Frequency-invariant Eq. 6 gap: 1/IW + penalty * mispred/inst. */
    double obs2_gap = 0.0;
};

/** Result of executing one tick on one core. */
struct CoreActivity
{
    /** Whether the core had a job this tick. */
    bool busy = false;
    /** Instructions retired this tick. */
    double instructions = 0.0;
    /** Unhalted cycles this tick. */
    double cycles = 0.0;
    /** True event counts this tick (Table I order). */
    EventVector events{};
    /** L3 accesses this tick (for NB power/contention accounting). */
    double l3_accesses = 0.0;
    /** DRAM accesses this tick. */
    double dram_accesses = 0.0;
    /** Total CPI this tick. */
    double cpi = 0.0;
    /** Memory CPI component this tick. */
    double mcpi = 0.0;
};

/**
 * Stateless per-tick core execution math. All methods are pure given the
 * RNG; the Chip owns per-core RNG streams and job state.
 */
class CoreModel
{
  public:
    /**
     * Compute effective per-instruction rates for @p phase at core
     * frequency @p f_ghz. Applies the configured per-event frequency
     * sensitivity and one jitter draw per rate.
     */
    static PerInstRates effectiveRates(const ChipConfig &cfg,
                                       const Phase &phase, double f_ghz,
                                       util::Rng &rng) PPEP_NONBLOCKING;

    /**
     * Instructions per second at the given rates, frequency, and memory
     * latency. Used both for execution and inside the NB's contention
     * fixed point.
     */
    static double instRate(const PerInstRates &rates, double f_ghz,
                           double mem_lat_ns) PPEP_NONBLOCKING;

    /**
     * Execute @p dt_s seconds of @p phase on a core at @p f_ghz with
     * resolved memory latency @p mem_lat_ns, bounded by
     * @p max_instructions remaining in the job. Produces true event
     * counts.
     */
    static CoreActivity execute(const ChipConfig &cfg,
                                const PerInstRates &rates, double f_ghz,
                                double mem_lat_ns, double dt_s,
                                double max_instructions) PPEP_NONBLOCKING;

    /** Activity record for an idle (halted) core tick. */
    static CoreActivity idleTick();
};

} // namespace ppep::sim

#endif // PPEP_SIM_CORE_MODEL_HPP
