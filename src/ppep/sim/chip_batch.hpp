/**
 * @file
 * Batched SoA stepping of many chips — the fleet simulator kernel.
 *
 * A fleet of N sessions steps N independent chips ticks-in-lockstep.
 * Chip::stepInto() is control-heavy (job phase walks, RNG streams, the
 * NB contention fixed point), but its single biggest arithmetic block
 * is embarrassingly data-parallel: pricing each core's tick as
 *
 *     energy_nJ = max(0, cycles - dispatch_stalls) * busy_coeff
 *               + Σ_i events[i] * event_coeff[i]      (i < 9)
 *
 * — the ground-truth mirror of Eq. 3's "energy per event" form, and
 * the same shape model/explore_kernel repacked for Eq. 2/3. ChipBatch
 * packs every attached chip's cores into flat structure-of-arrays
 * lanes (lanes = Σ cores across chips) and runs that pricing for all
 * of them in one `#pragma omp simd` pass per event column; the
 * control-heavy phases stay scalar, per chip, in golden order.
 *
 * Bit-identity contract: ChipBatch::step() produces results bitwise
 * equal to calling chip.stepInto() on each attached chip.
 *  - stepInto() == stepPhaseA + stepPhaseB(nullptr) + stepPhaseC by
 *    pure code motion; the batch calls the same phases.
 *  - The SIMD pricing pass performs, per core, exactly the operation
 *    sequence of HwPowerModel's inline loop (one multiply, then nine
 *    ascending multiply-adds). Vectorization runs that identical
 *    sequence for several cores at once; with -ffp-contract=off
 *    (pinned on ppep_sim, like ppep_model) every intermediate rounds
 *    identically, so the lanes cannot diverge from the scalar path.
 *  - Chips never share state, so interleaving phases across chips is
 *    unobservable.
 * Heterogeneous fleets are free: each lane carries the coefficients of
 * its own chip's config, so FX-8320 and Phenom II lanes coexist in the
 * same pass. Fault injection lives entirely in the scalar phases and
 * is untouched.
 */

#ifndef PPEP_SIM_CHIP_BATCH_HPP
#define PPEP_SIM_CHIP_BATCH_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "ppep/sim/chip.hpp"
#include "ppep/sim/events.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** Steps many independent chips with one shared SIMD pricing pass. */
class ChipBatch
{
  public:
    /**
     * Add a chip as another lane (cold; grows the SoA arrays by the
     * chip's core count). The chip must outlive the batch. Returns
     * the lane index.
     */
    std::size_t attach(Chip &chip);

    /** Number of attached chips. */
    std::size_t laneCount() const { return lanes_.size(); }

    /** Flat core lanes across all attached chips. */
    std::size_t coreLaneCount() const { return total_cores_; }

    /**
     * Include/exclude a lane from subsequent step() calls — e.g. when
     * a fault-jittered interval gave one session fewer ticks than its
     * lockstep peers. An inactive lane's chip and result are untouched.
     */
    void setActive(std::size_t lane, bool active) PPEP_NONBLOCKING;

    /** Whether a lane participates in step(). */
    bool laneActive(std::size_t lane) const;

    /** The most recent tick's result for a lane. */
    TickResult &result(std::size_t lane);

    /**
     * Advance every active lane's chip by one tick — bit-identical to
     * calling stepInto() on each (see the bit-identity contract above).
     */
    void step() PPEP_NONBLOCKING;

  private:
    struct Lane
    {
        Chip *chip = nullptr;
        std::size_t core_offset = 0;
        std::size_t n_cores = 0;
        bool active = true;
    };

    std::vector<Lane> lanes_;
    std::vector<TickResult> results_;
    std::size_t total_cores_ = 0;

    // Structure-of-arrays pricing inputs/outputs, one slot per flat
    // core lane. Coefficients are per-lane so heterogeneous configs
    // share the pass.
    std::vector<double> cycles_;
    std::vector<double> stall_;
    std::vector<double> busy_coeff_;
    std::array<std::vector<double>, kNumPowerEvents> ev_;
    std::array<std::vector<double>, kNumPowerEvents> coeff_;
    std::vector<double> energy_nj_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_CHIP_BATCH_HPP
