#include "ppep/sim/events.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::sim {

namespace {

struct EventInfo
{
    std::string_view label;
    std::string_view code;
    std::string_view name;
    bool counts_cycles;
};

constexpr std::array<EventInfo, kNumEvents> kEventInfo{{
    {"E1", "PMCx0c1", "Retired UOP", false},
    {"E2", "PMCx000", "FPU Pipe Assignment", false},
    {"E3", "PMCx080", "Instruction Cache Fetches", false},
    {"E4", "PMCx040", "Data Cache Accesses", false},
    {"E5", "PMCx07d", "Request To L2 Cache", false},
    {"E6", "PMCx0c2", "Retired Branch Instructions", false},
    {"E7", "PMCx0c3", "Retired Mispredicted Branch Instructions", false},
    {"E8", "PMCx07e", "L2 Cache Misses", false},
    {"E9", "PMCx0d1", "Dispatch Stalls", true},
    {"E10", "PMCx076", "CPU Clocks not Halted", true},
    {"E11", "PMCx0c0", "Retired Instructions", false},
    {"E12", "PMCx069", "MAB Wait Cycles", true},
}};

const EventInfo &
info(Event e)
{
    const auto idx = eventIndex(e);
    PPEP_ASSERT(idx < kNumEvents, "bad event index ", idx);
    return kEventInfo[idx];
}

} // namespace

namespace {

constexpr std::array<std::uint16_t, kNumEvents> kSelectCodes{
    0x0c1, 0x000, 0x080, 0x040, 0x07d, 0x0c2,
    0x0c3, 0x07e, 0x0d1, 0x076, 0x0c0, 0x069};

} // namespace

std::uint16_t
eventSelect(Event e)
{
    const auto idx = eventIndex(e);
    PPEP_ASSERT(idx < kNumEvents, "bad event index");
    return kSelectCodes[idx];
}

std::optional<Event>
eventFromSelect(std::uint16_t select)
{
    for (std::size_t i = 0; i < kNumEvents; ++i) {
        if (kSelectCodes[i] == select)
            return static_cast<Event>(i);
    }
    return std::nullopt;
}

std::string_view
eventName(Event e)
{
    return info(e).name;
}

std::string_view
eventCode(Event e)
{
    return info(e).code;
}

std::string_view
eventLabel(Event e)
{
    return info(e).label;
}

bool
eventCountsCycles(Event e)
{
    return info(e).counts_cycles;
}

const std::array<Event, kNumEvents> &
allEvents()
{
    static const std::array<Event, kNumEvents> events = [] {
        std::array<Event, kNumEvents> out{};
        for (std::size_t i = 0; i < kNumEvents; ++i)
            out[i] = static_cast<Event>(i);
        return out;
    }();
    return events;
}

} // namespace ppep::sim
