/**
 * @file
 * Deterministic hardware fault injection.
 *
 * The paper's daemon runs against real silicon, where every interface it
 * touches misbehaves occasionally: /dev/cpu/N/msr reads fail with EAGAIN
 * under IPI pressure, 48-bit PERF_CTRs wrap and saturate, thermal diodes
 * glitch and stick, P-state writes get rejected or applied late under
 * boost/thermal contention, and the 200 ms timer overruns. The simulated
 * chip is perfect by default; a FaultPlan describes how imperfect it
 * should be, and a FaultInjector turns that plan into a seeded,
 * reproducible stream of fault decisions the Chip consults at each
 * hardware boundary.
 *
 * The layer is strictly opt-in: a Chip without an injector takes no
 * fault branches and produces bit-identical output to a build without
 * this file. A plan with all rates zero injects nothing.
 */

#ifndef PPEP_SIM_FAULT_HPP
#define PPEP_SIM_FAULT_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "ppep/util/rng.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** How imperfect the hardware should be. All rates default to zero. */
struct FaultPlan
{
    // --- counter acquisition (MsrDevice / PmcBank / PmcMultiplexer) ----
    /** Probability one PMC read-out attempt fails (EAGAIN-style). */
    double msr_read_fail_p = 0.0;
    /** Physical counter width in bits; 0 leaves counters unbounded.
     *  Real PERF_CTRs are 48-bit; small widths force wraparound. */
    unsigned pmc_wrap_bits = 0;
    /** Probability per core-tick that one random slot saturates to the
     *  counter's full-scale value (requires pmc_wrap_bits > 0). */
    double pmc_slot_saturate_p = 0.0;
    /** Probability per core-tick the software multiplexer misses its
     *  harvest (daemon preempted): the group is not rotated and the
     *  tick's counts bleed into the next harvest. */
    double mux_dropout_p = 0.0;

    // --- thermal diode (thermal_model readout) -------------------------
    /** Probability per tick of a one-tick diode spike. */
    double diode_spike_p = 0.0;
    /** Spike magnitude, kelvin (sign chosen by the injector). */
    double diode_spike_k = 60.0;
    /** Probability per tick the diode latches its current reading. */
    double diode_stuck_p = 0.0;
    /** How many ticks a stuck diode stays stuck. */
    std::size_t diode_stuck_ticks = 25;
    /** Probability per tick the diode read returns garbage (0 K). */
    double diode_dropout_p = 0.0;

    // --- power sensor (power_sensor readout) ---------------------------
    /** Probability per tick of a one-tick full-scale sensor spike. */
    double sensor_spike_p = 0.0;
    /** Spike magnitude, watts. */
    double sensor_spike_w = 400.0;
    /** Probability per tick the sensor sample is lost (reads NaN). */
    double sensor_dropout_p = 0.0;

    // --- VF actuation (vf_state / chip P-state writes) -----------------
    /** Probability a P-state write is silently rejected. */
    double vf_reject_p = 0.0;
    /** Probability a P-state write lands late instead of immediately. */
    double vf_delay_p = 0.0;
    /** How many ticks a delayed write waits before taking effect. */
    std::size_t vf_delay_ticks = 3;

    // --- interval timing (the daemon's 200 ms alarm) -------------------
    /** Probability an interval's tick count is jittered. */
    double tick_jitter_p = 0.0;
    /** Maximum jitter, ticks (uniform in [-max, +max], never below 1). */
    std::size_t tick_jitter_max = 2;

    // --- gradual drift (silicon aging / sensor decalibration) ----------
    /** Per-tick standard deviation of the random walk on the log of the
     *  ground-truth power gain (multiplicative wander of true power). */
    double power_drift_rate = 0.0;
    /** Deterministic per-tick bias on the log power gain (monotone
     *  aging; negative values only settable programmatically). */
    double power_drift_bias = 0.0;
    /** Per-tick standard deviation of the random walk on the log of the
     *  sensor gain (the external power logger decalibrating). */
    double sensor_drift_rate = 0.0;
    /** Deterministic per-tick bias on the log sensor gain. */
    double sensor_drift_bias = 0.0;
    /** Clamp on |log gain| for both walks: gains saturate at
     *  [exp(-clamp), exp(clamp)] instead of diverging. */
    double drift_clamp = 0.5;

    /** True when any fault can ever fire. */
    bool any() const;

    /**
     * Parse a "key=value,key=value" spec, e.g.
     * "msr=0.02,wrap=26,saturate=0.001,mux=0.01,diode_spike=0.005,
     *  sensor_drop=0.01,vf_reject=0.05,jitter=0.1".
     * Unknown keys are fatal(); an empty spec is the all-zero plan.
     */
    static FaultPlan parse(const std::string &spec);

    /** One-line human-readable summary of the nonzero rates. */
    std::string describe() const;
};

/** Cumulative counts of every fault the injector has fired. */
struct FaultCounters
{
    std::size_t msr_read_failures = 0;
    std::size_t pmc_slot_saturations = 0;
    std::size_t mux_dropped_ticks = 0;
    std::size_t diode_spikes = 0;
    std::size_t diode_stuck_ticks = 0;
    std::size_t diode_dropouts = 0;
    std::size_t sensor_spikes = 0;
    std::size_t sensor_dropouts = 0;
    std::size_t vf_rejects = 0;
    std::size_t vf_delays = 0;
    std::size_t jittered_intervals = 0;
    std::size_t drift_ticks = 0;

    /** Sum of every counter (the "how broken was the run" number). */
    std::size_t total() const PPEP_NONBLOCKING;
};

/**
 * The seeded fault decision stream. One injector serves one Chip; all
 * randomness comes from its own Rng, so installing an injector with an
 * all-zero plan perturbs nothing and identical (plan, seed) pairs yield
 * identical fault sequences.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    const FaultPlan &plan() const { return plan_; }
    const FaultCounters &counters() const { return counters_; }

    /** Does this PMC read-out attempt fail? (Counts failures.) */
    bool msrReadFails() PPEP_NONBLOCKING;

    /** Does this core-tick lose its multiplexer harvest? */
    bool muxTickDropped() PPEP_NONBLOCKING;

    /** Slot (if any) that saturates this core-tick. */
    std::optional<std::size_t> saturatedSlot(std::size_t n_slots) PPEP_NONBLOCKING;

    /** Run a diode reading through the glitch model. */
    double corruptDiode(double reading_k) PPEP_NONBLOCKING;

    /** Run a sensor reading through the glitch model. */
    double corruptSensor(double reading_w) PPEP_NONBLOCKING;

    /** Outcome of one P-state write. */
    enum class VfWrite
    {
        Apply,  ///< lands immediately (the default)
        Reject, ///< silently dropped
        Delay,  ///< lands plan.vf_delay_ticks ticks from now
    };
    VfWrite onVfWrite() PPEP_NONBLOCKING;

    /** Jitter an interval's nominal tick count (never below 1). */
    std::size_t jitterTicks(std::size_t nominal) PPEP_NONBLOCKING;

    /** Whether the plan drifts at all (gates the per-tick advance). */
    bool drifting() const PPEP_NONBLOCKING
    {
        return plan_.power_drift_rate > 0.0 ||
               plan_.power_drift_bias != 0.0 ||
               plan_.sensor_drift_rate > 0.0 ||
               plan_.sensor_drift_bias != 0.0;
    }

    /**
     * Advance both drift walks by one tick. The chip calls this once per
     * tick, and only when drifting(): RNG draws happen only for walks
     * with a nonzero rate, so bias-only (or drift-free) plans leave
     * every other fault stream bit-identical.
     */
    void advanceDrift() PPEP_NONBLOCKING;

    /** Current multiplicative gain on ground-truth power. */
    double powerGain() const PPEP_NONBLOCKING { return power_gain_; }

    /** Current multiplicative gain on the power-sensor reading. */
    double sensorGain() const PPEP_NONBLOCKING { return sensor_gain_; }

  private:
    FaultPlan plan_;
    util::Rng rng_;
    FaultCounters counters_;
    std::size_t diode_stuck_left_ = 0;
    double diode_stuck_value_ = 0.0;
    double power_log_gain_ = 0.0;
    double sensor_log_gain_ = 0.0;
    double power_gain_ = 1.0;
    double sensor_gain_ = 1.0;
};

} // namespace ppep::sim

#endif // PPEP_SIM_FAULT_HPP
