/**
 * @file
 * Shared north-bridge model: L3 + memory-controller latency, DRAM
 * bandwidth contention, and the NB's own VF state.
 *
 * All cores share the NB (Sec. II), so memory-bound co-runners slow each
 * other down — the mechanism behind the paper's background-workload
 * findings (Figs. 8-10). Contention is modelled as an M/M/1-style queueing
 * inflation of DRAM latency with total bandwidth utilisation, resolved by
 * a per-tick fixed point over all busy cores (demand depends on latency,
 * latency depends on demand).
 */

#ifndef PPEP_SIM_NORTHBRIDGE_HPP
#define PPEP_SIM_NORTHBRIDGE_HPP

#include <vector>

#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/core_model.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::sim {

/** One busy core's demand description for the contention fixed point. */
struct CoreDemand
{
    /** Effective per-instruction rates for this tick. */
    PerInstRates rates;
    /** Core frequency, GHz. */
    double f_ghz = 0.0;
};

/** Resolved contention state for one tick. */
struct NbResolution
{
    /** Per-core average leading-load latency, nanoseconds. */
    std::vector<double> mem_lat_ns;
    /** Total DRAM bandwidth utilisation in [0, max_utilization]. */
    double utilization = 0.0;
    /** Queueing inflation factor applied to DRAM latency (>= 1). */
    double queue_factor = 1.0;
};

/**
 * The north bridge: owns the NB VF state and answers latency queries.
 * Stateless across ticks except for the VF setting.
 */
class NorthBridge
{
  public:
    explicit NorthBridge(const ChipConfig &cfg);

    /** Current NB operating point. */
    const VfState &vf() const PPEP_NONBLOCKING { return vf_; }

    /** Change the NB operating point (the Sec. V-C2 what-if). */
    void setVf(const VfState &vf) PPEP_NONBLOCKING;

    /** L3 hit latency at the current NB frequency, nanoseconds. */
    double l3LatencyNs() const PPEP_NONBLOCKING;

    /** Uncontended DRAM access latency, nanoseconds. */
    double dramLatencyNs() const PPEP_NONBLOCKING;

    /**
     * Average leading-load latency for a core whose L3 accesses miss to
     * DRAM with probability @p l3_miss_rate, given a DRAM queueing factor.
     */
    double coreLatencyNs(double l3_miss_rate, double queue_factor) const PPEP_NONBLOCKING;

    /**
     * Resolve the contention fixed point for one tick: given every busy
     * core's demand, find mutually consistent per-core latencies and the
     * resulting DRAM utilisation.
     */
    NbResolution resolve(const std::vector<CoreDemand> &demands) const;

    /**
     * resolve() into a caller-owned result, reusing its latency buffer —
     * the allocation-free per-tick path.
     */
    void resolveInto(const std::vector<CoreDemand> &demands,
                     NbResolution &res) const PPEP_NONBLOCKING;

  private:
    const ChipConfig &cfg_;
    VfState vf_;
};

} // namespace ppep::sim

#endif // PPEP_SIM_NORTHBRIDGE_HPP
