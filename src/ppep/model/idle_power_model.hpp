/**
 * @file
 * Chip idle power model (paper Sec. IV-A, Eq. 2).
 *
 *     Pidle(V, T) = Widle1(V) * T + Widle0(V)
 *
 * with Widle1 and Widle0 third-order polynomials of voltage. The linear
 * temperature form is a deliberate simplification of exponential leakage
 * that holds well inside the normal operating range; the cubic voltage
 * form captures both the exponential-in-V leakage and the V*f idle active
 * power in one unified model (no static power table needed).
 *
 * Training data comes from the Fig. 1 protocol: heat the chip, stop all
 * work, and record (voltage, temperature, power) while it cools at each
 * VF state.
 */

#ifndef PPEP_MODEL_IDLE_POWER_MODEL_HPP
#define PPEP_MODEL_IDLE_POWER_MODEL_HPP

#include <vector>

#include "ppep/math/polynomial.hpp"

namespace ppep::model {

/** One idle observation: (V, T, P) while idle and not power gated. */
struct IdleSample
{
    double voltage = 0.0;
    double temp_k = 0.0;
    double power_w = 0.0;
};

/** Eq. 2 evaluated at one voltage: Pidle(T) = slope * T + intercept. */
struct IdleLine
{
    double slope = 0.0;     ///< Widle1(V), watts per kelvin
    double intercept = 0.0; ///< Widle0(V), watts
};

/** The Eq. 2 regression model. */
class IdlePowerModel
{
  public:
    /** Uninitialised model; predict() panics until trained. */
    IdlePowerModel() = default;

    /**
     * Train from cooling-trace samples spanning several voltages.
     *
     * Per distinct voltage, a linear P-vs-T fit yields (Widle1, Widle0)
     * points; each coefficient is then fit as a polynomial of voltage of
     * degree min(3, #voltages - 1).
     *
     * @pre samples from at least two distinct voltages, each with at
     *      least two distinct temperatures.
     */
    static IdlePowerModel train(const std::vector<IdleSample> &samples);

    /** Eq. 2: idle power at (V, T). @pre trained. */
    double predict(double voltage, double temp_k) const;

    /** Temperature slope Widle1 at a voltage. @pre trained. */
    double slope(double voltage) const;

    /** Intercept Widle0 at a voltage. @pre trained. */
    double intercept(double voltage) const;

    /**
     * Both Eq. 2 coefficients at a voltage in one call — what a per-VF
     * exploration plan hoists out of the hot path. @pre trained.
     */
    IdleLine lineAt(double voltage) const;

    /** Whether train() has produced this model. */
    bool trained() const { return trained_; }

    /** The Widle1(V) polynomial (serialization / inspection). */
    const math::Polynomial &w1() const { return w1_; }

    /** The Widle0(V) polynomial (serialization / inspection). */
    const math::Polynomial &w0() const { return w0_; }

    /** Rebuild a trained model from its two polynomials. */
    static IdlePowerModel fromPolynomials(math::Polynomial w1,
                                          math::Polynomial w0);

  private:
    math::Polynomial w1_; ///< Widle1(V)
    math::Polynomial w0_; ///< Widle0(V)
    bool trained_ = false;
};

} // namespace ppep::model

#endif // PPEP_MODEL_IDLE_POWER_MODEL_HPP
