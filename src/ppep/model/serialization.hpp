/**
 * @file
 * Persistence for trained PPEP models.
 *
 * Training is a one-time offline effort per processor (Sec. IV-B: "a
 * one-time, offline effort"); a deployment trains once, stores the
 * models, and every subsequent boot loads them. The format is a
 * versioned, line-oriented text file: human-inspectable, diff-friendly,
 * and byte-exact for doubles (hex float round-trip).
 */

#ifndef PPEP_MODEL_SERIALIZATION_HPP
#define PPEP_MODEL_SERIALIZATION_HPP

#include <iosfwd>
#include <string>

#include "ppep/model/trainer.hpp"

namespace ppep::model {

/** Serialize all trained models to a stream. @pre chip model trained. */
void saveModels(const TrainedModels &models, std::ostream &out);

/** Serialize to a file; fatal() on I/O failure. */
void saveModels(const TrainedModels &models, const std::string &path);

/**
 * Load models previously written by saveModels(). The VF table (needed
 * by the assembled ChipPowerModel) comes from @p cfg, which must be the
 * platform the models were trained for; a CU-count mismatch in the PG
 * decomposition is fatal.
 */
TrainedModels loadModels(std::istream &in, const sim::ChipConfig &cfg);

/** Load from a file; fatal() on I/O or format failure. */
TrainedModels loadModels(const std::string &path,
                         const sim::ChipConfig &cfg);

} // namespace ppep::model

#endif // PPEP_MODEL_SERIALIZATION_HPP
