#include "ppep/model/green_governors.hpp"

#include "ppep/math/least_squares.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::model {

GreenGovernorsModel
GreenGovernorsModel::train(const std::vector<GgTrainingRow> &rows)
{
    PPEP_ASSERT(rows.size() >= 4, "need at least 4 GG training rows");
    math::Matrix design(rows.size(), 4);
    std::vector<double> target(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto &row = rows[r];
        design(r, 0) = 1.0;
        design(r, 1) = row.voltage;
        design(r, 2) = row.voltage * row.voltage * row.cycle_rate;
        design(r, 3) = row.voltage * row.voltage * row.inst_rate;
        target[r] = row.power_w;
    }
    // Mild ridge keeps the intercept/voltage columns (nearly collinear
    // over a 5-point VF table) from blowing up.
    const auto fit = math::fitLeastSquares(design, target, 1e-6);

    GreenGovernorsModel m;
    m.c0_ = fit.coefficients[0];
    m.c1_ = fit.coefficients[1];
    m.c2_ = fit.coefficients[2];
    m.c3_ = fit.coefficients[3];
    m.trained_ = true;
    return m;
}

GreenGovernorsModel
GreenGovernorsModel::fromCoefficients(
    const std::array<double, 4> &coefficients)
{
    GreenGovernorsModel m;
    m.c0_ = coefficients[0];
    m.c1_ = coefficients[1];
    m.c2_ = coefficients[2];
    m.c3_ = coefficients[3];
    m.trained_ = true;
    return m;
}

double
GreenGovernorsModel::estimate(const trace::IntervalRecord &rec,
                              const sim::VfTable &vf_table) const
{
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &vf = vf_table.state(rec.cu_vf.front());
    const double cyc =
        rec.pmcTotal(sim::Event::ClocksNotHalted) / rec.duration_s;
    const double inst =
        rec.pmcTotal(sim::Event::RetiredInst) / rec.duration_s;
    return estimate(vf.voltage, cyc, inst);
}

double
GreenGovernorsModel::estimate(double voltage, double cycle_rate,
                              double inst_rate) const
{
    PPEP_ASSERT(trained_, "GG model not trained");
    return c0_ + c1_ * voltage +
           voltage * voltage * (c2_ * cycle_rate + c3_ * inst_rate);
}

} // namespace ppep::model
