/**
 * @file
 * Green Governors baseline power model (Spiliopoulos et al., IGCC'11 —
 * reference [27] of the paper).
 *
 * The paper compares PPEP's energy prediction against Green Governors in
 * Fig. 6 and characterises it as "based upon a theoretical power model
 * (i.e. CV^2 f)" that "does not consider energy contributions from the
 * NB". We reproduce that class of model: static power linear in voltage,
 * dynamic power as an effective capacitance times V^2 times clock
 * activity — no NB events, no temperature term, no per-event detail.
 * Its higher residual error against PPEP arises for the same structural
 * reasons as in the paper.
 */

#ifndef PPEP_MODEL_GREEN_GOVERNORS_HPP
#define PPEP_MODEL_GREEN_GOVERNORS_HPP

#include <array>
#include <vector>

#include "ppep/trace/interval.hpp"

namespace ppep::model {

/** One training row for the CV^2 f baseline. */
struct GgTrainingRow
{
    double voltage = 0.0;
    /** Chip-wide unhalted cycles per second (~ f * busy cores). */
    double cycle_rate = 0.0;
    /** Chip-wide retired instructions per second. */
    double inst_rate = 0.0;
    /** Measured chip power, watts. */
    double power_w = 0.0;
};

/** The CV^2 f-style baseline model. */
class GreenGovernorsModel
{
  public:
    GreenGovernorsModel() = default;

    /** Least-squares fit of P = c0 + c1 V + V^2 (c2 Rcyc + c3 Rinst). */
    static GreenGovernorsModel
    train(const std::vector<GgTrainingRow> &rows);

    /** Estimate chip power for an interval at its own VF state. */
    double estimate(const trace::IntervalRecord &rec,
                    const sim::VfTable &vf_table) const;

    /** Estimate chip power from raw features. */
    double estimate(double voltage, double cycle_rate,
                    double inst_rate) const;

    /** Whether train() produced this model. */
    bool trained() const { return trained_; }

    /** Fitted coefficients {c0, c1, c2, c3} (serialization). */
    std::array<double, 4> coefficients() const
    {
        return {c0_, c1_, c2_, c3_};
    }

    /** Rebuild a trained model from its coefficients (serialization). */
    static GreenGovernorsModel
    fromCoefficients(const std::array<double, 4> &coefficients);

  private:
    double c0_ = 0.0; ///< constant static term
    double c1_ = 0.0; ///< voltage-linear static term
    double c2_ = 0.0; ///< effective capacitance per cycle
    double c3_ = 0.0; ///< effective capacitance per instruction
    bool trained_ = false;
};

} // namespace ppep::model

#endif // PPEP_MODEL_GREEN_GOVERNORS_HPP
