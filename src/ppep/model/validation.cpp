#include "ppep/model/validation.hpp"

#include <algorithm>

#include "ppep/math/kfold.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/util/stats.hpp"

namespace ppep::model {

namespace {

/** Dynamic power below this is treated as unreliable for relative error
 *  (matches the sensor's noise floor). */
constexpr double kMinDynW = 1.0;

} // namespace

Validator::Validator(sim::ChipConfig cfg,
                     std::vector<const workloads::Combination *> combos,
                     std::uint64_t seed, std::size_t k)
    : cfg_(std::move(cfg)), combos_(std::move(combos)), seed_(seed),
      k_(k), trainer_(cfg_, seed)
{
    PPEP_ASSERT(!combos_.empty(), "no combinations to validate");
    PPEP_ASSERT(k_ >= 2, "need at least two folds");
}

void
Validator::prepare(std::size_t max_intervals)
{
    std::vector<std::size_t> vfs(cfg_.vf_table.size());
    for (std::size_t i = 0; i < vfs.size(); ++i)
        vfs[i] = i;
    dataset_ = trainer_.collectDataset(combos_, vfs, max_intervals);

    // Random fold assignment, as in the paper.
    util::Rng fold_rng(seed_ ^ 0xF01DF01DULL);
    const auto folds = math::makeFolds(combos_.size(), k_, fold_rng);
    combo_fold_.assign(combos_.size(), 0);
    for (std::size_t f = 0; f < folds.size(); ++f)
        for (std::size_t idx : folds[f].test)
            combo_fold_[idx] = f;

    // The hardware-protocol models (idle, alpha, PG) are independent of
    // the benchmark split; train them once and share across folds.
    IdlePowerModel idle = trainer_.trainIdle();
    const double alpha = trainer_.estimateAlpha(idle);
    PgIdleModel pg;
    if (cfg_.pg_supported)
        pg = trainer_.trainPg();

    fold_models_.clear();
    fold_models_.resize(k_);
    for (std::size_t f = 0; f < k_; ++f) {
        std::vector<const ComboTrace *> train_traces;
        for (const auto &t : dataset_) {
            // Which combo index is this trace's combo?
            const auto it =
                std::find(combos_.begin(), combos_.end(), t.combo);
            PPEP_ASSERT(it != combos_.end(), "trace of unknown combo");
            const std::size_t idx = static_cast<std::size_t>(
                std::distance(combos_.begin(), it));
            if (combo_fold_[idx] != f) // not held out -> training data
                train_traces.push_back(&t);
        }
        TrainedModels &m = fold_models_[f];
        m.idle = idle;
        m.alpha = alpha;
        m.pg = pg;
        m.dynamic = trainer_.trainDynamic(idle, alpha, train_traces);
        m.gg = trainer_.trainGg(train_traces);
        m.chip = ChipPowerModel(idle, m.dynamic, cfg_.vf_table);
    }
    prepared_ = true;
}

const TrainedModels &
Validator::foldModels(std::size_t fold) const
{
    PPEP_ASSERT(prepared_, "call prepare() first");
    PPEP_ASSERT(fold < fold_models_.size(), "fold out of range");
    return fold_models_[fold];
}

std::size_t
Validator::foldOf(std::size_t combo_idx) const
{
    PPEP_ASSERT(prepared_, "call prepare() first");
    PPEP_ASSERT(combo_idx < combo_fold_.size(), "combo out of range");
    return combo_fold_[combo_idx];
}

std::vector<const ComboTrace *>
Validator::tracesOf(std::size_t combo_idx) const
{
    std::vector<const ComboTrace *> out(cfg_.vf_table.size(), nullptr);
    const workloads::Combination *combo = combos_[combo_idx];
    for (const auto &t : dataset_) {
        if (t.combo == combo)
            out[t.vf_index] = &t;
    }
    for (const auto *t : out)
        PPEP_ASSERT(t != nullptr, "missing trace for combo");
    return out;
}

std::vector<ComboError>
Validator::validateEstimation() const
{
    PPEP_ASSERT(prepared_, "call prepare() first");
    std::vector<ComboError> out;
    for (std::size_t i = 0; i < combos_.size(); ++i) {
        const TrainedModels &m = fold_models_[combo_fold_[i]];
        for (const auto *trace : tracesOf(i)) {
            const double v =
                cfg_.vf_table.state(trace->vf_index).voltage;
            util::RunningStats err_dyn, err_chip;
            for (const auto &rec : trace->recs) {
                if (rec.busy_cores == 0)
                    continue;
                const PowerEstimate est = m.chip.estimate(rec);
                err_chip.add(util::absRelErr(est.total_w,
                                             rec.sensor_power_w));
                const double meas_dyn =
                    rec.sensor_power_w -
                    m.idle.predict(v, rec.diode_temp_k);
                if (meas_dyn >= kMinDynW) {
                    err_dyn.add(
                        util::absRelErr(est.dynamic_w, meas_dyn));
                }
            }
            ComboError e;
            e.combo = combos_[i];
            e.vf_index = trace->vf_index;
            e.aae_dynamic = err_dyn.mean();
            e.aae_chip = err_chip.mean();
            out.push_back(e);
        }
    }
    return out;
}

std::vector<CrossVfError>
Validator::validateCrossVf() const
{
    PPEP_ASSERT(prepared_, "call prepare() first");
    std::vector<CrossVfError> out;
    const std::size_t n_vf = cfg_.vf_table.size();
    for (std::size_t i = 0; i < combos_.size(); ++i) {
        const TrainedModels &m = fold_models_[combo_fold_[i]];
        const auto traces = tracesOf(i);

        // Measured per-VF averages.
        std::vector<double> meas_chip(n_vf, 0.0), meas_dyn(n_vf, 0.0);
        for (std::size_t vf = 0; vf < n_vf; ++vf) {
            const double v = cfg_.vf_table.state(vf).voltage;
            util::RunningStats chip_w, dyn_w;
            for (const auto &rec : traces[vf]->recs) {
                if (rec.busy_cores == 0)
                    continue;
                chip_w.add(rec.sensor_power_w);
                dyn_w.add(rec.sensor_power_w -
                          m.idle.predict(v, rec.diode_temp_k));
            }
            meas_chip[vf] = chip_w.mean();
            meas_dyn[vf] = dyn_w.mean();
        }

        // Predicted averages for every (from, to) pair.
        for (std::size_t from = 0; from < n_vf; ++from) {
            std::vector<util::RunningStats> pred_chip(n_vf),
                pred_dyn(n_vf);
            for (const auto &rec : traces[from]->recs) {
                if (rec.busy_cores == 0)
                    continue;
                for (std::size_t to = 0; to < n_vf; ++to) {
                    const PowerEstimate est = m.chip.predictAt(rec, to);
                    pred_chip[to].add(est.total_w);
                    pred_dyn[to].add(est.dynamic_w);
                }
            }
            for (std::size_t to = 0; to < n_vf; ++to) {
                CrossVfError e;
                e.combo = combos_[i];
                e.vf_from = from;
                e.vf_to = to;
                e.err_chip = util::absRelErr(pred_chip[to].mean(),
                                             meas_chip[to]);
                e.err_dynamic =
                    meas_dyn[to] >= kMinDynW
                        ? util::absRelErr(pred_dyn[to].mean(),
                                          meas_dyn[to])
                        : 0.0;
                out.push_back(e);
            }
        }
    }
    return out;
}

std::vector<EnergyError>
Validator::validateEnergy() const
{
    PPEP_ASSERT(prepared_, "call prepare() first");
    std::vector<EnergyError> out;
    for (std::size_t i = 0; i < combos_.size(); ++i) {
        const TrainedModels &m = fold_models_[combo_fold_[i]];
        for (const auto *trace : tracesOf(i)) {
            util::RunningStats err_ppep, err_gg;
            for (std::size_t t = 0; t + 1 < trace->recs.size(); ++t) {
                const auto &now = trace->recs[t];
                const auto &next = trace->recs[t + 1];
                if (now.busy_cores == 0 || next.busy_cores == 0)
                    continue;
                // A busy-core-count change means an instance started or
                // finished — the workload *set* changed, which no
                // same-workload predictor can anticipate. The paper's
                // minutes-long runs make such boundaries negligible;
                // our compressed runs must exclude them explicitly.
                if (now.busy_cores != next.busy_cores)
                    continue;
                const double meas_j =
                    next.sensor_power_w * next.duration_s;
                const double ppep_j =
                    m.chip.estimate(now).total_w * now.duration_s;
                const double gg_j =
                    m.gg.estimate(now, cfg_.vf_table) * now.duration_s;
                err_ppep.add(util::absRelErr(ppep_j, meas_j));
                err_gg.add(util::absRelErr(gg_j, meas_j));
            }
            if (err_ppep.count() == 0)
                continue;
            EnergyError e;
            e.combo = combos_[i];
            e.vf_index = trace->vf_index;
            e.aae_ppep = err_ppep.mean();
            e.aae_gg = err_gg.mean();
            out.push_back(e);
        }
    }
    return out;
}

} // namespace ppep::model
