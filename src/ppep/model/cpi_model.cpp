#include "ppep/model/cpi_model.hpp"

#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::model {

CpiSample
CpiModel::fromEvents(const sim::EventVector &events) PPEP_NONBLOCKING
{
    const double inst =
        events[sim::eventIndex(sim::Event::RetiredInst)];
    // !(x > 0) rather than x <= 0 so a NaN count also takes the
    // sentinel path instead of flowing into the divisions.
    if (!(inst > 0.0))
        return {};
    CpiSample s;
    s.cpi = events[sim::eventIndex(sim::Event::ClocksNotHalted)] / inst;
    s.mcpi = events[sim::eventIndex(sim::Event::MabWaitCycles)] / inst;
    // A counter set claiming retired instructions but no (or garbage)
    // cycles is corrupt — dropped multiplexer harvests and saturated
    // slots both produce it. The zero sample is the defined sentinel;
    // every downstream predictor treats it as an idle core.
    if (!std::isfinite(s.cpi) || !std::isfinite(s.mcpi) ||
        s.cpi <= 0.0 || s.mcpi < 0.0)
        return {};
    // Multiplexing extrapolation can make E12 slightly exceed E10 on
    // pathological intervals; clamp to keep CCPI non-negative.
    if (s.mcpi > s.cpi)
        s.mcpi = s.cpi;
    return s;
}

double
CpiModel::predictCpi(const CpiSample &sample, double f_current,
                     double f_target) PPEP_NONBLOCKING
{
    PPEP_ASSERT(f_current > 0.0 && f_target > 0.0,
                "frequencies must be positive");
    return predictCpiTerms(sample.ccpi(), sample.mcpi, f_current,
                           f_target);
}

double
CpiModel::predictMcpi(const CpiSample &sample, double f_current,
                      double f_target) PPEP_NONBLOCKING
{
    PPEP_ASSERT(f_current > 0.0 && f_target > 0.0,
                "frequencies must be positive");
    return sample.mcpi * f_target / f_current;
}

double
CpiModel::predictIps(const CpiSample &sample, double f_current,
                     double f_target) PPEP_NONBLOCKING
{
    const double cpi = predictCpi(sample, f_current, f_target);
    if (cpi <= 0.0)
        return 0.0;
    return f_target * 1e9 / cpi;
}

double
CpiModel::predictSpeedup(const CpiSample &sample, double f_current,
                         double f_target) PPEP_NONBLOCKING
{
    const double cpi_now = sample.cpi;
    const double cpi_then = predictCpi(sample, f_current, f_target);
    if (cpi_now <= 0.0 || cpi_then <= 0.0)
        return 1.0;
    return (f_target / cpi_then) / (f_current / cpi_now);
}

} // namespace ppep::model
