/**
 * @file
 * Cross-validation drivers reproducing the paper's accuracy studies.
 *
 * The paper randomly splits the 152 benchmark combinations into four
 * equal sets and 4-fold cross validates: every model accuracy number
 * (Figs. 2, 3, 6 and the in-text suite breakdowns) is an average of
 * per-benchmark AAEs computed on held-out combinations only. This module
 * owns the shared dataset, the fold machinery, and the three validation
 * computations.
 */

#ifndef PPEP_MODEL_VALIDATION_HPP
#define PPEP_MODEL_VALIDATION_HPP

#include <cmath>
#include <cstdint>
#include <vector>

#include "ppep/model/trainer.hpp"

namespace ppep::model {

/** Per-combination AAE at one VF state. */
struct ComboError
{
    const workloads::Combination *combo = nullptr;
    std::size_t vf_index = 0;
    double aae_dynamic = 0.0; ///< dynamic power model AAE
    double aae_chip = 0.0;    ///< chip power model AAE
};

/** Per-combination cross-VF prediction error for one VF pair. */
struct CrossVfError
{
    const workloads::Combination *combo = nullptr;
    std::size_t vf_from = 0;
    std::size_t vf_to = 0;
    double err_dynamic = 0.0; ///< |pred - meas| / meas on avg dyn power
    double err_chip = 0.0;    ///< same on avg chip power
};

/** Per-combination next-interval energy prediction AAE at one VF. */
struct EnergyError
{
    const workloads::Combination *combo = nullptr;
    std::size_t vf_index = 0;
    double aae_ppep = 0.0; ///< PPEP chip-energy AAE
    double aae_gg = 0.0;   ///< Green Governors baseline AAE
};

/**
 * Shared validation harness: collects the full dataset once (every
 * combination at every VF state), builds the k folds, trains per-fold
 * models, and evaluates each study on held-out data.
 */
class Validator
{
  public:
    /**
     * @param cfg   platform to validate on.
     * @param combos combinations to use (pass allCombinations()-derived
     *              pointers, or a subset for quick runs).
     * @param seed  drives collection, folding, and training.
     * @param k     number of folds (paper: 4).
     */
    Validator(sim::ChipConfig cfg,
              std::vector<const workloads::Combination *> combos,
              std::uint64_t seed, std::size_t k = 4);

    /** Collect traces and train per-fold models; call before queries. */
    void prepare(std::size_t max_intervals = 120);

    /** Fig. 2: per-combination estimation AAEs at every VF state. */
    std::vector<ComboError> validateEstimation() const;

    /** Fig. 3: per-combination cross-VF prediction errors, all pairs. */
    std::vector<CrossVfError> validateCrossVf() const;

    /** Fig. 6: next-interval energy prediction, PPEP vs GG. */
    std::vector<EnergyError> validateEnergy() const;

    /** The models trained on fold @p fold's training set. */
    const TrainedModels &foldModels(std::size_t fold) const;

    /** Fold index whose *test* set contains combo @p combo_idx. */
    std::size_t foldOf(std::size_t combo_idx) const;

    /** The shared trace dataset (all combos x all VF states). */
    const std::vector<ComboTrace> &dataset() const { return dataset_; }

    /** The trainer (exposes the chip config + protocols). */
    const Trainer &trainer() const { return trainer_; }

    /** Combinations under validation, in index order. */
    const std::vector<const workloads::Combination *> &combos() const
    {
        return combos_;
    }

  private:
    /** All traces of one combination, one per VF state. */
    std::vector<const ComboTrace *>
    tracesOf(std::size_t combo_idx) const;

    sim::ChipConfig cfg_;
    std::vector<const workloads::Combination *> combos_;
    std::uint64_t seed_;
    std::size_t k_;
    Trainer trainer_;

    std::vector<ComboTrace> dataset_;
    std::vector<std::size_t> combo_fold_; ///< combo index -> fold
    std::vector<TrainedModels> fold_models_;
    bool prepared_ = false;
};

/**
 * Aggregate per-combination errors into the paper's per-suite rows:
 * mean and standard deviation of the AAEs of all combinations of one
 * suite (or all suites for the "ALL" column).
 */
struct SuiteAggregate
{
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

/** Aggregate a metric over combination errors filtered by suite. */
template <typename Row, typename Metric>
SuiteAggregate
aggregate(const std::vector<Row> &rows, Metric metric,
          const workloads::SuiteId *suite = nullptr)
{
    std::vector<double> vals;
    for (const auto &r : rows) {
        if (suite && r.combo->suite != *suite)
            continue;
        vals.push_back(metric(r));
    }
    SuiteAggregate out;
    out.count = vals.size();
    if (vals.empty())
        return out;
    double s = 0.0;
    for (double v : vals)
        s += v;
    out.mean = s / static_cast<double>(vals.size());
    double var = 0.0;
    for (double v : vals)
        var += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(var / static_cast<double>(vals.size()));
    return out;
}

} // namespace ppep::model

#endif // PPEP_MODEL_VALIDATION_HPP
