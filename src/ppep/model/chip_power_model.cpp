#include "ppep/model/chip_power_model.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::model {

ChipPowerModel::ChipPowerModel(IdlePowerModel idle,
                               DynamicPowerModel dynamic,
                               sim::VfTable vf_table)
    : idle_(std::move(idle)), dynamic_(std::move(dynamic)),
      vf_table_(std::move(vf_table))
{
}

bool
ChipPowerModel::trained() const
{
    return idle_.trained() && dynamic_.trained();
}

PowerEstimate
ChipPowerModel::estimate(const trace::IntervalRecord &rec) const
{
    PPEP_ASSERT(trained(), "chip power model not trained");
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    // Global DVFS during model work: all CUs share one requested state.
    const sim::VfState &vf = vf_table_.state(rec.cu_vf.front());

    PowerEstimate est;
    est.idle_w = idle_.predict(vf.voltage, rec.diode_temp_k);
    for (const auto &core : rec.pmc) {
        const auto rates = powerEventRates(core, rec.duration_s);
        double core_w = 0.0, nb_w = 0.0;
        dynamic_.split(rates, vf.voltage, core_w, nb_w);
        est.dyn_core_w += core_w;
        est.dyn_nb_w += nb_w;
    }
    est.dynamic_w = est.dyn_core_w + est.dyn_nb_w;
    est.total_w = est.idle_w + est.dynamic_w;
    return est;
}

PowerEstimate
ChipPowerModel::predictAt(const trace::IntervalRecord &rec,
                          std::size_t target_vf) const
{
    PPEP_ASSERT(trained(), "chip power model not trained");
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &now = vf_table_.state(rec.cu_vf.front());
    const sim::VfState &then = vf_table_.state(target_vf);

    PowerEstimate est;
    est.idle_w = idle_.predict(then.voltage, rec.diode_temp_k);
    for (const auto &core : rec.pmc) {
        const PredictedCoreState pred = EventPredictor::predict(
            core, rec.duration_s, now.freq_ghz, then.freq_ghz);
        double core_w = 0.0, nb_w = 0.0;
        // The predicted rate vector's E1..E9 prefix prices directly —
        // no 9-element staging copy.
        dynamic_.splitFromRates(pred.rates_per_s, then.voltage, core_w,
                                nb_w);
        est.dyn_core_w += core_w;
        est.dyn_nb_w += nb_w;
    }
    est.dynamic_w = est.dyn_core_w + est.dyn_nb_w;
    est.total_w = est.idle_w + est.dynamic_w;
    return est;
}

} // namespace ppep::model
