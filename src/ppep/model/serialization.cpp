#include "ppep/model/serialization.hpp"

#include <cstdio>
#include <limits>
#include <fstream>
#include <sstream>
#include <vector>

#include "ppep/util/logging.hpp"

namespace ppep::model {

namespace {

constexpr const char *kMagic = "ppep-models";
constexpr int kVersion = 1;

/** Exact double -> text (17 significant digits round-trip). */
std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** One keyword + values line reader with format checking. */
class LineReader
{
  public:
    explicit LineReader(std::istream &in) : in_(in) {}

    /** Read the next non-empty line; expect it to start with @p key. */
    std::vector<double>
    expect(const std::string &key)
    {
        std::string line;
        while (std::getline(in_, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream iss(line);
            std::string word;
            iss >> word;
            if (word != key) {
                PPEP_FATAL("model file: expected '", key, "', found '",
                           word, "'");
            }
            std::vector<double> values;
            double v;
            while (iss >> v)
                values.push_back(v);
            return values;
        }
        PPEP_FATAL("model file: unexpected end of file (wanted '", key,
                   "')");
    }

    /** Read a keyword line whose payload is a single string token. */
    std::string
    expectString(const std::string &key)
    {
        std::string line;
        while (std::getline(in_, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            std::istringstream iss(line);
            std::string word;
            iss >> word;
            if (word != key) {
                PPEP_FATAL("model file: expected '", key, "', found '",
                           word, "'");
            }
            std::string rest;
            std::getline(iss, rest);
            const auto start = rest.find_first_not_of(' ');
            return start == std::string::npos ? "" : rest.substr(start);
        }
        PPEP_FATAL("model file: unexpected end of file (wanted '", key,
                   "')");
    }

  private:
    std::istream &in_;
};

void
writePolynomial(std::ostream &out, const char *key,
                const math::Polynomial &p)
{
    out << key;
    for (double c : p.coefficients())
        out << ' ' << num(c);
    out << '\n';
}

} // namespace

void
saveModels(const TrainedModels &models, std::ostream &out)
{
    PPEP_ASSERT(models.idle.trained() && models.dynamic.trained(),
                "cannot save untrained models");

    out << kMagic << ' ' << kVersion << '\n';
    out << "platform generic\n"; // reserved for future use
    out << "alpha " << num(models.alpha) << '\n';

    writePolynomial(out, "idle_w1", models.idle.w1());
    writePolynomial(out, "idle_w0", models.idle.w0());

    out << "dyn_vtrain " << num(models.dynamic.trainingVoltage())
        << '\n';
    out << "dyn_weights";
    for (double w : models.dynamic.weights())
        out << ' ' << num(w);
    out << '\n';

    out << "gg_trained " << (models.gg.trained() ? 1 : 0) << '\n';
    if (models.gg.trained()) {
        out << "gg_coefficients";
        for (double c : models.gg.coefficients())
            out << ' ' << num(c);
        out << '\n';
    }

    out << "pg_trained " << (models.pg.trained() ? 1 : 0) << '\n';
    if (models.pg.trained()) {
        out << "pg_n_cus " << models.pg.cuCount() << '\n';
        out << "pg_components " << models.pg.allComponents().size()
            << '\n';
        for (const auto &c : models.pg.allComponents()) {
            out << "pg_entry " << num(c.p_cu) << ' ' << num(c.p_nb)
                << ' ' << num(c.p_base) << '\n';
        }
    }
}

void
saveModels(const TrainedModels &models, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        PPEP_FATAL("cannot open '", path, "' for writing");
    saveModels(models, out);
    if (!out)
        PPEP_FATAL("write to '", path, "' failed");
}

TrainedModels
loadModels(std::istream &in, const sim::ChipConfig &cfg)
{
    std::string magic;
    int version = 0;
    in >> magic >> version;
    if (magic != kMagic)
        PPEP_FATAL("not a PPEP model file (bad magic '", magic, "')");
    if (version != kVersion)
        PPEP_FATAL("unsupported model file version ", version);
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');

    LineReader reader(in);
    reader.expect("platform"); // reserved; value currently unused

    TrainedModels models;
    const auto alpha = reader.expect("alpha");
    PPEP_ASSERT(alpha.size() == 1, "bad alpha line");
    models.alpha = alpha[0];

    const auto w1 = reader.expect("idle_w1");
    const auto w0 = reader.expect("idle_w0");
    models.idle = IdlePowerModel::fromPolynomials(math::Polynomial(w1),
                                                  math::Polynomial(w0));

    const auto vtrain = reader.expect("dyn_vtrain");
    PPEP_ASSERT(vtrain.size() == 1, "bad dyn_vtrain line");
    const auto weights = reader.expect("dyn_weights");
    PPEP_ASSERT(weights.size() == sim::kNumPowerEvents,
                "expected ", sim::kNumPowerEvents, " weights, got ",
                weights.size());
    std::array<double, sim::kNumPowerEvents> warr{};
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        warr[i] = weights[i];
    models.dynamic =
        DynamicPowerModel::fromWeights(warr, vtrain[0], models.alpha);

    const auto gg_flag = reader.expect("gg_trained");
    PPEP_ASSERT(gg_flag.size() == 1, "bad gg_trained line");
    if (gg_flag[0] != 0.0) {
        const auto cs = reader.expect("gg_coefficients");
        PPEP_ASSERT(cs.size() == 4, "bad gg_coefficients line");
        models.gg = GreenGovernorsModel::fromCoefficients(
            {cs[0], cs[1], cs[2], cs[3]});
    }

    const auto pg_flag = reader.expect("pg_trained");
    PPEP_ASSERT(pg_flag.size() == 1, "bad pg_trained line");
    if (pg_flag[0] != 0.0) {
        const auto n_cus = reader.expect("pg_n_cus");
        const auto count = reader.expect("pg_components");
        PPEP_ASSERT(n_cus.size() == 1 && count.size() == 1,
                    "bad PG header lines");
        std::vector<PgIdleComponents> components;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(count[0]); ++i) {
            const auto entry = reader.expect("pg_entry");
            PPEP_ASSERT(entry.size() == 3, "bad pg_entry line");
            components.push_back({entry[0], entry[1], entry[2]});
        }
        models.pg = PgIdleModel::fromComponents(
            std::move(components),
            static_cast<std::size_t>(n_cus[0]));
        PPEP_ASSERT(models.pg.cuCount() == cfg.n_cus,
                    "model file was trained for a ",
                    models.pg.cuCount(), "-CU part; this chip has ",
                    cfg.n_cus);
    }

    models.chip =
        ChipPowerModel(models.idle, models.dynamic, cfg.vf_table);
    return models;
}

TrainedModels
loadModels(const std::string &path, const sim::ChipConfig &cfg)
{
    std::ifstream in(path);
    if (!in)
        PPEP_FATAL("cannot open model file '", path, "'");
    return loadModels(in, cfg);
}

} // namespace ppep::model
