#include "ppep/model/ppep.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::model {

Ppep::Ppep(const sim::ChipConfig &cfg, ChipPowerModel power,
           PgIdleModel pg)
    : cfg_(cfg), power_(std::move(power)), pg_(std::move(pg))
{
    PPEP_ASSERT(power_.trained(), "PPEP requires a trained power model");
}

VfPrediction
Ppep::predictVf(const trace::IntervalRecord &rec,
                std::size_t target_vf) const
{
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &now = cfg_.vf_table.state(rec.cu_vf.front());
    const sim::VfState &then = cfg_.vf_table.state(target_vf);

    VfPrediction out;
    out.vf_index = target_vf;

    const PowerEstimate est = power_.predictAt(rec, target_vf);
    out.chip_power_w = est.total_w;
    out.idle_w = est.idle_w;
    out.dynamic_w = est.dynamic_w;

    out.cores.resize(rec.pmc.size());
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const PredictedCoreState pred = EventPredictor::predict(
            rec.pmc[c], rec.duration_s, now.freq_ghz, then.freq_ghz);
        CorePpe &core = out.cores[c];
        core.cpi = pred.cpi;
        core.ips = pred.ips;
        core.busy = pred.ips > 0.0;
        std::array<double, sim::kNumPowerEvents> rates{};
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] = pred.rates_per_s[i];
        core.dynamic_w =
            power_.dynamicModel().estimate(rates, then.voltage);
        if (core.busy)
            out.total_ips +=
                pred.rates_per_s[sim::eventIndex(
                    sim::Event::RetiredInst)];
    }

    if (out.total_ips > 0.0) {
        out.energy_per_inst = out.chip_power_w / out.total_ips;
        out.edp_per_inst = out.chip_power_w / (out.total_ips *
                                               out.total_ips);
    }
    return out;
}

std::vector<VfPrediction>
Ppep::explore(const trace::IntervalRecord &rec) const
{
    std::vector<VfPrediction> out;
    out.reserve(cfg_.vf_table.size());
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf)
        out.push_back(predictVf(rec, vf));
    return out;
}

AssignmentPrediction
Ppep::predictAssignment(const trace::IntervalRecord &rec,
                        const std::vector<std::size_t> &cu_vf,
                        bool pg_enabled) const
{
    PPEP_ASSERT(pg_.trained(),
                "per-CU assignment prediction needs the PG idle model");
    PPEP_ASSERT(cu_vf.size() == cfg_.n_cus, "cu_vf size mismatch");
    PPEP_ASSERT(rec.cu_vf.size() == cfg_.n_cus,
                "record CU context mismatch");

    AssignmentPrediction out;
    out.cores.resize(rec.pmc.size());

    std::vector<std::size_t> busy_per_cu(cfg_.n_cus, 0);
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const sim::VfState &now =
            cfg_.vf_table.state(rec.cu_vf[cu]);
        const sim::VfState &then = cfg_.vf_table.state(cu_vf[cu]);
        const PredictedCoreState pred = EventPredictor::predict(
            rec.pmc[c], rec.duration_s, now.freq_ghz, then.freq_ghz);
        CorePpe &core = out.cores[c];
        core.cpi = pred.cpi;
        core.ips = pred.ips;
        core.busy = pred.ips > 0.0;
        if (core.busy)
            ++busy_per_cu[cu];
        std::array<double, sim::kNumPowerEvents> rates{};
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] = pred.rates_per_s[i];
        // Per-CU voltage plane: this CU's own voltage prices its events.
        core.dynamic_w =
            power_.dynamicModel().estimate(rates, then.voltage);
        out.dynamic_w += core.dynamic_w;
        if (core.busy)
            out.total_ips += pred.rates_per_s[sim::eventIndex(
                sim::Event::RetiredInst)];
    }

    out.idle_w = pg_.chipIdleMixed(cu_vf, busy_per_cu, pg_enabled);
    out.chip_power_w = out.idle_w + out.dynamic_w;
    return out;
}

} // namespace ppep::model
