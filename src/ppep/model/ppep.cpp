#include "ppep/model/ppep.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::model {

Ppep::Ppep(const sim::ChipConfig &cfg, ChipPowerModel power,
           PgIdleModel pg)
    : cfg_(cfg), power_(std::move(power)), pg_(std::move(pg))
{
    PPEP_ASSERT(power_.trained(), "PPEP requires a trained power model");
    // Hoist everything per-VF that does not depend on the observed
    // interval: the explore() hot path then runs pow()- and
    // polynomial-free.
    factors_.reserve(cfg_.vf_table.size());
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
        const sim::VfState &state = cfg_.vf_table.state(vf);
        VfFactors f;
        f.voltage = state.voltage;
        f.freq_ghz = state.freq_ghz;
        f.vscale = power_.dynamicModel().voltageScale(state.voltage);
        f.idle_slope = power_.idleModel().slope(state.voltage);
        f.idle_icept = power_.idleModel().intercept(state.voltage);
        factors_.push_back(f);
    }
}

void
Ppep::predictVfInto(const trace::IntervalRecord &rec,
                    const std::vector<CoreObservation> &obs,
                    std::size_t target_vf, VfPrediction &out) const
{
    PPEP_ASSERT(target_vf < factors_.size(),
                "target VF index outside the software table");
    const VfFactors &f = factors_[target_vf];
    const DynamicPowerModel &dynamic = power_.dynamicModel();

    out.vf_index = target_vf;
    out.total_ips = 0.0;
    out.energy_per_inst = 0.0;
    out.edp_per_inst = 0.0;

    // Eq. 2 idle part with the voltage polynomials pre-evaluated.
    out.idle_w = f.idle_slope * rec.diode_temp_k + f.idle_icept;

    double dyn_core_w = 0.0, dyn_nb_w = 0.0;
    out.cores.resize(rec.pmc.size());
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const PredictedCoreState pred =
            EventPredictor::predictAt(obs[c], f.freq_ghz);
        CorePpe &core = out.cores[c];
        core.cpi = pred.cpi;
        core.ips = pred.ips;
        core.busy = pred.ips > 0.0;
        std::array<double, sim::kNumPowerEvents> rates{};
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] = pred.rates_per_s[i];
        double core_w = 0.0, nb_w = 0.0;
        dynamic.splitScaled(rates, f.vscale, core_w, nb_w);
        core.dynamic_w = core_w + nb_w;
        dyn_core_w += core_w;
        dyn_nb_w += nb_w;
        if (core.busy)
            out.total_ips +=
                pred.rates_per_s[sim::eventIndex(
                    sim::Event::RetiredInst)];
    }

    out.dynamic_w = dyn_core_w + dyn_nb_w;
    out.chip_power_w = out.idle_w + out.dynamic_w;
    if (out.total_ips > 0.0) {
        out.energy_per_inst = out.chip_power_w / out.total_ips;
        out.edp_per_inst = out.chip_power_w / (out.total_ips *
                                               out.total_ips);
    }
}

VfPrediction
Ppep::predictVf(const trace::IntervalRecord &rec,
                std::size_t target_vf) const
{
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &now = cfg_.vf_table.state(rec.cu_vf.front());

    std::vector<CoreObservation> obs;
    obs.reserve(rec.pmc.size());
    for (const auto &core : rec.pmc)
        obs.push_back(EventPredictor::observe(core, rec.duration_s,
                                              now.freq_ghz));
    VfPrediction out;
    predictVfInto(rec, obs, target_vf, out);
    return out;
}

void
Ppep::exploreInto(const trace::IntervalRecord &rec,
                  std::vector<VfPrediction> &out) const
{
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &now = cfg_.vf_table.state(rec.cu_vf.front());

    // The target-independent per-core work (CPI decomposition, Obs. 1/2
    // invariants) is shared across the whole VF sweep.
    std::vector<CoreObservation> obs;
    obs.reserve(rec.pmc.size());
    for (const auto &core : rec.pmc)
        obs.push_back(EventPredictor::observe(core, rec.duration_s,
                                              now.freq_ghz));

    out.resize(cfg_.vf_table.size());
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf)
        predictVfInto(rec, obs, vf, out[vf]);
}

std::vector<VfPrediction>
Ppep::explore(const trace::IntervalRecord &rec) const
{
    std::vector<VfPrediction> out;
    exploreInto(rec, out);
    return out;
}

AssignmentPrediction
Ppep::predictAssignment(const trace::IntervalRecord &rec,
                        const std::vector<std::size_t> &cu_vf,
                        bool pg_enabled) const
{
    PPEP_ASSERT(pg_.trained(),
                "per-CU assignment prediction needs the PG idle model");
    PPEP_ASSERT(cu_vf.size() == cfg_.n_cus, "cu_vf size mismatch");
    PPEP_ASSERT(rec.cu_vf.size() == cfg_.n_cus,
                "record CU context mismatch");

    AssignmentPrediction out;
    out.cores.resize(rec.pmc.size());

    std::vector<std::size_t> busy_per_cu(cfg_.n_cus, 0);
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const sim::VfState &now =
            cfg_.vf_table.state(rec.cu_vf[cu]);
        PPEP_ASSERT(cu_vf[cu] < factors_.size(),
                    "assignment VF index outside the software table");
        const VfFactors &then = factors_[cu_vf[cu]];
        const PredictedCoreState pred = EventPredictor::predict(
            rec.pmc[c], rec.duration_s, now.freq_ghz, then.freq_ghz);
        CorePpe &core = out.cores[c];
        core.cpi = pred.cpi;
        core.ips = pred.ips;
        core.busy = pred.ips > 0.0;
        if (core.busy)
            ++busy_per_cu[cu];
        std::array<double, sim::kNumPowerEvents> rates{};
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] = pred.rates_per_s[i];
        // Per-CU voltage plane: this CU's own voltage prices its events.
        core.dynamic_w =
            power_.dynamicModel().estimateScaled(rates, then.vscale);
        out.dynamic_w += core.dynamic_w;
        if (core.busy)
            out.total_ips += pred.rates_per_s[sim::eventIndex(
                sim::Event::RetiredInst)];
    }

    out.idle_w = pg_.chipIdleMixed(cu_vf, busy_per_cu, pg_enabled);
    out.chip_power_w = out.idle_w + out.dynamic_w;
    return out;
}

} // namespace ppep::model
