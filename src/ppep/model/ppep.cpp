#include "ppep/model/ppep.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::model {

Ppep::Ppep(const sim::ChipConfig &cfg, ChipPowerModel power,
           PgIdleModel pg)
    : cfg_(cfg), power_(std::move(power)), pg_(std::move(pg))
{
    PPEP_ASSERT(power_.trained(), "PPEP requires a trained power model");
    // Hoist everything per-VF that does not depend on the observed
    // interval: the explore() hot path then runs pow()- and
    // polynomial-free over dense coefficient arrays.
    plan_ = ExplorePlan::build(power_, cfg_.vf_table);
}

void
Ppep::predictVfInto(const trace::IntervalRecord &rec,
                    const std::vector<CoreObservation> &obs,
                    std::size_t target_vf,
                    VfPrediction &out) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(target_vf < plan_.size(),
                "target VF index outside the software table");
    const double freq_ghz = plan_.freq_ghz[target_vf];
    const double vscale = plan_.vscale[target_vf];
    const DynamicPowerModel &dynamic = power_.dynamicModel();

    out.vf_index = target_vf;
    out.total_ips = 0.0;
    out.energy_per_inst = 0.0;
    out.edp_per_inst = 0.0;

    // Eq. 2 idle part with the voltage polynomials pre-evaluated.
    out.idle_w = plan_.idle_slope[target_vf] * rec.diode_temp_k +
                 plan_.idle_icept[target_vf];

    double dyn_core_w = 0.0, dyn_nb_w = 0.0;
    // rt-escape: warm-up growth of the caller-owned prediction buffer.
    PPEP_RT_WARMUP_BEGIN
    out.cores.resize(rec.pmc.size());
    PPEP_RT_WARMUP_END
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const PredictedCoreState pred =
            EventPredictor::predictAt(obs[c], freq_ghz);
        CorePpe &core = out.cores[c];
        core.cpi = pred.cpi;
        core.ips = pred.ips;
        core.busy = pred.ips > 0.0;
        std::array<double, sim::kNumPowerEvents> rates{};
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] = pred.rates_per_s[i];
        double core_w = 0.0, nb_w = 0.0;
        dynamic.splitScaled(rates, vscale, core_w, nb_w);
        core.dynamic_w = core_w + nb_w;
        dyn_core_w += core_w;
        dyn_nb_w += nb_w;
        if (core.busy)
            out.total_ips +=
                pred.rates_per_s[sim::eventIndex(
                    sim::Event::RetiredInst)];
    }

    out.dynamic_w = dyn_core_w + dyn_nb_w;
    out.chip_power_w = out.idle_w + out.dynamic_w;
    if (out.total_ips > 0.0) {
        out.energy_per_inst = out.chip_power_w / out.total_ips;
        out.edp_per_inst = out.chip_power_w / (out.total_ips *
                                               out.total_ips);
    }
}

VfPrediction
Ppep::predictVf(const trace::IntervalRecord &rec,
                std::size_t target_vf) const
{
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &now = cfg_.vf_table.state(rec.cu_vf.front());

    std::vector<CoreObservation> obs;
    obs.reserve(rec.pmc.size());
    for (const auto &core : rec.pmc)
        obs.push_back(EventPredictor::observe(core, rec.duration_s,
                                              now.freq_ghz));
    VfPrediction out;
    predictVfInto(rec, obs, target_vf, out);
    return out;
}

void
Ppep::observeCores(const trace::IntervalRecord &rec,
                   std::vector<CoreObservation> &obs) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
    const sim::VfState &now = cfg_.vf_table.state(rec.cu_vf.front());

    // The target-independent per-core work (CPI decomposition, Obs. 1/2
    // invariants) is shared across the whole VF sweep.
    // rt-escape: warm-up growth of the caller-owned observation buffer.
    PPEP_RT_WARMUP_BEGIN
    obs.resize(rec.pmc.size());
    PPEP_RT_WARMUP_END
    for (std::size_t c = 0; c < rec.pmc.size(); ++c)
        obs[c] = EventPredictor::observe(rec.pmc[c], rec.duration_s,
                                         now.freq_ghz);
}

void
Ppep::exploreInto(const trace::IntervalRecord &rec,
                  std::vector<VfPrediction> &out,
                  ExploreScratch &scratch) const PPEP_NONBLOCKING
{
    observeCores(rec, scratch.obs);

    const std::size_t n_cores = scratch.obs.size();
    const std::size_t n_vf = plan_.size();
    exploreBatch(plan_, scratch.obs.data(), n_cores, scratch.ws);

    // Assemble the kernel's core×VF matrices into per-VF predictions.
    // Accumulation runs in core order per VF — the same order as the
    // scalar reference — so the sums round identically.
    // rt-escape: warm-up growth of the caller-owned prediction vector.
    PPEP_RT_WARMUP_BEGIN
    out.resize(n_vf);
    PPEP_RT_WARMUP_END
    const ExploreWorkspace &ws = scratch.ws;
    for (std::size_t vf = 0; vf < n_vf; ++vf) {
        VfPrediction &p = out[vf];
        p.vf_index = vf;
        p.total_ips = 0.0;
        p.energy_per_inst = 0.0;
        p.edp_per_inst = 0.0;
        p.idle_w = plan_.idle_slope[vf] * rec.diode_temp_k +
                   plan_.idle_icept[vf];
        double dyn_core_w = 0.0, dyn_nb_w = 0.0;
        // rt-escape: warm-up growth of the per-VF core array.
        PPEP_RT_WARMUP_BEGIN
        p.cores.resize(n_cores);
        PPEP_RT_WARMUP_END
        for (std::size_t c = 0; c < n_cores; ++c) {
            const std::size_t cell = c * n_vf + vf;
            CorePpe &core = p.cores[c];
            core.cpi = ws.cpi[cell];
            core.ips = ws.ips[cell];
            core.busy = core.ips > 0.0;
            const double core_w = ws.core_w[cell];
            const double nb_w = ws.nb_w[cell];
            core.dynamic_w = core_w + nb_w;
            dyn_core_w += core_w;
            dyn_nb_w += nb_w;
            if (core.busy)
                p.total_ips += core.ips * scratch.obs[c].busy_frac;
        }
        p.dynamic_w = dyn_core_w + dyn_nb_w;
        p.chip_power_w = p.idle_w + p.dynamic_w;
        if (p.total_ips > 0.0) {
            p.energy_per_inst = p.chip_power_w / p.total_ips;
            p.edp_per_inst =
                p.chip_power_w / (p.total_ips * p.total_ips);
        }
    }
}

void
Ppep::exploreScalarInto(const trace::IntervalRecord &rec,
                        std::vector<VfPrediction> &out,
                        ExploreScratch &scratch) const PPEP_NONBLOCKING
{
    observeCores(rec, scratch.obs);
    // rt-escape: warm-up growth of the caller-owned prediction vector.
    PPEP_RT_WARMUP_BEGIN
    out.resize(plan_.size());
    PPEP_RT_WARMUP_END
    for (std::size_t vf = 0; vf < plan_.size(); ++vf)
        predictVfInto(rec, scratch.obs, vf, out[vf]);
}

void
Ppep::exploreInto(const trace::IntervalRecord &rec,
                  std::vector<VfPrediction> &out) const
{
    ExploreScratch scratch;
    exploreInto(rec, out, scratch);
}

std::vector<VfPrediction>
Ppep::explore(const trace::IntervalRecord &rec) const
{
    std::vector<VfPrediction> out;
    exploreInto(rec, out);
    return out;
}

AssignmentPrediction
Ppep::predictAssignment(const trace::IntervalRecord &rec,
                        const std::vector<std::size_t> &cu_vf,
                        bool pg_enabled) const
{
    PPEP_ASSERT(pg_.trained(),
                "per-CU assignment prediction needs the PG idle model");
    PPEP_ASSERT(cu_vf.size() == cfg_.n_cus, "cu_vf size mismatch");
    PPEP_ASSERT(rec.cu_vf.size() == cfg_.n_cus,
                "record CU context mismatch");

    AssignmentPrediction out;
    out.cores.resize(rec.pmc.size());

    std::vector<std::size_t> busy_per_cu(cfg_.n_cus, 0);
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const sim::VfState &now =
            cfg_.vf_table.state(rec.cu_vf[cu]);
        PPEP_ASSERT(cu_vf[cu] < plan_.size(),
                    "assignment VF index outside the software table");
        const double then_freq = plan_.freq_ghz[cu_vf[cu]];
        const double then_vscale = plan_.vscale[cu_vf[cu]];
        const PredictedCoreState pred = EventPredictor::predict(
            rec.pmc[c], rec.duration_s, now.freq_ghz, then_freq);
        CorePpe &core = out.cores[c];
        core.cpi = pred.cpi;
        core.ips = pred.ips;
        core.busy = pred.ips > 0.0;
        if (core.busy)
            ++busy_per_cu[cu];
        std::array<double, sim::kNumPowerEvents> rates{};
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] = pred.rates_per_s[i];
        // Per-CU voltage plane: this CU's own voltage prices its events.
        core.dynamic_w =
            power_.dynamicModel().estimateScaled(rates, then_vscale);
        out.dynamic_w += core.dynamic_w;
        if (core.busy)
            out.total_ips += pred.rates_per_s[sim::eventIndex(
                sim::Event::RetiredInst)];
    }

    out.idle_w = pg_.chipIdleMixed(cu_vf, busy_per_cu, pg_enabled);
    out.chip_power_w = out.idle_w + out.dynamic_w;
    return out;
}

} // namespace ppep::model
