/**
 * @file
 * Event-rate dynamic power model (paper Sec. IV-B, Eq. 3).
 *
 *     Pdyn = sum_cores [ sum_{i=1..7} (Vn/V5)^alpha * W_i * E_i
 *                        + sum_{i=8,9} W_i * E_i ]
 *
 * where E_i are per-second event counts. The weights are one linear
 * regression trained at the top VF state (a one-time offline effort); the
 * seven core-private event weights are voltage-scaled with a fitted
 * process-specific exponent alpha, while the two NB-proxy events (E8 L2
 * misses, E9 dispatch stalls) are not scaled because the NB stays at a
 * fixed VF state.
 */

#ifndef PPEP_MODEL_DYNAMIC_POWER_MODEL_HPP
#define PPEP_MODEL_DYNAMIC_POWER_MODEL_HPP

#include <array>
#include <vector>

#include "ppep/sim/events.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::model {

/** One training row: summed per-second rates at the training VF. */
struct DynTrainingRow
{
    /** Chip-wide per-second counts for E1..E9. */
    std::array<double, sim::kNumPowerEvents> rates_per_s{};
    /** Measured dynamic power (sensor minus idle estimate), watts. */
    double dynamic_power_w = 0.0;
};

/**
 * The trained Eq. 3 weights repackaged for the batched exploration
 * kernel: the seven voltage-scaled core weights contiguously, plus the
 * two unscaled NB-proxy weights broken out by role (E8 rates are
 * VF-invariant per instruction; the E9 dispatch-stall rate is the one
 * power input that depends on the target CPI).
 */
struct KernelWeights
{
    std::array<double, sim::kNumCorePowerEvents> core{};
    double l2_miss = 0.0;        ///< W_8 (E8, NB-proxy, unscaled)
    double dispatch_stall = 0.0; ///< W_9 (E9, NB-proxy, unscaled)
};

/** The Eq. 3 model. */
class DynamicPowerModel
{
  public:
    DynamicPowerModel() = default;

    /**
     * Fit weights by (non-negative) least squares on rows gathered at
     * training voltage @p v_train, with voltage-scaling exponent
     * @p alpha estimated separately (see Trainer::estimateAlpha).
     *
     * @param non_negative constrain weights to be >= 0 (the default;
     *        they are energies per event, and a negative weight corrupts
     *        the (V/V5)^alpha extrapolation). Pass false only for the
     *        ablation study.
     */
    static DynamicPowerModel train(const std::vector<DynTrainingRow> &rows,
                                   double v_train, double alpha,
                                   bool non_negative = true);

    /**
     * Dynamic power of one core (or any aggregate) from per-second E1..E9
     * rates at core voltage @p voltage. Summing per-core calls with
     * per-core voltages implements Eq. 3's outer sum.
     */
    double estimate(
        const std::array<double, sim::kNumPowerEvents> &rates_per_s,
        double voltage) const PPEP_NONBLOCKING;

    /** Same, taking a full event vector of per-second rates. */
    double estimateFromRates(const sim::EventVector &rates_per_s,
                             double voltage) const;

    /**
     * Split an estimate into the core part (E1..E7, voltage-scaled) and
     * the NB-proxy part (E8..E9) — used by the Fig. 10 core/NB energy
     * breakdown.
     */
    void split(const std::array<double, sim::kNumPowerEvents> &rates_per_s,
               double voltage, double &core_w, double &nb_w) const PPEP_NONBLOCKING;

    /**
     * The (V / Vtrain)^alpha factor applied to the core-event weights at
     * @p voltage. Callers sweeping many estimates at a fixed voltage
     * (e.g. a per-VF exploration) should compute this once and use the
     * *Scaled variants below — the pow() dominates a single estimate.
     */
    double voltageScale(double voltage) const PPEP_NONBLOCKING;

    /** split() with a precomputed voltageScale() factor. */
    void splitScaled(
        const std::array<double, sim::kNumPowerEvents> &rates_per_s,
        double vscale, double &core_w, double &nb_w) const PPEP_NONBLOCKING;

    /** estimate() with a precomputed voltageScale() factor. */
    double estimateScaled(
        const std::array<double, sim::kNumPowerEvents> &rates_per_s,
        double vscale) const PPEP_NONBLOCKING;

    /**
     * split() reading the E1..E9 prefix of a full per-second event
     * vector directly — spares callers the 9-element copy that pricing
     * a PredictedCoreState otherwise needs.
     */
    void splitFromRates(const sim::EventVector &rates_per_s,
                        double voltage, double &core_w,
                        double &nb_w) const PPEP_NONBLOCKING;

    /** The weights repacked for the batched exploration kernel. */
    KernelWeights kernelWeights() const;

    /** Fitted weights W_1..W_9 (watts per event/second). */
    const std::array<double, sim::kNumPowerEvents> &weights() const
    {
        return weights_;
    }

    /** Voltage-scaling exponent. */
    double alpha() const { return alpha_; }

    /** Training voltage (the paper's V5). */
    double trainingVoltage() const { return v_train_; }

    /** Whether train() produced this model. */
    bool trained() const { return trained_; }

    /** Rebuild a trained model from its parameters (serialization). */
    static DynamicPowerModel
    fromWeights(const std::array<double, sim::kNumPowerEvents> &weights,
                double v_train, double alpha);

  private:
    std::array<double, sim::kNumPowerEvents> weights_{};
    double v_train_ = 1.0;
    double alpha_ = 2.0;
    bool trained_ = false;
};

/** Extract chip-wide E1..E9 per-second rates from per-core counts. */
std::array<double, sim::kNumPowerEvents>
powerEventRates(const std::vector<sim::EventVector> &per_core_counts,
                double duration_s);

/** Extract E1..E9 per-second rates from one core's counts. */
std::array<double, sim::kNumPowerEvents>
powerEventRates(const sim::EventVector &counts,
                double duration_s) PPEP_NONBLOCKING;

} // namespace ppep::model

#endif // PPEP_MODEL_DYNAMIC_POWER_MODEL_HPP
