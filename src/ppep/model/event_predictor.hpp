/**
 * @file
 * Hardware event predictor (paper Sec. IV-C, Eqs. 4-6).
 *
 * Predicts per-second hardware event rates at any target VF state from
 * counters gathered at the current one, using the paper's two empirical
 * observations:
 *
 *  - Observation 1: core-private event counts *per instruction* (E1-E8)
 *    are independent of VF state;
 *  - Observation 2: CPI - DispatchStalls/inst is independent of VF state
 *    (it equals 1/IssueWidth + MisBranchPen * mispredicts/inst, none of
 *    which depends on frequency — Eq. 6).
 *
 * Combined with the Eq. 1 CPI prediction, per-instruction counts convert
 * to per-second rates at the target frequency, which is exactly what the
 * dynamic power model consumes.
 */

#ifndef PPEP_MODEL_EVENT_PREDICTOR_HPP
#define PPEP_MODEL_EVENT_PREDICTOR_HPP

#include "ppep/model/cpi_model.hpp"
#include "ppep/sim/events.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::model {

/** Predicted state of one core at a target VF. */
struct PredictedCoreState
{
    /** Event rates (per second) at the target VF, Table I order. */
    sim::EventVector rates_per_s{};
    /** Predicted CPI at the target VF. */
    double cpi = 0.0;
    /** Predicted instruction rate at the target VF, inst/s. */
    double ips = 0.0;
};

/**
 * The target-frequency-independent part of one core's interval: the CPI
 * decomposition, the Obs. 2 gap, the busy duty cycle, and the Obs. 1
 * per-instruction counts. Computing this once per core and reusing it
 * across the whole VF sweep (see Ppep::explore) halves the cost of a
 * full exploration versus re-deriving it per target state.
 */
struct CoreObservation
{
    CpiSample sample{};            ///< Eq. 1 inputs (mcpi_scale applied)
    double f_current = 0.0;        ///< frequency the counts came from
    double gap = 0.0;              ///< Obs. 2: CPI - DispatchStalls/inst
    double busy_frac = 0.0;        ///< fraction of the interval unhalted
    std::array<double, 8> per_inst{}; ///< Obs. 1: E1..E8 per instruction
    bool idle = true;              ///< no retired instructions
};

/** Stateless Obs.1 + Obs.2 event extrapolator. */
class EventPredictor
{
  public:
    /**
     * Predict one core's event rates at @p f_target from counts
     * @p events gathered over @p duration_s seconds at @p f_current.
     *
     * @param mcpi_scale multiplier on the memory (leading-load) time,
     *        used by the NB-DVFS what-if (Sec. V-C2 assumes leading-load
     *        cycles grow 50% when the NB halves its frequency).
     *
     * An idle core (no retired instructions) predicts as all-zero.
     */
    static PredictedCoreState predict(const sim::EventVector &events,
                                      double duration_s, double f_current,
                                      double f_target,
                                      double mcpi_scale = 1.0) PPEP_NONBLOCKING;

    /**
     * Extract everything predict() needs that does not depend on the
     * target frequency. Pair with predictAt() when sweeping many target
     * states from one interval's counts.
     */
    static CoreObservation observe(const sim::EventVector &events,
                                   double duration_s, double f_current,
                                   double mcpi_scale = 1.0) PPEP_NONBLOCKING;

    /** Predict at one target frequency from a prepared observation. */
    static PredictedCoreState predictAt(const CoreObservation &obs,
                                        double f_target) PPEP_NONBLOCKING;

    /**
     * The Observation-2 invariant from measured counts:
     * CPI - DispatchStalls/inst. Zero if no instructions retired.
     */
    static double obs2Gap(const sim::EventVector &events) PPEP_NONBLOCKING;
};

} // namespace ppep::model

#endif // PPEP_MODEL_EVENT_PREDICTOR_HPP
