#include "ppep/model/explore_kernel.hpp"

#include <algorithm>
#include <limits>

#include "ppep/model/cpi_model.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::model {

ExplorePlan
ExplorePlan::build(const ChipPowerModel &power, const sim::VfTable &table)
{
    PPEP_ASSERT(power.trained(),
                "exploration plan needs a trained power model");
    const std::size_t n_vf = table.size();
    ExplorePlan plan;
    plan.voltage.reserve(n_vf);
    plan.freq_ghz.reserve(n_vf);
    plan.vscale.reserve(n_vf);
    plan.idle_slope.reserve(n_vf);
    plan.idle_icept.reserve(n_vf);
    for (std::size_t vf = 0; vf < n_vf; ++vf) {
        const sim::VfState &state = table.state(vf);
        plan.voltage.push_back(state.voltage);
        plan.freq_ghz.push_back(state.freq_ghz);
        plan.vscale.push_back(
            power.dynamicModel().voltageScale(state.voltage));
        const IdleLine line = power.idleModel().lineAt(state.voltage);
        plan.idle_slope.push_back(line.slope);
        plan.idle_icept.push_back(line.intercept);
    }
    plan.weights = power.dynamicModel().kernelWeights();
    return plan;
}

void
exploreBatch(const ExplorePlan &plan, const CoreObservation *obs,
             std::size_t n_cores, ExploreWorkspace &ws) PPEP_NONBLOCKING
{
    const std::size_t n_vf = plan.size();
    // rt-escape: workspace growth; resize() only ever grows, so a warm
    // workspace allocates nothing (test_zero_alloc).
    PPEP_RT_WARMUP_BEGIN
    ws.resize(n_cores, n_vf);
    PPEP_RT_WARMUP_END

    const double *const freq = plan.freq_ghz.data();
    const double *const vscale = plan.vscale.data();
    const KernelWeights &w = plan.weights;
    const double w0 = w.core[0], w1 = w.core[1], w2 = w.core[2],
                 w3 = w.core[3], w4 = w.core[4], w5 = w.core[5],
                 w6 = w.core[6];
    constexpr double kHuge = std::numeric_limits<double>::max();

    for (std::size_t c = 0; c < n_cores; ++c) {
        double *const cpi_row = ws.cpi.data() + c * n_vf;
        double *const ips_row = ws.ips.data() + c * n_vf;
        double *const core_row = ws.core_w.data() + c * n_vf;
        double *const nb_row = ws.nb_w.data() + c * n_vf;

        const CoreObservation &o = obs[c];
        if (o.idle) {
            // predictAt()'s idle sentinel: an all-zero prediction.
            std::fill(cpi_row, cpi_row + n_vf, 0.0);
            std::fill(ips_row, ips_row + n_vf, 0.0);
            std::fill(core_row, core_row + n_vf, 0.0);
            std::fill(nb_row, nb_row + n_vf, 0.0);
            continue;
        }

        // Per-core invariants, hoisted once for the whole VF lane.
        const double ccpi = o.sample.ccpi();
        const double mcpi = o.sample.mcpi;
        const double f_cur = o.f_current;
        const double gap = o.gap;
        const double busy = o.busy_frac;
        const double p0 = o.per_inst[0], p1 = o.per_inst[1],
                     p2 = o.per_inst[2], p3 = o.per_inst[3],
                     p4 = o.per_inst[4], p5 = o.per_inst[5],
                     p6 = o.per_inst[6], p7 = o.per_inst[7];

        // Branch-free sweep over all VF states. Each lane performs the
        // exact operation sequence of predictAt() + splitScaled(): the
        // validity guard becomes a select, and the dynamic-power dot
        // product keeps rates-then-weights order and weight-order
        // accumulation so results stay bit-identical. This TU is
        // compiled with -ffp-contract=off (model/CMakeLists.txt) so FMA
        // contraction cannot perturb the scalar/vector agreement.
#pragma omp simd
        for (std::size_t vf = 0; vf < n_vf; ++vf) {
            const double cpi_t =
                CpiModel::predictCpiTerms(ccpi, mcpi, f_cur, freq[vf]);
            // predictAt(): !(cpi > 0) || !isfinite(cpi) -> zero pred.
            const bool valid = cpi_t > 0.0 && cpi_t <= kHuge;
            const double safe_cpi = valid ? cpi_t : 1.0;
            const double ips_t = freq[vf] * 1e9 / safe_cpi;
            const double ds_per_inst = std::max(0.0, cpi_t - gap);
            const double eff = ips_t * busy;

            double acc = w0 * (p0 * eff);
            acc += w1 * (p1 * eff);
            acc += w2 * (p2 * eff);
            acc += w3 * (p3 * eff);
            acc += w4 * (p4 * eff);
            acc += w5 * (p5 * eff);
            acc += w6 * (p6 * eff);
            const double core_dyn = acc * vscale[vf];
            const double nb_dyn = w.l2_miss * (p7 * eff) +
                                  w.dispatch_stall * (ds_per_inst * eff);

            cpi_row[vf] = valid ? cpi_t : 0.0;
            ips_row[vf] = valid ? ips_t : 0.0;
            core_row[vf] = valid ? core_dyn : 0.0;
            nb_row[vf] = valid ? nb_dyn : 0.0;
        }
    }
}

} // namespace ppep::model
