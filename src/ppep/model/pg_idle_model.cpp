#include "ppep/model/pg_idle_model.hpp"

#include <algorithm>

#include "ppep/util/logging.hpp"

namespace ppep::model {

PgIdleModel
PgIdleModel::fromSweeps(const std::vector<PgSweepMeasurement> &sweeps,
                        std::size_t n_cus)
{
    PPEP_ASSERT(!sweeps.empty(), "no PG sweep measurements");
    PPEP_ASSERT(n_cus >= 1, "need at least one CU");

    std::size_t max_vf = 0;
    for (const auto &s : sweeps)
        max_vf = std::max(max_vf, s.vf_index);

    PgIdleModel model;
    model.n_cus_ = n_cus;
    model.components_.resize(max_vf + 1);

    for (const auto &s : sweeps) {
        PPEP_ASSERT(s.power_pg_off.size() == n_cus + 1 &&
                    s.power_pg_on.size() == n_cus + 1,
                    "sweep must cover 0..n_cus busy CUs");
        PgIdleComponents c;

        // Average the per-CU idle power over the k = 1..n_cus-1 gaps
        // (gap(k) = (n_cus - k) * Pidle(CU)); the k = n_cus point has no
        // gap and the k = 0 point includes the NB gate.
        double p_cu_sum = 0.0;
        std::size_t p_cu_n = 0;
        for (std::size_t k = 1; k < n_cus; ++k) {
            const double gap = s.power_pg_off[k] - s.power_pg_on[k];
            p_cu_sum += gap / static_cast<double>(n_cus - k);
            ++p_cu_n;
        }
        c.p_cu = p_cu_n ? std::max(0.0, p_cu_sum /
                                            static_cast<double>(p_cu_n))
                        : 0.0;

        // Fully idle: gap = n_cus * Pidle(CU) + Pidle(NB).
        const double idle_gap = s.power_pg_off[0] - s.power_pg_on[0];
        c.p_nb = std::max(0.0, idle_gap -
                                   static_cast<double>(n_cus) * c.p_cu);

        // Everything still drawn when fully gated is the base.
        c.p_base = std::max(0.0, s.power_pg_on[0]);

        model.components_[s.vf_index] = c;
    }
    return model;
}

PgIdleModel
PgIdleModel::fromComponents(std::vector<PgIdleComponents> components,
                            std::size_t n_cus)
{
    PPEP_ASSERT(!components.empty(), "no components");
    PPEP_ASSERT(n_cus >= 1, "need at least one CU");
    PgIdleModel model;
    model.components_ = std::move(components);
    model.n_cus_ = n_cus;
    return model;
}

const PgIdleComponents &
PgIdleModel::components(std::size_t vf_index) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(vf_index < components_.size(),
                "no components for VF index ", vf_index);
    return components_[vf_index];
}

double
PgIdleModel::perCoreIdle(std::size_t vf_index, bool pg_enabled,
                         std::size_t busy_in_cu,
                         std::size_t busy_in_chip) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(busy_in_cu >= 1 && busy_in_chip >= busy_in_cu,
                "inconsistent busy-core counts");
    const auto &c = components(vf_index);
    const double m = static_cast<double>(busy_in_cu);
    const double n = static_cast<double>(busy_in_chip);
    if (pg_enabled) {
        // Eq. 7.
        return c.p_cu / m + (c.p_nb + c.p_base) / n;
    }
    // Eq. 8: nothing gates, so all busy cores share the whole chip idle.
    return (static_cast<double>(n_cus_) * c.p_cu + c.p_nb + c.p_base) / n;
}

double
PgIdleModel::pNbAvg() const PPEP_NONBLOCKING
{
    PPEP_ASSERT(trained(), "PG idle model not trained");
    double s = 0.0;
    for (const auto &c : components_)
        s += c.p_nb;
    return s / static_cast<double>(components_.size());
}

double
PgIdleModel::pBaseAvg() const PPEP_NONBLOCKING
{
    PPEP_ASSERT(trained(), "PG idle model not trained");
    double s = 0.0;
    for (const auto &c : components_)
        s += c.p_base;
    return s / static_cast<double>(components_.size());
}

double
PgIdleModel::chipIdleMixed(const std::vector<std::size_t> &cu_vf,
                           const std::vector<std::size_t> &busy_per_cu,
                           bool pg_enabled) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(cu_vf.size() == n_cus_ && busy_per_cu.size() == n_cus_,
                "per-CU vector size mismatch");
    double total = pBaseAvg();
    bool any_busy = false;
    for (std::size_t cu = 0; cu < n_cus_; ++cu) {
        const bool counts = busy_per_cu[cu] > 0 || !pg_enabled;
        if (counts)
            total += components(cu_vf[cu]).p_cu;
        any_busy = any_busy || busy_per_cu[cu] > 0;
    }
    if (any_busy || !pg_enabled)
        total += pNbAvg();
    return total;
}

double
PgIdleModel::chipIdle(std::size_t vf_index, bool pg_enabled,
                      const std::vector<std::size_t> &busy_per_cu) const
{
    PPEP_ASSERT(busy_per_cu.size() == n_cus_, "busy_per_cu size mismatch");
    const auto &c = components(vf_index);
    if (!pg_enabled) {
        return static_cast<double>(n_cus_) * c.p_cu + c.p_nb + c.p_base;
    }
    double total = c.p_base;
    bool any_busy = false;
    for (std::size_t cu = 0; cu < n_cus_; ++cu) {
        if (busy_per_cu[cu] > 0) {
            total += c.p_cu;
            any_busy = true;
        }
    }
    if (any_busy)
        total += c.p_nb;
    return total;
}

} // namespace ppep::model
