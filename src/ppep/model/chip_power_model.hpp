/**
 * @file
 * Full-chip power model: idle (Eq. 2) + dynamic (Eq. 3), with cross-VF
 * prediction through the hardware event predictor (Sec. IV-C).
 *
 * estimate()   — power at the VF state the counters were gathered at.
 * predictAt()  — power the same workload would draw at another VF state,
 *                without ever running there (the paper's Fig. 3 claim).
 */

#ifndef PPEP_MODEL_CHIP_POWER_MODEL_HPP
#define PPEP_MODEL_CHIP_POWER_MODEL_HPP

#include "ppep/model/dynamic_power_model.hpp"
#include "ppep/model/event_predictor.hpp"
#include "ppep/model/idle_power_model.hpp"
#include "ppep/sim/vf_state.hpp"
#include "ppep/trace/interval.hpp"

namespace ppep::model {

/** A chip power estimate decomposed the way PPEP sees it. */
struct PowerEstimate
{
    double total_w = 0.0;
    double idle_w = 0.0;
    double dynamic_w = 0.0;
    /** Core-event (E1-E7) part of the dynamic estimate. */
    double dyn_core_w = 0.0;
    /** NB-proxy (E8-E9) part of the dynamic estimate. */
    double dyn_nb_w = 0.0;
};

/** Idle + dynamic, at the current or any other VF state. */
class ChipPowerModel
{
  public:
    ChipPowerModel() = default;

    ChipPowerModel(IdlePowerModel idle, DynamicPowerModel dynamic,
                   sim::VfTable vf_table);

    /**
     * Estimate chip power at the interval's own (global) VF state from
     * its multiplexed PMC counts, diode temperature, and rail voltage.
     */
    PowerEstimate estimate(const trace::IntervalRecord &rec) const;

    /**
     * Predict chip power at @p target_vf (ascending VF index) for the
     * workload captured by @p rec: per-core event rates are extrapolated
     * with Obs. 1/2 + Eq. 1, then priced by Eq. 3 at the target voltage;
     * the idle part is re-evaluated at the target voltage with the
     * current temperature.
     */
    PowerEstimate predictAt(const trace::IntervalRecord &rec,
                            std::size_t target_vf) const;

    /** The trained idle model. */
    const IdlePowerModel &idleModel() const { return idle_; }

    /** The trained dynamic model. */
    const DynamicPowerModel &dynamicModel() const { return dynamic_; }

    /** Whether both submodels are trained. */
    bool trained() const;

  private:
    IdlePowerModel idle_;
    DynamicPowerModel dynamic_;
    sim::VfTable vf_table_{std::vector<sim::VfState>{{1.0, 1.0}}};
};

} // namespace ppep::model

#endif // PPEP_MODEL_CHIP_POWER_MODEL_HPP
