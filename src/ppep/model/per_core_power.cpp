#include "ppep/model/per_core_power.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::model {

PerCorePower::PerCorePower(const sim::ChipConfig &cfg,
                           const DynamicPowerModel &dyn,
                           const PgIdleModel &pg)
    : cfg_(cfg), dyn_(dyn), pg_(pg)
{
    PPEP_ASSERT(dyn_.trained(), "dynamic model not trained");
    PPEP_ASSERT(pg_.trained(), "PG idle model not trained");
}

std::vector<CorePowerShare>
PerCorePower::attribute(const trace::IntervalRecord &rec,
                        bool pg_enabled) const
{
    PPEP_ASSERT(rec.pmc.size() == cfg_.coreCount(),
                "record core count mismatch");
    PPEP_ASSERT(rec.cu_vf.size() == cfg_.n_cus,
                "record CU context mismatch");

    // Busy topology for the Eq. 7/8 sharing rule.
    std::vector<std::size_t> busy_per_cu(cfg_.n_cus, 0);
    std::size_t busy_total = 0;
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        if (rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)] > 0.0) {
            ++busy_per_cu[c / cfg_.cores_per_cu];
            ++busy_total;
        }
    }

    std::vector<CorePowerShare> out(rec.pmc.size());
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        const std::size_t cu = c / cfg_.cores_per_cu;
        const double inst =
            rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)];
        if (inst <= 0.0)
            continue; // idle core: attributed nothing
        CorePowerShare &share = out[c];
        share.busy = true;
        const auto rates =
            powerEventRates(rec.pmc[c], rec.duration_s);
        const double voltage =
            cfg_.vf_table.state(rec.cu_vf[cu]).voltage;
        share.dynamic_w = dyn_.estimate(rates, voltage);
        share.idle_share_w = pg_.perCoreIdle(
            rec.cu_vf[cu], pg_enabled, busy_per_cu[cu], busy_total);
        share.total_w = share.dynamic_w + share.idle_share_w;
    }
    return out;
}

double
PerCorePower::total(const std::vector<CorePowerShare> &shares)
{
    double s = 0.0;
    for (const auto &share : shares)
        s += share.total_w;
    return s;
}

} // namespace ppep::model
