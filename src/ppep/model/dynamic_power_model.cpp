#include "ppep/model/dynamic_power_model.hpp"

#include <cmath>

#include "ppep/math/least_squares.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::model {

DynamicPowerModel
DynamicPowerModel::train(const std::vector<DynTrainingRow> &rows,
                         double v_train, double alpha, bool non_negative)
{
    PPEP_ASSERT(rows.size() >= sim::kNumPowerEvents,
                "need at least ", sim::kNumPowerEvents,
                " training rows, got ", rows.size());
    PPEP_ASSERT(v_train > 0.0 && alpha > 0.0, "bad training parameters");

    math::Matrix design(rows.size(), sim::kNumPowerEvents);
    std::vector<double> target(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            design(r, i) = rows[r].rates_per_s[i];
        target[r] = rows[r].dynamic_power_w;
    }

    // Non-negative fit: weights are energies per event; a negative energy
    // would corrupt the (V/V5)^alpha extrapolation to other VF states.
    const auto fit =
        non_negative ? math::fitNonNegativeLeastSquares(design, target)
                     : math::fitLeastSquares(design, target);

    DynamicPowerModel model;
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        model.weights_[i] = fit.coefficients[i];
    model.v_train_ = v_train;
    model.alpha_ = alpha;
    model.trained_ = true;
    return model;
}

DynamicPowerModel
DynamicPowerModel::fromWeights(
    const std::array<double, sim::kNumPowerEvents> &weights,
    double v_train, double alpha)
{
    PPEP_ASSERT(v_train > 0.0 && alpha > 0.0, "bad model parameters");
    DynamicPowerModel model;
    model.weights_ = weights;
    model.v_train_ = v_train;
    model.alpha_ = alpha;
    model.trained_ = true;
    return model;
}

double
DynamicPowerModel::estimate(
    const std::array<double, sim::kNumPowerEvents> &rates_per_s,
    double voltage) const PPEP_NONBLOCKING
{
    double core_w = 0.0, nb_w = 0.0;
    split(rates_per_s, voltage, core_w, nb_w);
    return core_w + nb_w;
}

double
DynamicPowerModel::estimateFromRates(const sim::EventVector &rates_per_s,
                                     double voltage) const
{
    std::array<double, sim::kNumPowerEvents> rates{};
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        rates[i] = rates_per_s[i];
    return estimate(rates, voltage);
}

double
DynamicPowerModel::voltageScale(double voltage) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(trained_, "dynamic power model not trained");
    PPEP_ASSERT(voltage > 0.0, "non-positive voltage");
    return std::pow(voltage / v_train_, alpha_);
}

void
DynamicPowerModel::split(
    const std::array<double, sim::kNumPowerEvents> &rates_per_s,
    double voltage, double &core_w, double &nb_w) const PPEP_NONBLOCKING
{
    splitScaled(rates_per_s, voltageScale(voltage), core_w, nb_w);
}

double
DynamicPowerModel::estimateScaled(
    const std::array<double, sim::kNumPowerEvents> &rates_per_s,
    double vscale) const PPEP_NONBLOCKING
{
    double core_w = 0.0, nb_w = 0.0;
    splitScaled(rates_per_s, vscale, core_w, nb_w);
    return core_w + nb_w;
}

void
DynamicPowerModel::splitScaled(
    const std::array<double, sim::kNumPowerEvents> &rates_per_s,
    double vscale, double &core_w, double &nb_w) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(trained_, "dynamic power model not trained");
    core_w = 0.0;
    for (std::size_t i = 0; i < sim::kNumCorePowerEvents; ++i)
        core_w += weights_[i] * rates_per_s[i];
    core_w *= vscale;
    nb_w = 0.0;
    for (std::size_t i = sim::kNumCorePowerEvents;
         i < sim::kNumPowerEvents; ++i)
        nb_w += weights_[i] * rates_per_s[i];
}

void
DynamicPowerModel::splitFromRates(const sim::EventVector &rates_per_s,
                                  double voltage, double &core_w,
                                  double &nb_w) const PPEP_NONBLOCKING
{
    PPEP_ASSERT(trained_, "dynamic power model not trained");
    const double vscale = voltageScale(voltage);
    core_w = 0.0;
    for (std::size_t i = 0; i < sim::kNumCorePowerEvents; ++i)
        core_w += weights_[i] * rates_per_s[i];
    core_w *= vscale;
    nb_w = 0.0;
    for (std::size_t i = sim::kNumCorePowerEvents;
         i < sim::kNumPowerEvents; ++i)
        nb_w += weights_[i] * rates_per_s[i];
}

KernelWeights
DynamicPowerModel::kernelWeights() const
{
    PPEP_ASSERT(trained_, "dynamic power model not trained");
    KernelWeights kw;
    for (std::size_t i = 0; i < sim::kNumCorePowerEvents; ++i)
        kw.core[i] = weights_[i];
    kw.l2_miss = weights_[sim::eventIndex(sim::Event::L2CacheMiss)];
    kw.dispatch_stall =
        weights_[sim::eventIndex(sim::Event::DispatchStall)];
    return kw;
}

std::array<double, sim::kNumPowerEvents>
powerEventRates(const sim::EventVector &counts,
                double duration_s) PPEP_NONBLOCKING
{
    PPEP_ASSERT(duration_s > 0.0, "non-positive duration");
    std::array<double, sim::kNumPowerEvents> rates{};
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        rates[i] = counts[i] / duration_s;
    return rates;
}

std::array<double, sim::kNumPowerEvents>
powerEventRates(const std::vector<sim::EventVector> &per_core_counts,
                double duration_s)
{
    std::array<double, sim::kNumPowerEvents> rates{};
    for (const auto &core : per_core_counts) {
        const auto r = powerEventRates(core, duration_s);
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
            rates[i] += r[i];
    }
    return rates;
}

} // namespace ppep::model
