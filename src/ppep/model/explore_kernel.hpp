/**
 * @file
 * Batched VF×core exploration kernel (the Fig. 5 sweep, data-parallel).
 *
 * PPEP's per-interval hot path is a dense sweep: every VF state × every
 * core, each cell an Eq. 1 CPI extrapolation plus an Eq. 3 pricing of
 * the predicted event rates. The scalar path walks it through
 * EventPredictor::predictAt + DynamicPowerModel::splitScaled — correct,
 * but each cell pays two calls, a 12-double rate-vector store, and a
 * 9-double staging copy.
 *
 * This kernel flattens the sweep:
 *
 *  - ExplorePlan: everything per-VF that depends only on the trained
 *    models and the VF table, laid out structure-of-arrays (voltage,
 *    frequency, (V/Vtrain)^alpha scale, Eq. 2 idle line), plus the
 *    Eq. 3 weights repacked so the inner loop needs no model object —
 *    no per-VF virtual or cross-TU calls survive into the sweep.
 *  - ExploreWorkspace: caller-owned core×VF result matrices, reused
 *    across intervals (zero steady-state allocation).
 *  - exploreBatch(): for each core, one branch-free vectorizable pass
 *    over all VF states.
 *
 * The kernel is arithmetically *identical* to the scalar path: every
 * cell performs the same operations in the same order (Eq. 1 through
 * CpiModel::predictCpiTerms, Eq. 3 accumulation in weight order), and
 * the guard branches of predictAt() become value selects that
 * reproduce its zero-prediction sentinel bit for bit. The build keeps
 * FP contraction off for this library, so scalar and batched results
 * are bit-identical — test_explore_kernel holds a randomized 10k-record
 * differential proof over both paths.
 *
 * One carve-out: when an *input* is already poisoned (NaN counter
 * values, or rates that overflow to infinity against a zero weight),
 * both paths deterministically produce NaN in the same cells, but the
 * NaN's payload/sign bits are not pinned — IEEE propagation for an
 * operation with two NaN operands returns whichever one the generated
 * instruction ordered first, a codegen choice no source-level contract
 * can fix. Bit-identity therefore means: every non-NaN output
 * (including signed zeros and infinities) matches bit for bit, and the
 * NaN cell sets are equal.
 */

#ifndef PPEP_MODEL_EXPLORE_KERNEL_HPP
#define PPEP_MODEL_EXPLORE_KERNEL_HPP

#include <cstddef>
#include <vector>

#include "ppep/model/chip_power_model.hpp"
#include "ppep/sim/vf_state.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::model {

/**
 * The precomputed per-VF exploration plan: one contiguous lane per
 * model quantity, indexed by VF state, plus the repacked Eq. 3
 * weights. Built once per Ppep (or per retrain); read-only and shared
 * by any number of concurrent explorations.
 */
struct ExplorePlan
{
    // --- per-VF lanes (SoA over the software VF table) ------------------
    std::vector<double> voltage;    ///< operating voltage
    std::vector<double> freq_ghz;   ///< operating frequency
    std::vector<double> vscale;     ///< DynamicPowerModel::voltageScale(V)
    std::vector<double> idle_slope; ///< Eq. 2 Widle1(V)
    std::vector<double> idle_icept; ///< Eq. 2 Widle0(V)

    // --- VF-invariant model constants ------------------------------------
    KernelWeights weights; ///< Eq. 3 weights, kernel layout

    std::size_t size() const { return voltage.size(); }

    /** Hoist the per-VF invariants out of @p power over @p table. */
    static ExplorePlan build(const ChipPowerModel &power,
                             const sim::VfTable &table);
};

/**
 * Caller-owned core×VF result matrices, row-major with one row per
 * core (stride = plan size). resize() only ever grows the backing
 * stores, so a warm workspace allocates nothing.
 */
struct ExploreWorkspace
{
    std::vector<double> cpi;    ///< predicted CPI at [core][vf]
    std::vector<double> ips;    ///< predicted inst/s at [core][vf]
    std::vector<double> core_w; ///< voltage-scaled core dynamic watts
    std::vector<double> nb_w;   ///< NB-proxy dynamic watts

    std::size_t n_cores = 0;
    std::size_t n_vf = 0;

    void resize(std::size_t cores, std::size_t vf_states)
    {
        n_cores = cores;
        n_vf = vf_states;
        const std::size_t cells = cores * vf_states;
        cpi.resize(cells);
        ips.resize(cells);
        core_w.resize(cells);
        nb_w.resize(cells);
    }
};

/**
 * Fill @p ws with predictions for every (core, VF state) cell from the
 * per-core observations @p obs (length @p n_cores, produced by
 * EventPredictor::observe). Idle cores and cells whose target CPI
 * fails the predictAt() validity guard yield all-zero rows/cells,
 * exactly like the scalar path.
 */
void exploreBatch(const ExplorePlan &plan, const CoreObservation *obs,
                  std::size_t n_cores, ExploreWorkspace &ws) PPEP_NONBLOCKING;

} // namespace ppep::model

#endif // PPEP_MODEL_EXPLORE_KERNEL_HPP
