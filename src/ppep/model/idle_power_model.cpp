#include "ppep/model/idle_power_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "ppep/math/least_squares.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::model {

IdlePowerModel
IdlePowerModel::train(const std::vector<IdleSample> &samples)
{
    PPEP_ASSERT(!samples.empty(), "no idle training samples");

    // Group by voltage (exact match is fine: VF tables are discrete).
    std::map<double, std::vector<const IdleSample *>> by_voltage;
    for (const auto &s : samples)
        by_voltage[s.voltage].push_back(&s);
    PPEP_ASSERT(by_voltage.size() >= 2,
                "idle training needs at least two voltages, got ",
                by_voltage.size());

    std::vector<double> volts, slopes, intercepts;
    for (const auto &[v, group] : by_voltage) {
        PPEP_ASSERT(group.size() >= 2, "need >= 2 samples at V=", v);
        // Linear regression P = w1 * T + w0 at this voltage.
        std::vector<double> ts, ps;
        ts.reserve(group.size());
        ps.reserve(group.size());
        for (const auto *s : group) {
            ts.push_back(s->temp_k);
            ps.push_back(s->power_w);
        }
        const auto line = math::Polynomial::fit(ts, ps, 1);
        volts.push_back(v);
        intercepts.push_back(line.coefficients()[0]);
        slopes.push_back(line.coefficients().size() > 1
                             ? line.coefficients()[1]
                             : 0.0);
    }

    const int degree =
        std::min<int>(3, static_cast<int>(volts.size()) - 1);
    IdlePowerModel model;
    model.w1_ = math::Polynomial::fit(volts, slopes, degree);
    model.w0_ = math::Polynomial::fit(volts, intercepts, degree);
    model.trained_ = true;
    return model;
}

IdlePowerModel
IdlePowerModel::fromPolynomials(math::Polynomial w1, math::Polynomial w0)
{
    IdlePowerModel model;
    model.w1_ = std::move(w1);
    model.w0_ = std::move(w0);
    model.trained_ = true;
    return model;
}

double
IdlePowerModel::predict(double voltage, double temp_k) const
{
    PPEP_ASSERT(trained_, "idle power model not trained");
    return w1_(voltage) * temp_k + w0_(voltage);
}

double
IdlePowerModel::slope(double voltage) const
{
    PPEP_ASSERT(trained_, "idle power model not trained");
    return w1_(voltage);
}

double
IdlePowerModel::intercept(double voltage) const
{
    PPEP_ASSERT(trained_, "idle power model not trained");
    return w0_(voltage);
}

IdleLine
IdlePowerModel::lineAt(double voltage) const
{
    PPEP_ASSERT(trained_, "idle power model not trained");
    return {w1_(voltage), w0_(voltage)};
}

} // namespace ppep::model
