/**
 * @file
 * Per-core power attribution (the closing step of paper Sec. IV-D:
 * "Combining this with the per-core dynamic power model, we can derive
 * total per-core power").
 *
 * Each busy core is charged its own dynamic power (Eq. 3 on its private
 * counters) plus its share of the idle power under the Eq. 7 (PG
 * enabled) or Eq. 8 (PG disabled) sharing rule. Idle cores are charged
 * nothing — their CU's residual cost is carried by the busy ones, which
 * is exactly how the paper's energy accounting treats background
 * threads.
 */

#ifndef PPEP_MODEL_PER_CORE_POWER_HPP
#define PPEP_MODEL_PER_CORE_POWER_HPP

#include <vector>

#include "ppep/model/dynamic_power_model.hpp"
#include "ppep/model/pg_idle_model.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/trace/interval.hpp"

namespace ppep::model {

/** One core's attributed power for an interval. */
struct CorePowerShare
{
    bool busy = false;
    /** Eq. 3 dynamic power from this core's own counters, watts. */
    double dynamic_w = 0.0;
    /** Eq. 7/8 share of the chip's idle power, watts. */
    double idle_share_w = 0.0;
    /** dynamic + idle share. */
    double total_w = 0.0;
};

/** Per-core attribution of one interval's power. */
class PerCorePower
{
  public:
    /**
     * @param cfg platform description (topology).
     * @param dyn trained Eq. 3 model.
     * @param pg  trained Eq. 7/8 decomposition.
     */
    PerCorePower(const sim::ChipConfig &cfg,
                 const DynamicPowerModel &dyn, const PgIdleModel &pg);

    /**
     * Attribute the interval's power to cores. Uses the record's own
     * (global or per-CU) VF context; @p pg_enabled selects the Eq. 7 or
     * Eq. 8 sharing rule.
     */
    std::vector<CorePowerShare>
    attribute(const trace::IntervalRecord &rec, bool pg_enabled) const;

    /** Sum of all attributed power (the chip total PPEP would report). */
    static double total(const std::vector<CorePowerShare> &shares);

  private:
    const sim::ChipConfig &cfg_;
    const DynamicPowerModel &dyn_;
    const PgIdleModel &pg_;
};

} // namespace ppep::model

#endif // PPEP_MODEL_PER_CORE_POWER_HPP
