/**
 * @file
 * Offline model-training protocols (the paper's "one-time, offline
 * effort" per processor).
 *
 *  - Idle model: the Fig. 1 heat-then-cool protocol at every VF state.
 *  - alpha: measured dynamic power of a steady CPU-bound workload across
 *    VF states, regressed against log-voltage.
 *  - PG decomposition: the Fig. 4 busy-CU sweep with PG on/off.
 *  - Dynamic model: Eq. 3 regression over benchmark traces at the top VF.
 *  - Green Governors baseline: CV^2 f fit over the same traces.
 *
 * Every protocol builds its own fresh Chip instances, drives them only
 * through software-visible controls, and reads only the sensor, the
 * diode, and the PMCs — exactly the paper's measurement position.
 */

#ifndef PPEP_MODEL_TRAINER_HPP
#define PPEP_MODEL_TRAINER_HPP

#include <cstdint>
#include <vector>

#include "ppep/model/chip_power_model.hpp"
#include "ppep/model/green_governors.hpp"
#include "ppep/model/pg_idle_model.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/workloads/suite.hpp"

namespace ppep::model {

/** Everything trainAll() produces. */
struct TrainedModels
{
    IdlePowerModel idle;
    double alpha = 2.0;
    DynamicPowerModel dynamic;
    ChipPowerModel chip;
    PgIdleModel pg;           ///< untrained when the chip lacks PG
    GreenGovernorsModel gg;
};

/** The full heat/cool record of one Fig. 1 run. */
struct CoolingTrace
{
    /** (V, T, P) samples from the cooling portion — training data. */
    std::vector<IdleSample> idle_samples;
    /** Per-interval sensor power over heat+cool (for plotting Fig. 1). */
    std::vector<double> power_curve_w;
    /** Per-interval diode temperature over heat+cool. */
    std::vector<double> temp_curve_k;
    /** Index of the first cooling interval within the curves. */
    std::size_t cool_start = 0;
};

/** One benchmark combination's trace at one VF state. */
struct ComboTrace
{
    const workloads::Combination *combo = nullptr;
    std::size_t vf_index = 0;
    std::vector<trace::IntervalRecord> recs;
};

/** Offline training driver for one chip configuration. */
class Trainer
{
  public:
    /** @param seed drives all chips the trainer builds. */
    Trainer(sim::ChipConfig cfg, std::uint64_t seed);

    /** The configuration being trained for. */
    const sim::ChipConfig &config() const { return cfg_; }

    // --- Fig. 1: idle model ---------------------------------------------

    /**
     * Run the heat/cool protocol at one VF state. Defaults heat long
     * enough to approach thermal steady state and cool long enough to
     * span the operating range.
     */
    CoolingTrace collectCoolingTrace(std::size_t vf_index,
                                     std::size_t heat_intervals = 500,
                                     std::size_t cool_intervals = 700) const;

    /** Train Eq. 2 from cooling traces at every VF state. */
    IdlePowerModel trainIdle() const;

    // --- alpha ------------------------------------------------------------

    /**
     * Estimate the voltage-scaling exponent: steady CPU-bound load on
     * all cores at each VF state; regress log(dynamic power / activity
     * rate) on log(voltage).
     */
    double estimateAlpha(const IdlePowerModel &idle) const;

    // --- Fig. 4: power gating ----------------------------------------------

    /**
     * The busy-CU sweep: for every VF state and both PG settings,
     * measure chip power with 0..n_cus CUs running bench_A.
     * @pre the chip supports PG.
     */
    std::vector<PgSweepMeasurement> collectPgSweeps() const;

    /** Extract Eq. 7/8 components from the sweeps. */
    PgIdleModel trainPg() const;

    // --- benchmark traces ---------------------------------------------------

    /**
     * Run one combination to completion (capped) at one VF state with PG
     * disabled and global DVFS, collecting every interval.
     */
    ComboTrace collectCombo(const workloads::Combination &combo,
                            std::size_t vf_index,
                            std::size_t max_intervals = 120) const;

    /** Cross product of combos and VF states. */
    std::vector<ComboTrace>
    collectDataset(const std::vector<const workloads::Combination *> &combos,
                   const std::vector<std::size_t> &vf_indices,
                   std::size_t max_intervals = 120) const;

    // --- regressions ------------------------------------------------------

    /**
     * Eq. 3 regression from traces taken at the top VF state (rows from
     * other VF states are ignored).
     */
    DynamicPowerModel
    trainDynamic(const IdlePowerModel &idle, double alpha,
                 const std::vector<const ComboTrace *> &traces) const;

    /** Fit the Green Governors baseline on traces from all VF states. */
    GreenGovernorsModel
    trainGg(const std::vector<const ComboTrace *> &traces) const;

    /**
     * Run the whole pipeline with the given training combinations. The
     * optional @p dataset avoids re-collecting traces the caller already
     * has (entries whose combo is not in @p combos are ignored; top-VF
     * entries feed Eq. 3, all entries feed the GG baseline).
     */
    TrainedModels
    trainAll(const std::vector<const workloads::Combination *> &combos,
             const std::vector<ComboTrace> *dataset = nullptr) const;

  private:
    /** Deterministic chip for a named sub-experiment. */
    sim::Chip makeChip(std::uint64_t stream) const;

    sim::ChipConfig cfg_;
    std::uint64_t seed_;
};

} // namespace ppep::model

#endif // PPEP_MODEL_TRAINER_HPP
