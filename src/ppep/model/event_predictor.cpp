#include "ppep/model/event_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::model {

namespace {

using sim::Event;
using sim::eventIndex;

} // namespace

double
EventPredictor::obs2Gap(const sim::EventVector &events) PPEP_NONBLOCKING
{
    const double inst = events[eventIndex(Event::RetiredInst)];
    if (!(inst > 0.0))
        return 0.0;
    const double cpi =
        events[eventIndex(Event::ClocksNotHalted)] / inst;
    const double ds_per_inst =
        events[eventIndex(Event::DispatchStall)] / inst;
    return cpi - ds_per_inst;
}

CoreObservation
EventPredictor::observe(const sim::EventVector &events, double duration_s,
                        double f_current, double mcpi_scale) PPEP_NONBLOCKING
{
    PPEP_ASSERT(duration_s > 0.0, "non-positive interval duration");
    PPEP_ASSERT(f_current > 0.0, "frequencies must be positive");
    PPEP_ASSERT(mcpi_scale > 0.0, "non-positive MCPI scale");

    CoreObservation obs;
    obs.f_current = f_current;
    const double inst = events[eventIndex(Event::RetiredInst)];
    if (!(inst > 0.0))
        return obs; // idle core stays idle (NaN counts land here too)

    // CPI decomposition, with the memory time optionally stretched by
    // the NB what-if factor. fromEvents returns the zero sample for
    // corrupt counter sets (instructions without cycles, non-finite
    // counts); treat those as idle rather than dividing by CPI = 0
    // below.
    obs.sample = CpiModel::fromEvents(events);
    if (obs.sample.cpi <= 0.0) {
        CoreObservation idle;
        idle.f_current = obs.f_current;
        return idle;
    }
    obs.idle = false;
    obs.sample.cpi += obs.sample.mcpi * (mcpi_scale - 1.0);
    obs.sample.mcpi *= mcpi_scale;

    // Obs. 2 gap: measured now, VF-invariant.
    obs.gap = obs2Gap(events);

    // The core may have been halted for part of the interval (job ended,
    // I/O wait). Predicted per-second rates assume the same busy duty
    // cycle at the target state.
    obs.busy_frac = std::min(
        1.0, events[eventIndex(Event::ClocksNotHalted)] /
                 (f_current * 1e9 * duration_s));

    // Obs. 1 — per-instruction counts of E1..E8 carry over unchanged.
    for (std::size_t i = 0; i < 8; ++i)
        obs.per_inst[i] = events[i] / inst;
    return obs;
}

PredictedCoreState
EventPredictor::predictAt(const CoreObservation &obs, double f_target) PPEP_NONBLOCKING
{
    PPEP_ASSERT(f_target > 0.0, "frequencies must be positive");

    PredictedCoreState out;
    if (obs.idle)
        return out;

    // Step 1: CPI at the target VF (Eq. 1). Defensive sentinel: a
    // non-positive or non-finite target CPI (possible only with a
    // hand-built observation that bypassed observe()) would otherwise
    // turn the IPS division into Inf and poison every rate below.
    const double cpi_target =
        CpiModel::predictCpi(obs.sample, obs.f_current, f_target);
    if (!(cpi_target > 0.0) || !std::isfinite(cpi_target))
        return out;
    const double ips_target = f_target * 1e9 / cpi_target;

    // Step 2: Obs. 2 gives dispatch stalls per instruction at the target:
    // DS/inst(f') = CPI(f') - gap.
    const double ds_per_inst_target = std::max(0.0, cpi_target - obs.gap);

    const double eff_ips = ips_target * obs.busy_frac;

    // Step 3: scale the per-instruction invariants to per-second rates
    // at the target.
    for (std::size_t i = 0; i < 8; ++i)
        out.rates_per_s[i] = obs.per_inst[i] * eff_ips;
    out.rates_per_s[eventIndex(Event::DispatchStall)] =
        ds_per_inst_target * eff_ips;
    out.rates_per_s[eventIndex(Event::ClocksNotHalted)] =
        cpi_target * eff_ips;
    out.rates_per_s[eventIndex(Event::RetiredInst)] = eff_ips;
    out.rates_per_s[eventIndex(Event::MabWaitCycles)] =
        CpiModel::predictMcpi(obs.sample, obs.f_current, f_target) *
        eff_ips;

    out.cpi = cpi_target;
    out.ips = ips_target;
    return out;
}

PredictedCoreState
EventPredictor::predict(const sim::EventVector &events, double duration_s,
                        double f_current, double f_target,
                        double mcpi_scale) PPEP_NONBLOCKING
{
    return predictAt(observe(events, duration_s, f_current, mcpi_scale),
                     f_target);
}

} // namespace ppep::model
