#include "ppep/model/event_predictor.hpp"

#include <algorithm>

#include "ppep/util/logging.hpp"

namespace ppep::model {

namespace {

using sim::Event;
using sim::eventIndex;

} // namespace

double
EventPredictor::obs2Gap(const sim::EventVector &events)
{
    const double inst = events[eventIndex(Event::RetiredInst)];
    if (inst <= 0.0)
        return 0.0;
    const double cpi =
        events[eventIndex(Event::ClocksNotHalted)] / inst;
    const double ds_per_inst =
        events[eventIndex(Event::DispatchStall)] / inst;
    return cpi - ds_per_inst;
}

PredictedCoreState
EventPredictor::predict(const sim::EventVector &events, double duration_s,
                        double f_current, double f_target,
                        double mcpi_scale)
{
    PPEP_ASSERT(duration_s > 0.0, "non-positive interval duration");
    PPEP_ASSERT(f_current > 0.0 && f_target > 0.0,
                "frequencies must be positive");
    PPEP_ASSERT(mcpi_scale > 0.0, "non-positive MCPI scale");

    PredictedCoreState out;
    const double inst = events[eventIndex(Event::RetiredInst)];
    if (inst <= 0.0)
        return out; // idle core stays idle

    // Step 1: CPI at the target VF (Eq. 1), with the memory time
    // optionally stretched by the NB what-if factor.
    CpiSample sample = CpiModel::fromEvents(events);
    sample.cpi += sample.mcpi * (mcpi_scale - 1.0);
    sample.mcpi *= mcpi_scale;
    const double cpi_target =
        CpiModel::predictCpi(sample, f_current, f_target);
    const double ips_target = f_target * 1e9 / cpi_target;

    // Step 2: Obs. 2 gives dispatch stalls per instruction at the target:
    // DS/inst(f') = CPI(f') - gap, gap measured now and VF-invariant.
    const double gap = obs2Gap(events);
    const double ds_per_inst_target = std::max(0.0, cpi_target - gap);

    // The core may have been halted for part of the interval (job ended,
    // I/O wait). Predicted per-second rates assume the same busy duty
    // cycle at the target state.
    const double busy_frac = std::min(
        1.0, events[eventIndex(Event::ClocksNotHalted)] /
                 (f_current * 1e9 * duration_s));
    const double eff_ips = ips_target * busy_frac;

    // Step 3: Obs. 1 — per-instruction counts of E1..E8 carry over
    // unchanged; scale everything to per-second at the target.
    for (std::size_t i = 0; i < 8; ++i)
        out.rates_per_s[i] = events[i] / inst * eff_ips;
    out.rates_per_s[eventIndex(Event::DispatchStall)] =
        ds_per_inst_target * eff_ips;
    out.rates_per_s[eventIndex(Event::ClocksNotHalted)] =
        cpi_target * eff_ips;
    out.rates_per_s[eventIndex(Event::RetiredInst)] = eff_ips;
    out.rates_per_s[eventIndex(Event::MabWaitCycles)] =
        CpiModel::predictMcpi(sample, f_current, f_target) * eff_ips;

    out.cpi = cpi_target;
    out.ips = ips_target;
    return out;
}

} // namespace ppep::model
