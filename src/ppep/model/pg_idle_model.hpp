/**
 * @file
 * Power-gating-aware idle power decomposition (paper Sec. IV-D,
 * Fig. 4, Eqs. 7-8).
 *
 * The Fig. 4 experiment sweeps the number of busy CUs from 0 to 4 with PG
 * enabled and disabled, using bench_A (steady, L1-resident, NB-silent).
 * The bar gaps isolate the idle power of one CU, the NB, and the
 * always-on base:
 *
 *   gap(k busy CUs)  = (n_cus - k) * Pidle(CU)          for k >= 1
 *   gap(0 busy CUs)  = n_cus * Pidle(CU) + Pidle(NB)    (NB gates too)
 *   Pidle(Base)      = PG-enabled fully-idle power
 *
 * Per-core idle attribution then follows Eq. 7 (PG on: busy cores in a CU
 * share that CU's idle power; all busy cores share NB + base) and Eq. 8
 * (PG off: all busy cores share the whole chip idle power).
 */

#ifndef PPEP_MODEL_PG_IDLE_MODEL_HPP
#define PPEP_MODEL_PG_IDLE_MODEL_HPP

#include <cstddef>
#include <vector>
#include "ppep/util/annotations.hpp"

namespace ppep::model {

/** Measured chip power for the Fig. 4 sweep at one VF state. */
struct PgSweepMeasurement
{
    /** VF index these measurements were taken at. */
    std::size_t vf_index = 0;
    /** power_pg_off[k] = chip power with k busy CUs, PG disabled. */
    std::vector<double> power_pg_off;
    /** power_pg_on[k] = chip power with k busy CUs, PG enabled. */
    std::vector<double> power_pg_on;
};

/** Extracted idle components at one VF state. */
struct PgIdleComponents
{
    double p_cu = 0.0;   ///< Pidle(CU)
    double p_nb = 0.0;   ///< Pidle(NB)
    double p_base = 0.0; ///< Pidle(Base) — VF-independent in principle
};

/** The Eq. 7/8 per-core idle power model. */
class PgIdleModel
{
  public:
    PgIdleModel() = default;

    /**
     * Derive components from Fig. 4 sweeps (one per VF state, each with
     * n_cus+1 entries per PG setting).
     */
    static PgIdleModel fromSweeps(
        const std::vector<PgSweepMeasurement> &sweeps,
        std::size_t n_cus);

    /** Components at a VF index. @pre trained and index known. */
    const PgIdleComponents &components(std::size_t vf_index) const PPEP_NONBLOCKING;

    /**
     * Eq. 7/8: idle power attributed to one busy core.
     *
     * @param pg_enabled     whether power gating is active.
     * @param busy_in_cu     busy cores in this core's CU (m >= 1).
     * @param busy_in_chip   busy cores chip-wide (n >= 1).
     */
    double perCoreIdle(std::size_t vf_index, bool pg_enabled,
                       std::size_t busy_in_cu,
                       std::size_t busy_in_chip) const PPEP_NONBLOCKING;

    /**
     * Total chip idle power under PG with the given per-CU busy-core
     * counts (size n_cus; zero entries mean the CU is gated).
     */
    double chipIdle(std::size_t vf_index, bool pg_enabled,
                    const std::vector<std::size_t> &busy_per_cu) const;

    /** Number of CUs the model was built for. */
    std::size_t cuCount() const { return n_cus_; }

    /**
     * NB idle power averaged over the measured VF states. The NB runs in
     * its own fixed VF domain, so its idle power is core-VF-independent
     * up to measurement noise; the average is what mixed per-CU VF
     * assignments should use.
     */
    double pNbAvg() const PPEP_NONBLOCKING;

    /** Base (always-on) power averaged over the measured VF states. */
    double pBaseAvg() const PPEP_NONBLOCKING;

    /**
     * Chip idle power for a *mixed* per-CU VF assignment under PG:
     * base + NB (if any CU busy) + per-busy-CU Pidle(CU) at that CU's
     * own VF. @pre pg semantics as in chipIdle().
     */
    double chipIdleMixed(const std::vector<std::size_t> &cu_vf,
                         const std::vector<std::size_t> &busy_per_cu,
                         bool pg_enabled) const PPEP_NONBLOCKING;

    /** Whether fromSweeps() produced this model. */
    bool trained() const { return !components_.empty(); }

    /** All per-VF components in index order (serialization). */
    const std::vector<PgIdleComponents> &allComponents() const
    {
        return components_;
    }

    /** Rebuild a trained model from its components (serialization). */
    static PgIdleModel
    fromComponents(std::vector<PgIdleComponents> components,
                   std::size_t n_cus);

  private:
    std::vector<PgIdleComponents> components_; ///< indexed by VF
    std::size_t n_cus_ = 0;
};

} // namespace ppep::model

#endif // PPEP_MODEL_PG_IDLE_MODEL_HPP
