/**
 * @file
 * Thermal-parameter estimation from the Fig. 1 traces (extension).
 *
 * The heat/cool protocol that trains the idle power model also exposes
 * the package's thermal network: the cooling tail is a first-order
 * exponential whose asymptote/steepness give the time constant, and the
 * (power, steady-temperature) pairs of the hot and cooled regimes give
 * the junction-to-ambient resistance. With those three constants a
 * governor can predict the *temperature* a VF state would settle at
 * before switching to it — proactive thermal management in the same
 * one-step spirit as the paper's power capping.
 */

#ifndef PPEP_MODEL_THERMAL_ESTIMATOR_HPP
#define PPEP_MODEL_THERMAL_ESTIMATOR_HPP

#include "ppep/model/trainer.hpp"

namespace ppep::model {

/** Fitted first-order thermal network parameters. */
struct ThermalEstimate
{
    /** Ambient temperature, kelvin. */
    double ambient_k = 0.0;
    /** Junction-to-ambient resistance, K/W. */
    double resistance_k_per_w = 0.0;
    /** Time constant, seconds. */
    double time_constant_s = 0.0;

    /** Steady-state temperature this power level settles at. */
    double steadyState(double power_w) const
    {
        return ambient_k + resistance_k_per_w * power_w;
    }

    /** Highest sustained power that keeps T_ss at or under @p cap. */
    double powerBudgetFor(double temp_cap_k) const
    {
        return (temp_cap_k - ambient_k) / resistance_k_per_w;
    }
};

/** Fits ThermalEstimate from a heat/cool run. */
class ThermalEstimator
{
  public:
    /**
     * Fit from one CoolingTrace (heat portion must have reached a
     * near-steady temperature; the default Trainer lengths do).
     *
     * @param interval_s wall time per curve sample (one decision
     *        interval, 0.2 s at the default configuration).
     */
    static ThermalEstimate fit(const CoolingTrace &trace,
                               double interval_s);

    /** Convenience: run the protocol on @p trainer and fit. */
    static ThermalEstimate estimate(const Trainer &trainer);
};

} // namespace ppep::model

#endif // PPEP_MODEL_THERMAL_ESTIMATOR_HPP
