#include "ppep/model/thermal_estimator.hpp"

#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::model {

ThermalEstimate
ThermalEstimator::fit(const CoolingTrace &trace, double interval_s)
{
    PPEP_ASSERT(interval_s > 0.0, "non-positive interval");
    PPEP_ASSERT(trace.cool_start >= 10 &&
                trace.temp_curve_k.size() >= trace.cool_start + 30,
                "trace too short to fit thermal parameters");

    const std::size_t n_cool =
        trace.temp_curve_k.size() - trace.cool_start;

    // --- cooling asymptote + time constant -----------------------------
    // Three equally spaced samples of a first-order decay give the
    // asymptote in closed form: T_inf = (T0*T2 - T1^2)/(T0 + T2 - 2*T1).
    const double t0 = trace.temp_curve_k[trace.cool_start];
    const double t1 =
        trace.temp_curve_k[trace.cool_start + n_cool / 2];
    const double t2 = trace.temp_curve_k.back();
    const double denom = t0 + t2 - 2.0 * t1;
    PPEP_ASSERT(std::fabs(denom) > 1e-9,
                "degenerate cooling curve (no decay visible)");
    const double t_inf = (t0 * t2 - t1 * t1) / denom;
    PPEP_ASSERT(t0 > t_inf, "cooling curve does not decay");

    const double dt_half =
        static_cast<double>(n_cool / 2) * interval_s;
    const double ratio = (t1 - t_inf) / (t0 - t_inf);
    PPEP_ASSERT(ratio > 0.0 && ratio < 1.0,
                "implausible cooling ratio");
    const double tau = -dt_half / std::log(ratio);

    // --- the two (power, steady temperature) anchor points -------------
    auto tail_mean = [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            s += trace.power_curve_w[i];
        return s / static_cast<double>(hi - lo);
    };
    const double p_idle = tail_mean(
        trace.power_curve_w.size() - n_cool / 5,
        trace.power_curve_w.size());
    const double p_hot =
        tail_mean(trace.cool_start - trace.cool_start / 5,
                  trace.cool_start);

    // The heat phase may not have fully settled; correct its endpoint
    // to the true asymptote using the fitted time constant.
    const double t_start = trace.temp_curve_k.front();
    const double t_end_heat =
        trace.temp_curve_k[trace.cool_start - 1];
    const double heat_time =
        static_cast<double>(trace.cool_start) * interval_s;
    const double decay = std::exp(-heat_time / tau);
    const double t_ss_hot =
        (t_end_heat - t_start * decay) / (1.0 - decay);

    ThermalEstimate est;
    est.time_constant_s = tau;
    est.resistance_k_per_w = (t_ss_hot - t_inf) / (p_hot - p_idle);
    est.ambient_k = t_inf - est.resistance_k_per_w * p_idle;
    PPEP_ASSERT(est.resistance_k_per_w > 0.0 && est.ambient_k > 200.0,
                "implausible thermal fit (R=", est.resistance_k_per_w,
                ", ambient=", est.ambient_k, ")");
    return est;
}

ThermalEstimate
ThermalEstimator::estimate(const Trainer &trainer)
{
    const auto trace = trainer.collectCoolingTrace(
        trainer.config().vf_table.top(), 600, 900);
    const double interval_s =
        trainer.config().tick_s *
        static_cast<double>(trainer.config().ticks_per_interval);
    return fit(trace, interval_s);
}

} // namespace ppep::model
