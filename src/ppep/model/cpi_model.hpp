/**
 * @file
 * LL-MAB CPI prediction model (paper Sec. III, Eq. 1).
 *
 * CPI is split into a core part (CCPI), which is frequency-invariant in
 * cycle terms, and a memory part (MCPI), whose *wall-clock* time is
 * frequency-invariant and whose cycle count therefore scales with
 * frequency:
 *
 *     CPI(f') = CCPI(f) + MCPI(f) * f'/f
 *
 * Both inputs come from three counters: CPI = E10/E11 and MCPI = E12/E11,
 * where E12 (MAB Wait Cycles) approximates leading-load cycles on AMD
 * hardware.
 */

#ifndef PPEP_MODEL_CPI_MODEL_HPP
#define PPEP_MODEL_CPI_MODEL_HPP

#include "ppep/sim/events.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::model {

/** CPI decomposition measured during one interval at one frequency. */
struct CpiSample
{
    double cpi = 0.0;  ///< total cycles per instruction
    double mcpi = 0.0; ///< memory (MAB-wait) cycles per instruction

    /** Core CPI: the frequency-invariant cycle component. */
    double ccpi() const { return cpi - mcpi; }
};

/** The Eq. 1 predictor. Stateless — all methods are pure. */
class CpiModel
{
  public:
    /**
     * The Eq. 1 arithmetic on raw decomposition terms:
     * CPI(f') = CCPI + MCPI * f'/f. Single source of the evaluation
     * order — predictCpi() and the batched exploration kernel both
     * call this, which is what makes the batched sweep bit-identical
     * to the scalar path (same operations, same rounding).
     */
    static double predictCpiTerms(double ccpi, double mcpi,
                                  double f_current, double f_target)
    {
        return ccpi + mcpi * f_target / f_current;
    }

    /**
     * Extract a CpiSample from raw event counts (E10/E11/E12).
     *
     * Returns the zero sample — the defined idle/corrupt sentinel —
     * when no instructions retired, when any input is NaN, or when
     * the set is internally inconsistent (instructions retired with
     * zero or negative cycles, negative MAB-wait cycles). Callers
     * can rely on a non-zero result having cpi > 0 and mcpi >= 0.
     */
    static CpiSample fromEvents(const sim::EventVector &events) PPEP_NONBLOCKING;

    /** Eq. 1: CPI at @p f_target given a sample taken at @p f_current. */
    static double predictCpi(const CpiSample &sample, double f_current,
                             double f_target) PPEP_NONBLOCKING;

    /** MCPI at @p f_target (memory wall-time constant, cycles scale). */
    static double predictMcpi(const CpiSample &sample, double f_current,
                              double f_target) PPEP_NONBLOCKING;

    /**
     * Instructions per second at @p f_target predicted from a sample
     * taken at @p f_current.
     */
    static double predictIps(const CpiSample &sample, double f_current,
                             double f_target) PPEP_NONBLOCKING;

    /**
     * Predicted speedup of moving f_current -> f_target (ratio of
     * instruction rates; > 1 means faster).
     */
    static double predictSpeedup(const CpiSample &sample, double f_current,
                                 double f_target) PPEP_NONBLOCKING;
};

} // namespace ppep::model

#endif // PPEP_MODEL_CPI_MODEL_HPP
