/**
 * @file
 * The PPEP framework facade (paper Fig. 5).
 *
 * One object bundles the four trained components — CPI predictor, idle
 * power model, dynamic power model, hardware event predictor — plus the
 * PG-aware idle decomposition, and exposes the Fig. 5 pipeline: feed in
 * one interval's observations (PMC counts, VF state, temperature) and get
 * back predicted performance, power, and energy at *every* VF state, for
 * the chip and per core. DVFS policies (ppep::governor) consume these
 * predictions to act in a single step.
 *
 * The full-table sweep runs on the batched VF×core kernel
 * (explore_kernel.hpp): a branch-free data-parallel pass over the
 * precomputed per-VF plan, bit-identical to the scalar reference path
 * that exploreScalarInto() retains for differential testing.
 */

#ifndef PPEP_MODEL_PPEP_HPP
#define PPEP_MODEL_PPEP_HPP

#include <cstddef>
#include <vector>

#include "ppep/model/chip_power_model.hpp"
#include "ppep/model/explore_kernel.hpp"
#include "ppep/model/pg_idle_model.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::model {

/** Per-core performance/power prediction at one VF state. */
struct CorePpe
{
    double cpi = 0.0;       ///< predicted CPI
    double ips = 0.0;       ///< predicted instructions/second
    double dynamic_w = 0.0; ///< predicted dynamic power, watts
    bool busy = false;      ///< whether the core had work
};

/** Chip-level prediction at one VF state (global DVFS). */
struct VfPrediction
{
    std::size_t vf_index = 0;
    double chip_power_w = 0.0;
    double idle_w = 0.0;
    double dynamic_w = 0.0;
    /** Summed predicted instruction rate over busy cores. */
    double total_ips = 0.0;
    /** Energy per instruction, J — the fixed-work energy metric. */
    double energy_per_inst = 0.0;
    /** Energy-delay product per instruction^2, J*s — fixed-work EDP. */
    double edp_per_inst = 0.0;
    std::vector<CorePpe> cores;
};

/** Prediction for a per-CU VF assignment (the capping use case). */
struct AssignmentPrediction
{
    double chip_power_w = 0.0;
    double idle_w = 0.0;
    double dynamic_w = 0.0;
    double total_ips = 0.0;
    std::vector<CorePpe> cores;
};

/**
 * Caller-owned scratch for the allocation-free exploration path. Holds
 * the per-core observation buffer and the batched kernel's core×VF
 * result matrices that explore() would otherwise allocate every
 * interval; reuse one instance per control loop and the steady-state
 * sweep performs no heap allocation at all.
 */
struct ExploreScratch
{
    std::vector<CoreObservation> obs;
    ExploreWorkspace ws;
};

/** The assembled PPEP predictor. */
class Ppep
{
  public:
    /**
     * @param cfg   chip description (topology + VF table).
     * @param power trained idle+dynamic chip power model.
     * @param pg    trained PG idle decomposition; pass an untrained model
     *              for chips without PG (global predictions still work).
     */
    Ppep(const sim::ChipConfig &cfg, ChipPowerModel power,
         PgIdleModel pg);

    /**
     * The Fig. 5 pipeline for global DVFS: predictions at every VF state
     * for the workload captured in @p rec.
     */
    std::vector<VfPrediction>
    explore(const trace::IntervalRecord &rec) const;

    /**
     * explore() into a caller-owned buffer, reusing its allocations.
     * A governor calling this every 200 ms interval with the same buffer
     * performs no heap allocation after the first call apart from the
     * scratch buffers; pass an ExploreScratch as well to eliminate
     * those too.
     */
    void exploreInto(const trace::IntervalRecord &rec,
                     std::vector<VfPrediction> &out) const;

    /**
     * The fully allocation-free exploration: every buffer —
     * predictions, per-core observations, kernel matrices — is
     * caller-owned and reused across calls. This is the steady-state
     * governing path; it runs the batched VF×core kernel.
     */
    void exploreInto(const trace::IntervalRecord &rec,
                     std::vector<VfPrediction> &out,
                     ExploreScratch &scratch) const PPEP_NONBLOCKING;

    /**
     * The scalar reference exploration: the original per-VF
     * predictAt() loop, kept as the golden baseline the batched kernel
     * is differentially tested (bit-identical) and benchmarked
     * against. Semantically interchangeable with exploreInto().
     */
    void exploreScalarInto(const trace::IntervalRecord &rec,
                           std::vector<VfPrediction> &out,
                           ExploreScratch &scratch) const PPEP_NONBLOCKING;

    /** Prediction at one VF state (global DVFS). */
    VfPrediction predictVf(const trace::IntervalRecord &rec,
                           std::size_t target_vf) const;

    /**
     * Prediction for a per-CU VF assignment, assuming per-CU voltage
     * planes (the Sec. V-B capping assumption) and using the PG-aware
     * idle decomposition. @pre the PG model is trained.
     */
    AssignmentPrediction
    predictAssignment(const trace::IntervalRecord &rec,
                      const std::vector<std::size_t> &cu_vf,
                      bool pg_enabled) const;

    /** Underlying chip power model. */
    const ChipPowerModel &powerModel() const { return power_; }

    /** Underlying PG idle decomposition. */
    const PgIdleModel &pgModel() const { return pg_; }

    /** VF table in use. */
    const sim::VfTable &vfTable() const { return cfg_.vf_table; }

    /** The precomputed per-VF exploration plan (read-only). */
    const ExplorePlan &plan() const { return plan_; }

  private:
    /** predictVf() into an existing prediction, reusing its buffers. */
    void predictVfInto(const trace::IntervalRecord &rec,
                       const std::vector<CoreObservation> &obs,
                       std::size_t target_vf,
                       VfPrediction &out) const PPEP_NONBLOCKING;

    /** Shared front half of the sweep: per-core observations. */
    void observeCores(const trace::IntervalRecord &rec,
                      std::vector<CoreObservation> &obs) const
        PPEP_NONBLOCKING;

    sim::ChipConfig cfg_;
    ChipPowerModel power_;
    PgIdleModel pg_;
    ExplorePlan plan_;
};

} // namespace ppep::model

#endif // PPEP_MODEL_PPEP_HPP
