#include "ppep/model/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "ppep/math/polynomial.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/logging.hpp"
#include "ppep/workloads/microbench.hpp"

namespace ppep::model {

Trainer::Trainer(sim::ChipConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), seed_(seed)
{
}

sim::Chip
Trainer::makeChip(std::uint64_t stream) const
{
    return sim::Chip(cfg_, seed_ * 0x100000001b3ULL + stream);
}

CoolingTrace
Trainer::collectCoolingTrace(std::size_t vf_index,
                             std::size_t heat_intervals,
                             std::size_t cool_intervals) const
{
    sim::Chip chip = makeChip(0x1000 + vf_index);
    chip.setAllVf(vf_index);
    // PG stays disabled: the idle model describes the active-idle chip.

    CoolingTrace out;
    trace::Collector col(chip);

    // Heat: heavy work on every core (the paper heats at full tilt, then
    // switches to the VF state under study to cool).
    for (std::size_t c = 0; c < cfg_.coreCount(); ++c)
        chip.setJob(c, workloads::makeHeater());
    for (std::size_t i = 0; i < heat_intervals; ++i) {
        const auto rec = col.collectInterval();
        out.power_curve_w.push_back(rec.sensor_power_w);
        out.temp_curve_k.push_back(rec.diode_temp_k);
    }

    // Cool: stop all work, record (V, T, P) while temperature decays.
    for (std::size_t c = 0; c < cfg_.coreCount(); ++c)
        chip.clearJob(c);
    out.cool_start = out.power_curve_w.size();
    const double voltage = cfg_.vf_table.state(vf_index).voltage;
    for (std::size_t i = 0; i < cool_intervals; ++i) {
        const auto rec = col.collectInterval();
        out.power_curve_w.push_back(rec.sensor_power_w);
        out.temp_curve_k.push_back(rec.diode_temp_k);
        out.idle_samples.push_back(
            {voltage, rec.diode_temp_k, rec.sensor_power_w});
    }
    return out;
}

IdlePowerModel
Trainer::trainIdle() const
{
    std::vector<IdleSample> samples;
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
        const CoolingTrace trace = collectCoolingTrace(vf);
        samples.insert(samples.end(), trace.idle_samples.begin(),
                       trace.idle_samples.end());
    }
    return IdlePowerModel::train(samples);
}

double
Trainer::estimateAlpha(const IdlePowerModel &idle) const
{
    std::vector<double> log_v, log_e;
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
        sim::Chip chip = makeChip(0x2000 + vf);
        chip.setAllVf(vf);
        chip.setTemperatureK(cfg_.thermal.ambient_k + 18.0);
        for (std::size_t c = 0; c < cfg_.coreCount(); ++c)
            chip.setJob(c, workloads::makeHeater());

        trace::Collector col(chip);
        col.collect(25); // settle rates and temperature drift
        const auto recs = col.collect(20);

        double power = 0.0, temp = 0.0, uops = 0.0;
        for (const auto &rec : recs) {
            power += rec.sensor_power_w;
            temp += rec.diode_temp_k;
            uops += rec.pmcTotal(sim::Event::RetiredUop) /
                    rec.duration_s;
        }
        const double n = static_cast<double>(recs.size());
        power /= n;
        temp /= n;
        uops /= n;

        const double voltage = cfg_.vf_table.state(vf).voltage;
        const double dyn = power - idle.predict(voltage, temp);
        PPEP_ASSERT(dyn > 0.0 && uops > 0.0,
                    "alpha calibration found no dynamic power at VF ", vf);
        log_v.push_back(std::log(voltage));
        log_e.push_back(std::log(dyn / uops));
    }
    const auto line = math::Polynomial::fit(log_v, log_e, 1);
    const double alpha = line.coefficients()[1];
    PPEP_ASSERT(alpha > 0.5 && alpha < 5.0,
                "implausible alpha estimate ", alpha);
    return alpha;
}

std::vector<PgSweepMeasurement>
Trainer::collectPgSweeps() const
{
    PPEP_ASSERT(cfg_.pg_supported, "chip has no power gating");
    std::vector<PgSweepMeasurement> sweeps;
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
        PgSweepMeasurement m;
        m.vf_index = vf;
        for (const bool pg : {false, true}) {
            for (std::size_t k = 0; k <= cfg_.n_cus; ++k) {
                sim::Chip chip =
                    makeChip(0x3000 + vf * 64 + k * 2 + (pg ? 1 : 0));
                chip.setAllVf(vf);
                chip.setPowerGatingEnabled(pg);
                // Keep thermal context comparable across the sweep: the
                // paper measures back-to-back on a warm part.
                chip.setTemperatureK(cfg_.thermal.ambient_k + 16.0);
                // k busy CUs, one bench_A instance on each CU's core 0.
                for (std::size_t cu = 0; cu < k; ++cu)
                    chip.setJob(cu * cfg_.cores_per_cu,
                                workloads::makeBenchA());
                trace::Collector col(chip);
                col.collect(5); // settle
                const auto recs = col.collect(10);
                double power = 0.0;
                for (const auto &rec : recs)
                    power += rec.sensor_power_w;
                power /= static_cast<double>(recs.size());
                (pg ? m.power_pg_on : m.power_pg_off).push_back(power);
            }
        }
        sweeps.push_back(std::move(m));
    }
    return sweeps;
}

PgIdleModel
Trainer::trainPg() const
{
    return PgIdleModel::fromSweeps(collectPgSweeps(), cfg_.n_cus);
}

ComboTrace
Trainer::collectCombo(const workloads::Combination &combo,
                      std::size_t vf_index,
                      std::size_t max_intervals) const
{
    sim::Chip chip = makeChip(
        0x4000 + std::hash<std::string>{}(combo.name) * 8 + vf_index);
    chip.setAllVf(vf_index);
    // Benchmarks start on a part that has been running the harness:
    // moderately warm, then free-running thermals.
    chip.setTemperatureK(cfg_.thermal.ambient_k + 12.0);
    workloads::launch(chip, combo, /*looping=*/false);

    ComboTrace out;
    out.combo = &combo;
    out.vf_index = vf_index;
    trace::Collector col(chip);
    auto recs = col.collectUntilFinished(max_intervals);
    // Drop fully idle tails (the last interval can be all-idle when the
    // final job ends exactly on an interval boundary).
    while (!recs.empty() && recs.back().busy_cores == 0)
        recs.pop_back();
    PPEP_ASSERT(!recs.empty(), "combo '", combo.name,
                "' produced no busy intervals");
    out.recs = std::move(recs);
    return out;
}

std::vector<ComboTrace>
Trainer::collectDataset(
    const std::vector<const workloads::Combination *> &combos,
    const std::vector<std::size_t> &vf_indices,
    std::size_t max_intervals) const
{
    std::vector<ComboTrace> out;
    out.reserve(combos.size() * vf_indices.size());
    for (const auto *combo : combos)
        for (std::size_t vf : vf_indices)
            out.push_back(collectCombo(*combo, vf, max_intervals));
    return out;
}

DynamicPowerModel
Trainer::trainDynamic(const IdlePowerModel &idle, double alpha,
                      const std::vector<const ComboTrace *> &traces) const
{
    const std::size_t top = cfg_.vf_table.top();
    const double v_top = cfg_.vf_table.state(top).voltage;

    std::vector<DynTrainingRow> rows;
    for (const auto *trace : traces) {
        if (trace->vf_index != top)
            continue;
        for (const auto &rec : trace->recs) {
            if (rec.busy_cores == 0)
                continue;
            DynTrainingRow row;
            row.rates_per_s = powerEventRates(rec.pmc, rec.duration_s);
            row.dynamic_power_w =
                rec.sensor_power_w -
                idle.predict(v_top, rec.diode_temp_k);
            rows.push_back(row);
        }
    }
    PPEP_ASSERT(!rows.empty(), "no top-VF training rows in dataset");
    return DynamicPowerModel::train(rows, v_top, alpha);
}

GreenGovernorsModel
Trainer::trainGg(const std::vector<const ComboTrace *> &traces) const
{
    std::vector<GgTrainingRow> rows;
    for (const auto *trace : traces) {
        const double v =
            cfg_.vf_table.state(trace->vf_index).voltage;
        for (const auto &rec : trace->recs) {
            if (rec.busy_cores == 0)
                continue;
            GgTrainingRow row;
            row.voltage = v;
            row.cycle_rate =
                rec.pmcTotal(sim::Event::ClocksNotHalted) /
                rec.duration_s;
            row.inst_rate = rec.pmcTotal(sim::Event::RetiredInst) /
                            rec.duration_s;
            row.power_w = rec.sensor_power_w;
            rows.push_back(row);
        }
    }
    return GreenGovernorsModel::train(rows);
}

TrainedModels
Trainer::trainAll(
    const std::vector<const workloads::Combination *> &combos,
    const std::vector<ComboTrace> *dataset) const
{
    TrainedModels out;
    out.idle = trainIdle();
    out.alpha = estimateAlpha(out.idle);
    if (cfg_.pg_supported)
        out.pg = trainPg();

    // Assemble the trace set: reuse matching dataset entries, collect
    // whatever is missing (top VF for Eq. 3; all VF states for GG).
    // Reserve up front so pointers into `collected` stay valid.
    std::vector<ComboTrace> collected;
    collected.reserve(combos.size() * cfg_.vf_table.size());
    std::vector<const ComboTrace *> selected;
    for (const auto *combo : combos) {
        for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
            const ComboTrace *found = nullptr;
            if (dataset) {
                for (const auto &t : *dataset) {
                    if (t.combo == combo && t.vf_index == vf) {
                        found = &t;
                        break;
                    }
                }
            }
            if (!found) {
                collected.push_back(collectCombo(*combo, vf));
                found = &collected.back();
            }
            selected.push_back(found);
        }
    }

    out.dynamic = trainDynamic(out.idle, out.alpha, selected);
    out.gg = trainGg(selected);
    out.chip = ChipPowerModel(out.idle, out.dynamic, cfg_.vf_table);
    return out;
}

} // namespace ppep::model
