#include "ppep/trace/interval.hpp"

namespace ppep::trace {

double
IntervalRecord::pmcTotal(sim::Event e) const
{
    double s = 0.0;
    for (const auto &core : pmc)
        s += core[sim::eventIndex(e)];
    return s;
}

double
IntervalRecord::oracleTotal(sim::Event e) const
{
    double s = 0.0;
    for (const auto &core : oracle)
        s += core[sim::eventIndex(e)];
    return s;
}

} // namespace ppep::trace
