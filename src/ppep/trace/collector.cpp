#include "ppep/trace/collector.hpp"

#include "ppep/util/logging.hpp"

namespace ppep::trace {

Collector::Collector(sim::Chip &chip) : chip_(chip) {}

IntervalRecord
Collector::collectInterval()
{
    IntervalRecord rec;
    collectIntervalInto(rec);
    return rec;
}

void
Collector::collectIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
{
    // The fused scalar path: identical to what a batched driver does
    // with the three calls, with the chip stepped in between.
    const std::size_t n_ticks = beginIntervalInto(rec);
    for (std::size_t t = 0; t < n_ticks; ++t) {
        chip_.stepInto(tick_);
        consumeTick(rec, tick_);
    }
    finishIntervalInto(rec);
}

std::size_t
Collector::beginIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
{
    const auto &cfg = chip_.config();
    const std::size_t n_cores = cfg.coreCount();
    interval_ticks_ = cfg.ticks_per_interval;

    rec.duration_s = cfg.tick_s * static_cast<double>(interval_ticks_);
    rec.sensor_power_w = 0.0;
    rec.diode_temp_k = 0.0;
    rec.true_power_w = 0.0;
    rec.true_dynamic_w = 0.0;
    rec.true_idle_w = 0.0;
    rec.true_nb_power_w = 0.0;
    rec.true_temp_k = 0.0;
    rec.nb_utilization = 0.0;
    rec.busy_cores = 0;
    // rt-escape: warm-up growth of the caller-owned record and member
    // scratch; no-ops once sized (test_zero_alloc).
    PPEP_RT_WARMUP_BEGIN
    rec.oracle.assign(n_cores, sim::EventVector{});
    rec.cu_vf.resize(cfg.n_cus);
    retired_.assign(n_cores, 0.0);
    PPEP_RT_WARMUP_END
    for (std::size_t cu = 0; cu < cfg.n_cus; ++cu)
        rec.cu_vf[cu] = chip_.cuVf(cu);
    rec.nb_vf = chip_.nbVf();
    return interval_ticks_;
}

void
Collector::consumeTick(IntervalRecord &rec,
                       const sim::TickResult &tick) PPEP_NONBLOCKING
{
    const std::size_t n_cores = chip_.config().coreCount();
    rec.sensor_power_w += tick.sensor_power_w;
    rec.diode_temp_k += tick.diode_temp_k;
    rec.true_power_w += tick.truth.power.total;
    rec.true_dynamic_w += tick.truth.power.coreDynamicTotal() +
                          tick.truth.power.nb_dynamic;
    rec.true_idle_w += tick.truth.power.base +
                       tick.truth.power.housekeeping +
                       tick.truth.power.nb_static +
                       tick.truth.power.cuIdleTotal();
    rec.true_nb_power_w += tick.truth.power.nb_static +
                           tick.truth.power.nb_dynamic;
    rec.true_temp_k += tick.truth.temperature_k;
    rec.nb_utilization += tick.truth.nb_utilization;
    for (std::size_t c = 0; c < n_cores; ++c) {
        for (std::size_t e = 0; e < sim::kNumEvents; ++e)
            rec.oracle[c][e] += tick.truth.core_events[c][e];
        retired_[c] += tick.truth.activity[c].instructions;
    }
}

void
Collector::finishIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
{
    const std::size_t n_cores = chip_.config().coreCount();
    const double inv = 1.0 / static_cast<double>(interval_ticks_);
    rec.sensor_power_w *= inv;
    rec.diode_temp_k *= inv;
    rec.true_power_w *= inv;
    rec.true_dynamic_w *= inv;
    rec.true_idle_w *= inv;
    rec.true_nb_power_w *= inv;
    rec.true_temp_k *= inv;
    rec.nb_utilization *= inv;

    // rt-escape: warm-up growth of the record's PMC vector.
    PPEP_RT_WARMUP_BEGIN
    rec.pmc.resize(n_cores);
    PPEP_RT_WARMUP_END
    for (std::size_t c = 0; c < n_cores; ++c) {
        rec.pmc[c] = chip_.readPmc(c);
        if (retired_[c] > 0.0)
            ++rec.busy_cores;
    }
}

std::vector<IntervalRecord>
Collector::collect(std::size_t n)
{
    std::vector<IntervalRecord> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(collectInterval());
    return out;
}

std::vector<IntervalRecord>
Collector::collectUntilFinished(std::size_t max_intervals)
{
    std::vector<IntervalRecord> out;
    while (out.size() < max_intervals && !allJobsFinished())
        out.push_back(collectInterval());
    return out;
}

bool
Collector::allJobsFinished() const
{
    for (std::size_t c = 0; c < chip_.config().coreCount(); ++c) {
        const sim::Job *j = chip_.job(c);
        if (j && !j->finished())
            return false;
    }
    return true;
}

} // namespace ppep::trace
