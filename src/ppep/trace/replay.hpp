/**
 * @file
 * Versioned, memory-mapped binary interval traces (record & replay).
 *
 * A replay file is the production ingest path: a governed run records
 * its interval stream once, and any number of later runs replay it —
 * driving the governor/telemetry pipeline with zero simulation and
 * zero per-interval allocation. The format is deliberately dumb:
 * fixed-stride little-endian records derived from trace::IntervalRecord
 * so a reader is a pointer bump plus field copies, never a parse.
 *
 * File layout (all integers little-endian, all fields 8-byte aligned):
 *
 *   FileHeader   (40 bytes)
 *     char     magic[8]        "PPEPTRC1"
 *     u32      version         kReplayVersion
 *     u32      byte_order      0x01020304 as written by the recorder;
 *                              a swapped value means the file crossed
 *                              an endianness boundary and is rejected
 *     u32      n_streams
 *     u32      reserved        0
 *     u64      file_bytes      total file size (truncation check)
 *     u64      toc_checksum    FNV-1a over the stream table bytes
 *   StreamEntry × n_streams (96 bytes each)
 *     char     name[40]        NUL-padded session name
 *     u64      fingerprint     runtime::platformFingerprint of the
 *                              recorded chip config — a trace can
 *                              never be replayed against wrong silicon
 *     u64      frame_offset    byte offset of the stream's first frame
 *     u64      frame_count
 *     u64      frame_stride    bytes per frame
 *     u64      payload_checksum FNV-1a over the stream's frame bytes
 *     u32      n_cores
 *     u32      n_cus
 *     u32      flags           bit 0: frames carry a health block
 *     u32      reserved        0
 *   frames, per stream, contiguous
 *
 * Frame layout (frame_stride = 8 × n_fields):
 *     f64 time_s, cap_w                       (telemetry context)
 *     f64 duration_s, sensor_power_w, diode_temp_k
 *     f64 true_power_w, true_dynamic_w, true_idle_w,
 *         true_nb_power_w, true_temp_k, nb_utilization
 *     f64 nb_vf.voltage, nb_vf.freq_ghz
 *     u64 busy_cores
 *     u64 cu_vf[n_cus]
 *     f64 pmc[n_cores][kNumEvents]
 *     f64 oracle[n_cores][kNumEvents]
 *     u64 health[11]                          (iff flags bit 0)
 *
 * The health block mirrors the digest-relevant counters of the
 * runtime Sampler's SampleHealth; the trace layer cannot depend on
 * runtime, so ReplayHealth is an independent POD with the same
 * meaning. Injector-side fault tallies are deliberately not stored:
 * they describe the simulated hardware, not the observed stream.
 */

#ifndef PPEP_TRACE_REPLAY_HPP
#define PPEP_TRACE_REPLAY_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ppep/trace/collector.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::trace {

/** On-disk format version written and accepted by this build. */
inline constexpr std::uint32_t kReplayVersion = 1;

/**
 * Digest-relevant acquisition-health counters for one interval, as
 * recorded in a replay frame. Field meanings match the runtime
 * Sampler's SampleHealth exactly (see sampler.hpp); the runtime layer
 * reconstructs a SampleHealth from this when replaying a hardened
 * session's stream.
 */
struct ReplayHealth
{
    std::uint64_t msr_retries = 0;
    std::uint64_t msr_failed_cores = 0;
    std::uint64_t pmc_rejected_cores = 0;
    std::uint64_t substituted_cores = 0;
    std::uint64_t zeroed_cores = 0;
    std::uint64_t sensor_rejects = 0;
    std::uint64_t diode_rejects = 0;
    std::uint64_t ticks = 0;
    bool timing_overrun = false;
    std::uint64_t pmc_wrap_events = 0;
    std::uint64_t total_fault_events = 0;

    /** Fault-relevant events this interval (health-policy input). */
    std::uint64_t faultEvents() const
    {
        return msr_retries + msr_failed_cores + pmc_rejected_cores +
               substituted_cores + zeroed_cores + sensor_rejects +
               diode_rejects + (timing_overrun ? 1ULL : 0ULL);
    }
};

/**
 * Accumulates one session's interval stream as encoded frame bytes.
 *
 * The builder buffers in memory so a multi-session fleet can record
 * from its worker pool without interleaving writes: each session owns
 * a builder, and writeReplayFile() assembles the streams into one
 * file after the run. Recording is not a hot path — it happens at
 * simulation speed, and a recorded interval is ~2 KB.
 */
class ReplayStreamBuilder
{
  public:
    /**
     * @param name        session name stored in the stream table
     *                    (truncated to 39 bytes).
     * @param fingerprint runtime::platformFingerprint of the chip
     *                    config the stream was recorded on.
     * @param with_health true when frames carry a health block
     *                    (hardened sessions).
     */
    ReplayStreamBuilder(std::string name, std::uint64_t fingerprint,
                        std::size_t n_cores, std::size_t n_cus,
                        bool with_health);

    /**
     * Append one interval. @p health must be non-null exactly when
     * the builder was constructed with_health.
     */
    void addFrame(double time_s, double cap_w, const IntervalRecord &rec,
                  const ReplayHealth *health);

    const std::string &name() const { return name_; }
    std::uint64_t fingerprint() const { return fingerprint_; }
    std::size_t nCores() const { return n_cores_; }
    std::size_t nCus() const { return n_cus_; }
    bool withHealth() const { return with_health_; }
    std::size_t frameCount() const { return frame_count_; }
    std::size_t frameStride() const { return stride_; }
    const std::vector<unsigned char> &bytes() const { return bytes_; }

    /** Frame stride in bytes for the given stream shape. */
    static std::size_t strideFor(std::size_t n_cores, std::size_t n_cus,
                                 bool with_health);

  private:
    std::string name_;
    std::uint64_t fingerprint_;
    std::size_t n_cores_;
    std::size_t n_cus_;
    bool with_health_;
    std::size_t stride_;
    std::size_t frame_count_ = 0;
    std::vector<unsigned char> bytes_;
};

/**
 * Assemble the given streams into one replay file at @p path
 * (POSIX write; the previous file, if any, is replaced). Fatal on
 * I/O failure.
 */
void writeReplayFile(const std::string &path,
                     const std::vector<const ReplayStreamBuilder *> &streams);

/**
 * A memory-mapped replay file, validated eagerly on open: magic,
 * version, byte order, declared size vs actual size, and every
 * stream's FNV-1a payload checksum are checked before the first
 * frame is served. A truncated, corrupt, or foreign file is rejected
 * with a clear fatal diagnostic — never replayed partially.
 */
class ReplayFile
{
  public:
    /** One validated stream inside the mapping. */
    struct Stream
    {
        std::string name;
        std::uint64_t fingerprint = 0;
        std::size_t frame_count = 0;
        std::size_t frame_stride = 0;
        std::size_t n_cores = 0;
        std::size_t n_cus = 0;
        bool with_health = false;
        const unsigned char *frames = nullptr;
    };

    explicit ReplayFile(const std::string &path);
    ~ReplayFile();

    ReplayFile(const ReplayFile &) = delete;
    ReplayFile &operator=(const ReplayFile &) = delete;

    const std::string &path() const { return path_; }
    std::size_t streamCount() const { return streams_.size(); }
    const Stream &stream(std::size_t i) const;

    /** Stream with the given recorded name, or null. */
    const Stream *findStream(std::string_view name) const;

  private:
    std::string path_;
    int fd_ = -1;
    void *map_ = nullptr;
    std::size_t map_len_ = 0;
    std::vector<Stream> streams_;
};

/**
 * IntervalSource that serves a recorded stream from the mapping —
 * the zero-simulation, zero-allocation ingest path. The warm read
 * loop is a pointer bump plus fixed-size field copies; no syscalls,
 * no locks, no heap.
 *
 * Construction re-checks the stream's platform fingerprint against
 * the caller's expectation (fatal on mismatch), so a trace recorded
 * on one silicon revision can never govern another.
 */
class ReplaySource final : public IntervalSource
{
  public:
    /**
     * @param expected_fingerprint runtime::platformFingerprint of the
     *        chip config the replayed session is configured with.
     */
    ReplaySource(const ReplayFile &file, std::size_t stream_index,
                 std::uint64_t expected_fingerprint);

    std::size_t frameCount() const { return stream_.frame_count; }
    std::size_t framesConsumed() const { return next_; }
    bool done() const { return next_ >= stream_.frame_count; }

    /** Rewind to the first frame (replay the stream again). */
    void rewind() { next_ = 0; }

    /** Allocating convenience wrapper around collectIntervalInto. */
    IntervalRecord collectInterval() override;

    /** Decode the next frame into @p rec; fatal past the end. */
    void collectIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
        override;

    // Context of the most recently decoded frame.
    double frameTimeS() const { return time_s_; }
    double frameCapW() const { return cap_w_; }
    bool hasHealth() const { return stream_.with_health; }
    const ReplayHealth &frameHealth() const { return health_; }

  private:
    const ReplayFile::Stream &stream_;
    std::size_t next_ = 0;
    double time_s_ = 0.0;
    double cap_w_ = 0.0;
    ReplayHealth health_{};
};

} // namespace ppep::trace

#endif // PPEP_TRACE_REPLAY_HPP
