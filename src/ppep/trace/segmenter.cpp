#include "ppep/trace/segmenter.hpp"

#include <algorithm>

#include "ppep/util/logging.hpp"

namespace ppep::trace {

InstructionTimeline::InstructionTimeline(
    const std::vector<IntervalRecord> &trace, std::size_t core,
    bool use_pmc)
{
    cum_inst_.push_back(0.0);
    cum_cycles_.push_back(0.0);
    cum_mab_.push_back(0.0);
    for (const auto &rec : trace) {
        PPEP_ASSERT(core < rec.oracle.size(), "core index out of range");
        const sim::EventVector &ev =
            use_pmc ? rec.pmc[core] : rec.oracle[core];
        const double inst = ev[sim::eventIndex(sim::Event::RetiredInst)];
        const double cyc =
            ev[sim::eventIndex(sim::Event::ClocksNotHalted)];
        const double mab =
            ev[sim::eventIndex(sim::Event::MabWaitCycles)];
        if (inst <= 0.0)
            continue;
        cum_inst_.push_back(cum_inst_.back() + inst);
        cum_cycles_.push_back(cum_cycles_.back() + cyc);
        cum_mab_.push_back(cum_mab_.back() + mab);
    }
}

double
InstructionTimeline::totalInstructions() const
{
    return cum_inst_.back();
}

double
InstructionTimeline::interp(const std::vector<double> &ys,
                            double instructions) const
{
    PPEP_ASSERT(instructions >= 0.0, "negative instruction point");
    if (instructions >= cum_inst_.back())
        return ys.back();
    // Find the first boundary >= the query point.
    const auto it = std::lower_bound(cum_inst_.begin(), cum_inst_.end(),
                                     instructions);
    const std::size_t hi = static_cast<std::size_t>(
        std::distance(cum_inst_.begin(), it));
    if (hi == 0)
        return ys.front();
    const std::size_t lo = hi - 1;
    const double span = cum_inst_[hi] - cum_inst_[lo];
    const double frac =
        span > 0.0 ? (instructions - cum_inst_[lo]) / span : 0.0;
    return ys[lo] + frac * (ys[hi] - ys[lo]);
}

double
InstructionTimeline::cyclesAt(double instructions) const
{
    return interp(cum_cycles_, instructions);
}

double
InstructionTimeline::mabCyclesAt(double instructions) const
{
    return interp(cum_mab_, instructions);
}

std::vector<Segment>
segmentTimeline(const InstructionTimeline &timeline,
                double segment_instructions)
{
    PPEP_ASSERT(segment_instructions > 0.0,
                "segment width must be positive");
    std::vector<Segment> out;
    const double total = timeline.totalInstructions();
    double start = 0.0;
    while (start + segment_instructions <= total) {
        const double end = start + segment_instructions;
        Segment s;
        s.instructions = segment_instructions;
        s.cycles = timeline.cyclesAt(end) - timeline.cyclesAt(start);
        s.mab_cycles =
            timeline.mabCyclesAt(end) - timeline.mabCyclesAt(start);
        out.push_back(s);
        start = end;
    }
    return out;
}

} // namespace ppep::trace
