/**
 * @file
 * Per-interval records: everything PPEP observes in one 200 ms DVFS
 * decision interval, plus ground truth for validation.
 *
 * The paper takes a power reading every 20 ms and uses ten readings per
 * 200 ms interval, averaging them as the interval's power; performance
 * counters are read once per interval (with multiplexed extrapolation).
 */

#ifndef PPEP_TRACE_INTERVAL_HPP
#define PPEP_TRACE_INTERVAL_HPP

#include <cstddef>
#include <vector>

#include "ppep/sim/events.hpp"
#include "ppep/sim/vf_state.hpp"

namespace ppep::trace {

/** One 200 ms interval of observations (+ truth for validation). */
struct IntervalRecord
{
    /** Interval length, seconds. */
    double duration_s = 0.0;

    // --- observable by software (model inputs) --------------------------
    /** Per-core multiplexed-and-extrapolated PMC counts. */
    std::vector<sim::EventVector> pmc;
    /** Mean sensor power over the interval's samples, watts. */
    double sensor_power_w = 0.0;
    /** Mean thermal-diode reading, kelvin. */
    double diode_temp_k = 0.0;
    /** Requested VF index per CU at collection time. */
    std::vector<std::size_t> cu_vf;
    /** NB operating point at collection time. */
    sim::VfState nb_vf{};

    // --- ground truth (validation only) ---------------------------------
    /** Per-core true event counts (no multiplexing). */
    std::vector<sim::EventVector> oracle;
    /** Mean true total power, watts. */
    double true_power_w = 0.0;
    /** Mean true dynamic power (core switched + NB access energy). */
    double true_dynamic_w = 0.0;
    /** Mean true idle power (base + housekeeping + statics). */
    double true_idle_w = 0.0;
    /** Mean true NB power (static + dynamic). */
    double true_nb_power_w = 0.0;
    /** Mean true junction temperature, kelvin. */
    double true_temp_k = 0.0;
    /** Mean DRAM utilisation. */
    double nb_utilization = 0.0;
    /** Number of cores that retired instructions this interval. */
    std::size_t busy_cores = 0;

    /** Summed PMC counts across cores for one event. */
    double pmcTotal(sim::Event e) const;
    /** Summed oracle counts across cores for one event. */
    double oracleTotal(sim::Event e) const;
};

} // namespace ppep::trace

#endif // PPEP_TRACE_INTERVAL_HPP
