/**
 * @file
 * Replay file encoding, validation, and the mmap'd frame reader.
 *
 * I/O discipline: this file is on the hot-path lint wall, so all file
 * access is raw POSIX (open/write/mmap) — no iostreams, no stdio. The
 * writer and validator run cold (once per run); only
 * ReplaySource::collectIntervalInto is warm, and it touches nothing
 * but the mapping.
 */

#include "ppep/trace/replay.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "ppep/sim/events.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::trace {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'E', 'P', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kByteOrderMark = 0x01020304u;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kStreamEntryBytes = 96;
constexpr std::size_t kNameBytes = 40;
constexpr std::uint32_t kFlagHasHealth = 1u;

/** FNV-1a over a byte range (same constants as runtime::fnv1a). */
std::uint64_t
fnv1aBytes(const unsigned char *p, std::size_t n)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

double
loadF64(const unsigned char *p) PPEP_NONBLOCKING
{
    double v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
loadU64(const unsigned char *p) PPEP_NONBLOCKING
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t
loadU32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

void
appendBytes(std::vector<unsigned char> &out, const void *src,
            std::size_t n)
{
    const auto *b = static_cast<const unsigned char *>(src);
    out.insert(out.end(), b, b + n);
}

void
appendF64(std::vector<unsigned char> &out, double v)
{
    appendBytes(out, &v, sizeof(v));
}

void
appendU64(std::vector<unsigned char> &out, std::uint64_t v)
{
    appendBytes(out, &v, sizeof(v));
}

void
appendU32(std::vector<unsigned char> &out, std::uint32_t v)
{
    appendBytes(out, &v, sizeof(v));
}

/** write(2) the whole buffer, retrying on EINTR/short writes. */
void
writeAll(int fd, const unsigned char *p, std::size_t n,
         const std::string &path)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            PPEP_FATAL("replay: write to ", path, " failed: ",
                       std::strerror(errno));
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

} // namespace

// --- ReplayStreamBuilder -------------------------------------------------

std::size_t
ReplayStreamBuilder::strideFor(std::size_t n_cores, std::size_t n_cus,
                               bool with_health)
{
    // 13 f64 context/record scalars + busy_cores.
    std::size_t fields = 14 + n_cus + 2 * n_cores * sim::kNumEvents;
    if (with_health)
        fields += 11;
    return 8 * fields;
}

ReplayStreamBuilder::ReplayStreamBuilder(std::string name,
                                         std::uint64_t fingerprint,
                                         std::size_t n_cores,
                                         std::size_t n_cus,
                                         bool with_health)
    : name_(std::move(name)), fingerprint_(fingerprint),
      n_cores_(n_cores), n_cus_(n_cus), with_health_(with_health),
      stride_(strideFor(n_cores, n_cus, with_health))
{
    PPEP_ASSERT(n_cores_ > 0 && n_cus_ > 0,
                "replay stream needs a non-empty core topology");
}

void
ReplayStreamBuilder::addFrame(double time_s, double cap_w,
                              const IntervalRecord &rec,
                              const ReplayHealth *health)
{
    PPEP_ASSERT(rec.cu_vf.size() == n_cus_,
                "record CU count does not match the stream shape");
    PPEP_ASSERT(rec.pmc.size() == n_cores_ &&
                    rec.oracle.size() == n_cores_,
                "record core count does not match the stream shape");
    PPEP_ASSERT((health != nullptr) == with_health_,
                "health block presence must match the stream flags");

    // No reserve here: an exact-size reserve would pin capacity to the
    // current length and force a full copy per frame (quadratic over a
    // long recording); the vector's geometric growth is what we want.
    appendF64(bytes_, time_s);
    appendF64(bytes_, cap_w);
    appendF64(bytes_, rec.duration_s);
    appendF64(bytes_, rec.sensor_power_w);
    appendF64(bytes_, rec.diode_temp_k);
    appendF64(bytes_, rec.true_power_w);
    appendF64(bytes_, rec.true_dynamic_w);
    appendF64(bytes_, rec.true_idle_w);
    appendF64(bytes_, rec.true_nb_power_w);
    appendF64(bytes_, rec.true_temp_k);
    appendF64(bytes_, rec.nb_utilization);
    appendF64(bytes_, rec.nb_vf.voltage);
    appendF64(bytes_, rec.nb_vf.freq_ghz);
    appendU64(bytes_, static_cast<std::uint64_t>(rec.busy_cores));
    for (std::size_t v : rec.cu_vf)
        appendU64(bytes_, static_cast<std::uint64_t>(v));
    for (const auto &core : rec.pmc)
        for (double e : core)
            appendF64(bytes_, e);
    for (const auto &core : rec.oracle)
        for (double e : core)
            appendF64(bytes_, e);
    if (with_health_) {
        appendU64(bytes_, health->msr_retries);
        appendU64(bytes_, health->msr_failed_cores);
        appendU64(bytes_, health->pmc_rejected_cores);
        appendU64(bytes_, health->substituted_cores);
        appendU64(bytes_, health->zeroed_cores);
        appendU64(bytes_, health->sensor_rejects);
        appendU64(bytes_, health->diode_rejects);
        appendU64(bytes_, health->ticks);
        appendU64(bytes_, health->timing_overrun ? 1ULL : 0ULL);
        appendU64(bytes_, health->pmc_wrap_events);
        appendU64(bytes_, health->total_fault_events);
    }
    ++frame_count_;
}

// --- writeReplayFile -----------------------------------------------------

void
writeReplayFile(const std::string &path,
                const std::vector<const ReplayStreamBuilder *> &streams)
{
    // Stream table first so the header can carry its checksum.
    std::vector<unsigned char> toc;
    toc.reserve(streams.size() * kStreamEntryBytes);
    std::uint64_t offset = static_cast<std::uint64_t>(
        kHeaderBytes + streams.size() * kStreamEntryBytes);
    for (const ReplayStreamBuilder *s : streams) {
        PPEP_ASSERT(s != nullptr, "null stream handed to the writer");
        char name[kNameBytes] = {};
        const std::size_t n =
            s->name().size() < kNameBytes - 1 ? s->name().size()
                                              : kNameBytes - 1;
        std::memcpy(name, s->name().data(), n);
        appendBytes(toc, name, kNameBytes);
        appendU64(toc, s->fingerprint());
        appendU64(toc, offset);
        appendU64(toc, static_cast<std::uint64_t>(s->frameCount()));
        appendU64(toc, static_cast<std::uint64_t>(s->frameStride()));
        appendU64(toc, fnv1aBytes(s->bytes().data(), s->bytes().size()));
        appendU32(toc, static_cast<std::uint32_t>(s->nCores()));
        appendU32(toc, static_cast<std::uint32_t>(s->nCus()));
        appendU32(toc, s->withHealth() ? kFlagHasHealth : 0u);
        appendU32(toc, 0u);
        offset += s->bytes().size();
    }

    std::vector<unsigned char> head;
    head.reserve(kHeaderBytes);
    appendBytes(head, kMagic, sizeof(kMagic));
    appendU32(head, kReplayVersion);
    appendU32(head, kByteOrderMark);
    appendU32(head, static_cast<std::uint32_t>(streams.size()));
    appendU32(head, 0u);
    appendU64(head, offset); // total file bytes
    appendU64(head, fnv1aBytes(toc.data(), toc.size()));

    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        PPEP_FATAL("replay: cannot create ", path, ": ",
                   std::strerror(errno));
    writeAll(fd, head.data(), head.size(), path);
    writeAll(fd, toc.data(), toc.size(), path);
    for (const ReplayStreamBuilder *s : streams)
        writeAll(fd, s->bytes().data(), s->bytes().size(), path);
    if (::close(fd) != 0)
        PPEP_FATAL("replay: closing ", path, " failed: ",
                   std::strerror(errno));
}

// --- ReplayFile ----------------------------------------------------------

ReplayFile::ReplayFile(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        PPEP_FATAL("replay: cannot open ", path, ": ",
                   std::strerror(errno));
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        PPEP_FATAL("replay: cannot stat ", path, ": ",
                   std::strerror(errno));
    if (st.st_size < 0 ||
        static_cast<std::size_t>(st.st_size) < kHeaderBytes)
        PPEP_FATAL("replay: ", path, " is truncated (", st.st_size,
                   " bytes — smaller than the file header)");
    map_len_ = static_cast<std::size_t>(st.st_size);
    void *m = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (m == MAP_FAILED)
        PPEP_FATAL("replay: cannot map ", path, ": ",
                   std::strerror(errno));
    map_ = m;

    const auto *p = static_cast<const unsigned char *>(map_);
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
        PPEP_FATAL("replay: ", path,
                   " is not a PPEP replay file (bad magic)");
    const std::uint32_t version = loadU32(p + 8);
    if (version != kReplayVersion)
        PPEP_FATAL("replay: ", path, " is format version ", version,
                   "; this build reads version ", kReplayVersion);
    if (loadU32(p + 12) != kByteOrderMark)
        PPEP_FATAL("replay: ", path,
                   " was recorded with an incompatible byte order");
    const std::uint32_t n_streams = loadU32(p + 16);
    const std::uint64_t declared = loadU64(p + 24);
    if (declared != map_len_)
        PPEP_FATAL("replay: ", path, " is truncated or padded (header "
                   "declares ", declared, " bytes, file has ", map_len_,
                   ")");
    const std::size_t toc_end =
        kHeaderBytes + std::size_t{n_streams} * kStreamEntryBytes;
    if (toc_end > map_len_)
        PPEP_FATAL("replay: ", path,
                   " is truncated inside the stream table");
    if (loadU64(p + 32) !=
        fnv1aBytes(p + kHeaderBytes, toc_end - kHeaderBytes))
        PPEP_FATAL("replay: ", path,
                   " stream table is corrupt (checksum mismatch)");

    streams_.reserve(n_streams);
    for (std::uint32_t i = 0; i < n_streams; ++i) {
        const unsigned char *e =
            p + kHeaderBytes + std::size_t{i} * kStreamEntryBytes;
        Stream s;
        const auto *name = reinterpret_cast<const char *>(e);
        s.name.assign(name, ::strnlen(name, kNameBytes));
        s.fingerprint = loadU64(e + 40);
        const std::uint64_t frame_offset = loadU64(e + 48);
        s.frame_count = static_cast<std::size_t>(loadU64(e + 56));
        s.frame_stride = static_cast<std::size_t>(loadU64(e + 64));
        const std::uint64_t checksum = loadU64(e + 72);
        s.n_cores = loadU32(e + 80);
        s.n_cus = loadU32(e + 84);
        const std::uint32_t flags = loadU32(e + 88);
        if ((flags & ~kFlagHasHealth) != 0)
            PPEP_FATAL("replay: ", path, " stream '", s.name,
                       "' carries unknown flags");
        s.with_health = (flags & kFlagHasHealth) != 0;
        if (s.frame_stride != ReplayStreamBuilder::strideFor(
                                  s.n_cores, s.n_cus, s.with_health))
            PPEP_FATAL("replay: ", path, " stream '", s.name,
                       "' has an inconsistent frame stride");
        const std::uint64_t payload =
            static_cast<std::uint64_t>(s.frame_count) * s.frame_stride;
        if (frame_offset > map_len_ ||
            payload > map_len_ - frame_offset)
            PPEP_FATAL("replay: ", path,
                       " is truncated inside stream '", s.name, "'");
        s.frames = p + frame_offset;
        if (checksum !=
            fnv1aBytes(s.frames, static_cast<std::size_t>(payload)))
            PPEP_FATAL("replay: ", path, " stream '", s.name,
                       "' frame payload is corrupt (checksum "
                       "mismatch)");
        streams_.push_back(std::move(s));
    }
}

ReplayFile::~ReplayFile()
{
    if (map_ != nullptr)
        ::munmap(map_, map_len_);
    if (fd_ >= 0)
        ::close(fd_);
}

const ReplayFile::Stream &
ReplayFile::stream(std::size_t i) const
{
    PPEP_ASSERT(i < streams_.size(), "stream index out of range");
    return streams_[i];
}

const ReplayFile::Stream *
ReplayFile::findStream(std::string_view name) const
{
    for (const Stream &s : streams_)
        if (s.name == name)
            return &s;
    return nullptr;
}

// --- ReplaySource --------------------------------------------------------

ReplaySource::ReplaySource(const ReplayFile &file,
                           std::size_t stream_index,
                           std::uint64_t expected_fingerprint)
    : stream_(file.stream(stream_index))
{
    if (stream_.fingerprint != expected_fingerprint)
        PPEP_FATAL("replay: stream '", stream_.name, "' in ",
                   file.path(), " was recorded on different silicon "
                   "(fingerprint ", stream_.fingerprint,
                   ", this platform is ", expected_fingerprint, ")");
}

IntervalRecord
ReplaySource::collectInterval()
{
    IntervalRecord rec;
    collectIntervalInto(rec);
    return rec;
}

void
ReplaySource::collectIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
{
    PPEP_ASSERT(next_ < stream_.frame_count, "replay stream '",
                stream_.name, "' exhausted after ",
                stream_.frame_count, " frames");
    const unsigned char *p =
        stream_.frames + next_ * stream_.frame_stride;

    time_s_ = loadF64(p);
    p += 8;
    cap_w_ = loadF64(p);
    p += 8;
    rec.duration_s = loadF64(p);
    p += 8;
    rec.sensor_power_w = loadF64(p);
    p += 8;
    rec.diode_temp_k = loadF64(p);
    p += 8;
    rec.true_power_w = loadF64(p);
    p += 8;
    rec.true_dynamic_w = loadF64(p);
    p += 8;
    rec.true_idle_w = loadF64(p);
    p += 8;
    rec.true_nb_power_w = loadF64(p);
    p += 8;
    rec.true_temp_k = loadF64(p);
    p += 8;
    rec.nb_utilization = loadF64(p);
    p += 8;
    rec.nb_vf.voltage = loadF64(p);
    p += 8;
    rec.nb_vf.freq_ghz = loadF64(p);
    p += 8;
    rec.busy_cores = static_cast<std::size_t>(loadU64(p));
    p += 8;

    // rt-escape: the first decode sizes the caller's record to the
    // stream shape; every later frame reuses the same storage and the
    // resizes are no-ops.
    PPEP_RT_WARMUP_BEGIN
    rec.cu_vf.resize(stream_.n_cus);
    rec.pmc.resize(stream_.n_cores);
    rec.oracle.resize(stream_.n_cores);
    PPEP_RT_WARMUP_END

    for (std::size_t cu = 0; cu < stream_.n_cus; ++cu) {
        rec.cu_vf[cu] = static_cast<std::size_t>(loadU64(p));
        p += 8;
    }
    for (std::size_t c = 0; c < stream_.n_cores; ++c)
        for (std::size_t e = 0; e < sim::kNumEvents; ++e) {
            rec.pmc[c][e] = loadF64(p);
            p += 8;
        }
    for (std::size_t c = 0; c < stream_.n_cores; ++c)
        for (std::size_t e = 0; e < sim::kNumEvents; ++e) {
            rec.oracle[c][e] = loadF64(p);
            p += 8;
        }
    if (stream_.with_health) {
        health_.msr_retries = loadU64(p);
        p += 8;
        health_.msr_failed_cores = loadU64(p);
        p += 8;
        health_.pmc_rejected_cores = loadU64(p);
        p += 8;
        health_.substituted_cores = loadU64(p);
        p += 8;
        health_.zeroed_cores = loadU64(p);
        p += 8;
        health_.sensor_rejects = loadU64(p);
        p += 8;
        health_.diode_rejects = loadU64(p);
        p += 8;
        health_.ticks = loadU64(p);
        p += 8;
        health_.timing_overrun = loadU64(p) != 0;
        p += 8;
        health_.pmc_wrap_events = loadU64(p);
        p += 8;
        health_.total_fault_events = loadU64(p);
        p += 8;
    }
    ++next_;
}

} // namespace ppep::trace
