/**
 * @file
 * Interval-granularity trace collection on a simulated chip.
 *
 * The Collector plays the role of the paper's measurement harness
 * (msr-tools + the Arduino power logger): it steps the chip tick by tick,
 * averages the sensor/diode streams, reads the multiplexed PMCs once per
 * interval, and stamps each record with the VF context.
 */

#ifndef PPEP_TRACE_COLLECTOR_HPP
#define PPEP_TRACE_COLLECTOR_HPP

#include <vector>

#include "ppep/sim/chip.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/annotations.hpp"

namespace ppep::trace {

/**
 * Anything that can advance the chip by one decision interval and hand
 * back its record: the perfect-acquisition Collector below, or the
 * hardened runtime::Sampler (retry, sanity guards, last-good
 * substitution) when the hardware is allowed to misbehave.
 */
class IntervalSource
{
  public:
    virtual ~IntervalSource() = default;

    /** Run one full interval and record it. */
    virtual IntervalRecord collectInterval() = 0;

    /**
     * collectInterval() into a caller-owned record, reusing its vectors —
     * the allocation-free steady-state path. Every field is overwritten.
     * The default forwards to collectInterval(); sources with a hot path
     * override it.
     */
    virtual void collectIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
    {
        // rt-escape: legacy fallback — collectInterval() builds a fresh
        // record by contract. Sources used in the fleet steady state
        // (Collector, Sampler) override this with allocation-free paths.
        PPEP_RT_WARMUP_BEGIN
        rec = collectInterval();
        PPEP_RT_WARMUP_END
    }
};

/**
 * An IntervalSource whose interval is separable into begin / one
 * consumeTick per chip tick / finish — the contract the batched fleet
 * driver needs: it begins an interval on every session, steps all
 * their chips tick-locked through sim::ChipBatch, feeds each tick
 * result back, and finishes. For any implementation,
 *
 *     n = beginIntervalInto(rec);
 *     repeat n times { chip.stepInto(t); consumeTick(rec, t); }
 *     finishIntervalInto(rec);
 *
 * must be bit-identical to collectIntervalInto(rec) — the scalar path
 * is the same three calls fused (pure code motion).
 */
class TickedIntervalSource : public IntervalSource
{
  public:
    /**
     * Open an interval: stamp the VF context, zero the accumulators,
     * and size the record. Returns the number of ticks this interval
     * runs (fault-jittered sources may deviate from the nominal).
     */
    virtual std::size_t beginIntervalInto(IntervalRecord &rec)
        PPEP_NONBLOCKING = 0;

    /** Fold one tick's results into the open interval. */
    virtual void consumeTick(IntervalRecord &rec,
                             const sim::TickResult &tick)
        PPEP_NONBLOCKING = 0;

    /** Close the interval: means, PMC read-out, busy-core count. */
    virtual void finishIntervalInto(IntervalRecord &rec)
        PPEP_NONBLOCKING = 0;
};

/** Tick-accurate interval collector bound to one chip. */
class Collector : public TickedIntervalSource
{
  public:
    explicit Collector(sim::Chip &chip);

    /** Run one full interval (ticks_per_interval ticks) and record it. */
    IntervalRecord collectInterval() override;

    /** Allocation-free collectInterval() (bit-identical outputs). */
    void collectIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING override;

    std::size_t beginIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
        override;
    void consumeTick(IntervalRecord &rec, const sim::TickResult &tick)
        PPEP_NONBLOCKING override;
    void finishIntervalInto(IntervalRecord &rec) PPEP_NONBLOCKING
        override;

    /** Collect @p n intervals back to back. */
    std::vector<IntervalRecord> collect(std::size_t n);

    /**
     * Collect until every job on the chip has finished, or until
     * @p max_intervals have elapsed, whichever is first.
     */
    std::vector<IntervalRecord>
    collectUntilFinished(std::size_t max_intervals);

    /** True when no core has an unfinished job. */
    bool allJobsFinished() const;

  private:
    sim::Chip &chip_;
    /** Per-interval scratch reused by collectIntervalInto(). */
    sim::TickResult tick_;
    std::vector<double> retired_;
    /** Tick count of the interval opened by beginIntervalInto(). */
    std::size_t interval_ticks_ = 0;
};

} // namespace ppep::trace

#endif // PPEP_TRACE_COLLECTOR_HPP
