/**
 * @file
 * CSV export of interval traces for offline analysis and plotting.
 *
 * Every paper figure started as a trace; this utility dumps what the
 * Collector records — observable columns always, ground-truth columns
 * optionally — in a stable, documented column order.
 */

#ifndef PPEP_TRACE_EXPORT_HPP
#define PPEP_TRACE_EXPORT_HPP

#include <string>
#include <vector>

#include "ppep/trace/interval.hpp"

namespace ppep::trace {

/** Column selection for exportCsv(). */
struct ExportOptions
{
    /** Include per-event chip-wide PMC rate columns (E1..E12, per s). */
    bool pmc_rates = true;
    /** Include ground-truth columns (validation work only). */
    bool truth = false;
};

/**
 * Write a trace to @p path. Columns, in order:
 *   interval, duration_s, sensor_power_w, diode_temp_k, vf_index,
 *   busy_cores[, e1_per_s..e12_per_s][, true_power_w, true_dynamic_w,
 *   true_idle_w, true_nb_power_w, nb_utilization]
 *
 * The VF column records the first CU's requested index (global DVFS
 * runs keep all CUs equal). fatal() on I/O failure.
 */
void exportCsv(const std::vector<IntervalRecord> &trace,
               const std::string &path, const ExportOptions &options = {});

} // namespace ppep::trace

#endif // PPEP_TRACE_EXPORT_HPP
