/**
 * @file
 * Instruction-aligned trace segmentation for CPI-model validation.
 *
 * Comparing per-sample CPI across two frequencies is meaningless because
 * the same wall-clock sample covers different work. The paper instead
 * divides both traces "into segments based on the number of instructions
 * completed", sums the cycles each segment was predicted to take from the
 * other trace's counters, and compares with the cycles it actually took
 * (Sec. III). This module implements that alignment.
 */

#ifndef PPEP_TRACE_SEGMENTER_HPP
#define PPEP_TRACE_SEGMENTER_HPP

#include <cstddef>
#include <vector>

#include "ppep/trace/interval.hpp"

namespace ppep::trace {

/**
 * Cumulative (instructions -> cycles, mab-wait-cycles) timeline for one
 * core of one trace, with piecewise-linear interpolation inside
 * intervals.
 */
class InstructionTimeline
{
  public:
    /**
     * Build from a trace, using the oracle or PMC counts of @p core.
     * @param use_pmc read multiplexed PMC counts (realistic) instead of
     *                oracle counts.
     */
    InstructionTimeline(const std::vector<IntervalRecord> &trace,
                        std::size_t core, bool use_pmc);

    /** Total instructions covered. */
    double totalInstructions() const;

    /** Cumulative unhalted cycles after @p instructions retired. */
    double cyclesAt(double instructions) const;

    /** Cumulative MAB wait cycles after @p instructions retired. */
    double mabCyclesAt(double instructions) const;

  private:
    double interp(const std::vector<double> &ys,
                  double instructions) const;

    std::vector<double> cum_inst_;   ///< len n+1, cum_inst_[0] == 0
    std::vector<double> cum_cycles_; ///< len n+1
    std::vector<double> cum_mab_;    ///< len n+1
};

/** Per-segment cycle observations for one trace. */
struct Segment
{
    double instructions = 0.0; ///< segment width
    double cycles = 0.0;       ///< unhalted cycles spent on the segment
    double mab_cycles = 0.0;   ///< MAB wait cycles within the segment
};

/**
 * Slice a timeline into equal-instruction segments (the last partial
 * segment is dropped). @pre segment_instructions > 0.
 */
std::vector<Segment> segmentTimeline(const InstructionTimeline &timeline,
                                     double segment_instructions);

} // namespace ppep::trace

#endif // PPEP_TRACE_SEGMENTER_HPP
