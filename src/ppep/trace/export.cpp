#include "ppep/trace/export.hpp"

#include "ppep/util/csv.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::trace {

void
exportCsv(const std::vector<IntervalRecord> &trace,
          const std::string &path, const ExportOptions &options)
{
    util::CsvWriter csv(path);

    std::vector<std::string> header{"interval",       "duration_s",
                                    "sensor_power_w", "diode_temp_k",
                                    "vf_index",       "busy_cores"};
    if (options.pmc_rates) {
        for (const auto e : sim::allEvents()) {
            std::string name(sim::eventLabel(e));
            for (auto &c : name)
                c = static_cast<char>(std::tolower(c));
            header.push_back(name + "_per_s");
        }
    }
    if (options.truth) {
        header.insert(header.end(),
                      {"true_power_w", "true_dynamic_w", "true_idle_w",
                       "true_nb_power_w", "nb_utilization"});
    }
    csv.writeRow(header);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto &rec = trace[i];
        PPEP_ASSERT(!rec.cu_vf.empty(), "record has no VF context");
        std::vector<double> row{
            static_cast<double>(i),
            rec.duration_s,
            rec.sensor_power_w,
            rec.diode_temp_k,
            static_cast<double>(rec.cu_vf.front()),
            static_cast<double>(rec.busy_cores)};
        if (options.pmc_rates) {
            for (const auto e : sim::allEvents())
                row.push_back(rec.pmcTotal(e) / rec.duration_s);
        }
        if (options.truth) {
            row.push_back(rec.true_power_w);
            row.push_back(rec.true_dynamic_w);
            row.push_back(rec.true_idle_w);
            row.push_back(rec.true_nb_power_w);
            row.push_back(rec.nb_utilization);
        }
        csv.writeRow(row);
    }
}

} // namespace ppep::trace
