/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a PPEP bug); aborts.
 * fatal()  — the caller supplied an impossible configuration; exits(1).
 * warn()   — something is off but execution can continue.
 * inform() — plain status output.
 */

#ifndef PPEP_UTIL_LOGGING_HPP
#define PPEP_UTIL_LOGGING_HPP

#include <sstream>
#include <string>

#include "ppep/util/annotations.hpp"

namespace ppep::util {

/** Terminate with an internal-error message; never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error message; never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

namespace detail {

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace ppep::util

#define PPEP_PANIC(...) \
    ::ppep::util::panicImpl(__FILE__, __LINE__, \
                            ::ppep::util::detail::concat(__VA_ARGS__))

#define PPEP_FATAL(...) \
    ::ppep::util::fatalImpl(__FILE__, __LINE__, \
                            ::ppep::util::detail::concat(__VA_ARGS__))

#define PPEP_WARN(...) \
    ::ppep::util::warnImpl(__FILE__, __LINE__, \
                           ::ppep::util::detail::concat(__VA_ARGS__))

#define PPEP_INFORM(...) \
    ::ppep::util::informImpl(::ppep::util::detail::concat(__VA_ARGS__))

/**
 * Assert an internal invariant; compiled in all build types.
 *
 * Usable inside PPEP_NONBLOCKING functions: the failure branch
 * allocates (message formatting) and then aborts, so it is wrapped in
 * an rt-escape — a dying process has no real-time obligations. The
 * condition itself is evaluated outside the escape and stays checked.
 */
#define PPEP_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            /* rt-escape: assertion failure path — formats a message \
               and aborts; the process is already past recovery. */ \
            PPEP_RT_WARMUP_BEGIN \
            PPEP_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
            PPEP_RT_WARMUP_END \
        } \
    } while (0)

#endif // PPEP_UTIL_LOGGING_HPP
