/**
 * @file
 * Plain-text table rendering for bench output.
 *
 * Every bench binary regenerates one paper table/figure as rows of text;
 * this helper keeps columns aligned and formatting consistent.
 */

#ifndef PPEP_UTIL_TABLE_HPP
#define PPEP_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace ppep::util {

/**
 * Column-aligned ASCII table. Add a header, then rows of equal width;
 * print() computes column widths and emits the table.
 */
class Table
{
  public:
    /** Construct with an optional caption printed above the table. */
    explicit Table(std::string caption = "");

    /** Set the column headers; defines the table width. */
    void setHeader(std::vector<std::string> header);

    /** Append a row. @pre width matches the header (if one is set). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p decimals decimal places. */
    static std::string num(double v, int decimals = 2);

    /** Convenience: format a fraction as a percentage string. */
    static std::string pct(double fraction, int decimals = 1);

    /** Render to the stream. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ppep::util

#endif // PPEP_UTIL_TABLE_HPP
