#include "ppep/util/rng.hpp"

#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::util {

namespace {

/** splitmix64 step, used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next() PPEP_NONBLOCKING
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform() PPEP_NONBLOCKING
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi) PPEP_NONBLOCKING
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n) PPEP_NONBLOCKING
{
    PPEP_ASSERT(n > 0, "uniformInt needs n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - (UINT64_MAX % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian() PPEP_NONBLOCKING
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double sd) PPEP_NONBLOCKING
{
    return mean + sd * gaussian();
}

bool
Rng::bernoulli(double p) PPEP_NONBLOCKING
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Derive a child seed by hashing the parent state with the stream id.
    std::uint64_t mix = s_[0] ^ rotl(s_[3], 13) ^
                        (stream_id * 0xd1342543de82ef95ULL + 1);
    return Rng(mix);
}

} // namespace ppep::util
