#include "ppep/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "ppep/util/logging.hpp"

namespace ppep::util {

double
mean(std::span<const double> xs)
{
    PPEP_ASSERT(!xs.empty(), "mean of empty span");
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddevPop(std::span<const double> xs)
{
    PPEP_ASSERT(!xs.empty(), "stddev of empty span");
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
stddevSample(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
minValue(std::span<const double> xs)
{
    PPEP_ASSERT(!xs.empty(), "min of empty span");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(std::span<const double> xs)
{
    PPEP_ASSERT(!xs.empty(), "max of empty span");
    return *std::max_element(xs.begin(), xs.end());
}

double
absRelErr(double estimate, double reference)
{
    if (reference == 0.0)
        return estimate == 0.0 ? 0.0 : 1.0;
    return std::fabs(estimate - reference) / std::fabs(reference);
}

double
aae(std::span<const double> estimates, std::span<const double> references)
{
    PPEP_ASSERT(estimates.size() == references.size(),
                "aae: length mismatch");
    PPEP_ASSERT(!estimates.empty(), "aae of empty spans");
    double s = 0.0;
    for (std::size_t i = 0; i < estimates.size(); ++i)
        s += absRelErr(estimates[i], references[i]);
    return s / static_cast<double>(estimates.size());
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    PPEP_ASSERT(xs.size() == ys.size() && xs.size() >= 2,
                "pearson needs two aligned series of length >= 2");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::stddevPop() const
{
    if (n_ == 0)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_));
}

} // namespace ppep::util
