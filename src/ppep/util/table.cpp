#include "ppep/util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "ppep/util/logging.hpp"

namespace ppep::util {

Table::Table(std::string caption) : caption_(std::move(caption)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    PPEP_ASSERT(header_.empty() || row.size() == header_.size(),
                "table row width ", row.size(), " != header width ",
                header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    if (!caption_.empty())
        os << caption_ << "\n";

    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "| " : " | ");
            os << row[i];
            os << std::string(widths[i] - row[i].size(), ' ');
        }
        os << " |\n";
    };

    auto rule = [&]() {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            os << (i == 0 ? "|-" : "-|-");
            os << std::string(widths[i], '-');
        }
        os << "-|\n";
    };

    if (!header_.empty()) {
        rule();
        emit(header_);
    }
    rule();
    for (const auto &row : rows_)
        emit(row);
    rule();
}

} // namespace ppep::util
