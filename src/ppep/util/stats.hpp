/**
 * @file
 * Summary statistics used throughout model validation.
 *
 * The paper reports average absolute error (AAE) per benchmark and then the
 * mean and standard deviation of those AAEs per suite; the helpers here
 * implement exactly those reductions.
 */

#ifndef PPEP_UTIL_STATS_HPP
#define PPEP_UTIL_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace ppep::util {

/** Arithmetic mean. @pre non-empty input. */
double mean(std::span<const double> xs);

/** Population standard deviation. @pre non-empty input. */
double stddevPop(std::span<const double> xs);

/** Sample (n-1) standard deviation; 0 for fewer than two samples. */
double stddevSample(std::span<const double> xs);

/** Minimum value. @pre non-empty input. */
double minValue(std::span<const double> xs);

/** Maximum value. @pre non-empty input. */
double maxValue(std::span<const double> xs);

/**
 * Absolute relative error |est - ref| / |ref|.
 *
 * A zero reference with a zero estimate counts as zero error; a zero
 * reference with a nonzero estimate is treated as 100% error rather than
 * infinity so that aggregate statistics stay finite.
 */
double absRelErr(double estimate, double reference);

/**
 * Average absolute (relative) error between two aligned series — the AAE
 * metric the paper reports for every model.
 * @pre equal, nonzero lengths.
 */
double aae(std::span<const double> estimates,
           std::span<const double> references);

/** Pearson correlation coefficient. @pre equal lengths >= 2. */
double pearson(std::span<const double> xs, std::span<const double> ys);

/**
 * Incremental mean/variance accumulator (Welford's algorithm), for
 * streaming reductions over long traces.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples folded in so far. */
    std::size_t count() const { return n_; }

    /** Mean of samples; 0 if empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population standard deviation; 0 if empty. */
    double stddevPop() const;

    /** Minimum sample; 0 if empty. */
    double minValue() const { return n_ ? min_ : 0.0; }

    /** Maximum sample; 0 if empty. */
    double maxValue() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace ppep::util

#endif // PPEP_UTIL_STATS_HPP
