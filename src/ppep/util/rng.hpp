/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (sensor noise, phase jitter,
 * workload variation) draws from a seeded xoshiro256** stream so that all
 * experiments are reproducible bit-for-bit. std::mt19937 is avoided because
 * its distribution wrappers are not guaranteed identical across standard
 * library implementations; we implement our own transforms.
 */

#ifndef PPEP_UTIL_RNG_HPP
#define PPEP_UTIL_RNG_HPP

#include <cstdint>
#include "ppep/util/annotations.hpp"

namespace ppep::util {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Small, fast, and with well-understood statistical quality; state is four
 * 64-bit words. Copyable, so independent substreams can be forked cheaply.
 */
class Rng
{
  public:
    /** Seed the stream; identical seeds yield identical sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next() PPEP_NONBLOCKING;

    /** Uniform double in [0, 1). */
    double uniform() PPEP_NONBLOCKING;

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) PPEP_NONBLOCKING;

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n) PPEP_NONBLOCKING;

    /** Standard normal via Box-Muller (cached second deviate). */
    double gaussian() PPEP_NONBLOCKING;

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sd) PPEP_NONBLOCKING;

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p) PPEP_NONBLOCKING;

    /**
     * Fork an independent substream keyed by @p stream_id. Forked streams
     * are decorrelated from the parent and from each other.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace ppep::util

#endif // PPEP_UTIL_RNG_HPP
