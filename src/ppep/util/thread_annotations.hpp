/**
 * @file
 * Clang Thread Safety Analysis annotations for the concurrency surface.
 *
 * The runtime carries five distinct concurrency disciplines — the
 * AsyncTelemetrySink bounded ring, the Recalibrator worker mailbox and
 * RCU-style hot swap, ModelStore's per-path lock registry, the Fleet
 * thread pool, and the BudgetArbiter barrier lockstep. Until this
 * header, every locking invariant behind them was enforced only
 * dynamically (the TSan CI job) and by comments. These macros map onto
 * Clang's Thread Safety Analysis attributes so the invariants become
 * *compile-time* properties: a build with -Wthread-safety promoted to
 * error (the PPEP_THREAD_SAFETY CMake option) refuses to compile an
 * unguarded access to an annotated member, a call to a PPEP_REQUIRES
 * function without the named lock held, or a lock acquisition that
 * inverts a declared order. Under GCC (and Clang builds without the
 * attributes) everything expands to nothing, mirroring PPEP_NONBLOCKING
 * in util/annotations.hpp.
 *
 * The annotated lock primitives themselves (util::Mutex, util::CondVar,
 * util::MutexLock, util::UniqueLock) live in util/sync.hpp — the only
 * file in src/ppep allowed to touch the raw standard-library lock
 * primitives directly (tools/ppep_lint.py, rule `raw-sync`).
 *
 * Two capability flavours are used in the tree:
 *
 *  - real locks: util::Mutex is PPEP_CAPABILITY("mutex"); members it
 *    protects are PPEP_GUARDED_BY(mu_), internal helpers that assume it
 *    is held are PPEP_REQUIRES(mu_), public entry points that take it
 *    are PPEP_EXCLUDES(mu_) so a re-entrant caller is a compile error.
 *
 *  - phantom roles: util::Role is a capability nobody ever blocks on.
 *    It names a *serial execution context* (e.g. the barrier completion
 *    step that runs FleetArbiter::decide()); functions annotated
 *    PPEP_REQUIRES(role) can only be called from code that has claimed
 *    the role via util::RoleGuard, which documents — and under clang
 *    enforces — that the call site sits in the barrier-serial section.
 *
 * See DESIGN.md section 18 for the per-subsystem capability map and the
 * lock-order table.
 */

#ifndef PPEP_UTIL_THREAD_ANNOTATIONS_HPP
#define PPEP_UTIL_THREAD_ANNOTATIONS_HPP

// ---------------------------------------------------------------------------
// Attribute detection. Thread safety attributes are GNU-style (they
// predate C++11 attributes); guard on __has_attribute so the macros
// vanish on GCC and on exotic clangs without the analysis.
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by) && __has_attribute(capability)
#define PPEP_HAS_THREAD_SAFETY_ATTRIBUTES 1
#endif
#endif

#if defined(PPEP_HAS_THREAD_SAFETY_ATTRIBUTES)
#define PPEP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PPEP_THREAD_ANNOTATION_(x)
#endif

/** Marks a class as a capability (lockable resource or phantom role). */
#define PPEP_CAPABILITY(x) PPEP_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define PPEP_SCOPED_CAPABILITY PPEP_THREAD_ANNOTATION_(scoped_lockable)

/** Member readable/writable only while holding the capability. */
#define PPEP_GUARDED_BY(x) PPEP_THREAD_ANNOTATION_(guarded_by(x))

/** Pointee readable/writable only while holding the capability. */
#define PPEP_PT_GUARDED_BY(x) PPEP_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Declared lock order: this capability is acquired before the named
 *  ones. Violations surface under -Wthread-safety-beta. */
#define PPEP_ACQUIRED_BEFORE(...) \
    PPEP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/** Declared lock order: this capability is acquired after the named
 *  ones. Violations surface under -Wthread-safety-beta. */
#define PPEP_ACQUIRED_AFTER(...) \
    PPEP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/** Caller must hold the capabilities exclusively. */
#define PPEP_REQUIRES(...) \
    PPEP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Caller must hold the capabilities at least shared. */
#define PPEP_REQUIRES_SHARED(...) \
    PPEP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capabilities and holds them on return. */
#define PPEP_ACQUIRE(...) \
    PPEP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities. */
#define PPEP_RELEASE(...) \
    PPEP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function acquires the capabilities when it returns the given value. */
#define PPEP_TRY_ACQUIRE(...) \
    PPEP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capabilities ("negative" requirement): the
 *  function acquires them itself, so holding one on entry deadlocks.
 *  This is how the registry→path lock order is encoded. */
#define PPEP_EXCLUDES(...) \
    PPEP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Asserts at runtime that the capability is held (no acquisition). */
#define PPEP_ASSERT_CAPABILITY(x) \
    PPEP_THREAD_ANNOTATION_(assert_capability(x))

/** Function returns a reference to the named capability. */
#define PPEP_RETURN_CAPABILITY(x) PPEP_THREAD_ANNOTATION_(lock_returned(x))

/** Escape hatch: function body is not analysed. Every use must carry a
 *  `// tsa-escape:` justification (tools/ppep_lint.py). */
#define PPEP_NO_THREAD_SAFETY_ANALYSIS \
    PPEP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ppep::util {

/**
 * A phantom capability naming a serial execution context rather than a
 * lock: claiming it never blocks and compiles to nothing. Functions
 * annotated PPEP_REQUIRES(role) are thereby restricted — under the
 * thread-safety build — to call sites that hold a RoleGuard on the
 * role, i.e. to the one place the design says may run them (the
 * arbiter's barrier completion step, a test's serial harness). A lock
 * added by accident inside such a function is still caught one wall
 * over: the decide path is PPEP_NONBLOCKING, and util::Mutex::lock()
 * is deliberately not, so -Werror=function-effects rejects it.
 */
class PPEP_CAPABILITY("role") Role
{
  public:
    Role() = default;
    Role(const Role &) = delete;
    Role &operator=(const Role &) = delete;

    /** Claim the role (annotation-only; no runtime effect). */
    void acquire() PPEP_ACQUIRE() {}
    /** Relinquish the role (annotation-only; no runtime effect). */
    void release() PPEP_RELEASE() {}
};

/** RAII claim of a Role for the enclosing scope. Zero-cost. */
class PPEP_SCOPED_CAPABILITY RoleGuard
{
  public:
    explicit RoleGuard(Role &role) PPEP_ACQUIRE(role) : role_(role)
    {
        role_.acquire();
    }
    ~RoleGuard() PPEP_RELEASE() { role_.release(); }

    RoleGuard(const RoleGuard &) = delete;
    RoleGuard &operator=(const RoleGuard &) = delete;

  private:
    Role &role_;
};

} // namespace ppep::util

#endif // PPEP_UTIL_THREAD_ANNOTATIONS_HPP
