/**
 * @file
 * Minimal CSV writer so bench binaries can optionally dump raw series
 * (e.g. the Fig. 1 cooling trace or Fig. 7 capping trace) for plotting.
 */

#ifndef PPEP_UTIL_CSV_HPP
#define PPEP_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

#include "ppep/util/fmt.hpp"

namespace ppep::util {

/** Append-only CSV file writer with RFC-4180 style quoting. */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write one row of numeric cells. */
    void writeRow(const std::vector<double> &cells);

    /** Flush and close; also called by the destructor. */
    void close();

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

  private:
    /** Quote a cell if it contains a delimiter, quote, or newline. */
    static std::string escape(const std::string &cell);

    std::ofstream out_;
    fmt::RowBuffer row_;
};

} // namespace ppep::util

#endif // PPEP_UTIL_CSV_HPP
