#include "ppep/util/csv.hpp"

#include "ppep/util/fmt.hpp"
#include "ppep/util/logging.hpp"

namespace ppep::util {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_)
        PPEP_FATAL("cannot open CSV file for writing: ", path);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    // Shortest round-trip encoding: unlike the old 10-significant-digit
    // ostringstream, every double parses back to the exact same bits.
    row_.clear();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            row_.append(',');
        row_.appendDouble(cells[i]);
    }
    row_.append('\n');
    out_.write(row_.data(), static_cast<std::streamsize>(row_.size()));
}

void
CsvWriter::close()
{
    if (out_.is_open())
        out_.close();
}

CsvWriter::~CsvWriter()
{
    close();
}

} // namespace ppep::util
