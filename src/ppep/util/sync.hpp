/**
 * @file
 * Capability-annotated synchronisation primitives.
 *
 * This is the ONLY file in src/ppep allowed to name std::mutex or
 * std::condition_variable (tools/ppep_lint.py, rule `raw-sync`).
 * Everything else locks through these wrappers, which carry Clang
 * Thread Safety Analysis capabilities (util/thread_annotations.hpp):
 * under the PPEP_THREAD_SAFETY build, an access to a PPEP_GUARDED_BY
 * member without the lock, a call into a PPEP_REQUIRES function without
 * it, or an acquisition that inverts a declared order refuses to
 * compile. On GCC the annotations vanish and the wrappers are exactly
 * std::mutex / std::condition_variable / std::lock_guard /
 * std::unique_lock with zero overhead.
 *
 * Deliberately *not* provided: a timed mutex, a recursive mutex, a
 * reader/writer lock. The runtime's disciplines (DESIGN.md section 18)
 * need none of them — the RCU-style hot-swap reader side is lock-free
 * by construction, and adding primitives here is how lock soup starts.
 *
 * None of these are for the warm interval path: util::Mutex::lock() is
 * deliberately not PPEP_NONBLOCKING, so taking it anywhere inside the
 * annotated warm-interval call graph is a -Werror=function-effects
 * error, and ppep_lint bans this header from HOT_FILES outright.
 */

#ifndef PPEP_UTIL_SYNC_HPP
#define PPEP_UTIL_SYNC_HPP

#include <condition_variable>
#include <mutex>

#include "ppep/util/thread_annotations.hpp"

namespace ppep::util {

class CondVar;

/** A std::mutex carrying a thread-safety capability. */
class PPEP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Block until the mutex is held. Prefer MutexLock/UniqueLock. */
    void lock() PPEP_ACQUIRE() { mu_.lock(); }

    /** Release the mutex. */
    void unlock() PPEP_RELEASE() { mu_.unlock(); }

    /** Acquire without blocking; true when the lock was taken. */
    bool try_lock() PPEP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class MutexLock;
    friend class UniqueLock;
    std::mutex mu_;
};

/** Scoped lock for the common hold-for-the-whole-scope case
 *  (std::lock_guard shape: no unlock, no move). */
class PPEP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) PPEP_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() PPEP_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Scoped lock that can be dropped and re-taken mid-scope
 * (std::unique_lock shape) — the shape condition-variable waits and
 * unlock-while-working sections (the telemetry writer draining a slot)
 * need. Destruction releases the lock if it is still held.
 */
class PPEP_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) PPEP_ACQUIRE(mu) : lk_(mu.mu_) {}
    ~UniqueLock() PPEP_RELEASE() {} // member dtor unlocks if still held

    /** Drop the lock mid-scope (must be held). */
    void unlock() PPEP_RELEASE() { lk_.unlock(); }

    /** Re-take the lock after unlock(). */
    void lock() PPEP_ACQUIRE() { lk_.lock(); }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable over util::Mutex via UniqueLock.
 *
 * No wait-with-predicate overload on purpose: Thread Safety Analysis
 * cannot see through a predicate lambda (the lambda body is analysed as
 * its own unannotated function, so its reads of PPEP_GUARDED_BY state
 * would be flagged — or worse, silently trusted). Callers write the
 * loop explicitly,
 *
 *     while (!condition_over_guarded_state)
 *         cv.wait(lock);
 *
 * which keeps every guarded read inside the annotated function where
 * the analysis can prove the lock is held. Each CondVar declaration
 * documents its wait predicate next to the member.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p lk, sleep, re-acquire before returning.
     *  Spurious wakeups happen: always re-check the predicate. */
    void wait(UniqueLock &lk) { cv_.wait(lk.lk_); }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace ppep::util

#endif // PPEP_UTIL_SYNC_HPP
